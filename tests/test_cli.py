"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_builds_and_lists():
    assert main(["list"]) == 0


def test_count_command_runs(capsys):
    code = main([
        "count", "--domain", "10000", "--rate", "2000", "--duration", "2",
        "--workers", "4", "--workers-per-process", "2", "--bins", "16",
        "--migrate-at", "1.0", "--strategy", "fluid",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "migrations" in out
    assert "steady-state max latency" in out


def test_nexmark_command_runs(capsys):
    code = main([
        "nexmark", "--query", "2", "--rate", "2000", "--duration", "2",
        "--workers", "4", "--workers-per-process", "2", "--bins", "16",
        "--migrate-at", "1.0",
    ])
    assert code == 0
    assert "NEXMark Q2" in capsys.readouterr().out


def test_nexmark_rejects_unknown_query():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nexmark", "--query", "9"])


def test_compare_command_runs(capsys):
    code = main([
        "compare", "--domain", "100000", "--rate", "2000", "--duration", "3",
        "--workers", "4", "--workers-per-process", "2", "--bins", "16",
        "--migrate-at", "1.0",
    ])
    assert code == 0
    out = capsys.readouterr().out
    for strategy in ("all-at-once", "fluid", "batched", "optimized"):
        assert strategy in out


def test_trace_command_prints_phase_breakdown(capsys):
    code = main([
        "trace", "--domain", "10000", "--rate", "2000", "--duration", "2",
        "--workers", "4", "--workers-per-process", "2", "--bins", "16",
        "--migrate-at", "1.0",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "migration phases" in out
    assert "drain" in out
    assert "catch-up" in out
    assert "measured migration duration" in out
