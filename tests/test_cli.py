"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_builds_and_lists():
    assert main(["list"]) == 0


def test_count_command_runs(capsys):
    code = main([
        "count", "--domain", "10000", "--rate", "2000", "--duration", "2",
        "--workers", "4", "--workers-per-process", "2", "--bins", "16",
        "--migrate-at", "1.0", "--strategy", "fluid",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "migrations" in out
    assert "steady-state max latency" in out


def test_nexmark_command_runs(capsys):
    code = main([
        "nexmark", "--query", "2", "--rate", "2000", "--duration", "2",
        "--workers", "4", "--workers-per-process", "2", "--bins", "16",
        "--migrate-at", "1.0",
    ])
    assert code == 0
    assert "NEXMark Q2" in capsys.readouterr().out


def test_nexmark_rejects_unknown_query():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nexmark", "--query", "9"])


def test_compare_command_runs(capsys):
    code = main([
        "compare", "--domain", "100000", "--rate", "2000", "--duration", "3",
        "--workers", "4", "--workers-per-process", "2", "--bins", "16",
        "--migrate-at", "1.0",
    ])
    assert code == 0
    out = capsys.readouterr().out
    for strategy in ("all-at-once", "fluid", "batched", "optimized"):
        assert strategy in out


def test_trace_command_prints_phase_breakdown(capsys):
    code = main([
        "trace", "--domain", "10000", "--rate", "2000", "--duration", "2",
        "--workers", "4", "--workers-per-process", "2", "--bins", "16",
        "--migrate-at", "1.0",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "migration phases" in out
    assert "drain" in out
    assert "catch-up" in out
    assert "measured migration duration" in out


@pytest.mark.parametrize(
    "argv,message",
    [
        (["count", "--workers", "0"], "--workers must be positive"),
        (["count", "--workers-per-process", "-1"],
         "--workers-per-process must be positive"),
        (["count", "--bins", "0"], "--bins must be positive"),
        (["count", "--bins", "12"], "--bins must be a power of two"),
        (["count", "--rate", "0"], "--rate must be positive"),
        (["count", "--rate", "-100"], "--rate must be positive"),
        (["count", "--duration", "0"], "--duration must be positive"),
        (["count", "--batch-size", "0"], "--batch-size must be positive"),
        (["count", "--granularity-ms", "0"], "--granularity-ms must be positive"),
        (["count", "--duration", "8", "--migrate-at", "8.5"], "outside (0, 8.0)"),
        (["count", "--duration", "8", "--migrate-at", "0"], "outside (0, 8.0)"),
        (["count", "--duration", "8", "--migrate-at", "-1"], "outside (0, 8.0)"),
        (["compare", "--duration", "4", "--migrate-at", "2", "5"],
         "outside (0, 4.0)"),
        (["nexmark", "--query", "2", "--rate", "0"], "--rate must be positive"),
        (["chaos", "--bins", "3"], "--bins must be a power of two"),
    ],
)
def test_invalid_arguments_rejected(argv, message, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2  # argparse usage-error convention
    assert message in capsys.readouterr().err


def test_boundary_migrate_at_accepted():
    # Strictly inside (0, duration) parses fine (and, with a tiny workload,
    # runs fine too).
    code = main([
        "count", "--domain", "10000", "--rate", "2000", "--duration", "2",
        "--workers", "2", "--workers-per-process", "2", "--bins", "16",
        "--migrate-at", "1.999",
    ])
    assert code == 0


def test_chaos_parser_defaults():
    args = build_parser().parse_args(["chaos"])
    assert args.scenario == "crash-target"
    assert args.workers == 4
    assert args.bins == 16
    assert args.migrate_at == [2.0]


def test_chaos_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["chaos", "--scenario", "meteor"])


@pytest.mark.slow
def test_chaos_command_reports_verdicts(capsys):
    code = main([
        "chaos", "--scenario", "stall", "--duration", "4",
        "--rate", "5000", "--migrate-at", "1.5",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "chaos: stall" in out
    for strategy in ("all-at-once", "fluid", "batched", "optimized"):
        assert strategy in out
    assert "Completion holds" in out


def test_bench_command_writes_report(tmp_path, capsys):
    out_path = tmp_path / "bench.json"
    code = main(["bench", "--scale", "tiny", "--no-layers",
                 "--output", str(out_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "hot-path bench, scale tiny" in out
    assert "hash_count" in out and "nexmark_q3" in out

    import json

    report = json.loads(out_path.read_text())
    assert report["schema"] == "bench-hotpath/2"
    assert report["scale"] == "tiny"
    assert report["machine"]["cpu_count"] >= 1
    assert report["machine"]["batch_representation"]
    for workload in ("hash_count", "nexmark_q3"):
        numbers = report["workloads"][workload]
        assert numbers["records"] > 0
        assert numbers["records_per_s"] > 0
        assert numbers["wall_seconds"] > 0
        assert numbers["sim_events"] > 0
    # Baseline comparison only applies at the full scale.
    assert "speedup" not in report


def test_bench_layer_breakdown_included_by_default(tmp_path):
    out_path = tmp_path / "bench.json"
    code = main(["bench", "--scale", "tiny", "--output", str(out_path)])
    assert code == 0

    import json

    report = json.loads(out_path.read_text())
    layers = report["layers"]["hash_count"]
    assert layers, "layer breakdown should not be empty"
    # Fractions describe a probability distribution over layers.
    total = sum(entry["fraction"] for entry in layers.values())
    assert 0.99 <= total <= 1.01
    assert any(layer.startswith("repro.") for layer in layers)


def test_bench_rejects_bad_scale_and_repeats(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bench", "--scale", "galactic"])
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "--scale", "tiny", "--repeats", "0"])
    assert excinfo.value.code == 2
    assert "--repeats must be positive" in capsys.readouterr().err


def test_bench_check_passes_against_own_numbers(tmp_path, capsys):
    import json

    baseline_path = tmp_path / "baseline.json"
    code = main(["bench", "--scale", "tiny", "--no-layers",
                 "--output", str(baseline_path)])
    assert code == 0
    capsys.readouterr()
    # The workload is deterministic and wall-clock noise is far below the
    # generous tolerance, so a fresh run checks clean against itself.
    code = main(["bench", "--scale", "tiny", "--no-layers",
                 "--check", str(baseline_path), "--tolerance", "0.9"])
    out = capsys.readouterr().out
    assert code == 0
    assert "regression check vs" in out
    assert "check passed" in out
    # Check mode never overwrites the compared report.
    assert json.loads(baseline_path.read_text())["scale"] == "tiny"


def test_bench_check_fails_on_regression(tmp_path, capsys):
    import json

    baseline_path = tmp_path / "baseline.json"
    code = main(["bench", "--scale", "tiny", "--no-layers",
                 "--output", str(baseline_path)])
    assert code == 0
    baseline = json.loads(baseline_path.read_text())
    # An impossibly fast committed baseline makes any real run a regression.
    for numbers in baseline["workloads"].values():
        numbers["records_per_s"] *= 1000.0
    baseline_path.write_text(json.dumps(baseline))
    capsys.readouterr()
    code = main(["bench", "--scale", "tiny", "--no-layers",
                 "--check", str(baseline_path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "regression" in out
    assert "FAIL: throughput regressed beyond tolerance" in out


def test_bench_check_rejects_scale_mismatch(tmp_path, capsys):
    import json

    baseline_path = tmp_path / "baseline.json"
    code = main(["bench", "--scale", "tiny", "--no-layers",
                 "--output", str(baseline_path)])
    assert code == 0
    baseline = json.loads(baseline_path.read_text())
    baseline["scale"] = "full"
    baseline_path.write_text(json.dumps(baseline))
    with pytest.raises(ValueError, match="does not match the committed"):
        main(["bench", "--scale", "tiny", "--no-layers",
              "--check", str(baseline_path)])


def test_bench_check_warns_across_machines(tmp_path, capsys):
    import json

    baseline_path = tmp_path / "baseline.json"
    code = main(["bench", "--scale", "tiny", "--no-layers",
                 "--output", str(baseline_path)])
    assert code == 0
    baseline = json.loads(baseline_path.read_text())
    # Same impossible baseline as the regression test, but measured on a
    # "different" machine: the check downgrades to warnings and passes.
    for numbers in baseline["workloads"].values():
        numbers["records_per_s"] *= 1000.0
    baseline["machine"]["cpu_count"] = 4096
    baseline_path.write_text(json.dumps(baseline))
    capsys.readouterr()
    code = main(["bench", "--scale", "tiny", "--no-layers",
                 "--check", str(baseline_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "cross-machine-warn" in out
    assert "different machine" in out
    assert "check passed" in out


def test_bench_check_tolerance_override_per_workload(tmp_path, capsys):
    import json

    baseline_path = tmp_path / "baseline.json"
    code = main(["bench", "--scale", "tiny", "--no-layers",
                 "--output", str(baseline_path)])
    assert code == 0
    baseline = json.loads(baseline_path.read_text())
    # hash_count regresses ~80% against this baseline; a per-workload
    # override admits it while the global tolerance would not.  The
    # margins are wide on both sides so wall-clock noise in the fresh
    # runs (this is a shared box) cannot flip either verdict.
    baseline["workloads"]["hash_count"]["records_per_s"] *= 5.0
    baseline_path.write_text(json.dumps(baseline))
    capsys.readouterr()
    code = main(["bench", "--scale", "tiny", "--no-layers",
                 "--check", str(baseline_path), "--tolerance", "0.5",
                 "--tolerance-override", "hash_count=0.97"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "check passed" in out
    code = main(["bench", "--scale", "tiny", "--no-layers",
                 "--check", str(baseline_path), "--tolerance", "0.5"])
    assert code == 1

    code = main(["bench", "--scale", "tiny", "--no-layers",
                 "--check", str(baseline_path),
                 "--tolerance-override", "hash_count"])
    assert code == 2


def test_bench_parallel_section(tmp_path, capsys):
    import json

    out_path = tmp_path / "bench.json"
    code = main(["bench", "--scale", "tiny", "--no-layers", "--repeats", "1",
                 "--parallel", "2", "--output", str(out_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "parallel: 2 shards" in out
    report = json.loads(out_path.read_text())
    par = report["parallel"]
    assert par["shards"] == 2
    assert par["deterministic"] is True
    assert par["speedup"] > 0
    assert par["serial_sharded"]["records"] == par["parallel"]["records"]


def test_profile_flag_prints_cumulative_stats(tmp_path, capsys):
    out_path = tmp_path / "bench.json"
    code = main(["--profile", "bench", "--scale", "tiny", "--no-layers",
                 "--output", str(out_path)])
    assert code == 0
    out = capsys.readouterr().out
    # The cProfile table follows the command's normal report.
    assert "hot-path bench" in out
    assert "cumulative" in out
    assert "ncalls" in out


def test_profile_flag_wraps_other_commands(capsys):
    code = main([
        "--profile", "count", "--domain", "10000", "--rate", "2000",
        "--duration", "1", "--workers", "2", "--workers-per-process", "2",
        "--bins", "16", "--migrate-at", "0.5",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "steady-state max latency" in out
    assert "ncalls" in out


@pytest.mark.parametrize(
    "argv,message",
    [
        (["count", "--state-backend", "rocksdb"],
         "unknown --state-backend 'rocksdb'; registered: dict, sorted-log, tiered"),
        (["count", "--codec", "arrow"],
         "unknown --codec 'arrow'; registered: modeled, pickle, struct"),
        (["nexmark", "--query", "2", "--state-backend", "lsm"],
         "unknown --state-backend 'lsm'"),
        (["chaos", "--codec", "json"], "unknown --codec 'json'"),
        (["bench", "--scale", "tiny", "--state-backend", "redis"],
         "unknown --state-backend 'redis'"),
        (["count", "--hot-capacity", "0"], "--hot-capacity must be positive"),
    ],
)
def test_unknown_backend_or_codec_rejected(argv, message, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    assert message in capsys.readouterr().err


def test_count_runs_on_every_backend(capsys):
    for backend, extra in [
        ("sorted-log", []),
        ("tiered", ["--hot-capacity", "20000"]),
        ("wal", []),
    ]:
        code = main([
            "count", "--domain", "10000", "--rate", "2000", "--duration", "2",
            "--workers", "2", "--workers-per-process", "2", "--bins", "16",
            "--migrate-at", "1.0", "--state-backend", backend,
            "--codec", "struct", *extra,
        ])
        assert code == 0
        assert "steady-state max latency" in capsys.readouterr().out


def test_list_names_backends_and_codecs(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "state backends: dict, sorted-log, tiered, wal" in out
    assert "codecs: modeled, pickle, struct" in out


def test_unknown_backend_error_names_wal(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["count", "--state-backend", "rocksdb"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "registered: dict, sorted-log, tiered, wal" in err


def test_count_with_wal_and_delta_migration(capsys):
    code = main([
        "count", "--domain", "10000", "--rate", "2000", "--duration", "2",
        "--workers", "2", "--workers-per-process", "2", "--bins", "16",
        "--migrate-at", "1.0", "--state-backend", "wal", "--delta-migration",
    ])
    assert code == 0
    assert "steady-state max latency" in capsys.readouterr().out


def test_bench_report_names_wal_backend(tmp_path, capsys):
    out_path = tmp_path / "bench.json"
    code = main([
        "bench", "--scale", "tiny", "--no-layers",
        "--state-backend", "wal", "--output", str(out_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "state backend: wal" in out
    assert out_path.exists()


def test_list_names_planner_objectives(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "planner objectives: balance, drain, spread" in out
    assert "planner policies:" in out


def test_plan_command_propose_only(tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    code = main([
        "plan", "--domain", "4096", "--rate", "5000", "--duration", "4",
        "--workers", "4", "--workers-per-process", "2", "--bins", "32",
        "--output", str(plan_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "decision" in out
    assert "final imbalance" in out
    # The emitted document is a byte-valid plan_io plan with provenance.
    from repro.megaphone.plan_io import load_plan

    plan = load_plan(plan_path)
    assert plan.steps
    assert plan.provenance.source == "planner"


def test_plan_command_execute(capsys):
    code = main([
        "plan", "--domain", "4096", "--rate", "5000", "--duration", "5",
        "--workers", "4", "--workers-per-process", "2", "--bins", "32",
        "--execute",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "final imbalance" in out


def test_plan_drain_requires_targets(capsys):
    code = main([
        "plan", "--objective", "drain", "--duration", "2",
    ])
    assert code == 2
    assert "--drain" in capsys.readouterr().err


@pytest.mark.parametrize(
    "argv,message",
    [
        (["plan", "--hot-keys", "0"], "--hot-keys must be positive"),
        (["plan", "--hot-fraction", "1.5"], "--hot-fraction must be"),
        (["plan", "--min-gain", "-1"], "--min-gain must be"),
    ],
)
def test_plan_invalid_arguments_rejected(argv, message, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    assert message in capsys.readouterr().err


# -- observability surface (repro.obsv) -----------------------------------------

_SMALL_RUN = [
    "--domain", "10000", "--rate", "2000", "--duration", "2",
    "--workers", "4", "--workers-per-process", "2", "--bins", "16",
    "--migrate-at", "1.0",
]


def test_bench_check_prints_tally(tmp_path, capsys):
    baseline_path = tmp_path / "baseline.json"
    assert main(["bench", "--scale", "tiny", "--no-layers",
                 "--output", str(baseline_path)]) == 0
    capsys.readouterr()
    code = main(["bench", "--scale", "tiny", "--no-layers",
                 "--check", str(baseline_path), "--tolerance", "0.9"])
    out = capsys.readouterr().out
    assert code == 0
    assert "check summary:" in out
    assert "0 failed" in out


def test_bench_check_tally_counts_warnings(tmp_path, capsys):
    import json

    baseline_path = tmp_path / "baseline.json"
    assert main(["bench", "--scale", "tiny", "--no-layers",
                 "--output", str(baseline_path)]) == 0
    baseline = json.loads(baseline_path.read_text())
    for numbers in baseline["workloads"].values():
        numbers["records_per_s"] *= 1000.0
    baseline["machine"]["cpu_count"] = 4096  # "different" machine
    baseline_path.write_text(json.dumps(baseline))
    capsys.readouterr()
    code = main(["bench", "--scale", "tiny", "--no-layers",
                 "--check", str(baseline_path)])
    out = capsys.readouterr().out
    assert code == 0
    workloads = len(baseline["workloads"])
    assert f"0 passed, {workloads} warned, 0 failed" in out


def test_count_record_then_replay_roundtrip(tmp_path, capsys):
    log = tmp_path / "run.jsonl"
    code = main(["count", *_SMALL_RUN, "--record", str(log)])
    assert code == 0
    assert "event log recorded" in capsys.readouterr().out
    code = main(["replay", str(log)])
    out = capsys.readouterr().out
    assert code == 0
    assert "replay OK" in out
    assert "recorded fingerprint" in out


def test_replay_missing_log_exits_2(capsys):
    code = main(["replay", "/nonexistent/run.jsonl"])
    assert code == 2
    assert "cannot replay" in capsys.readouterr().err


def test_replay_detects_fingerprint_drift(tmp_path, capsys):
    import json

    log = tmp_path / "run.jsonl"
    assert main(["count", *_SMALL_RUN, "--record", str(log)]) == 0
    lines = log.read_text().splitlines()
    footer = json.loads(lines[-1])
    footer["result_fingerprint"] = "0" * 64
    lines[-1] = json.dumps(footer)
    log.write_text("\n".join(lines) + "\n")
    capsys.readouterr()
    code = main(["replay", str(log)])
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL: result fingerprint drifted" in out


def test_count_export_metrics_writes_snapshots(tmp_path, capsys):
    import json

    metrics = tmp_path / "metrics.jsonl"
    code = main(["count", *_SMALL_RUN, "--export-metrics", str(metrics)])
    assert code == 0
    lines = [json.loads(l) for l in metrics.read_text().splitlines()]
    assert lines
    final = lines[-1]
    assert any(k.startswith("repro_records_total") for k in final["counters"])


def test_trace_topics_prints_event_counts(capsys):
    code = main(["trace", *_SMALL_RUN, "--topics", "migration", "frontier"])
    assert code == 0
    out = capsys.readouterr().out
    assert "bus events by topic" in out
    assert "migration" in out


def test_trace_rejects_unknown_topic(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["trace", "--topics", "bogus"])


def test_list_names_bus_topics(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "bus topics:" in out
    assert "migration" in out
    assert "faults" in out


_MATRIX_SPEC = """
[matrix]
strategy = ["batched", "all-at-once"]

[base]
num_workers = 2
workers_per_process = 2
num_bins = 4
domain = 256
rate = 5000.0
duration_s = 1.0
migrate_at_s = [0.4]

[tolerance]
default = 0.9
"""


def test_matrix_command_writes_report(tmp_path, capsys):
    import json

    spec = tmp_path / "spec.toml"
    spec.write_text(_MATRIX_SPEC)
    output = tmp_path / "BENCH_matrix.json"
    code = main(["matrix", "--spec", str(spec), "--jobs", "0",
                 "--output", str(output)])
    out = capsys.readouterr().out
    assert code == 0
    assert "experiment matrix (2 cells" in out
    report = json.loads(output.read_text())
    assert report["schema"] == "bench-matrix/1"
    assert len(report["cells"]) == 2


def test_matrix_check_passes_and_fails(tmp_path, capsys):
    import json

    spec = tmp_path / "spec.toml"
    spec.write_text(_MATRIX_SPEC)
    baseline = tmp_path / "BENCH_matrix.json"
    assert main(["matrix", "--spec", str(spec), "--jobs", "0",
                 "--output", str(baseline)]) == 0
    capsys.readouterr()
    code = main(["matrix", "--spec", str(spec), "--jobs", "0",
                 "--check", str(baseline)])
    out = capsys.readouterr().out
    assert code == 0
    assert "matrix check passed" in out
    assert "check summary:" in out
    # Inflate the committed numbers: every cell regresses, exit 1.
    report = json.loads(baseline.read_text())
    for row in report["cells"]:
        row["records_per_s"] *= 1000
    baseline.write_text(json.dumps(report))
    code = main(["matrix", "--spec", str(spec), "--jobs", "0",
                 "--check", str(baseline)])
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL: matrix regressed" in out


def test_matrix_rejects_bad_spec(tmp_path, capsys):
    spec = tmp_path / "bad.toml"
    spec.write_text("not a matrix spec [")
    code = main(["matrix", "--spec", str(spec)])
    assert code == 2
    assert "cannot load" in capsys.readouterr().err


# -- elastic membership (repro.cli scale / --autoscale) -------------------------


def test_scale_command_verifies_twin(capsys):
    code = main(["scale", "--verify-twin"])
    assert code == 0
    out = capsys.readouterr().out
    assert "scaling operations" in out
    assert "membership transitions" in out
    assert "cluster state fingerprint" in out
    assert "twin check: fingerprint and record count match" in out
    assert "scaling guarantees hold" in out


def test_count_autoscale_reports_decisions(capsys):
    code = main([
        "count", "--domain", "4096", "--rate", "4000", "--duration", "4",
        "--workers", "6", "--workers-per-process", "2", "--bins", "16",
        "--active", "4", "--autoscale",
        "--scale-out-load", "800", "--scale-in-load", "200",
        "--autoscale-cooldown", "1.5",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "autoscaler decisions" in out
    assert "scale-out" in out


def test_list_names_autoscaler_policies(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "autoscaler policy: threshold" in out


@pytest.mark.parametrize(
    "argv,message",
    [
        (["count", "--workers", "6", "--workers-per-process", "4"],
         "must be divisible by"),
        (["count", "--workers", "6", "--workers-per-process", "2",
          "--active", "9"], "--active"),
        (["count", "--workers", "6", "--workers-per-process", "2",
          "--duration", "6", "--active", "4",
          "--scaling-plan", "banana"], "--scaling-plan"),
        (["count", "--workers", "6", "--workers-per-process", "2",
          "--duration", "6", "--active", "4",
          "--scaling-plan", "leave@2:0"], "worker 0 cannot leave"),
        (["count", "--workers", "6", "--workers-per-process", "2",
          "--duration", "6", "--active", "4",
          "--scaling-plan", "join@1:5"], "lowest standby"),
        (["count", "--workers", "6", "--workers-per-process", "2",
          "--active", "4", "--parallel", "0"], "parallel"),
        (["count", "--workers", "4", "--workers-per-process", "2",
          "--autoscale", "--scale-out-load", "100",
          "--scale-in-load", "200"], "--scale-in-load"),
    ],
)
def test_elastic_arguments_rejected(argv, message, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    assert message in capsys.readouterr().err
