"""Smoke tests: the shipped examples must run and self-check."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart_example():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "OK: counts match a sequential reference." in result.stdout


def test_planned_migration_example():
    result = run_example("planned_migration.py")
    assert result.returncode == 0, result.stderr
    assert "fired exactly at its prepared logical time" in result.stdout


def test_snapshot_recovery_example():
    result = run_example("snapshot_recovery.py")
    assert result.returncode == 0, result.stderr
    assert "snapshot + suffix replay == uninterrupted execution" in result.stdout


@pytest.mark.slow
def test_elastic_rescaling_example():
    result = run_example("elastic_rescaling.py", timeout=600)
    assert result.returncode == 0, result.stderr
    assert "rebalanced the skewed workload live" in result.stdout
