"""Tests for the live metrics exporter (repro.obsv.exporter)."""

import io
import json
import urllib.request

from repro.obsv.exporter import Histogram, MetricsExporter
from repro.runtime_events.bus import TraceBus
from repro.runtime_events.events import (
    TOPIC_FAULTS,
    TOPIC_MIGRATION,
    TOPIC_NETWORK,
    BatchDelivered,
    MessageDropped,
    MessageEnqueued,
    MessageTransmitted,
    MigrationStepOutcome,
)


def _enqueued(size=100.0, at=0.1):
    return MessageEnqueued(src_worker=0, dst_worker=1, size_bytes=size, at=at)


def _transmitted(size=100.0, at=0.2):
    return MessageTransmitted(src_worker=0, dst_worker=1, size_bytes=size, at=at)


def test_histogram_buckets_and_cumulative():
    hist = Histogram()
    hist.observe(2e-4)
    hist.observe(2e-4)
    hist.observe(5.0)
    assert hist.total == 3
    cumulative = dict(hist.cumulative())
    assert cumulative[3e-4] == 2  # both small values land below 3e-4
    assert cumulative[10.0] == 3  # the 5.0 outlier lands in (3, 10]
    assert hist.to_dict()["count"] == 3


def test_counters_and_inflight_gauge():
    bus = TraceBus()
    exporter = MetricsExporter(bus, topics=(TOPIC_NETWORK,))
    bus.publish(_enqueued(size=100.0, at=0.1))
    snap = exporter.snapshot()
    assert snap["counters"]['repro_messages_total{kind="enqueued"}'] == 1.0
    assert snap["gauges"]["repro_network_inflight_bytes"] == 100.0
    bus.publish(_transmitted(size=100.0, at=0.2))
    snap = exporter.snapshot()
    assert snap["gauges"]["repro_network_inflight_bytes"] == 0.0
    assert snap["counters"]["repro_network_bytes_total"] == 100.0
    exporter.close()


def test_dropped_messages_counted_by_reason():
    bus = TraceBus()
    exporter = MetricsExporter(bus, topics=(TOPIC_FAULTS,))
    bus.publish(
        MessageDropped(
            src_worker=0, dst_worker=1, size_bytes=1.0, reason="link", at=0.1
        )
    )
    snap = exporter.snapshot()
    assert snap["counters"]['repro_messages_dropped_total{reason="link"}'] == 1.0
    exporter.close()


def test_jsonl_snapshots_cut_on_simulated_time():
    bus = TraceBus()
    stream = io.StringIO()
    exporter = MetricsExporter(
        bus, topics=(TOPIC_NETWORK,), jsonl=stream, flush_every_s=0.5
    )
    # Events at 0.1 and 0.3 stay inside the first window; 0.6 crosses it.
    bus.publish(_enqueued(at=0.1))
    bus.publish(_enqueued(at=0.3))
    assert stream.getvalue() == ""
    bus.publish(_enqueued(at=0.6))
    lines = [json.loads(l) for l in stream.getvalue().splitlines()]
    assert len(lines) == 1
    assert lines[0]["at"] == 0.6
    exporter.close()  # close() appends the final snapshot
    lines = [json.loads(l) for l in stream.getvalue().splitlines()]
    assert len(lines) == 2


def test_unsubscribed_topics_stay_zero_cost():
    bus = TraceBus()
    exporter = MetricsExporter(bus, topics=(TOPIC_NETWORK,))
    assert bus.wants_network is True
    assert bus.wants_migration is False  # narrow subscription: other
    assert bus.wants_batch is False  # publish sites keep the flag path
    exporter.close()
    assert bus.wants_network is False


def test_migration_step_histogram_and_abandoned_counter():
    bus = TraceBus()
    exporter = MetricsExporter(bus, topics=(TOPIC_MIGRATION,))
    bus.publish(
        MigrationStepOutcome(
            time=1, moves=2, batch_size=2, attempts=1,
            duration_s=0.02, abandoned=False, at=0.1,
        )
    )
    bus.publish(
        MigrationStepOutcome(
            time=2, moves=2, batch_size=2, attempts=3,
            duration_s=0.5, abandoned=True, at=0.2,
        )
    )
    snap = exporter.snapshot()
    hist = snap["histograms"]["repro_migration_step_seconds"]
    assert hist["count"] == 2
    assert snap["counters"]["repro_migration_steps_abandoned_total"] == 1.0
    exporter.close()


def test_prometheus_endpoint_serves_current_registry():
    bus = TraceBus()
    exporter = MetricsExporter(bus)
    port = exporter.serve(port=0)
    bus.publish(
        BatchDelivered(
            worker=3, op=0, channel=None, time=1, records=42,
            size_bytes=336.0, at=0.1,
        )
    )
    body = urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=10
    ).read().decode()
    assert 'repro_records_total{worker="3"} 42' in body
    assert exporter.port == port
    exporter.close()
    assert exporter.port is None


def test_render_prometheus_histogram_has_inf_bucket():
    bus = TraceBus()
    exporter = MetricsExporter(bus, topics=(TOPIC_MIGRATION,))
    bus.publish(
        MigrationStepOutcome(
            time=1, moves=1, batch_size=1, attempts=1,
            duration_s=0.01, abandoned=False, at=0.1,
        )
    )
    text = exporter.render_prometheus()
    assert 'repro_migration_step_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_migration_step_seconds_count 1" in text
    exporter.close()
