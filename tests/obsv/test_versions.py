"""Tests for the consolidated format-version registry (repro.versions)."""

import json

import pytest

from repro import versions
from repro.megaphone import plan_io
from repro.megaphone.migration import make_plan
from repro.megaphone.control import BinnedConfiguration
from repro.versions import (
    BENCH_READ_VERSIONS,
    BENCH_SCHEMA,
    BENCH_SCHEMA_FAMILY,
    EVENT_LOG_READ_VERSIONS,
    EVENT_LOG_VERSION,
    MATRIX_READ_VERSIONS,
    MATRIX_SCHEMA,
    PLAN_FORMAT_VERSION,
    PLAN_READ_VERSIONS,
    check_schema,
    parse_schema,
)


def test_plan_io_reexports_the_registry():
    # plan_io keeps its historical names; they must be the same objects.
    assert plan_io.FORMAT_VERSION is PLAN_FORMAT_VERSION
    assert plan_io.READ_VERSIONS is PLAN_READ_VERSIONS


def test_plan_roundtrip_through_registry_version(tmp_path):
    from repro.megaphone.migration import imbalanced_target

    initial = BinnedConfiguration.round_robin(8, 2)
    plan = make_plan("batched", initial, imbalanced_target(initial), batch_size=2)
    path = tmp_path / "plan.json"
    plan_io.dump_plan(plan, path)
    document = json.loads(path.read_text())
    assert document["version"] in PLAN_READ_VERSIONS
    assert plan_io.load_plan(path) == plan


def test_bench_schema_matches_written_reports():
    from repro.perf import hotpath

    assert BENCH_SCHEMA == "bench-hotpath/2"
    family, version = parse_schema(BENCH_SCHEMA)
    assert family == BENCH_SCHEMA_FAMILY
    assert version in BENCH_READ_VERSIONS
    # The writer embeds the registry tag (not a local literal).
    assert hotpath.BENCH_SCHEMA is BENCH_SCHEMA


def test_matrix_and_event_log_versions_are_readable():
    assert parse_schema(MATRIX_SCHEMA)[1] in MATRIX_READ_VERSIONS
    assert EVENT_LOG_VERSION in EVENT_LOG_READ_VERSIONS


@pytest.mark.parametrize(
    "tag",
    ["", "bench-hotpath", "/2", "bench-hotpath/", "bench-hotpath/two", 2, None],
)
def test_parse_schema_rejects_malformed_tags(tag):
    with pytest.raises(ValueError):
        parse_schema(tag)


def test_check_schema_accepts_and_rejects():
    assert check_schema("bench-hotpath/2", "bench-hotpath", (1, 2)) == 2
    with pytest.raises(ValueError, match="not a"):
        check_schema("bench-matrix/1", "bench-hotpath", (1, 2))
    with pytest.raises(ValueError, match="unsupported"):
        check_schema("bench-hotpath/99", "bench-hotpath", (1, 2))


def test_registry_is_the_single_source_of_truth():
    # Every constant the registry promises exists and is self-consistent.
    for family_tag, read in (
        (versions.BENCH_SCHEMA, versions.BENCH_READ_VERSIONS),
        (versions.MATRIX_SCHEMA, versions.MATRIX_READ_VERSIONS),
    ):
        _, version = parse_schema(family_tag)
        assert version in read
