"""Event-log v2: elastic provenance round-trips and scaling runs replay.

The schema bump to :data:`repro.versions.EVENT_LOG_VERSION` == 2 added the
elastic fields (``active_workers``, ``scaling_plan``, ``autoscale``) to the
config provenance and the ``membership`` topic to the trace.  These tests
pin three guarantees: the provenance dict inverts exactly, a recorded
scaling run replays byte-identically, and v1 logs (which predate elastic
membership) remain readable.
"""

import json

from repro.elastic import AutoscalerConfig, ScalingPlan
from repro.harness.experiment import ExperimentConfig, run_count_experiment
from repro.obsv import read_log_meta, replay_run
from repro.obsv.eventlog import config_from_dict, config_to_dict
from repro.versions import EVENT_LOG_READ_VERSIONS, EVENT_LOG_VERSION


def _scaling_config(**overrides) -> ExperimentConfig:
    cfg = ExperimentConfig(
        num_workers=6,
        workers_per_process=2,
        num_bins=16,
        domain=1 << 12,
        rate=2_000.0,
        duration_s=6.0,
        migrate_at_s=(),
        strategy="fluid",
        active_workers=4,
        scaling_plan=ScalingPlan.parse("join@1.5:4,5;leave@3.5:4,5"),
        fingerprint_state=True,
    )
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def test_schema_version_is_bumped_and_back_readable():
    assert EVENT_LOG_VERSION == 2
    # v1 logs predate elastic membership entirely; they must stay readable.
    assert 1 in EVENT_LOG_READ_VERSIONS


def test_elastic_config_roundtrips_through_provenance_dict():
    cfg = _scaling_config(
        autoscale=AutoscalerConfig(
            scale_out_load=800.0, scale_in_load=200.0, cooldown_s=1.5
        ),
        scaling_plan=None,
    )
    data = config_to_dict(cfg)
    assert data["active_workers"] == 4
    assert data["scaling_plan"] is None
    assert data["autoscale"]["scale_out_load"] == 800.0
    assert config_from_dict(data) == cfg


def test_scaling_plan_serializes_as_its_canonical_spec():
    cfg = _scaling_config()
    data = config_to_dict(cfg)
    assert data["scaling_plan"] == "join@1.5:4,5;leave@3.5:4,5"
    rebuilt = config_from_dict(data)
    assert rebuilt.scaling_plan == cfg.scaling_plan
    assert rebuilt == cfg


def test_recorded_scaling_run_carries_v2_header(tmp_path):
    log = tmp_path / "scale.jsonl"
    run_count_experiment(_scaling_config(record_log=str(log)))
    header, footer = read_log_meta(str(log))
    assert header["version"] == EVENT_LOG_VERSION == 2
    assert header["config"]["scaling_plan"] == "join@1.5:4,5;leave@3.5:4,5"
    # The membership topic made it into the trace: four workers change
    # state twice each (join, activate) plus the drain transitions.
    assert footer["events_by_topic"].get("membership", 0) > 0


def test_scaling_run_replays_byte_identically(tmp_path):
    log = tmp_path / "scale.jsonl"
    run_count_experiment(_scaling_config(record_log=str(log)))
    report = replay_run(str(log))
    assert report.fingerprint_match
    assert report.drifted_topics == []
    assert report.ok


def test_v1_log_without_elastic_fields_still_replays(tmp_path):
    # Record a non-elastic run, then rewrite its header to look like a
    # v1 log: version 1, no elastic config fields.  The reader must
    # accept it and the replay must still verify.
    log = tmp_path / "legacy.jsonl"
    cfg = ExperimentConfig(
        num_workers=2,
        workers_per_process=2,
        num_bins=4,
        domain=256,
        rate=5_000.0,
        duration_s=1.0,
        migrate_at_s=(0.4,),
        strategy="batched",
        batch_size=2,
        record_log=str(log),
    )
    run_count_experiment(cfg)
    lines = log.read_text().splitlines()
    header = json.loads(lines[0])
    header["version"] = 1
    for field in ("active_workers", "scaling_plan", "autoscale"):
        header["config"].pop(field, None)
    lines[0] = json.dumps(header)
    log.write_text("\n".join(lines) + "\n")

    meta, _ = read_log_meta(str(log))
    assert meta["version"] == 1
    report = replay_run(str(log))
    assert report.ok
