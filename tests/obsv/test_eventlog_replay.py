"""Record + deterministic replay tests (repro.obsv.eventlog / .replay)."""

import json

import pytest

from repro.harness.experiment import ExperimentConfig, run_count_experiment
from repro.obsv import EventLogError, read_log_meta, replay_run
from repro.obsv.eventlog import config_from_dict, config_to_dict, read_events


def _small_config(**overrides) -> ExperimentConfig:
    cfg = ExperimentConfig(
        num_workers=2,
        workers_per_process=2,
        num_bins=4,
        domain=256,
        rate=5000.0,
        duration_s=1.0,
        migrate_at_s=(0.4,),
        strategy="batched",
        batch_size=2,
    )
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def test_config_roundtrips_through_provenance_dict():
    cfg = _small_config()
    rebuilt = config_from_dict(config_to_dict(cfg))
    assert rebuilt == cfg


def test_observer_fields_are_stripped_on_read():
    cfg = _small_config(record_log="x.jsonl", export_metrics="-")
    rebuilt = config_from_dict(config_to_dict(cfg))
    # A replayed run must not try to re-record over the original log or
    # re-export the original metrics stream.
    assert rebuilt.record_log is None
    assert rebuilt.export_metrics is None


def test_config_from_dict_rejects_unknown_fields():
    data = config_to_dict(_small_config())
    data["definitely_not_a_field"] = 1
    with pytest.raises(EventLogError, match="unknown"):
        config_from_dict(data)


def test_record_then_replay_reproduces_fingerprint(tmp_path):
    log = tmp_path / "run.jsonl"
    cfg = _small_config(record_log=str(log))
    run_count_experiment(cfg)
    header, footer = read_log_meta(str(log))
    assert header["workload_kind"] == "count"
    assert footer["events_recorded"] > 0
    report = replay_run(str(log))
    assert report.fingerprint_match
    assert report.drifted_topics == []
    assert report.ok


def test_recorded_events_match_footer_count(tmp_path):
    log = tmp_path / "run.jsonl"
    run_count_experiment(_small_config(record_log=str(log)))
    _, footer = read_log_meta(str(log))
    events = list(read_events(str(log)))
    assert len(events) == footer["events_recorded"]
    assert sum(footer["events_by_topic"].values()) == footer["events_recorded"]


def test_chaos_run_replays_byte_identically(tmp_path):
    from repro.chaos.experiment import (
        default_chaos_experiment_config,
        run_chaos_experiment,
    )

    base = tmp_path / "chaos.jsonl"
    cfg = default_chaos_experiment_config(
        duration_s=4.0, record_log=str(base)
    )
    outcome = run_chaos_experiment("crash-restart", "batched", cfg=cfg, seed=3)
    assert outcome.live
    log = tmp_path / "chaos.batched.jsonl"  # per-strategy templating
    report = replay_run(str(log))
    assert report.ok, (
        f"chaos replay drifted: {report.drifted_topics}; "
        f"{report.expected_fingerprint} != {report.actual_fingerprint}"
    )


def test_truncated_log_is_rejected(tmp_path):
    log = tmp_path / "run.jsonl"
    run_count_experiment(_small_config(record_log=str(log)))
    lines = log.read_text().splitlines()
    log.write_text("\n".join(lines[:-1]) + "\n")  # drop the footer
    with pytest.raises(EventLogError, match="footer"):
        read_log_meta(str(log))


def test_unsupported_version_is_rejected(tmp_path):
    log = tmp_path / "run.jsonl"
    run_count_experiment(_small_config(record_log=str(log)))
    lines = log.read_text().splitlines()
    header = json.loads(lines[0])
    header["version"] = 999
    lines[0] = json.dumps(header)
    log.write_text("\n".join(lines) + "\n")
    with pytest.raises(EventLogError, match="version"):
        replay_run(str(log))


def test_tampered_footer_fingerprint_fails_replay(tmp_path):
    log = tmp_path / "run.jsonl"
    run_count_experiment(_small_config(record_log=str(log)))
    lines = log.read_text().splitlines()
    footer = json.loads(lines[-1])
    footer["result_fingerprint"] = "0" * 64
    lines[-1] = json.dumps(footer)
    log.write_text("\n".join(lines) + "\n")
    report = replay_run(str(log))
    assert not report.fingerprint_match
    assert not report.ok


def test_nexmark_run_records_and_replays(tmp_path):
    from repro.nexmark.harness import run_nexmark_experiment

    log = tmp_path / "nexmark.jsonl"
    cfg = _small_config(record_log=str(log))
    run_nexmark_experiment(3, cfg)
    header, _ = read_log_meta(str(log))
    assert header["workload_kind"] == "nexmark"
    assert header["extra"]["query"] == 3
    report = replay_run(str(log))
    assert report.ok


def test_recording_does_not_perturb_the_run(tmp_path):
    """The bus invariant, end to end: recorded and bare runs agree."""
    from repro.parallel.runner import result_fingerprint

    bare = run_count_experiment(_small_config(fingerprint_state=True))
    log = tmp_path / "run.jsonl"
    recorded = run_count_experiment(_small_config(record_log=str(log)))
    assert result_fingerprint(bare) == result_fingerprint(recorded)
