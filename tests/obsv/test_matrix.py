"""Tests for the experiment-matrix runner and its regression gate."""

import json

import pytest

from repro.obsv.matrix import (
    MatrixCell,
    MatrixSpecError,
    check_matrix,
    expand_cells,
    load_spec,
    run_matrix,
    write_matrix_report,
)

SPEC_TOML = """
[matrix]
strategy = ["batched", "all-at-once"]
backend = ["dict"]
workload = ["uniform", "skewed"]

[base]
num_workers = 2
workers_per_process = 2
num_bins = 4
domain = 256
rate = 5000.0
duration_s = 1.0
migrate_at_s = [0.4]

[tolerance]
default = 0.9
"""


@pytest.fixture
def spec(tmp_path):
    path = tmp_path / "spec.toml"
    path.write_text(SPEC_TOML)
    return load_spec(str(path))


def test_load_spec_defaults_missing_axes(spec):
    assert spec["matrix"]["codec"] == ["modeled"]
    assert spec["matrix"]["faults"] == ["none"]
    assert spec["tolerance"]["default"] == 0.9


def test_load_spec_json(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps({"matrix": {"strategy": ["fluid"]}}))
    spec = load_spec(str(path))
    assert spec["matrix"]["strategy"] == ["fluid"]
    assert spec["tolerance"]["default"] == 0.25


@pytest.mark.parametrize(
    "body",
    [
        "x = 1",  # no [matrix] table
        "[matrix]\nstrategy = []",  # empty axis
        "[matrix]\nstrategy = [1]",  # non-string values
        "[matrix]\nstrategy = ['bogus']",  # unknown strategy
        "[matrix]\nbackend = ['bogus']",  # unknown backend
        "[matrix]\nfaults = ['bogus']",  # unknown scenario
        "[matrix]\nstrategy = ['batched']\n[base]\nnope = 1",  # bad base key
        "this is not toml [",  # parse error
    ],
)
def test_bad_specs_are_rejected(tmp_path, body):
    path = tmp_path / "bad.toml"
    path.write_text(body)
    with pytest.raises(MatrixSpecError):
        spec = load_spec(str(path))
        # [base] errors surface when the cell config is built.
        run_matrix(spec, jobs=0)


def test_expand_cells_is_the_cartesian_product(spec):
    cells = expand_cells(spec)
    assert len(cells) == 4  # 2 strategies x 1 backend x 2 workloads
    assert cells[0] == MatrixCell(
        strategy="batched", backend="dict", codec="modeled",
        workload="uniform", faults="none",
    )
    assert cells[0].cell_id == "batched/dict/modeled/uniform/none"


def test_inline_and_forked_runs_agree_on_fingerprints(spec):
    inline = run_matrix(spec, jobs=0)
    forked = run_matrix(spec, jobs=2)
    assert inline["mode"] == "inline"
    assert forked["mode"].startswith("forked/")
    assert all(r["status"] == "ok" for r in inline["cells"])
    by_cell = lambda report: {
        r["cell"]: r["result_fingerprint"] for r in report["cells"]
    }
    assert by_cell(inline) == by_cell(forked)


def test_check_matrix_passes_against_own_baseline(spec, tmp_path):
    report = run_matrix(spec, jobs=0)
    baseline = tmp_path / "BENCH_matrix.json"
    write_matrix_report(report, str(baseline))
    ok, rows = check_matrix(report, str(baseline))
    assert ok
    assert all(r["status"] == "ok" for r in rows)


def test_check_matrix_flags_regression(spec, tmp_path):
    report = run_matrix(spec, jobs=0)
    inflated = json.loads(json.dumps(report))
    for row in inflated["cells"]:
        row["records_per_s"] *= 1000
    baseline = tmp_path / "inflated.json"
    write_matrix_report(inflated, str(baseline))
    ok, rows = check_matrix(report, str(baseline))
    assert not ok
    assert all(r["status"] == "regression" for r in rows)


def test_check_matrix_flags_fingerprint_drift(spec, tmp_path):
    report = run_matrix(spec, jobs=0)
    drifted = json.loads(json.dumps(report))
    drifted["cells"][0]["result_fingerprint"] = "0" * 64
    baseline = tmp_path / "drifted.json"
    write_matrix_report(drifted, str(baseline))
    ok, rows = check_matrix(report, str(baseline))
    assert not ok
    assert rows[0]["status"] == "fingerprint-drift"


def test_check_matrix_downgrades_on_different_machine(spec, tmp_path):
    report = run_matrix(spec, jobs=0)
    other = json.loads(json.dumps(report))
    other["machine"]["cpu_count"] = 99999  # pretend another machine
    for row in other["cells"]:
        row["records_per_s"] *= 1000
    baseline = tmp_path / "other.json"
    write_matrix_report(other, str(baseline))
    ok, rows = check_matrix(report, str(baseline))
    assert ok  # regressions downgrade to warnings cross-machine
    assert all(r["status"] == "cross-machine-warn" for r in rows)
    # Fingerprints also stop gating when the interpreter differs.
    other["machine"]["python"] = "0.0.0"
    other["cells"][0]["result_fingerprint"] = "0" * 64
    write_matrix_report(other, str(baseline))
    ok, rows = check_matrix(report, str(baseline))
    assert ok
    assert rows[0]["status"] == "fingerprint-warn"


def test_check_matrix_marks_new_cells(spec, tmp_path):
    report = run_matrix(spec, jobs=0)
    pruned = json.loads(json.dumps(report))
    pruned["cells"] = pruned["cells"][1:]
    baseline = tmp_path / "pruned.json"
    write_matrix_report(pruned, str(baseline))
    ok, rows = check_matrix(report, str(baseline))
    assert ok  # a new cell is informational, not a failure
    assert rows[0]["status"] == "new"


def test_check_matrix_rejects_wrong_schema(spec, tmp_path):
    report = run_matrix(spec, jobs=0)
    wrong = {"schema": "bench-hotpath/2", "cells": []}
    baseline = tmp_path / "wrong.json"
    baseline.write_text(json.dumps(wrong))
    with pytest.raises(ValueError, match="bench-matrix"):
        check_matrix(report, str(baseline))


def test_fault_cells_carry_chaos_verdicts(tmp_path):
    path = tmp_path / "faults.toml"
    path.write_text(
        """
[matrix]
strategy = ["batched"]
faults = ["none", "crash-restart"]

[base]
num_workers = 4
workers_per_process = 2
num_bins = 16
domain = 4096
rate = 20000.0
duration_s = 4.0
migrate_at_s = [2.0]
batch_size = 4
bytes_per_key = 2048.0
bandwidth_bytes_per_s = 4e6
"""
    )
    spec = load_spec(str(path))
    report = run_matrix(spec, jobs=0)
    rows = {r["cell"]: r for r in report["cells"]}
    plain = rows["batched/dict/modeled/uniform/none"]
    faulty = rows["batched/dict/modeled/uniform/crash-restart"]
    assert "chaos_verdict" not in plain
    assert faulty["status"] == "ok"
    assert faulty["chaos_verdict"] in ("completed", "recovered")


def test_worker_error_is_a_structured_row(spec):
    # An unknown base key passes load_spec (it is validated lazily) and
    # must surface as a per-cell error row, not a crash of the sweep.
    spec["base"]["bogus_field"] = 1
    report = run_matrix(spec, jobs=2)
    assert all(r["status"] == "error" for r in report["cells"])
    assert "ExperimentConfig" in report["cells"][0]["error"]
