"""Tests for declarative scaling plans: parsing and structural validation."""

import pytest

from repro.elastic import ScalingPlan


def test_parse_and_spec_invert_exactly():
    spec = "join@1.5:4,5;leave@3.5:4,5"
    plan = ScalingPlan.parse(spec)
    assert plan.spec() == spec
    assert ScalingPlan.parse(plan.spec()) == plan


def test_parse_normalizes_whitespace_and_sorts_ids():
    plan = ScalingPlan.parse(" join@2:5,4 ; leave@5:5,4 ")
    assert plan.spec() == "join@2:4,5;leave@5:4,5"


def test_parse_empty_spec_is_the_empty_plan():
    assert ScalingPlan.parse("").events == ()


@pytest.mark.parametrize(
    "spec",
    [
        "join@2",             # no worker list
        "grow@2:4",           # unknown action
        "join@x:4",           # bad time
        "join@2:four",        # bad worker id
        "join@2:",            # empty worker list
    ],
)
def test_parse_rejects_malformed_fragments(spec):
    with pytest.raises(ValueError):
        ScalingPlan.parse(spec)


def test_validate_accepts_the_acceptance_scenario():
    plan = ScalingPlan.parse("join@1.5:4,5;leave@3.5:4,5")
    plan.validate(num_workers=6, active_workers=4)


@pytest.mark.parametrize(
    "spec, message",
    [
        ("join@-1:4", "before t=0"),
        ("leave@5:3;join@2:4", "out of order"),
        ("join@2:4,4", "duplicate"),
        ("join@2:9", "outside provisioned range"),
        ("join@2:3", "non-standby"),
        ("join@2:5", "lowest standby"),
        ("leave@2:0,1,2,3", "worker 0 cannot leave"),
        ("leave@2:5", "non-active"),
        ("leave@2:2", "highest active"),
    ],
)
def test_validate_rejects_structural_errors(spec, message):
    plan = ScalingPlan.parse(spec)
    with pytest.raises(ValueError, match=message):
        plan.validate(num_workers=6, active_workers=4)


def test_validate_rejects_draining_every_active_worker():
    plan = ScalingPlan.parse("leave@2:1,2,3")
    with pytest.raises(ValueError):
        # Even without worker 0 in the list the remaining set must stay
        # non-empty once worker 0 is excluded from leaving.
        ScalingPlan.parse("leave@2:0,1,2,3").validate(4, 4)
    # Draining 1..3 leaves worker 0 active: legal.
    plan.validate(num_workers=4, active_workers=4)


def test_retired_workers_do_not_return_to_standby():
    plan = ScalingPlan.parse("join@1:4;leave@2:4;join@3:4")
    with pytest.raises(ValueError):
        plan.validate(num_workers=5, active_workers=4)
    # A fresh standby slot can still join after the drain.
    ScalingPlan.parse("join@1:4;leave@2:4;join@3:5").validate(6, 4)


def test_final_active_tracks_joins_and_leaves():
    plan = ScalingPlan.parse("join@1:4,5;leave@3:5;leave@4:4")
    assert plan.final_active(4) == 4
    assert ScalingPlan.parse("join@1:4,5").final_active(4) == 6
