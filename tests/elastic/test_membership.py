"""Tests for the membership directory's lifecycle state machine."""

import pytest

from repro.elastic import MembershipDirectory, MembershipError


def test_initial_states_split_active_prefix_and_standby():
    directory = MembershipDirectory(6, active_workers=4)
    assert directory.active() == (0, 1, 2, 3)
    assert directory.standby() == (4, 5)
    assert directory.joining() == ()
    assert directory.draining() == ()
    assert directory.retired() == ()


def test_default_active_is_every_provisioned_slot():
    directory = MembershipDirectory(4)
    assert directory.active() == (0, 1, 2, 3)
    assert directory.standby() == ()


def test_full_lifecycle_standby_to_retired():
    directory = MembershipDirectory(2, active_workers=1)
    directory.mark_joining(1)
    assert directory.state_of(1) == "joining"
    directory.mark_active(1)
    assert directory.is_active(1)
    directory.mark_draining(1)
    assert directory.draining() == (1,)
    directory.mark_retired(1)
    assert directory.retired() == (1,)
    assert directory.active() == (0,)


@pytest.mark.parametrize(
    "setup, bad",
    [
        ((), "mark_active"),       # standby -> active skips joining
        ((), "mark_draining"),     # standby -> draining
        ((), "mark_retired"),      # standby -> retired
        (("mark_joining",), "mark_retired"),  # joining -> retired
        (("mark_joining", "mark_active", "mark_draining", "mark_retired"),
         "mark_joining"),          # retirement is terminal
    ],
)
def test_illegal_transitions_raise(setup, bad):
    directory = MembershipDirectory(2, active_workers=1)
    for step in setup:
        getattr(directory, step)(1)
    with pytest.raises(MembershipError):
        getattr(directory, bad)(1)


def test_active_worker_cannot_rejoin():
    directory = MembershipDirectory(2)
    with pytest.raises(MembershipError):
        directory.mark_joining(0)


def test_out_of_range_worker_rejected():
    directory = MembershipDirectory(2, active_workers=1)
    with pytest.raises(MembershipError):
        directory.mark_joining(2)


def test_bad_construction_rejected():
    with pytest.raises(MembershipError):
        MembershipDirectory(0)
    with pytest.raises(MembershipError):
        MembershipDirectory(4, active_workers=0)
    with pytest.raises(MembershipError):
        MembershipDirectory(4, active_workers=5)


def test_epoch_increases_monotonically_per_transition():
    directory = MembershipDirectory(3, active_workers=1)
    assert directory.epoch == 0
    directory.mark_joining(1)
    directory.mark_joining(2)
    directory.mark_active(1)
    assert directory.epoch == 3
    assert [h[1:] for h in directory.history] == [
        (1, "standby", "joining"),
        (2, "standby", "joining"),
        (1, "joining", "active"),
    ]


def test_view_reflects_current_membership():
    directory = MembershipDirectory(4, active_workers=2)
    directory.mark_joining(2)
    view = directory.view()
    assert view.epoch == 1
    assert view.active == (0, 1)
    assert view.joining == (2,)
    assert view.draining == ()
