"""Tests for the autoscaler's threshold policy, driven sample by sample.

``Autoscaler.decide`` is separated from the simulation scheduling exactly
so these tests can feed it mean-load samples directly: no runtime, a
recording stub for the coordinator.
"""

import pytest

from repro.elastic import Autoscaler, AutoscalerConfig, MembershipDirectory


class StubCoordinator:
    """Records scale requests and settles the directory immediately."""

    def __init__(self, directory):
        self.directory = directory
        self.busy = False
        self.calls = []

    def scale_out(self, workers):
        self.calls.append(("out", tuple(workers)))
        for w in workers:
            self.directory.mark_joining(w)
            self.directory.mark_active(w)

    def scale_in(self, workers):
        self.calls.append(("in", tuple(workers)))
        for w in workers:
            self.directory.mark_draining(w)
            self.directory.mark_retired(w)


def make(config=None, num_workers=6, active_workers=4):
    directory = MembershipDirectory(num_workers, active_workers=active_workers)
    coordinator = StubCoordinator(directory)
    scaler = Autoscaler(
        runtime=None,
        telemetry=None,
        directory=directory,
        coordinator=coordinator,
        config=config
        or AutoscalerConfig(
            scale_out_load=1000.0,
            scale_in_load=200.0,
            trigger_samples=2,
            cooldown_s=3.0,
        ),
    )
    return scaler, coordinator, directory


def test_single_spike_does_not_trigger():
    scaler, coordinator, _ = make()
    assert scaler.decide(5000.0, now=0.0) == "none"
    assert scaler.decide(500.0, now=0.5) == "none"  # band resets the streak
    assert scaler.decide(5000.0, now=1.0) == "none"
    assert coordinator.calls == []


def test_consecutive_high_samples_scale_out_lowest_standby():
    scaler, coordinator, directory = make()
    assert scaler.decide(2000.0, now=0.0) == "none"
    assert scaler.decide(2000.0, now=0.5) == "scale-out"
    assert coordinator.calls == [("out", (4,))]
    assert directory.active() == (0, 1, 2, 3, 4)


def test_consecutive_low_samples_scale_in_highest_active():
    scaler, coordinator, directory = make()
    scaler.decide(100.0, now=0.0)
    assert scaler.decide(100.0, now=0.5) == "scale-in"
    assert coordinator.calls == [("in", (3,))]
    assert directory.active() == (0, 1, 2)


def test_hysteresis_band_resets_both_streaks():
    scaler, coordinator, _ = make()
    scaler.decide(2000.0, now=0.0)
    scaler.decide(500.0, now=0.5)   # inside the band: streak cleared
    scaler.decide(100.0, now=1.0)
    scaler.decide(500.0, now=1.5)   # clears the low streak too
    scaler.decide(100.0, now=2.0)
    assert coordinator.calls == []


def test_cooldown_suppresses_as_hold():
    scaler, coordinator, _ = make()
    scaler.decide(2000.0, now=0.0)
    assert scaler.decide(2000.0, now=0.5) == "scale-out"
    scaler.decide(2000.0, now=1.0)
    assert scaler.decide(2000.0, now=1.5) == "hold"  # within cooldown_s=3
    holds = [d for d in scaler.decisions if d.action == "hold"]
    assert holds and holds[-1].reason == "cooldown"
    # After the cooldown the same pressure acts again.
    scaler.decide(2000.0, now=4.0)
    assert scaler.decide(2000.0, now=4.5) == "scale-out"
    assert coordinator.calls == [("out", (4,)), ("out", (5,))]


def test_busy_coordinator_suppresses_as_hold():
    scaler, coordinator, _ = make()
    coordinator.busy = True
    scaler.decide(2000.0, now=0.0)
    assert scaler.decide(2000.0, now=0.5) == "hold"
    assert scaler.decisions[-1].reason == "busy"
    assert coordinator.calls == []


def test_bounds_no_standby_and_min_workers():
    scaler, _, _ = make(num_workers=4, active_workers=4)
    scaler.decide(2000.0, now=0.0)
    assert scaler.decide(2000.0, now=0.5) == "hold"
    assert scaler.decisions[-1].reason in ("at-max", "no-standby")

    config = AutoscalerConfig(
        scale_out_load=1000.0, scale_in_load=200.0,
        trigger_samples=1, cooldown_s=0.0, min_workers=1,
    )
    scaler, coordinator, directory = make(
        config=config, num_workers=2, active_workers=2
    )
    assert scaler.decide(0.0, now=0.0) == "scale-in"
    assert directory.active() == (0,)
    assert scaler.decide(0.0, now=1.0) == "hold"
    assert scaler.decisions[-1].reason == "at-min"


def test_max_workers_caps_scale_out():
    config = AutoscalerConfig(
        scale_out_load=1000.0, scale_in_load=200.0,
        trigger_samples=1, cooldown_s=0.0, max_workers=4,
    )
    scaler, coordinator, _ = make(config=config)
    assert scaler.decide(2000.0, now=0.0) == "hold"
    assert scaler.decisions[-1].reason == "at-max"
    assert coordinator.calls == []


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(policy="nope"),
        dict(scale_out_load=100.0, scale_in_load=100.0),  # no hysteresis band
        dict(min_workers=0),
        dict(max_workers=9),
        dict(step=0),
        dict(decide_s=0.0),
    ],
)
def test_config_validation_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        AutoscalerConfig(**kwargs).validate(num_workers=6)


def test_config_validation_accepts_defaults():
    AutoscalerConfig().validate(num_workers=6)
