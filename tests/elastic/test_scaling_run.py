"""End-to-end elastic runs: the zero-lost-records / clean-drain guarantees.

The acceptance scenario: provision 6 slots, start 4 active, join workers
4-5 mid-run, drain them again — and require the run to be indistinguishable
(record count, global state fingerprint) from a static-membership twin,
with every drained worker ending empty.
"""

import dataclasses

import pytest

from repro.elastic import AutoscalerConfig, ScalingPlan
from repro.harness.experiment import ExperimentConfig, run_count_experiment


def elastic_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        num_workers=6,
        workers_per_process=2,
        num_bins=16,
        domain=1 << 12,
        rate=2_000.0,
        duration_s=6.0,
        migrate_at_s=(),
        strategy="fluid",
        active_workers=4,
        scaling_plan=ScalingPlan.parse("join@1.5:4,5;leave@3.5:4,5"),
        fingerprint_state=True,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.mark.parametrize("backend", ["dict", "wal"])
def test_scale_out_and_drain_match_static_twin(backend):
    cfg = elastic_config(state_backend=backend)
    result = run_count_experiment(cfg)
    twin = run_count_experiment(
        dataclasses.replace(cfg, scaling_plan=None)
    )

    # Zero lost or duplicated records: same injected count, and the
    # owner-independent digest over every bin's final state is identical.
    assert result.records_injected == twin.records_injected == 12_000
    assert result.cluster_fingerprint is not None
    assert result.cluster_fingerprint == twin.cluster_fingerprint

    # Both scaling operations completed and the drain left nothing behind.
    report = result.scaling
    assert [op.kind for op in report.operations] == ["join", "drain"]
    assert all(op.completed_at is not None for op in report.operations)
    assert report.residual_bins == 0

    # Workers 4 and 5 walked the full lifecycle and ended retired.
    transitions = [(w, prev, state) for _at, w, prev, state in result.membership]
    for w in (4, 5):
        assert (w, "standby", "joining") in transitions
        assert (w, "joining", "active") in transitions
        assert (w, "active", "draining") in transitions
        assert (w, "draining", "retired") in transitions


def test_elastic_run_is_deterministic():
    first = run_count_experiment(elastic_config())
    second = run_count_experiment(elastic_config())
    assert first.cluster_fingerprint == second.cluster_fingerprint
    assert first.records_injected == second.records_injected
    assert first.membership == second.membership


def test_scale_out_only_ends_with_six_active():
    cfg = elastic_config(scaling_plan=ScalingPlan.parse("join@1.5:4,5"))
    result = run_count_experiment(cfg)
    assert [op.kind for op in result.scaling.operations] == ["join"]
    states = {w: "active" for w in range(4)}
    for _at, w, _prev, state in result.membership:
        states[w] = state
    assert all(states[w] == "active" for w in range(6))


def test_autoscaler_closed_loop_scales_out_under_load():
    cfg = elastic_config(
        scaling_plan=None,
        rate=4_000.0,
        autoscale=AutoscalerConfig(
            scale_out_load=800.0,
            scale_in_load=200.0,
            cooldown_s=1.5,
        ),
    )
    result = run_count_experiment(cfg)
    actions = [d.action for d in result.autoscale_decisions]
    assert "scale-out" in actions
    assert all(op.completed_at is not None for op in result.scaling.operations)
    assert result.scaling.residual_bins == 0


def test_config_validation_rejects_elastic_misuse():
    with pytest.raises(ValueError):
        # 6 % 4 != 0: ragged process groups.
        ExperimentConfig(num_workers=6, workers_per_process=4)
    with pytest.raises(ValueError):
        elastic_config(active_workers=0)
    with pytest.raises(ValueError):
        elastic_config(parallel=0)
    with pytest.raises(ValueError):
        elastic_config(native=True)
    with pytest.raises(ValueError):
        # Joining a worker that is not the lowest standby id.
        elastic_config(scaling_plan=ScalingPlan.parse("join@1.5:5"))
