"""Elastic scaling under fault injection: joins survive a process crash.

The scaling coordinator routes its migrations through the resilient
controller when the run carries a ChaosConfig, so a crash landing inside
the join window must not lose the operation: the retry/reconcile path
finishes seeding the joiners and the drain still empties its workers.
"""

import dataclasses

from repro.chaos.plan import ChaosConfig, FaultPlan, ProcessCrash
from repro.elastic import ScalingPlan
from repro.harness.experiment import ExperimentConfig, run_count_experiment


def chaos_elastic_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        num_workers=6,
        workers_per_process=2,
        num_bins=16,
        domain=1 << 12,
        rate=2_000.0,
        duration_s=6.0,
        migrate_at_s=(),
        strategy="fluid",
        active_workers=4,
        scaling_plan=ScalingPlan.parse("join@1.5:4,5;leave@3.5:4,5"),
        fingerprint_state=True,
        # The join runs ~1.50-1.53s; crash process 1 (workers 2-3) right
        # inside that window and bring it back shortly after.
        chaos=ChaosConfig(
            plan=FaultPlan(
                seed=0,
                crashes=(
                    ProcessCrash(at_s=1.51, process=1, restart_after_s=0.8),
                ),
            ),
        ),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_crash_during_join_still_completes_scaling():
    result = run_count_experiment(chaos_elastic_config())
    assert result.chaos_verdict in ("completed", "recovered")
    report = result.scaling
    assert [op.kind for op in report.operations] == ["join", "drain"]
    assert all(op.completed_at is not None for op in report.operations)
    assert report.residual_bins == 0
    # The full lifecycle still lands in retirement for both leavers.
    final = {}
    for _at, w, _prev, state in result.membership:
        final[w] = state
    assert final[4] == "retired" and final[5] == "retired"


def test_chaos_elastic_run_is_deterministic():
    first = run_count_experiment(chaos_elastic_config())
    second = run_count_experiment(chaos_elastic_config())
    assert first.cluster_fingerprint == second.cluster_fingerprint
    assert first.records_injected == second.records_injected


def test_crash_during_drain_still_empties_leavers():
    cfg = chaos_elastic_config()
    cfg = dataclasses.replace(
        cfg,
        chaos=ChaosConfig(
            plan=FaultPlan(
                seed=0,
                crashes=(
                    ProcessCrash(at_s=3.51, process=1, restart_after_s=0.8),
                ),
            ),
        ),
    )
    result = run_count_experiment(cfg)
    assert result.chaos_verdict in ("completed", "recovered")
    assert result.scaling.residual_bins == 0
    assert all(
        op.completed_at is not None for op in result.scaling.operations
    )
