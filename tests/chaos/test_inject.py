"""Tests for the chaos injector: hooks, membership, and determinism."""

import pytest

from repro.chaos.inject import ChaosInjector, FaultLog
from repro.chaos.plan import FaultPlan, LinkFault, ProcessCrash, WorkerStall
from repro.runtime_events.events import (
    MessageDropped,
    ProcessCrashed,
    ProcessRestarted,
    WorkerStallEnded,
    WorkerStallStarted,
)
from tests.helpers import make_dataflow


def build_runtime(num_workers=4, workers_per_process=2):
    df = make_dataflow(
        num_workers=num_workers, workers_per_process=workers_per_process
    )
    stream, group = df.new_input("data")
    seen = []
    stream.exchange(lambda x: x).sink(lambda w, t, recs: seen.extend(recs))
    runtime = df.build()
    return runtime, group, seen


def test_install_hooks_cluster_and_workers():
    runtime, group, _ = build_runtime()
    injector = ChaosInjector(runtime, FaultPlan())
    injector.install()
    assert runtime.cluster.chaos is injector
    assert all(w.chaos is injector for w in runtime.workers)
    with pytest.raises(RuntimeError, match="already installed"):
        injector.install()


def test_plan_validated_against_runtime_shape():
    runtime, _, _ = build_runtime(num_workers=4, workers_per_process=2)
    with pytest.raises(ValueError):
        ChaosInjector(
            runtime, FaultPlan(crashes=(ProcessCrash(at_s=0.1, process=7),))
        )


def test_partition_drops_without_consuming_rng():
    runtime, _, _ = build_runtime()
    plan = FaultPlan(
        link_faults=(LinkFault(at_s=0.0, duration_s=10.0, drop_prob=1.0),)
    )
    injector = ChaosInjector(runtime, plan)
    injector.install()
    runtime.sim.run(until=0.01)
    rng_state = injector._rng.getstate()
    assert injector.drop_reason(0, 1) == "partition"
    assert injector.drop_reason(1, 0) == "partition"
    # Same-process traffic never crosses a link, so it is never dropped.
    assert injector.drop_reason(1, 1) is None
    # Full partitions are decided without randomness (determinism contract).
    assert injector._rng.getstate() == rng_state


def test_lossy_drop_sequence_is_seeded():
    def sequence(seed, calls=200):
        runtime, _, _ = build_runtime()
        plan = FaultPlan(
            seed=seed,
            link_faults=(LinkFault(at_s=0.0, duration_s=10.0, drop_prob=0.4),),
        )
        injector = ChaosInjector(runtime, plan)
        injector.install()
        runtime.sim.run(until=0.01)
        return [injector.drop_reason(0, 1) for _ in range(calls)]

    first = sequence(seed=7)
    assert sequence(seed=7) == first
    assert sequence(seed=8) != first
    assert "loss" in first and None in first


def test_link_degradation_composes_and_expires():
    runtime, _, _ = build_runtime()
    plan = FaultPlan(
        link_faults=(
            LinkFault(
                at_s=0.0, duration_s=1.0, bandwidth_factor=0.5,
                extra_latency_s=0.1,
            ),
            LinkFault(
                at_s=0.0, duration_s=1.0, bandwidth_factor=0.5,
                extra_latency_s=0.2,
            ),
        )
    )
    injector = ChaosInjector(runtime, plan)
    injector.install()
    runtime.sim.run(until=0.5)
    factor, extra = injector.link_degradation(0, 1)
    assert factor == pytest.approx(0.25)
    assert extra == pytest.approx(0.3)
    runtime.sim.run(until=2.0)
    assert injector.link_degradation(0, 1) == (1.0, 0.0)


def test_stall_window_and_cost_multiplier():
    runtime, _, _ = build_runtime()
    plan = FaultPlan(
        stalls=(
            WorkerStall(at_s=0.1, duration_s=0.4, worker=0, slowdown=0.0),
            WorkerStall(at_s=0.1, duration_s=0.4, worker=1, slowdown=3.0),
        )
    )
    injector = ChaosInjector(runtime, plan)
    injector.install()
    log = FaultLog(runtime.sim.trace)
    observed = {}

    def probe():
        observed["stalled_until"] = injector.stalled_until(0)
        observed["multiplier"] = injector.cost_multiplier(1)

    runtime.sim.schedule_at(0.3, probe)
    runtime.sim.run(until=1.0)
    assert observed["stalled_until"] == pytest.approx(0.5)
    assert observed["multiplier"] == pytest.approx(3.0)
    # Outside the window both hooks are identity.
    assert injector.stalled_until(0) == 0.0
    assert injector.cost_multiplier(1) == 1.0
    assert log.count(WorkerStallStarted) == 2
    assert log.count(WorkerStallEnded) == 2


def test_crash_membership_inputs_and_restart():
    runtime, group, _ = build_runtime()
    plan = FaultPlan(
        crashes=(ProcessCrash(at_s=0.1, process=1, restart_after_s=0.4),)
    )
    injector = ChaosInjector(runtime, plan)
    injector.install()
    log = FaultLog(runtime.sim.trace)
    changes = []
    injector.on_membership_change(lambda kind, p, ws: changes.append((kind, p, ws)))

    runtime.sim.run(until=0.2)
    assert injector.is_dead(2) and injector.is_dead(3)
    assert injector.dead_workers() == [2, 3]
    assert injector.live_workers() == [0, 1]
    # The dead process's input handles are closed so the cluster-wide input
    # frontier can advance past it.
    assert group.handle(2).epoch is None
    assert group.handle(3).epoch is None
    assert group.handle(0).epoch is not None
    assert changes == [("crash", 1, (2, 3))]

    runtime.sim.run(until=1.0)
    assert not injector.is_dead(2)
    assert injector.live_workers() == [0, 1, 2, 3]
    assert changes == [("crash", 1, (2, 3)), ("restart", 1, (2, 3))]
    assert log.count(ProcessCrashed) == 1
    assert log.count(ProcessRestarted) == 1


def test_crash_drops_inflight_messages_but_frontier_drains():
    runtime, group, seen = build_runtime()
    log = FaultLog(runtime.sim.trace)
    plan = FaultPlan(crashes=(ProcessCrash(at_s=0.0005, process=1),))
    injector = ChaosInjector(runtime, plan)
    injector.install()

    def make_tick(epoch):
        def tick():
            for w, handle in enumerate(group.handles()):
                if handle.epoch is None:
                    continue
                handle.send(epoch, list(range(8)))
                handle.advance_to(epoch + 1)

        return tick

    for epoch in range(10):
        runtime.sim.schedule_at(epoch * 0.0002, make_tick(epoch))
    runtime.sim.schedule_at(0.002, group.close_all)
    runtime.run_to_quiescence()
    # Messages to the dead workers were dropped with progress compensation,
    # so the computation still drains instead of wedging ...
    assert runtime.idle()
    assert log.count(MessageDropped) > 0
    # ... while the surviving workers kept receiving their share.
    assert seen
