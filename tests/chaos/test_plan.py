"""Tests for fault-plan validation."""

import pytest

from repro.chaos.plan import (
    ANY_PROCESS,
    ChaosConfig,
    FaultPlan,
    LinkFault,
    ProcessCrash,
    WorkerStall,
)


def test_empty_plan_is_empty_and_valid():
    plan = FaultPlan()
    assert plan.empty
    plan.validate(num_processes=2, num_workers=4)


def test_populated_plan_is_not_empty():
    plan = FaultPlan(crashes=(ProcessCrash(at_s=1.0, process=0),))
    assert not plan.empty


def test_crash_process_out_of_range():
    plan = FaultPlan(crashes=(ProcessCrash(at_s=1.0, process=2),))
    with pytest.raises(ValueError, match="targets process 2"):
        plan.validate(num_processes=2, num_workers=4)


def test_crash_negative_onset():
    plan = FaultPlan(crashes=(ProcessCrash(at_s=-0.5, process=0),))
    with pytest.raises(ValueError, match="at_s"):
        plan.validate(num_processes=2, num_workers=4)


def test_crash_nonpositive_restart():
    plan = FaultPlan(
        crashes=(ProcessCrash(at_s=1.0, process=0, restart_after_s=0.0),)
    )
    with pytest.raises(ValueError, match="restart_after_s"):
        plan.validate(num_processes=2, num_workers=4)


def test_double_crash_of_one_process_rejected():
    plan = FaultPlan(
        crashes=(
            ProcessCrash(at_s=1.0, process=0),
            ProcessCrash(at_s=2.0, process=0),
        )
    )
    with pytest.raises(ValueError, match="at most one crash"):
        plan.validate(num_processes=2, num_workers=4)


def test_link_fault_endpoint_out_of_range():
    plan = FaultPlan(
        link_faults=(LinkFault(at_s=1.0, duration_s=1.0, src_process=5),)
    )
    with pytest.raises(ValueError, match="src_process=5"):
        plan.validate(num_processes=2, num_workers=4)


def test_link_fault_wildcard_endpoints_accepted():
    plan = FaultPlan(
        link_faults=(
            LinkFault(
                at_s=1.0,
                duration_s=1.0,
                src_process=ANY_PROCESS,
                dst_process=ANY_PROCESS,
                drop_prob=0.5,
            ),
        )
    )
    plan.validate(num_processes=2, num_workers=4)


@pytest.mark.parametrize(
    "kwargs,message",
    [
        (dict(duration_s=0.0), "duration"),
        (dict(duration_s=1.0, drop_prob=1.5), "drop_prob"),
        (dict(duration_s=1.0, drop_prob=-0.1), "drop_prob"),
        (dict(duration_s=1.0, bandwidth_factor=0.0), "bandwidth_factor"),
        (dict(duration_s=1.0, extra_latency_s=-1.0), "extra_latency_s"),
    ],
)
def test_link_fault_bad_parameters(kwargs, message):
    plan = FaultPlan(link_faults=(LinkFault(at_s=1.0, **kwargs),))
    with pytest.raises(ValueError, match=message):
        plan.validate(num_processes=2, num_workers=4)


def test_stall_worker_out_of_range():
    plan = FaultPlan(stalls=(WorkerStall(at_s=1.0, duration_s=1.0, worker=9),))
    with pytest.raises(ValueError, match="targets worker 9"):
        plan.validate(num_processes=2, num_workers=4)


def test_stall_bad_window_and_slowdown():
    plan = FaultPlan(stalls=(WorkerStall(at_s=1.0, duration_s=0.0, worker=0),))
    with pytest.raises(ValueError, match="duration"):
        plan.validate(num_processes=2, num_workers=4)
    plan = FaultPlan(
        stalls=(WorkerStall(at_s=1.0, duration_s=1.0, worker=0, slowdown=-1.0),)
    )
    with pytest.raises(ValueError, match="slowdown"):
        plan.validate(num_processes=2, num_workers=4)


def test_chaos_config_defaults():
    cfg = ChaosConfig()
    assert cfg.plan.empty
    assert cfg.retry is None
    assert cfg.watchdog is None
    assert cfg.snapshot_at_s is None
