"""Tests for the liveness watchdog: verdicts, recovery, diagnosis."""

import pytest

from repro.chaos.watchdog import LivenessWatchdog, StallDiagnosis, WatchdogConfig
from repro.runtime_events.events import WatchdogRecovered, WatchdogStalled
from repro.chaos.inject import FaultLog
from tests.helpers import make_dataflow


class FakeProbe:
    """A controllable stand-in for the S output probe."""

    def __init__(self):
        self._callbacks = []
        self._done = False
        self._frontier = (0,)

    def on_advance(self, callback):
        self._callbacks.append(callback)

    def done(self):
        return self._done

    def frontier(self):
        return self._frontier

    def advance(self, frontier=(1,)):
        self._frontier = frontier
        for callback in list(self._callbacks):
            callback(frontier)

    def finish(self):
        self._done = True


def build():
    df = make_dataflow(num_workers=2, workers_per_process=2)
    stream, group = df.new_input("data")
    stream.sink(lambda w, t, recs: None)
    runtime = df.build()
    group.close_all()
    return runtime


def test_config_validation():
    with pytest.raises(ValueError):
        WatchdogConfig(poll_interval_s=0.0)
    with pytest.raises(ValueError):
        WatchdogConfig(stall_after_s=0.0)
    with pytest.raises(ValueError):
        WatchdogConfig(stall_after_s=5.0, give_up_after_s=1.0)


def test_clean_run_completes():
    runtime = build()
    probe = FakeProbe()
    watchdog = LivenessWatchdog(
        runtime, probe, WatchdogConfig(0.05, 0.2, 1.0)
    )
    watchdog.start()
    runtime.sim.schedule_at(0.04, probe.finish)
    runtime.sim.run(until=2.0)
    assert watchdog.verdict == "completed"
    assert not watchdog.failed
    assert watchdog.recoveries == 0


def test_stall_then_advance_is_recovered():
    runtime = build()
    log = FaultLog(runtime.sim.trace)
    probe = FakeProbe()
    nudged = []
    watchdog = LivenessWatchdog(
        runtime,
        probe,
        WatchdogConfig(0.05, 0.2, 5.0),
        on_stall=nudged.append,
    )
    watchdog.start()
    # Nothing advances until 0.5s: well past the 0.2s stall threshold.
    runtime.sim.schedule_at(0.5, probe.advance)
    runtime.sim.schedule_at(0.6, probe.finish)
    runtime.sim.run(until=2.0)
    assert watchdog.verdict == "recovered"
    assert watchdog.recoveries == 1
    assert not watchdog.failed
    # The stall hook fired with a structured diagnosis.
    assert len(nudged) == 1
    assert isinstance(nudged[0], StallDiagnosis)
    assert log.count(WatchdogStalled) == 1
    assert log.count(WatchdogRecovered) == 1


def test_give_up_produces_stalled_verdict_and_diagnosis():
    runtime = build()
    probe = FakeProbe()
    watchdog = LivenessWatchdog(
        runtime, probe, WatchdogConfig(0.05, 0.2, 0.5)
    )
    watchdog.start()
    # Keep the clock moving without ever advancing the probe.
    runtime.sim.schedule_at(1.5, lambda: None)
    runtime.sim.run(until=2.0)
    assert watchdog.verdict == "stalled"
    assert watchdog.failed
    assert watchdog.diagnoses
    diagnosis = watchdog.diagnoses[-1]
    assert diagnosis.frontier == (0,)
    assert diagnosis.last_advance_at == 0.0
    assert "stalled" in diagnosis.describe()


def test_advances_keep_watchdog_quiet():
    runtime = build()
    log = FaultLog(runtime.sim.trace)
    probe = FakeProbe()
    watchdog = LivenessWatchdog(
        runtime, probe, WatchdogConfig(0.05, 0.2, 1.0)
    )
    watchdog.start()
    for i in range(1, 10):
        runtime.sim.schedule_at(i * 0.1, lambda i=i: probe.advance((i,)))
    runtime.sim.schedule_at(1.0, probe.finish)
    runtime.sim.run(until=3.0)
    assert watchdog.verdict == "completed"
    assert log.count(WatchdogStalled) == 0
