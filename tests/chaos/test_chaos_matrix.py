"""Acceptance tests: every strategy survives faults, deterministically.

These are the subsystem's reason to exist: under a seeded fault plan that
crashes the migration-target process mid-step, all four migration
strategies must still drain (Completion holds, possibly via recovery), and
the whole run must be a pure function of (plan, seed).
"""

import pytest

from repro.chaos.experiment import (
    SCENARIOS,
    default_chaos_experiment_config,
    run_chaos_experiment,
    run_chaos_matrix,
    scenario_chaos,
)
from repro.chaos.plan import ChaosConfig, FaultPlan
from repro.megaphone.migration import STRATEGIES


@pytest.mark.slow
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_every_strategy_survives_crash_during_migration(strategy):
    run = run_chaos_experiment("crash-target", strategy)
    assert run.live, (
        f"{strategy} wedged under crash-target: "
        + "\n".join(d.describe() for d in run.result.chaos_diagnoses)
    )
    # The crash actually disturbed the run (messages to dead workers lost).
    assert run.dropped_messages > 0


@pytest.mark.slow
@pytest.mark.parametrize("scenario", [s for s in SCENARIOS if s != "crash-target"])
def test_remaining_scenarios_survive_with_batched(scenario):
    run = run_chaos_experiment(scenario, "batched")
    assert run.live, run.verdict


def _fingerprint(run):
    log = run.result.fault_log
    return {
        "verdict": run.verdict,
        "recoveries": run.recoveries,
        "abandoned": run.abandoned_steps,
        "restored": run.restored_bins,
        "faults": [(type(e).__name__, e.at) for e in log.faults],
        "recovery": [(type(e).__name__, e.at) for e in log.recovery],
        "injected": run.result.records_injected,
        "timeline": run.result.timeline.series(),
    }


@pytest.mark.slow
def test_same_seed_same_plan_is_deterministic():
    first = run_chaos_experiment("lossy", "fluid", seed=3)
    second = run_chaos_experiment("lossy", "fluid", seed=3)
    assert _fingerprint(first) == _fingerprint(second)


@pytest.mark.slow
def test_different_seed_changes_lossy_outcome():
    first = run_chaos_experiment("lossy", "fluid", seed=3)
    second = run_chaos_experiment("lossy", "fluid", seed=4)
    # Both must stay live; the loss pattern (hence the fault log) differs.
    assert first.live and second.live
    first_log = first.result.fault_log
    second_log = second.result.fault_log
    assert [e.at for e in first_log.faults] != [e.at for e in second_log.faults]


@pytest.mark.slow
def test_empty_plan_behaves_like_no_chaos():
    from dataclasses import replace

    from repro.harness.experiment import run_count_experiment

    cfg = default_chaos_experiment_config(duration_s=4.0)
    baseline = run_count_experiment(replace(cfg, chaos=None))
    empty = run_count_experiment(
        replace(cfg, chaos=ChaosConfig(plan=FaultPlan()))
    )
    # No faults to inject: the dataflow's observable behavior is unchanged.
    assert empty.chaos_verdict == "completed"
    assert empty.chaos_recoveries == 0
    assert empty.abandoned_steps == 0
    assert not empty.fault_log.faults
    assert empty.records_injected == baseline.records_injected
    assert empty.timeline.series() == baseline.timeline.series()
    assert len(empty.migrations) == len(baseline.migrations)
    for ours, theirs in zip(empty.migrations, baseline.migrations):
        assert len(ours.steps) == len(theirs.steps)


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        scenario_chaos("meteor-strike", default_chaos_experiment_config())


@pytest.mark.slow
def test_matrix_runs_all_strategies():
    results = run_chaos_matrix("stall")
    assert [r.strategy for r in results] == list(STRATEGIES)
    assert all(r.live for r in results)
