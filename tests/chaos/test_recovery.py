"""Tests for the configuration ledger and crash/restart recovery."""

import pytest

from repro.chaos.recovery import ConfigurationLedger
from repro.megaphone.control import BinnedConfiguration, ControlInst


def test_ledger_tracks_control_steps():
    initial = BinnedConfiguration.round_robin(8, 2)
    ledger = ConfigurationLedger(initial)
    assert ledger.current is initial
    assert ledger.history == [initial]

    ledger.apply([ControlInst(bin=0, worker=1), ControlInst(bin=2, worker=1)])
    assert ledger.current.worker_of(0) == 1
    assert ledger.current.worker_of(2) == 1
    assert len(ledger.history) == 2
    assert 0 in ledger.bins_of(1)

    # Empty steps are no-ops (no phantom history entries).
    ledger.apply([])
    assert len(ledger.history) == 2


def test_ledger_converges_over_many_steps():
    initial = BinnedConfiguration.round_robin(8, 4)
    target = BinnedConfiguration(tuple((w + 1) % 4 for w in initial.assignment))
    ledger = ConfigurationLedger(initial)
    for inst in initial.moved_bins(target):
        ledger.apply([inst])
    assert ledger.current.assignment == target.assignment
    assert len(ledger.history) == 1 + len(initial.moved_bins(target))


@pytest.mark.slow
def test_crash_restart_restores_snapshot_state():
    from repro.chaos.experiment import run_chaos_experiment
    from repro.runtime_events.events import ProcessCrashed, ProcessRestarted

    run = run_chaos_experiment("crash-restart", "batched", restart_after_s=1.0)
    assert run.live, run.verdict
    # The restarted process was reseeded from the mid-run snapshot.
    assert run.restored_bins > 0
    log = run.result.fault_log
    assert log.count(ProcessCrashed) == 1
    assert log.count(ProcessRestarted) == 1


@pytest.mark.slow
def test_crash_without_restart_retargets_bins_to_survivors():
    from repro.chaos.experiment import (
        default_chaos_experiment_config,
        migration_target_process,
        run_chaos_experiment,
    )
    from repro.runtime_events.events import StateReinstalled, WorkerExcluded

    cfg = default_chaos_experiment_config()
    crashed = migration_target_process(cfg)
    run = run_chaos_experiment("crash-target", "batched", cfg=cfg)
    assert run.live, run.verdict
    log = run.result.fault_log
    # Orphaned bins were reassigned away from the dead workers ...
    assert any(type(e) is WorkerExcluded for e in log.recovery)
    # ... and their snapshot state was installed on survivors only.
    dead = set(cfg.workers_per_process * crashed + i
               for i in range(cfg.workers_per_process))
    reinstalls = [e for e in log.recovery if type(e) is StateReinstalled]
    assert reinstalls
    assert all(e.worker not in dead for e in reinstalls)
    assert run.restored_bins > 0
