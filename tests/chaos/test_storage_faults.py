"""Storage faults under chaos: torn writes, lost tails, durable recovery.

The acceptance line: a seeded crash mid-migration on the wal backend with a
torn final write and a lost unsynced tail recovers state whose fingerprint
is byte-identical to a fault-free run at the same fsync horizon.
"""

import hashlib

import pytest

from repro.chaos.experiment import (
    default_chaos_experiment_config,
    run_chaos_experiment,
)
from repro.chaos.recovery import store_fingerprint
from repro.megaphone.bins import BinStore
from repro.runtime_events.events import StorageFaultReport
from repro.state.wal import WalRegistry

EMPTY_FINGERPRINT = hashlib.sha256().hexdigest()


def _wal_cfg(**overrides):
    return default_chaos_experiment_config(state_backend="wal", **overrides)


# -- end to end ---------------------------------------------------------------


@pytest.mark.slow
def test_crash_storage_recovers_and_reports_damage():
    run = run_chaos_experiment("crash-storage", "batched", cfg=_wal_cfg(), seed=3)
    assert run.live, run.verdict
    faults = run.result.storage_faults
    assert faults, "durable recovery found no storage damage to report"
    for report in faults:
        assert report.torn_frame  # the scenario tears the final write
        assert report.truncated_bytes > 0  # ...and recovery repaired it
        assert report.bins_recovered > 0  # the rest of the log replayed
    # The reports also went out on the faults topic.
    on_bus = [
        e for e in run.result.fault_log.faults if type(e) is StorageFaultReport
    ]
    assert {(r.worker, r.at) for r in on_bus} == {
        (r.worker, r.at) for r in faults
    }
    assert run.result.recovered_fingerprints


@pytest.mark.slow
def test_storage_damage_does_not_change_recovered_state():
    """Faulted vs clean-storage crash: identical recovered fingerprints."""
    faulted = run_chaos_experiment(
        "crash-storage", "batched", cfg=_wal_cfg(), seed=3
    )
    clean = run_chaos_experiment(
        "crash-restart", "batched", cfg=_wal_cfg(), seed=3
    )
    assert faulted.live and clean.live
    assert faulted.result.recovered_fingerprints == (
        clean.result.recovered_fingerprints
    )
    # Only the faulted run saw damage.
    assert faulted.result.storage_faults
    assert not clean.result.storage_faults


@pytest.mark.slow
def test_crash_storage_is_deterministic():
    def signature():
        run = run_chaos_experiment(
            "crash-storage", "batched", cfg=_wal_cfg(), seed=7
        )
        return (
            run.verdict,
            run.result.recovered_fingerprints,
            [
                (r.worker, r.torn_frame, r.truncated_bytes, r.frames_replayed)
                for r in run.result.storage_faults
            ],
        )

    assert signature() == signature()


@pytest.mark.slow
@pytest.mark.parametrize("backend", ["dict", "tiered", "wal"])
@pytest.mark.parametrize("reference_routing", [False, True])
def test_crash_restart_matrix_across_backends(backend, reference_routing):
    cfg = default_chaos_experiment_config(
        state_backend=backend, reference_routing=reference_routing
    )
    run = run_chaos_experiment("crash-restart", "batched", cfg=cfg, seed=0)
    assert run.live, f"{backend}/ref={reference_routing}: {run.verdict}"


@pytest.mark.slow
@pytest.mark.parametrize("backend", ["dict", "tiered", "wal"])
def test_crash_storage_matrix_across_backends(backend):
    # On in-memory backends crash-storage degrades to plain crash-restart;
    # on wal it must still hold Completion with a damaged log.
    cfg = default_chaos_experiment_config(state_backend=backend)
    run = run_chaos_experiment("crash-storage", "batched", cfg=cfg, seed=1)
    assert run.live, f"{backend}: {run.verdict}"


# -- the fingerprint criterion, mid-migration, store level --------------------


def _apply_traffic(store, bins, rounds):
    """Deterministic writes with per-batch commit (fsync on every batch)."""
    for r in range(rounds):
        for bin_id in bins:
            state = store.get(bin_id).state
            state[f"k{r % 13}"] = r * 31 + bin_id
            store.note_applied(bin_id, 1)


def _mid_migration_store(registry, crash):
    """A worker mid-migration: one bin shipped out, one installed, traffic.

    With ``crash`` the store then suffers torn-write + lost-tail damage and
    is rebuilt from its log; otherwise it is returned as-is.  Fault-free
    and crashed twins end at the same fsync horizon, so their fingerprints
    must match byte for byte.
    """
    store = BinStore(
        num_bins=8,
        state_factory=dict,
        worker_id=0,
        backend="wal",
        backend_options={"wal_registry": registry, "sync_every": 1},
    )
    for bin_id in (0, 1, 2):
        store.create(bin_id)
    _apply_traffic(store, (0, 1, 2), rounds=20)
    # Mid-migration: bin 2 leaves, bin 5 arrives from another worker.
    donor = BinStore(
        num_bins=8,
        state_factory=dict,
        worker_id=9,
        backend="wal",
        backend_options={"wal_registry": WalRegistry()},
    )
    donor.create(5)
    donor.get(5).state["from"] = 9
    inbound = donor.extract(5)
    inbound.fence = (5, 0)
    store.extract(2)
    store.install(inbound)
    _apply_traffic(store, (0, 1, 5), rounds=5)
    if not crash:
        return store
    # Writes past the fsync horizon (no note_applied): the crash destroys
    # them, pulling the recovered state back to exactly the horizon the
    # fault-free twin stopped at.
    store.get(0).state["volatile"] = -1
    store.get(5).state["volatile"] = -2
    registry.apply_crash_faults(
        [0], torn_write=True, lose_unsynced_tail=True, seed=42
    )
    return BinStore(
        num_bins=8,
        state_factory=dict,
        worker_id=0,
        backend="wal",
        backend_options={"wal_registry": registry, "sync_every": 1},
    )


def test_mid_migration_crash_fingerprint_matches_fault_free_run():
    recovered = _mid_migration_store(WalRegistry(), crash=True)
    fault_free = _mid_migration_store(WalRegistry(), crash=False)
    lhs = store_fingerprint(recovered)
    rhs = store_fingerprint(fault_free)
    assert lhs == rhs
    assert lhs != EMPTY_FINGERPRINT  # the stores hold real state
    assert sorted(recovered.resident_bins()) == [0, 1, 5]
    # The damage was real and detected.
    recovery = recovered.backend.last_recovery
    assert recovery is not None
    assert recovery.torn_frame
    assert recovery.lost_tail_bytes >= 0
    assert recovery.truncated_bytes > 0
