"""Tests for the per-domain simulator's deterministic event ordering."""

import pytest

from repro.parallel.engine import DomainSimulator


def test_remote_fires_before_local_at_equal_time():
    sim = DomainSimulator()
    order = []
    sim.schedule_at(1.0, lambda: order.append("local"))
    sim.inject_remote(1.0, src_domain=0, src_seq=0, callback=lambda: order.append("remote"))
    sim.run()
    assert order == ["remote", "local"]


def test_remote_injections_order_by_source_then_seq():
    sim = DomainSimulator()
    order = []
    # Inserted deliberately out of (src_domain, src_seq) order.
    sim.inject_remote(1.0, 2, 0, lambda: order.append("d2s0"))
    sim.inject_remote(1.0, 1, 1, lambda: order.append("d1s1"))
    sim.inject_remote(1.0, 1, 0, lambda: order.append("d1s0"))
    sim.run()
    assert order == ["d1s0", "d1s1", "d2s0"]


def test_local_events_preserve_schedule_order():
    sim = DomainSimulator()
    order = []
    sim.schedule_at(1.0, lambda: order.append("a"))
    sim.schedule_fast_at(1.0, lambda: order.append("b"))
    sim.schedule_at(1.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_injection_in_past_is_a_lookahead_violation():
    sim = DomainSimulator()
    sim.schedule_at(2.0, lambda: None)
    sim.run()
    assert sim.now == 2.0
    with pytest.raises(ValueError, match="violates lookahead"):
        sim.inject_remote(1.0, 0, 0, lambda: None)


def test_run_below_fires_strictly_below_bound_only():
    sim = DomainSimulator()
    fired = []
    sim.schedule_at(1.0, lambda: fired.append(1.0))
    sim.schedule_at(2.0, lambda: fired.append(2.0))
    sim.schedule_at(3.0, lambda: fired.append(3.0))
    n = sim.run_below(2.0)
    assert n == 1
    assert fired == [1.0]
    # The clock does NOT advance to the bound: an event at exactly 2.0 can
    # still be injected remotely after this window.
    assert sim.now == 1.0
    sim.inject_remote(2.0, 0, 0, lambda: fired.append("remote@2"))
    sim.run_below(2.5)
    assert fired == [1.0, "remote@2", 2.0]


def test_schedule_in_past_still_raises():
    sim = DomainSimulator()
    sim.schedule_at(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_fast_at(0.5, lambda: None)
