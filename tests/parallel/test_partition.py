"""Unit tests for the worker -> domain shard partition."""

import pytest

from repro.parallel.partition import ShardPartition


def test_even_partition():
    p = ShardPartition(num_workers=8, workers_per_process=2)
    assert p.num_domains == 4
    assert [p.domain_of(w) for w in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]
    assert list(p.workers_of(0)) == [0, 1]
    assert list(p.workers_of(3)) == [6, 7]
    assert list(p.domains()) == [0, 1, 2, 3]


def test_ragged_tail_is_its_own_domain():
    p = ShardPartition(num_workers=5, workers_per_process=2)
    assert p.num_domains == 3
    assert list(p.workers_of(2)) == [4]
    assert p.domain_of(4) == 2


def test_single_domain():
    p = ShardPartition(num_workers=4, workers_per_process=8)
    assert p.num_domains == 1
    assert list(p.workers_of(0)) == [0, 1, 2, 3]


def test_partition_covers_all_workers_exactly_once():
    p = ShardPartition(num_workers=13, workers_per_process=3)
    covered = [w for d in p.domains() for w in p.workers_of(d)]
    assert covered == list(range(13))
    for d in p.domains():
        for w in p.workers_of(d):
            assert p.domain_of(w) == d


def test_validation():
    with pytest.raises(ValueError):
        ShardPartition(num_workers=0, workers_per_process=2)
    with pytest.raises(ValueError):
        ShardPartition(num_workers=4, workers_per_process=0)
    p = ShardPartition(num_workers=4, workers_per_process=2)
    with pytest.raises(ValueError):
        p.domain_of(4)
    with pytest.raises(ValueError):
        p.domain_of(-1)
    with pytest.raises(ValueError):
        p.workers_of(2)


def test_matches_cluster_process_layout():
    """The cluster's simulated processes ARE the shard partition."""
    from repro.sim.engine import Simulator
    from repro.sim.network import Cluster

    cluster = Cluster(Simulator(), num_workers=5, workers_per_process=2)
    p = cluster.partition
    assert p.num_domains == len(cluster.processes)
    for proc in cluster.processes:
        assert proc.worker_ids == list(p.workers_of(proc.index))
    for w in range(5):
        assert cluster.process_of(w).index == p.domain_of(w)
