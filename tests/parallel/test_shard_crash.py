"""A dead shard surfaces as a structured error, never a hang; and configs
the sharded engine cannot honor are rejected before any fork."""

from dataclasses import replace

import pytest

from repro.harness.experiment import ExperimentConfig, run_count_experiment
from repro.parallel.runner import ParallelConfigError, validate_parallel_config
from repro.parallel.supervisor import ShardCrashed


def smoke_cfg(**overrides):
    cfg = ExperimentConfig(
        num_workers=4,
        workers_per_process=2,
        num_bins=16,
        domain=1 << 12,
        rate=1500.0,
        duration_s=1.5,
        migrate_at_s=(0.6,),
        strategy="batched",
        batch_size=4,
        network_latency_s=10e-3,
    )
    return replace(cfg, **overrides)


def test_shard_crash_mid_run_raises_structured_error(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_CRASH_AT", "5")
    with pytest.raises(ShardCrashed) as excinfo:
        run_count_experiment(smoke_cfg(parallel=2))
    err = excinfo.value
    assert err.shard == 0
    assert err.round_no >= 5
    assert "shard 0 failed during synchronization round" in str(err)


def test_crash_during_handshake(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_CRASH_AT", "1")
    with pytest.raises(ShardCrashed):
        run_count_experiment(smoke_cfg(parallel=2))


def test_crash_leaves_engine_reusable(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_CRASH_AT", "3")
    with pytest.raises(ShardCrashed):
        run_count_experiment(smoke_cfg(parallel=2))
    monkeypatch.delenv("REPRO_PARALLEL_CRASH_AT")
    result = run_count_experiment(smoke_cfg(parallel=2))
    assert result.records_injected > 0


@pytest.mark.parametrize(
    "overrides, label",
    [
        ({"sample_memory": True}, "memory sampling"),
        ({"collect_trace": True}, "trace collection"),
        ({"native": True}, "native"),
    ],
)
def test_unsupported_flags_rejected_before_forking(overrides, label):
    with pytest.raises(ParallelConfigError):
        run_count_experiment(smoke_cfg(parallel=0, **overrides))


def test_negative_parallel_rejected():
    with pytest.raises(ParallelConfigError, match=">= 0"):
        validate_parallel_config(smoke_cfg(parallel=-1))


def test_serial_config_passes_validation():
    validate_parallel_config(smoke_cfg())  # parallel=None: nothing to check
