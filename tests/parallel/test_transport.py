"""Tests for the shared-memory ring and the cross-shard payload codec."""

import pytest

from repro.parallel.domain import RemoteData
from repro.parallel.transport import ShmCodec, ShmRing, shm_supported
from repro.runtime_events.columns import ColumnBatch, numpy_active
from repro.runtime_events.items import DestinationBatch

np = pytest.importorskip("numpy") if shm_supported() else None

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="shm data plane needs numpy"
)


@pytest.fixture
def ring():
    r = ShmRing(256)
    yield r
    r.close()
    r.unlink()


def _entry(records, src=0, dst=1):
    return RemoteData(
        dst_domain=dst,
        delivery=1.0,
        src_seq=0,
        src_domain=src,
        channel_index=0,
        time=0,
        records=records,
        size_bytes=0,
        src_worker=0,
        dst_worker=2,
    )


# -- ShmRing ---------------------------------------------------------------


def test_ring_roundtrip(ring):
    ref = ring.write(b"hello world")
    assert ref is not None
    assert ring.read(ref) == b"hello world"


def test_ring_full_returns_none_and_ack_releases(ring):
    first = ring.write(b"x" * 200)
    assert first is not None
    assert ring.write(b"y" * 100) is None  # would overflow
    ring.ack(first.offset + first.length)
    ref = ring.write(b"y" * 100)
    assert ref is not None
    assert ring.read(ref) == b"y" * 100


def test_ring_wraparound_pads_to_boundary(ring):
    # Fill to offset 200, release, then write 100 bytes: the payload cannot
    # straddle the physical boundary at 256, so it pads and starts at 256.
    first = ring.write(b"a" * 200)
    ring.ack(first.offset + first.length)
    ref = ring.write(b"b" * 100)
    assert ref.offset == 256  # monotonic offset, physical position 0
    assert ring.read(ref) == b"b" * 100


def test_ring_write_all_rolls_back_when_full(ring):
    head_before = ring.head
    assert ring.write_all([b"a" * 100, b"b" * 100, b"c" * 100]) is None
    assert ring.head == head_before  # no partial allocation survives
    refs = ring.write_all([b"a" * 100, b"b" * 100])
    assert refs is not None
    assert [ring.read(r) for r in refs] == [b"a" * 100, b"b" * 100]


def test_ring_oversized_payload_rejected(ring):
    assert ring.write(b"z" * 512) is None


# -- ShmCodec --------------------------------------------------------------


def _codec_pair(capacity=1 << 16):
    ring = ShmRing(capacity)
    writer = ShmCodec({(0, 1): ring})
    reader = ShmCodec({(0, 1): ring})
    return ring, writer, reader


def test_codec_column_batch_roundtrip():
    if not numpy_active():
        pytest.skip("columnar representation inactive")
    ring, writer, reader = _codec_pair()
    try:
        batch = ColumnBatch(
            np.arange(64, dtype=np.int64), np.ones(64, dtype=np.int64)
        )
        entry = _entry(batch)
        writer.encode_entry(entry)
        assert writer.encoded == 1
        assert type(entry.records) is not ColumnBatch  # envelope stand-in
        reader.decode_entry(entry)
        out = entry.records
        assert type(out) is ColumnBatch
        assert np.array_equal(out.keys, np.arange(64))
        assert np.array_equal(out.vals, np.ones(64))
    finally:
        ring.close()
        ring.unlink()


def test_codec_destination_batch_roundtrip():
    if not numpy_active():
        pytest.skip("columnar representation inactive")
    ring, writer, reader = _codec_pair()
    try:
        columns = ColumnBatch(
            np.arange(8, dtype=np.int64), np.arange(8, dtype=np.int64)
        )
        dest = DestinationBatch(
            dst=3,
            count=8,
            bins=None,
            bin_ids=np.arange(8, dtype=np.int64),
            columns=columns,
            tag=7,
        )
        entry = _entry([dest])
        writer.encode_entry(entry)
        assert writer.encoded == 1
        reader.decode_entry(entry)
        [out] = entry.records
        assert type(out) is DestinationBatch
        assert out.dst == 3 and out.count == 8 and out.tag == 7
        assert np.array_equal(out.bin_ids, np.arange(8))
        assert np.array_equal(out.columns.keys, np.arange(8))
    finally:
        ring.close()
        ring.unlink()


def test_codec_falls_back_when_ring_full():
    ring, writer, reader = _codec_pair(capacity=64)
    try:
        big = ColumnBatch(
            np.arange(1024, dtype=np.int64), np.arange(1024, dtype=np.int64)
        )
        entry = _entry(big)
        writer.encode_entry(entry)
        assert writer.fallback == 1
        assert entry.records is big  # untouched: plain pickle path
        reader.decode_entry(entry)  # decode of a non-envelope is a no-op
        assert entry.records is big
    finally:
        ring.close()
        ring.unlink()


def test_codec_ignores_pairs_without_ring():
    _, writer, _ = _codec_pair()
    entry = _entry(["plain"], src=2, dst=3)  # no (2, 3) ring
    writer.encode_entry(entry)
    assert writer.encoded == 0 and writer.fallback == 0
    assert entry.records == ["plain"]


def test_codec_ack_relay_releases_writer_space():
    ring, writer, reader = _codec_pair(capacity=2048)
    try:
        batch = ColumnBatch(
            np.arange(64, dtype=np.int64), np.arange(64, dtype=np.int64)
        )
        entry = _entry(batch)
        writer.encode_entry(entry)
        reader.decode_entry(entry)
        acks = reader.take_acks()
        assert acks == {(0, 1): ring.head}
        assert reader.take_acks() == {}  # drained
        writer.apply_acks(acks)
        assert ring.tail == ring.head  # space fully released
    finally:
        ring.close()
        ring.unlink()
