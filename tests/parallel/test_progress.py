"""Tests for the sharded progress-tracker views and broadcast batching."""

from repro.parallel.progress import CAP, MSG, DomainTracker, SlackAntichain
from repro.timely.graph import GraphBuilder, Pipeline


class _Noop:
    pass


def chain_graph(n_ops=3):
    graph = GraphBuilder()
    graph.add_operator("source", 0, 1, lambda w: _Noop(), is_source=True)
    for i in range(1, n_ops):
        graph.add_operator(f"op{i}", 1, 1, lambda w: _Noop())
        graph.connect(i - 1, 0, i, 0, Pipeline())
    return graph


# -- SlackAntichain --------------------------------------------------------


def test_slack_antichain_tolerates_negative_counts():
    chain = SlackAntichain()
    # Consume seen before the matching send (third-party view skew).
    assert chain.update(5, -1) is False  # 0 -> -1: positives unchanged
    assert chain.is_empty()
    assert chain.frontier().is_empty()
    assert chain.total() == 0
    # The matching send arrives: -1 -> 0, still no positive timestamp.
    assert chain.update(5, +1) is False
    assert chain.is_empty()


def test_slack_antichain_positive_transitions_signal_change():
    chain = SlackAntichain()
    assert chain.update(3, +1) is True  # 0 -> 1: became positive
    assert chain.frontier().elements() == [3]
    assert chain.total() == 1
    assert chain.update(3, +1) is False  # 1 -> 2: still positive
    assert chain.update(3, -2) is True  # 2 -> 0: no longer positive
    assert chain.is_empty()


def test_slack_antichain_masks_negative_from_frontier():
    chain = SlackAntichain()
    chain.update(1, -1)
    chain.update(7, +1)
    assert chain.frontier().elements() == [7]
    assert chain.total() == 1


# -- DomainTracker ---------------------------------------------------------


def _clock(value):
    box = {"now": value}
    return box, (lambda: box["now"])


def test_local_accounting_matches_base_tracker_and_logs():
    box, clock = _clock(0.0)
    tracker = DomainTracker(chain_graph(), clock=clock)
    tracker.capability_update(0, 5, +1)
    assert tracker.output_frontier(0).elements() == [5]
    tracker.message_sent(0, 3)
    assert tracker.input_frontier(1, 0).elements() == [3]
    batches = tracker.take_update_batches(quantum=0.010)
    # Same generation -> same delivery quantum, one atomic batch.
    assert len(batches) == 1
    delivery, batch = batches[0]
    assert delivery >= 0.010
    assert set(batch) == {(CAP, 0, 5, 1), (MSG, 0, 3, 1)}
    # The log drained.
    assert tracker.take_update_batches(quantum=0.010) == []


def test_batches_net_coalesce_within_a_quantum():
    box, clock = _clock(0.0)
    tracker = DomainTracker(chain_graph(), clock=clock)
    tracker.capability_update(0, 5, +1)
    tracker.message_sent(0, 3)
    tracker.message_consumed(0, 3)  # cancels the send within the quantum
    [(_, batch)] = tracker.take_update_batches(quantum=1.0)
    assert batch == ((CAP, 0, 5, 1),)


def test_batches_split_by_quantum_with_monotone_delivery():
    box, clock = _clock(0.0)
    tracker = DomainTracker(chain_graph(), clock=clock)
    tracker.capability_update(0, 1, +1)
    box["now"] = 0.025
    tracker.capability_update(0, 2, +1)
    batches = tracker.take_update_batches(quantum=0.010)
    assert len(batches) == 2
    deliveries = [d for d, _ in batches]
    assert deliveries == sorted(deliveries)
    for (delivery, _), gen in zip(batches, (0.0, 0.025)):
        assert delivery >= gen + 0.010


def test_seed_capability_is_not_broadcast():
    box, clock = _clock(0.0)
    tracker = DomainTracker(chain_graph(), clock=clock)
    tracker.seed_capability(0, 0, +1)
    assert tracker.output_frontier(0).elements() == [0]
    assert tracker.take_update_batches(quantum=0.010) == []


def test_apply_remote_mirrors_sender_accounting():
    box, clock = _clock(0.0)
    sender = DomainTracker(chain_graph(), clock=clock)
    receiver = DomainTracker(chain_graph(), clock=clock)
    sender.capability_update(0, 5, +1)
    sender.message_sent(0, 3)
    for _, batch in sender.take_update_batches(quantum=0.010):
        receiver.apply_remote(batch)
    assert receiver.output_frontier(0).elements() == [5]
    assert receiver.input_frontier(1, 0).elements() == [3]
    # Applying a remote batch logs nothing (no broadcast echo).
    assert receiver.take_update_batches(quantum=0.010) == []


def test_apply_remote_consume_before_send_does_not_raise():
    box, clock = _clock(0.0)
    receiver = DomainTracker(chain_graph(), clock=clock)
    receiver.seed_capability(0, 10, +1)
    # A consume from domain A lands before the matching send from domain B.
    receiver.apply_remote([(MSG, 0, 3, -1)])
    assert receiver.input_frontier(1, 0).elements() == [10]
    receiver.apply_remote([(MSG, 0, 3, +1)])
    assert receiver.input_frontier(1, 0).elements() == [10]
