"""Determinism pin: every shard count replays the identical simulation.

The contract under test (DESIGN.md §14): for any strategy and state
backend, ``--parallel N`` produces byte-identical routing/state
fingerprints, identical event counts, and an identical latency timeline
for every N — including the in-process N=0 sharded reference — and the
sharded engine is logically equivalent to the legacy serial engine (same
final per-worker state, same records).
"""

import pytest

from dataclasses import replace

from repro.harness.experiment import ExperimentConfig, run_count_experiment
from repro.parallel.runner import result_fingerprint

STRATEGIES = ("all-at-once", "fluid", "batched", "optimized")
BACKENDS = ("dict", "wal")


def smoke_cfg(**overrides):
    cfg = ExperimentConfig(
        num_workers=4,
        workers_per_process=2,
        num_bins=16,
        domain=1 << 12,
        rate=1500.0,
        duration_s=1.5,
        migrate_at_s=(0.6,),
        strategy="batched",
        batch_size=4,
        # Sharded runs need window-scale latency; 10ms keeps the round
        # count (duration / lookahead) in the low hundreds.
        network_latency_s=10e-3,
    )
    return replace(cfg, **overrides)


def fingerprint_for(parallel, **overrides):
    result = run_count_experiment(smoke_cfg(parallel=parallel, **overrides))
    return result_fingerprint(result), result


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_forked_matches_sharded_reference(strategy, backend):
    ref_fp, ref = fingerprint_for(0, strategy=strategy, state_backend=backend)
    fork_fp, fork = fingerprint_for(2, strategy=strategy, state_backend=backend)
    assert fork_fp == ref_fp
    assert fork.records_injected == ref.records_injected > 0
    assert fork.sim_events == ref.sim_events
    assert fork.state_fingerprints == ref.state_fingerprints
    assert fork.parallel["mode"] == "fork"
    assert ref.parallel["mode"] == "local"
    assert fork.parallel["rounds"] == ref.parallel["rounds"] > 0


@pytest.mark.parametrize("shards", (1, 4))
def test_any_shard_count_is_byte_identical(shards):
    ref_fp, _ = fingerprint_for(0)
    fork_fp, fork = fingerprint_for(shards)
    assert fork_fp == ref_fp
    # Children never exceed the domain count.
    assert fork.parallel["children"] == min(shards, 2)


@pytest.mark.parametrize("backend", BACKENDS)
def test_sharded_is_logically_equivalent_to_legacy_serial(backend):
    """Same final state and record counts as the legacy serial engine.

    The sharded engine distributes progress tracking, so its event trace
    differs from the legacy centralized tracker by design; what must agree
    is everything the simulation *computes*: the records processed and the
    final per-worker stores.
    """
    serial = run_count_experiment(
        smoke_cfg(state_backend=backend, fingerprint_state=True)
    )
    sharded = run_count_experiment(
        smoke_cfg(state_backend=backend, parallel=0)
    )
    assert serial.records_injected == sharded.records_injected > 0
    assert serial.state_fingerprints == sharded.state_fingerprints
    assert len(serial.state_fingerprints) == 4


def test_migrations_complete_and_timeline_populated():
    _, result = fingerprint_for(2)
    assert result.migrations and result.migrations[0].steps
    assert all(
        step.completed_at is not None
        for migration in result.migrations
        for step in migration.steps
    )
    assert sum(stats.count for stats in result.timeline.series()) > 0
