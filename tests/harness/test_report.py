"""Tests for the reporting helpers."""

from repro.harness.report import (
    format_bytes,
    format_count,
    format_duration,
    format_latency,
    log_range,
    print_ccdf,
    print_table,
    print_timeline,
)
from repro.harness.latency import LatencyTimeline


def test_format_latency_ranges():
    assert format_latency(None) == "-"
    assert format_latency(0.250) == "250 ms"
    assert format_latency(0.0042) == "4.20 ms"
    assert format_latency(0.000123) == "0.123 ms"


def test_format_bytes():
    assert format_bytes(512) == "512.0 B"
    assert format_bytes(2048) == "2.0 KiB"
    assert format_bytes(3 * 1024**3) == "3.0 GiB"


def test_format_duration():
    assert format_duration(None) == "-"
    assert format_duration(2.5) == "2.50 s"
    assert format_duration(0.0042) == "4.2 ms"


def test_format_count():
    assert format_count(4e6) == "4M"
    assert format_count(2.5e9) == "2.5G"
    assert format_count(16000) == "16k"
    assert format_count(12) == "12"


def test_print_table_alignment():
    lines = []
    print_table("t", ["a", "long_header"], [("x", 1), ("yy", 22)], out=lines.append)
    assert lines[0] == "\n== t =="
    header = lines[1]
    assert "a" in header and "long_header" in header
    # All rows share the separator width.
    assert len(lines[2]) == len(header)


def test_print_timeline_and_ccdf_smoke():
    timeline = LatencyTimeline()
    for i in range(10):
        timeline.record(i * 0.25, 0.001 * (i + 1))
    lines = []
    print_timeline("tl", timeline.series(), out=lines.append, every=2)
    assert any("time [s]" in line for line in lines)
    lines = []
    print_ccdf("ccdf", timeline.overall.ccdf(), out=lines.append)
    assert any("CCDF" in line for line in lines)


def test_log_range():
    assert log_range(1, 16, 2) == [1, 2, 4, 8, 16]
    assert log_range(1, 1, 10) == [1]
