"""DictBackend must be byte-identical to the seed's raw-dict bin state.

The fingerprints below were captured on the pre-backend code with the exact
config in :func:`_config`.  The backend refactor routes every state access
through ``repro.state``, so these runs reproducing the hashes bit-for-bit is
the proof that the default path changed representation, not behavior: same
latency series, same memory samples, same migration timings, same simulator
event count, for every migration strategy.

If a change legitimately alters simulation behavior, recapture the hashes
and say so in the commit; an accidental diff here is a regression.
"""

import hashlib

import pytest

from repro.harness.experiment import ExperimentConfig, run_count_experiment

GOLDEN_LATENCY = {
    "all-at-once": "c9d366d35da0d8ce71d6146550e3c43755773edebb2e6f644aee47e5d81e5de7",
    "fluid": "0e37ef5923a3e8fca78ba65f1a203ca449ac593f21ac7561e1e64bafadaf9de7",
    "batched": "27871c7183db13d8a6cd1648a98888aeed61fdc9bb6c301a36f3fdc7a1489edb",
    "optimized": "76b68215c2130d39ce7876592607f61cab72cac5e6c695b4ae85bbed76f6abbf",
}
# The memory timeline does not depend on the strategy's step granularity at
# this sampling period: all four strategies share one fingerprint.
GOLDEN_MEMORY = "41a81a41ff945db1b82efae40b3a476f41faa959aee22c82947846055ee9e859"
GOLDEN_MIGRATION = {
    "all-at-once": (1.0003054881999998, 1),
    "fluid": (1.0701951384000001, 8),
    "batched": (1.0102170268000001, 2),
    "optimized": (1.0301937634, 4),
}
GOLDEN_SIM_EVENTS = {
    "all-at-once": 26953,
    "fluid": 27130,
    "batched": 26979,
    "optimized": 27033,
}
GOLDEN_RECORDS = 20000


def _config(strategy: str) -> ExperimentConfig:
    return ExperimentConfig(
        num_workers=4,
        workers_per_process=2,
        num_bins=32,
        rate=8_000.0,
        duration_s=2.5,
        granularity_ms=10,
        migrate_at_s=(1.0,),
        strategy=strategy,
        batch_size=4,
        seed=7,
        domain=1 << 14,
        variant="hash",
        sample_memory=True,
        memory_sample_s=0.25,
    )


def _latency_fingerprint(res) -> str:
    series = tuple(
        (s.start_s, s.count, s.max_s, s.p50_s, s.p99_s)
        for s in res.timeline.series()
    )
    return hashlib.sha256(repr(series).encode()).hexdigest()


def _memory_fingerprint(res) -> str:
    # rss_bytes moved from float to int in the backend refactor; normalize
    # so the hash still compares against the float-era capture.
    samples = tuple(
        (round(x.time, 6), float(x.rss_bytes))
        for tl in res.memory
        for x in tl.samples
    )
    return hashlib.sha256(repr(samples).encode()).hexdigest()


@pytest.mark.parametrize("strategy", sorted(GOLDEN_LATENCY))
def test_dict_backend_reproduces_seed_fingerprints(strategy):
    cfg = _config(strategy)
    assert cfg.state_backend == "dict"  # the default must stay the seed path
    assert cfg.codec == "modeled"
    res = run_count_experiment(cfg)
    assert _latency_fingerprint(res) == GOLDEN_LATENCY[strategy]
    assert _memory_fingerprint(res) == GOLDEN_MEMORY
    migration = res.migrations[0]
    assert migration.started_at == 1.0
    assert (migration.completed_at, len(migration.steps)) == GOLDEN_MIGRATION[strategy]
    assert res.records_injected == GOLDEN_RECORDS
    assert res.sim_events == GOLDEN_SIM_EVENTS[strategy]
