"""Integration tests for the experiment harness."""

import pytest

from repro.harness.experiment import ExperimentConfig, run_count_experiment
from repro.harness.openloop import Lcg
from repro.harness.workloads import CountWorkload, ModeledCountState, count_fold


def small_config(**overrides):
    defaults = dict(
        num_workers=4,
        workers_per_process=2,
        num_bins=16,
        domain=1 << 12,
        rate=5_000,
        duration_s=3.0,
        granularity_ms=10,
        bytes_per_key=512.0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_lcg_is_deterministic_and_spread():
    a, b = Lcg(7), Lcg(7)
    seq_a = [a.next() for _ in range(100)]
    seq_b = [b.next() for _ in range(100)]
    assert seq_a == seq_b
    assert len(set(v % 64 for v in seq_a)) > 32  # spreads across residues


def test_modeled_count_state():
    state = ModeledCountState(expected_keys=100)
    assert len(state) == 100
    first = state.add(42)
    assert first >= 1
    for _ in range(500):
        state.add(7)
    assert state.add(7) > first
    assert count_fold(1, 1, state) == [(1, state.records // 100 + 1)]


def test_workload_generator_stays_in_domain():
    workload = CountWorkload(domain=1000)
    generate = workload.make_generator()
    batch = generate(0, 0, 50)
    assert len(batch) == 50
    assert all(0 <= key < 1000 and diff == 1 for key, diff in batch)
    # Different workers draw different keys.
    assert generate(1, 0, 50) != generate(2, 0, 50)


def test_steady_state_experiment_runs_and_measures():
    res = run_count_experiment(small_config())
    assert res.records_injected == pytest.approx(5_000 * 3.0)
    assert res.migrations == []
    series = res.timeline.series()
    assert len(series) >= 10
    assert res.steady_max_latency() > 0
    # Under light load the system keeps up: latency well below a second.
    assert res.steady_max_latency() < 0.1


def test_native_experiment_runs():
    res = run_count_experiment(small_config(native=True))
    assert res.timeline.series()
    assert res.steady_max_latency() > 0


def test_native_has_lower_latency_than_high_bin_megaphone():
    """Figures 13-15's qualitative claim: Megaphone with a huge bin count
    costs noticeably more than native; with modest bins it is close.

    The blow-up appears when per-record routing cost times the offered rate
    approaches the per-worker CPU budget, so this test runs at a load where
    2^20 bins saturate the workers and 16 bins do not.
    """
    from repro.sim.cost import CostModel

    loaded = dict(
        rate=40_000,
        duration_s=2.0,
        cost=CostModel(record_cost=2e-6),
    )
    native = run_count_experiment(small_config(native=True, **loaded))
    modest = run_count_experiment(small_config(num_bins=16, **loaded))
    huge = run_count_experiment(small_config(num_bins=1 << 20, **loaded))
    p99_native = native.timeline.overall.percentile(0.99)
    p99_modest = modest.timeline.overall.percentile(0.99)
    p99_huge = huge.timeline.overall.percentile(0.99)
    assert p99_native <= p99_modest * 1.5
    assert p99_huge > 5 * p99_modest


def test_migration_experiment_records_all_artifacts():
    res = run_count_experiment(
        small_config(
            migrate_at_s=(1.0, 2.0),
            strategy="batched",
            batch_size=4,
            sample_memory=True,
        )
    )
    assert len(res.migrations) == 2
    for i in range(2):
        assert res.migration_duration(i) > 0
        assert res.migration_max_latency(i) > 0
    assert res.memory and all(tl.samples for tl in res.memory)


def test_all_at_once_spikes_above_fluid():
    """The paper's headline comparison at miniature scale."""
    base = dict(migrate_at_s=(1.0,), bytes_per_key=4096.0, num_bins=64)
    spike = run_count_experiment(
        small_config(strategy="all-at-once", **base)
    ).migration_max_latency(0)
    fluid = run_count_experiment(
        small_config(strategy="fluid", **base)
    ).migration_max_latency(0)
    assert spike > 3 * fluid


def test_memory_spike_only_for_all_at_once():
    base = dict(
        migrate_at_s=(1.0,),
        bytes_per_key=16384.0,
        num_bins=64,
        sample_memory=True,
        memory_sample_s=0.02,
        # Throttle the network so the all-at-once send-queue backlog is
        # visible to the sampler (the paper's Figure 20 effect).
        bandwidth_bytes_per_s=100e6,
    )
    spike_run = run_count_experiment(small_config(strategy="all-at-once", **base))
    fluid_run = run_count_experiment(small_config(strategy="fluid", **base))

    def overshoot(res):
        # Transient allocation above both the pre- and post-migration
        # steady levels (receivers legitimately end with more state).
        worst = 0.0
        for tl in res.memory:
            steady = max(tl.at(0.9), tl.at(2.5))
            worst = max(worst, tl.peak() - steady)
        return worst

    assert overshoot(spike_run) > 2 * overshoot(fluid_run) + 1e6
