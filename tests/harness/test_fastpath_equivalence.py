"""Fast-path equivalence: optimized routing changes nothing observable.

The destination-grouped fast path in F (flat ``current_owners`` reads,
``DestinationBatch`` carriers) must be an implementation detail of *wall
clock* only.  ``reference_routing=True`` pins the per-record memoized
binary-search path; for every migration strategy the two runs must agree
byte for byte on everything simulated time can see: the latency series,
the migration results, the injected-record count, and even the number of
simulation events fired.
"""

import pytest

from repro.harness.experiment import ExperimentConfig, run_count_experiment

STRATEGIES = ("all-at-once", "fluid", "batched", "optimized")


def _config(strategy: str, reference_routing: bool) -> ExperimentConfig:
    return ExperimentConfig(
        num_workers=4,
        workers_per_process=2,
        num_bins=32,
        rate=8_000.0,
        duration_s=2.5,
        granularity_ms=10,
        migrate_at_s=(1.0,),
        strategy=strategy,
        batch_size=4,
        seed=7,
        domain=1 << 14,
        variant="hash",
        reference_routing=reference_routing,
    )


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fast_path_matches_reference(strategy):
    fast = run_count_experiment(_config(strategy, reference_routing=False))
    reference = run_count_experiment(_config(strategy, reference_routing=True))

    # Identical latency series, window by window (dataclass equality
    # compares every float exactly — no tolerance).
    assert fast.timeline.series() == reference.timeline.series()
    assert (
        fast.timeline.overall.percentile(0.99)
        == reference.timeline.overall.percentile(0.99)
    )
    assert fast.steady_max_latency() == reference.steady_max_latency()
    assert fast.overall_max_latency() == reference.overall_max_latency()

    # Identical migration outcomes.
    assert len(fast.migrations) == len(reference.migrations)
    for got, want in zip(fast.migrations, reference.migrations):
        assert got.strategy == want.strategy
        assert got.started_at == want.started_at
        assert got.completed_at == want.completed_at
        assert len(got.steps) == len(want.steps)

    # Identical load and — the strongest check — an identical number of
    # simulation events: the two paths schedule the exact same work.
    assert fast.records_injected == reference.records_injected
    assert fast.sim_events == reference.sim_events


def test_fast_path_matches_reference_without_migrations():
    """Steady state exercises the flat-owner read on every batch."""
    base = dict(
        num_workers=4,
        workers_per_process=2,
        num_bins=32,
        rate=8_000.0,
        duration_s=1.5,
        granularity_ms=10,
        migrate_at_s=(),
        seed=3,
        domain=1 << 14,
        variant="hash",
    )
    fast = run_count_experiment(ExperimentConfig(**base, reference_routing=False))
    reference = run_count_experiment(
        ExperimentConfig(**base, reference_routing=True)
    )
    assert fast.timeline.series() == reference.timeline.series()
    assert fast.records_injected == reference.records_injected
    assert fast.sim_events == reference.sim_events
