"""Tests for histograms, timelines, and the latency recorder."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.harness.latency import LatencyTimeline, LogHistogram


def test_histogram_percentiles_are_monotone():
    hist = LogHistogram()
    for latency in [0.001, 0.002, 0.004, 0.008, 0.1]:
        hist.record(latency)
    p25, p50, p99 = hist.percentile(0.25), hist.percentile(0.5), hist.percentile(0.99)
    assert p25 <= p50 <= p99
    assert hist.max_value == 0.1


def test_histogram_empty():
    hist = LogHistogram()
    assert hist.is_empty()
    assert hist.percentile(0.5) is None
    assert hist.ccdf() == []


def test_histogram_percentile_validates_quantile():
    with pytest.raises(ValueError):
        LogHistogram().percentile(1.5)


def test_histogram_bucket_resolution():
    hist = LogHistogram()
    hist.record(0.010)
    p = hist.percentile(1.0)
    # Within one bucket (~19%) of the true value.
    assert 0.010 <= p <= 0.0125


def test_histogram_weighting():
    hist = LogHistogram()
    hist.record(0.001, weight=99)
    hist.record(1.0, weight=1)
    assert hist.percentile(0.5) < 0.01
    assert hist.percentile(0.999) > 0.5
    assert hist.total == 100


def test_histogram_merge():
    a, b = LogHistogram(), LogHistogram()
    a.record(0.001, 5)
    b.record(0.1, 5)
    a.merge(b)
    assert a.total == 10
    assert a.max_value == 0.1


def test_ccdf_is_monotone_decreasing():
    hist = LogHistogram()
    for i in range(1, 100):
        hist.record(i / 1000.0)
    fractions = [f for _, f in hist.ccdf()]
    assert fractions == sorted(fractions, reverse=True)
    assert fractions[-1] == 0.0


@given(st.lists(st.floats(min_value=1e-6, max_value=100.0), min_size=1, max_size=100))
def test_property_percentiles_bounded_by_max(latencies):
    hist = LogHistogram()
    for latency in latencies:
        hist.record(latency)
    assert hist.percentile(1.0) <= max(latencies) * 1.2
    assert hist.percentile(0.0) >= 0


def test_timeline_windows_and_ranges():
    timeline = LatencyTimeline(window_s=0.25)
    timeline.record(0.1, 0.001)
    timeline.record(0.3, 0.050)
    timeline.record(0.6, 0.002)
    series = timeline.series()
    assert [s.start_s for s in series] == [0.0, 0.25, 0.5]
    assert timeline.max_between(0.25, 0.5) == 0.050
    assert timeline.max_outside(0.25, 0.5) == 0.002
