"""Tests for the open-loop source."""

import pytest

from repro.harness.latency import EpochLatencyRecorder, LatencyTimeline
from repro.harness.openloop import ElasticOpenLoopSource, OpenLoopSource
from tests.helpers import make_dataflow


def build(rate, duration_s, granularity_ms=10, dilation=1, slow_cost=None):
    from tests.helpers import FAST_COST

    cost = FAST_COST if slow_cost is None else FAST_COST.with_overrides(
        record_cost=slow_cost
    )
    df = make_dataflow(num_workers=2, workers_per_process=2, cost=cost)
    stream, group = df.new_input("data")
    probe = stream.map(lambda x: x).probe()
    runtime = df.build()
    timeline = LatencyTimeline()
    recorder = EpochLatencyRecorder(
        runtime, probe, granularity_ms, timeline, dilation=dilation
    )
    source = OpenLoopSource(
        runtime, group,
        generator=lambda w, t, n: [(w, t, i) for i in range(n)],
        rate=rate, duration_s=duration_s, granularity_ms=granularity_ms,
        recorder=recorder, dilation=dilation,
    )
    return runtime, source, timeline


def test_rate_is_honored_exactly():
    runtime, source, _ = build(rate=1000, duration_s=2.0)
    source.start()
    runtime.run_to_quiescence()
    assert source.records_injected == pytest.approx(2000)


def test_fractional_rates_accumulate_via_carry():
    # 150 records/s at 10ms ticks = 1.5 records per tick.
    runtime, source, _ = build(rate=150, duration_s=2.0)
    source.start()
    runtime.run_to_quiescence()
    assert source.records_injected == pytest.approx(300)


def test_latency_recorded_per_epoch():
    runtime, source, timeline = build(rate=2000, duration_s=1.0)
    source.start()
    runtime.run_to_quiescence()
    series = timeline.series()
    assert series
    # Light load: latency within a few milliseconds.
    assert max(s.max_s for s in series) < 0.05


def test_open_loop_does_not_slow_down_under_backlog():
    """The defining property: injection continues at the nominal rate even
    when the system cannot keep up, and latency grows."""
    runtime, source, timeline = build(
        rate=5000, duration_s=1.0, slow_cost=2e-3  # 2 ms per record: overload
    )
    source.start()
    runtime.run(until=1.0)
    # All scheduled injections happened on time despite the backlog.
    assert source.records_injected == pytest.approx(5000, rel=0.01)
    runtime.run_to_quiescence()
    assert timeline.overall.max_value > 1.0  # seconds of backlog


def test_dilated_epochs_measure_latency_in_processing_time():
    runtime, source, timeline = build(rate=1000, duration_s=1.0, dilation=50)
    source.start()
    runtime.run_to_quiescence()
    # Event time ran 50x faster, but latency is measured against the
    # injection wall-clock: still small under light load.
    assert timeline.overall.max_value < 0.05


# -- resident (sharded-mode) ticks ---------------------------------------------


def build_resident(rate, duration_s, num_workers=4):
    df = make_dataflow(num_workers=num_workers, workers_per_process=num_workers)
    stream, group = df.new_input("data")
    stream.map(lambda x: x).probe()
    runtime = df.build()
    source = OpenLoopSource(
        runtime, group,
        generator=lambda w, t, n: [(w, t, i) for i in range(n)],
        rate=rate, duration_s=duration_s,
        workers=list(range(num_workers)),
    )
    return runtime, source, group


def test_resident_tick_redistributes_closed_handle_share():
    # A resident handle closing mid-run must not silently drop its share
    # of the offered load: the residual is re-dealt over the still-open
    # resident handles, keeping the open-loop rate exact.
    runtime, source, group = build_resident(rate=1000, duration_s=1.0)
    handles = group.handles()
    runtime.sim.schedule_at(0.495, handles[1].close)
    source.start()
    runtime.run_to_quiescence()
    assert source.records_injected == 1000


def test_resident_tick_with_all_handles_open_matches_nominal_rate():
    runtime, source, _ = build_resident(rate=1000, duration_s=1.0)
    source.start()
    runtime.run_to_quiescence()
    assert source.records_injected == 1000


# -- elastic source -------------------------------------------------------------


def build_elastic(rate, duration_s, active, num_workers=4, collect=None):
    df = make_dataflow(num_workers=num_workers, workers_per_process=num_workers)
    stream, group = df.new_input("data")
    if collect is not None:
        stream = stream.map(lambda x: (collect.append(x), x)[1])
    stream.probe()
    runtime = df.build()
    source = ElasticOpenLoopSource(
        runtime, group,
        generator=lambda v, t, n: [(v, t, i) for i in range(n)],
        rate=rate, duration_s=duration_s,
        active=active,
    )
    return runtime, source, group


def test_elastic_source_requires_active_set():
    with pytest.raises(ValueError, match="initially-fed"):
        build_elastic(rate=100, duration_s=1.0, active=None)


def test_elastic_source_rejects_sharded_mode():
    df = make_dataflow(num_workers=2, workers_per_process=2)
    _stream, group = df.new_input("data")
    runtime = df.build()
    with pytest.raises(ValueError, match="sharded"):
        ElasticOpenLoopSource(
            runtime, group,
            generator=lambda v, t, n: [],
            rate=100.0, duration_s=1.0,
            workers=[0, 1], active=[0],
        )


def test_elastic_feed_mutation_is_idempotent():
    _, source, _ = build_elastic(rate=100, duration_s=1.0, active=[0, 1])
    assert source.feed == [0, 1]
    source.open_worker(2)
    source.open_worker(2)  # re-opening is a no-op
    assert source.feed == [0, 1, 2]
    source.remove_worker(1)
    source.remove_worker(1)  # re-removing is a no-op
    assert source.feed == [0, 2]
    source.remove_worker(3)  # removing a never-fed slot is a no-op
    assert source.feed == [0, 2]


def test_elastic_records_are_membership_independent():
    # The defining invariant: the virtual-stream universe pins record
    # content, so a run whose feed set churns mid-flight injects exactly
    # the records a static-feed run does — only the carrying handle moves.
    static_seen = []
    runtime, source, _ = build_elastic(
        rate=1000, duration_s=1.0, active=[0, 1, 2, 3], collect=static_seen
    )
    source.start()
    runtime.run_to_quiescence()

    churn_seen = []
    runtime, source, _ = build_elastic(
        rate=1000, duration_s=1.0, active=[0, 1], collect=churn_seen
    )
    runtime.sim.schedule_at(0.25, lambda: source.open_worker(2))
    runtime.sim.schedule_at(0.45, lambda: source.open_worker(3))
    runtime.sim.schedule_at(0.75, lambda: source.remove_worker(3))
    source.start()
    runtime.run_to_quiescence()

    assert sorted(churn_seen) == sorted(static_seen)
    assert len(static_seen) == 1000
