"""Tests for the open-loop source."""

import pytest

from repro.harness.latency import EpochLatencyRecorder, LatencyTimeline
from repro.harness.openloop import OpenLoopSource
from tests.helpers import make_dataflow


def build(rate, duration_s, granularity_ms=10, dilation=1, slow_cost=None):
    from tests.helpers import FAST_COST

    cost = FAST_COST if slow_cost is None else FAST_COST.with_overrides(
        record_cost=slow_cost
    )
    df = make_dataflow(num_workers=2, workers_per_process=2, cost=cost)
    stream, group = df.new_input("data")
    probe = stream.map(lambda x: x).probe()
    runtime = df.build()
    timeline = LatencyTimeline()
    recorder = EpochLatencyRecorder(
        runtime, probe, granularity_ms, timeline, dilation=dilation
    )
    source = OpenLoopSource(
        runtime, group,
        generator=lambda w, t, n: [(w, t, i) for i in range(n)],
        rate=rate, duration_s=duration_s, granularity_ms=granularity_ms,
        recorder=recorder, dilation=dilation,
    )
    return runtime, source, timeline


def test_rate_is_honored_exactly():
    runtime, source, _ = build(rate=1000, duration_s=2.0)
    source.start()
    runtime.run_to_quiescence()
    assert source.records_injected == pytest.approx(2000)


def test_fractional_rates_accumulate_via_carry():
    # 150 records/s at 10ms ticks = 1.5 records per tick.
    runtime, source, _ = build(rate=150, duration_s=2.0)
    source.start()
    runtime.run_to_quiescence()
    assert source.records_injected == pytest.approx(300)


def test_latency_recorded_per_epoch():
    runtime, source, timeline = build(rate=2000, duration_s=1.0)
    source.start()
    runtime.run_to_quiescence()
    series = timeline.series()
    assert series
    # Light load: latency within a few milliseconds.
    assert max(s.max_s for s in series) < 0.05


def test_open_loop_does_not_slow_down_under_backlog():
    """The defining property: injection continues at the nominal rate even
    when the system cannot keep up, and latency grows."""
    runtime, source, timeline = build(
        rate=5000, duration_s=1.0, slow_cost=2e-3  # 2 ms per record: overload
    )
    source.start()
    runtime.run(until=1.0)
    # All scheduled injections happened on time despite the backlog.
    assert source.records_injected == pytest.approx(5000, rel=0.01)
    runtime.run_to_quiescence()
    assert timeline.overall.max_value > 1.0  # seconds of backlog


def test_dilated_epochs_measure_latency_in_processing_time():
    runtime, source, timeline = build(rate=1000, duration_s=1.0, dilation=50)
    source.start()
    runtime.run_to_quiescence()
    # Event time ran 50x faster, but latency is measured against the
    # injection wall-clock: still small under light load.
    assert timeline.overall.max_value < 0.05
