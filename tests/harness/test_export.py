"""Tests for gnuplot data export."""

from repro.harness.export import (
    ccdf_dat,
    ccdf_script,
    export_ccdf,
    export_timeline,
    scatter_dat,
    timeline_dat,
    timeline_script,
)
from repro.harness.latency import LatencyTimeline, LogHistogram


def sample_timeline():
    timeline = LatencyTimeline()
    for i in range(8):
        timeline.record(i * 0.25, 0.001 * (1 + i % 3))
    return timeline


def test_timeline_dat_format():
    dat = timeline_dat(sample_timeline(), title="t")
    lines = dat.strip().splitlines()
    assert lines[0] == "# t"
    assert lines[1].startswith("# time_s")
    for line in lines[2:]:
        parts = line.split()
        assert len(parts) == 5
        float(parts[0])  # parses


def test_ccdf_dat_format():
    hist = LogHistogram()
    for i in range(1, 50):
        hist.record(i / 1000)
    dat = ccdf_dat(hist)
    rows = [l for l in dat.splitlines() if not l.startswith("#")]
    assert rows
    fractions = [float(r.split()[1]) for r in rows]
    assert fractions == sorted(fractions, reverse=True)


def test_scatter_dat():
    dat = scatter_dat([(1.5, 0.01, "fluid"), (0.2, 3.0, "all-at-once")])
    assert "fluid" in dat and "all-at-once" in dat


def test_scripts_reference_dat_file():
    assert "'x.dat'" in timeline_script("x.dat")
    assert "'y.dat'" in ccdf_script("y.dat")


def test_export_writes_files(tmp_path):
    dat, script = export_timeline(sample_timeline(), tmp_path, "fig")
    assert dat.exists() and script.exists()
    assert "fig.dat" in script.read_text()
    hist = LogHistogram()
    hist.record(0.01)
    dat2, script2 = export_ccdf(hist, tmp_path / "sub", "ccdf")
    assert dat2.exists() and script2.exists()
