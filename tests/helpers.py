"""Shared test utilities: compact cluster/dataflow construction and drivers."""

from repro.sim.cost import CostModel
from repro.sim.engine import Simulator
from repro.sim.network import Cluster
from repro.timely.dataflow import Dataflow

FAST_COST = CostModel(
    record_cost=1e-6,
    ingest_record_cost=0.5e-6,
    batch_overhead=5e-6,
    progress_update_cost=0.5e-6,
)


def make_dataflow(num_workers=2, workers_per_process=2, cost=FAST_COST, **cluster_kwargs):
    """A small cluster + dataflow suitable for unit tests."""
    sim = Simulator()
    cluster = Cluster(
        sim,
        num_workers=num_workers,
        workers_per_process=workers_per_process,
        cost=cost,
        **cluster_kwargs,
    )
    return Dataflow(cluster)


def feed_epochs(runtime, group, batches, epoch_gap_s=0.001, start_s=0.0):
    """Schedule per-epoch injections on worker 0 and advance all handles.

    ``batches`` is a list of record lists; epoch ``i`` is injected at
    simulated time ``start_s + i * epoch_gap_s`` with timestamp ``i``, after
    which every handle advances to ``i + 1``.  Inputs are closed after the
    last epoch.
    """
    sim = runtime.sim

    def make_tick(i, records):
        def tick():
            group.handle(0).send(i, records)
            group.advance_all(i + 1)

        return tick

    for i, records in enumerate(batches):
        sim.schedule_at(start_s + i * epoch_gap_s, make_tick(i, records))
    sim.schedule_at(
        start_s + len(batches) * epoch_gap_s, lambda: group.close_all()
    )
