"""Tests for load telemetry and the hysteresis skew detector."""

from types import SimpleNamespace

from repro.megaphone.bins import BinStore
from repro.planner.telemetry import (
    LoadTelemetry,
    SkewDetector,
    TelemetryConfig,
    imbalance_ratio,
)
from repro.runtime_events.events import SkewCleared, SkewDetected, WorkerLoadSampled
from repro.sim.engine import Simulator


def make_detector(**overrides):
    config = TelemetryConfig(
        trigger_ratio=1.5,
        release_ratio=1.2,
        trigger_samples=2,
        release_samples=2,
        **overrides,
    )
    return SkewDetector(config)


class TestSkewDetector:
    def test_single_spike_does_not_trigger(self):
        detector = make_detector()
        assert detector.observe(3.0) is None
        assert detector.observe(1.0) is None
        assert not detector.skewed

    def test_consecutive_samples_trigger(self):
        detector = make_detector()
        assert detector.observe(2.0) is None
        assert detector.observe(2.0) == "triggered"
        assert detector.skewed

    def test_hysteresis_band_holds_state(self):
        detector = make_detector()
        detector.observe(2.0)
        detector.observe(2.0)
        # Between release (1.2) and trigger (1.5): holds armed forever.
        for _ in range(10):
            assert detector.observe(1.35) is None
        assert detector.skewed

    def test_release_needs_consecutive_samples(self):
        detector = make_detector()
        detector.observe(2.0)
        detector.observe(2.0)
        assert detector.observe(1.0) is None  # first calm sample
        assert detector.observe(1.3) is None  # blip resets the count
        assert detector.observe(1.0) is None
        assert detector.observe(1.0) == "cleared"
        assert not detector.skewed

    def test_retrigger_after_clear(self):
        detector = make_detector()
        detector.observe(2.0)
        detector.observe(2.0)
        detector.observe(1.0)
        detector.observe(1.0)
        assert detector.observe(2.0) is None
        assert detector.observe(2.0) == "triggered"


def test_imbalance_ratio():
    assert imbalance_ratio({}) == 0.0
    assert imbalance_ratio({0: 0.0, 1: 0.0}) == 0.0
    assert imbalance_ratio({0: 1.0, 1: 1.0}) == 1.0
    assert imbalance_ratio({0: 3.0, 1: 1.0}) == 1.5


# -- LoadTelemetry against real stores on a fake runtime -------------------------


def make_runtime(num_workers: int):
    sim = Simulator()
    workers = [SimpleNamespace(shared={}) for _ in range(num_workers)]
    return SimpleNamespace(sim=sim, workers=workers)


def make_op():
    return SimpleNamespace(config=SimpleNamespace(name="count", initial=None))


def install_store(runtime, worker: int, bins: list[int]) -> BinStore:
    store = BinStore(64, dict, worker_id=worker)
    for bin_id in bins:
        store.create(bin_id)
    runtime.workers[worker].shared["megaphone:count"] = store
    return store


def test_telemetry_attributes_load_to_owner_and_detects_skew():
    runtime = make_runtime(2)
    hot = install_store(runtime, 0, [0, 1])
    cold = install_store(runtime, 1, [2, 3])
    config = TelemetryConfig(
        sample_s=0.25, window_s=0.5, trigger_samples=2, release_samples=2
    )
    telemetry = LoadTelemetry(runtime, make_op(), config, num_workers=2)
    events = []
    runtime.sim.trace.subscribe(events.append, topics=("planner",))
    telemetry.start(0.0)

    def feed():
        hot.note_applied(0, 90)
        cold.note_applied(2, 10)
        if runtime.sim.now < 2.0:
            runtime.sim.schedule(0.25, feed)

    runtime.sim.schedule_at(0.1, feed)
    runtime.sim.run(until=2.0)
    telemetry.stop()

    loads = telemetry.worker_load()
    assert loads[0] > loads[1] > 0.0
    assert telemetry.imbalance() > 1.5
    assert telemetry.skewed
    assert telemetry.owner_of()[0] == 0
    assert telemetry.owner_of()[2] == 1
    kinds = [type(e) for e in events]
    assert WorkerLoadSampled in kinds
    assert SkewDetected in kinds
    assert SkewCleared not in kinds


def test_telemetry_delta_is_reset_aware():
    """A migrated bin restarts its record counter from zero; the delta must
    not go negative (it reads as the new owner's fresh count)."""
    runtime = make_runtime(2)
    src = install_store(runtime, 0, [0])
    telemetry = LoadTelemetry(
        runtime, make_op(), TelemetryConfig(sample_s=0.25, window_s=1.0),
        num_workers=2,
    )
    telemetry.start(0.0)
    src.note_applied(0, 100)
    runtime.sim.run(until=0.3)  # sample sees 100
    # Migrate: extraction forgets the bin on worker 0; it lands on worker 1
    # with a fresh backend counter.
    payload = src.take(0)
    dst = install_store(runtime, 1, [])
    dst.install(payload)
    dst.note_applied(0, 5)
    runtime.sim.run(until=0.6)  # sample sees cumulative 5 (< previous 100)
    telemetry.stop()
    window = telemetry._windows[0]
    assert all(delta >= 0 for delta in window)
    assert window[-1] == 5
    assert telemetry.owner_of()[0] == 1
