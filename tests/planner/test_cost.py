"""Tests for the migration cost model and the imbalance benefit model."""

from repro.megaphone.control import BinnedConfiguration
from repro.megaphone.migration import make_plan
from repro.planner.cost import (
    MigrationCostModel,
    imbalance_gain,
    projected_worker_loads,
)
from repro.runtime_events.bus import TraceBus
from repro.runtime_events.events import (
    BinStateExtracted,
    BinStateInstalled,
    MigrationStepOutcome,
)


def test_move_cost_is_monotone_in_state_size():
    model = MigrationCostModel()
    sizes = [0, 1 << 10, 1 << 16, 1 << 20, 1 << 24]
    costs = [model.predict_move_s(s) for s in sizes]
    assert costs == sorted(costs)
    assert all(b > a for a, b in zip(costs, costs[1:]))


def test_step_cost_is_per_worker_serial():
    model = MigrationCostModel()
    size = 1 << 20
    # Two moves from the same source serialize back-to-back; from distinct
    # sources they overlap, so the step is strictly cheaper.
    same_src = model.predict_step_s([(0, 1, size), (0, 2, size)])
    disjoint = model.predict_step_s([(0, 1, size), (3, 2, size)])
    assert disjoint < same_src
    assert model.predict_step_s([]) == 0.0


def test_plan_cost_sums_steps_and_tracks_configuration():
    model = MigrationCostModel()
    current = BinnedConfiguration.round_robin(8, 2)
    target = BinnedConfiguration(tuple((w + 1) % 2 for w in current.assignment))
    plan = make_plan("fluid", current, target)
    sizes = {b: 1 << 16 for b in range(8)}
    total = model.predict_plan_s(plan, current, sizes)
    per_move = model.predict_step_s([(0, 1, 1 << 16)])
    assert abs(total - 8 * per_move) < 1e-9


def test_calibration_recovers_observed_rates():
    bus = TraceBus()
    model = MigrationCostModel(bus)
    assert not model.calibrated
    # Observed: 1 MiB serialized in 2 ms -> ~2e-9 s/B (5x the 0.4e-9 prior).
    for i in range(4):
        bus.publish(
            BinStateExtracted(
                name="count", time=i, bin=i, src=0, dst=1,
                size_bytes=float(1 << 20), serialize_s=2e-3, at=float(i),
            )
        )
        bus.publish(
            BinStateInstalled(
                name="count", time=i, bin=i, worker=1,
                size_bytes=float(1 << 20), deserialize_s=4e-3, at=float(i),
            )
        )
        bus.publish(
            MigrationStepOutcome(
                time=i, moves=1, batch_size=1, attempts=1, abandoned=False,
                duration_s=0.05, at=float(i),
            )
        )
    assert model.calibrated
    assert abs(model.ser_rate - 2e-3 / (1 << 20)) < 1e-15
    assert abs(model.deser_rate - 4e-3 / (1 << 20)) < 1e-15
    # Overhead is what the observed duration cannot be explained by.
    assert 0.0 < model.overhead_s < 0.05
    model.close()


def test_bytes_for_budget_inverts_step_cost():
    model = MigrationCostModel()
    budget = 0.05
    size = model.bytes_for_budget(budget)
    assert size > 0
    predicted = model.predict_step_s([(0, 1, size)])
    assert abs(predicted - budget) < 1e-6
    assert model.bytes_for_budget(0.0) == 0.0


def test_abandoned_steps_do_not_calibrate_overhead():
    bus = TraceBus()
    model = MigrationCostModel(bus)
    bus.publish(
        MigrationStepOutcome(
            time=0, moves=1, batch_size=1, attempts=5, abandoned=True,
            duration_s=10.0, at=0.0,
        )
    )
    assert model.steps_observed == 0
    assert model.overhead_s == 0.02  # still the prior


def test_projected_loads_and_gain():
    bin_load = {0: 8.0, 1: 1.0, 2: 1.0, 3: 1.0}
    skewed = BinnedConfiguration((0, 0, 0, 0))
    current_loads = projected_worker_loads(bin_load, skewed, 2)
    assert current_loads == {0: 11.0, 1: 0.0}
    balanced = BinnedConfiguration((0, 1, 1, 1))
    gain = imbalance_gain(bin_load, skewed, balanced, 2)
    # 2.0 (all on one of two workers) down to ~1.45.
    assert gain > 0.5
    assert imbalance_gain(bin_load, skewed, skewed, 2) == 0.0


def _publish_move(bus, time, kind, size, ser_s, deser_s):
    bus.publish(
        BinStateExtracted(
            name="count", time=time, bin=time, src=0, dst=1,
            size_bytes=size, serialize_s=ser_s, at=float(time), kind=kind,
        )
    )
    bus.publish(
        BinStateInstalled(
            name="count", time=time, bin=time, worker=1,
            size_bytes=size, deserialize_s=deser_s, at=float(time), kind=kind,
        )
    )


def test_per_kind_rates_calibrate_independently():
    bus = TraceBus()
    model = MigrationCostModel(bus)
    # Full payloads: 1 s/MiB.  Deltas: 4 s/MiB (small, filter-dominated).
    mib = float(1 << 20)
    _publish_move(bus, 0, "full", mib, 1.0, 1.0)
    _publish_move(bus, 1, "delta", mib / 16, 0.25, 0.25)
    assert abs(model.ser_rate_for("full") - 1.0 / mib) < 1e-12
    assert abs(model.ser_rate_for("delta") - 4.0 / mib) < 1e-12
    assert abs(model.deser_rate_for("delta") - 4.0 / mib) < 1e-12
    # An unobserved kind falls back to the aggregate calibrated rate.
    aggregate = model.ser_rate
    assert model.ser_rate_for("base") == aggregate
    model.close()


def test_per_kind_rates_fall_back_to_prior_when_uncalibrated():
    model = MigrationCostModel()
    assert model.ser_rate_for("delta") == model.ser_rate
    assert model.deser_rate_for("full") == model.deser_rate


def test_predict_move_uses_kind_rates():
    bus = TraceBus()
    model = MigrationCostModel(bus)
    mib = float(1 << 20)
    _publish_move(bus, 0, "full", mib, 1.0, 1.0)
    _publish_move(bus, 1, "delta", mib, 8.0, 8.0)
    assert model.predict_move_s(mib, kind="delta") > model.predict_move_s(mib)
    model.close()


def test_plan_cost_with_dirty_fraction_prices_the_delta_path():
    bus = TraceBus()
    model = MigrationCostModel(bus)
    mib = float(1 << 20)
    # Delta per-byte rates equal full rates here; only the byte volume
    # differs, so a 10%-dirty delta plan must cost well under the full one.
    _publish_move(bus, 0, "full", mib, 1.0, 1.0)
    _publish_move(bus, 1, "delta", mib, 1.0, 1.0)
    current = BinnedConfiguration.round_robin(8, 2)
    target = BinnedConfiguration(tuple((w + 1) % 2 for w in current.assignment))
    plan = make_plan("fluid", current, target)
    sizes = {b: 1 << 20 for b in range(8)}
    full_cost = model.predict_plan_s(plan, current, sizes)
    delta_cost = model.predict_plan_s(plan, current, sizes, dirty_fraction=0.1)
    assert delta_cost < full_cost
    # The saving is roughly proportional to the dirty fraction once the
    # fixed per-step overhead is taken out.
    steps = len(plan.steps)
    fixed = steps * model.overhead_s
    assert (delta_cost - fixed) < 0.2 * (full_cost - fixed)
    model.close()
