"""End-to-end: the closed-loop planner un-skews a hot-key run.

The acceptance scenario: a skewed workload concentrates heat on a few
bins; the static baseline stays imbalanced for the whole run, while the
planner-enabled run detects the skew, migrates, and converges to a
near-balanced assignment — without blowing the latency envelope.
"""

import pytest

from repro.harness.experiment import ExperimentConfig, run_count_experiment
from repro.planner import PlannerConfig, TelemetryConfig


def skew_config(**overrides) -> ExperimentConfig:
    base = dict(
        num_workers=4,
        num_bins=64,
        domain=1 << 12,
        rate=20_000.0,
        duration_s=8.0,
        workload="skewed",
        hot_keys=12,
        hot_fraction=0.85,
        zipf_exponent=0.8,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def planner_config(**overrides) -> PlannerConfig:
    base = dict(
        telemetry=TelemetryConfig(sample_s=0.25, window_s=1.0),
        decide_s=0.5,
        start_s=1.0,
        cooldown_s=1.5,
        min_gain=0.05,
    )
    base.update(overrides)
    return PlannerConfig(**base)


@pytest.mark.slow
def test_planner_converges_to_lower_imbalance_than_static():
    planner_run = run_count_experiment(
        skew_config(planner=planner_config())
    )
    static_run = run_count_experiment(
        skew_config(planner=planner_config(propose_only=True))
    )
    # The static baseline stays skewed...
    assert static_run.final_imbalance > 1.5
    assert not static_run.migrations
    # ...the planner migrates and converges (the paper-style acceptance
    # line: max/mean within 1.25x).
    assert planner_run.migrations
    assert planner_run.final_imbalance <= 1.25
    assert planner_run.final_imbalance < static_run.final_imbalance
    report = planner_run.planner
    assert report.adopted
    adopted = report.adopted[0]
    assert adopted.plan.provenance.source == "planner"
    assert adopted.predicted_gain > 0


@pytest.mark.slow
def test_planner_latency_stays_in_batched_envelope():
    """Planner-driven migration must not cost more latency than the same
    moves executed as one static batched migration."""
    planner_run = run_count_experiment(skew_config(planner=planner_config()))
    batched_run = run_count_experiment(
        skew_config(migrate_at_s=(3.0,), strategy="batched", batch_size=16)
    )
    assert planner_run.overall_max_latency() <= (
        2.0 * batched_run.overall_max_latency()
    )


@pytest.mark.slow
def test_cost_model_predictions_within_2x_of_observed():
    """Fig 18 angle: the calibrated cost model's per-step predictions land
    within 2x of the measured step durations."""
    run = run_count_experiment(
        skew_config(planner=planner_config(), collect_trace=True)
    )
    model = run.cost_model
    assert model is not None and model.calibrated
    trace = run.migration_trace
    predicted_total = observed_total = 0.0
    ratios = []
    for outcome in trace.outcome_rows():
        if outcome.abandoned or outcome.duration_s <= 0:
            continue
        moves = [
            (bin_trace.src, bin_trace.dst, bin_trace.size_bytes)
            for (time, _), bin_trace in trace.bins.items()
            if time == outcome.time and bin_trace.src is not None
        ]
        if not moves:
            continue
        predicted = model.predict_step_s(moves)
        predicted_total += predicted
        observed_total += outcome.duration_s
        ratios.append(predicted / outcome.duration_s)
    assert len(ratios) >= 1
    # Aggregate prediction within 2x of aggregate observation; individual
    # steps mostly within 2x too (the first step can complete near an epoch
    # boundary and read artificially short).
    assert 0.5 <= predicted_total / observed_total <= 2.0
    in_band = sum(1 for r in ratios if 0.5 <= r <= 2.0)
    assert in_band >= len(ratios) / 2


def test_skewed_workload_is_deterministic_and_skewed():
    cfg = skew_config()
    workload = cfg.make_workload()
    generator = workload.make_generator()
    a = generator(0, 0, 500)
    b = cfg.make_workload().make_generator()(0, 0, 500)
    assert a == b  # deterministic in the seed
    hot = set(workload.hot_key_set())
    hot_share = sum(1 for key, _ in a if key in hot) / len(a)
    assert hot_share > 0.7  # hot_fraction=0.85 minus uniform-draw noise
    assert len(workload.hot_bin_ids(cfg.num_bins)) <= cfg.hot_keys
