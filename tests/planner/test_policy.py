"""Tests for the closed-loop policy: gating, cooldown, propose-only."""

from types import SimpleNamespace

from repro.megaphone.control import BinnedConfiguration
from repro.planner.cost import MigrationCostModel
from repro.planner.policy import ClosedLoopPlanner, PlannerConfig
from repro.runtime_events.events import PlanAdopted, PlanRejected
from repro.sim.engine import Simulator


class FlipFlopTelemetry:
    """Always-skewed telemetry whose hot bin alternates every read, so
    every decision point finds something to move (the thrashing input the
    cooldown must suppress)."""

    skewed = True
    observed_window_s = 1.0

    def __init__(self) -> None:
        self.reads = 0

    def bin_load(self):
        # propose() reads the load twice per decision (search + gain);
        # flip per decision so both reads within one decision agree.
        decision = self.reads // 2
        self.reads += 1
        hot = decision % 2
        return {b: (10.0 if b == hot else 1.0) for b in range(4)}

    def bin_bytes(self):
        return {b: 1024.0 for b in range(4)}


class FakeController:
    done = True

    def __init__(self) -> None:
        self.started_at = None

    def start_at(self, at):
        self.started_at = at


def make_planner(config: PlannerConfig, sim=None):
    sim = sim if sim is not None else Simulator()
    runtime = SimpleNamespace(
        sim=sim, workers=[SimpleNamespace(shared={}) for _ in range(2)]
    )
    op = SimpleNamespace(
        config=SimpleNamespace(
            name="count", initial=BinnedConfiguration.round_robin(4, 2)
        )
    )
    config.objective_options.setdefault("num_workers", 2)
    planner = ClosedLoopPlanner(
        runtime,
        op,
        None,
        None,
        None,
        FlipFlopTelemetry(),
        MigrationCostModel(),
        config,
        controller_factory=lambda plan: FakeController(),
    )
    return planner, sim


def test_cooldown_suppresses_thrashing():
    noisy = PlannerConfig(
        decide_s=0.5, start_s=0.0, cooldown_s=0.0, min_gain=0.0, stop_s=5.0
    )
    planner, sim = make_planner(noisy)
    planner.start()
    sim.run(until=6.0)
    without_cooldown = len(planner.report.adopted)

    calm = PlannerConfig(
        decide_s=0.5, start_s=0.0, cooldown_s=10.0, min_gain=0.0, stop_s=5.0
    )
    planner, sim = make_planner(calm)
    planner.start()
    sim.run(until=6.0)
    with_cooldown = len(planner.report.adopted)

    assert without_cooldown >= 5  # the input really does thrash
    assert with_cooldown == 1  # cooldown holds the line
    assert len(planner.controllers) == 1


def test_min_gain_gate_rejects_and_traces():
    config = PlannerConfig(
        decide_s=0.5, start_s=0.0, cooldown_s=0.0, min_gain=100.0, stop_s=2.0
    )
    planner, sim = make_planner(config)
    events = []
    sim.trace.subscribe(events.append, topics=("planner",))
    planner.start()
    sim.run(until=3.0)
    assert planner.report.proposals
    assert not planner.report.adopted
    assert all("min_gain" in p.reason for p in planner.report.proposals)
    assert not planner.controllers
    kinds = [type(e) for e in events]
    assert PlanRejected in kinds
    assert PlanAdopted not in kinds


def test_propose_only_never_executes():
    config = PlannerConfig(
        decide_s=0.5,
        start_s=0.0,
        cooldown_s=0.0,
        min_gain=0.0,
        stop_s=2.0,
        propose_only=True,
    )
    planner, sim = make_planner(config)
    planner.start()
    sim.run(until=3.0)
    assert planner.report.adopted  # plans clear the gate...
    assert not planner.controllers  # ...but nothing runs
    assert planner.current == planner._op.config.initial


def test_adopted_plans_carry_planner_provenance():
    config = PlannerConfig(
        decide_s=0.5, start_s=0.0, cooldown_s=10.0, min_gain=0.0, stop_s=2.0
    )
    planner, sim = make_planner(config)
    planner.start()
    sim.run(until=3.0)
    (proposal,) = planner.report.adopted[:1]
    assert proposal.plan.provenance.source == "planner"
    assert proposal.plan.provenance.objective == "balance"
    assert proposal.plan.provenance.window_s == 1.0


def test_decisions_stop_at_stop_s():
    config = PlannerConfig(decide_s=0.5, start_s=0.0, stop_s=1.0)
    planner, sim = make_planner(config)
    planner.start()
    sim.run(until=10.0)
    # Decisions at 0.0 and 0.5 only; the 1.0 tick sees stop_s and halts.
    assert planner.report.decisions == 2
