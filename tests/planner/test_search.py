"""Tests for objective-driven target search and step grouping."""

import json

import pytest

from repro.megaphone.control import BinnedConfiguration
from repro.megaphone.plan_io import plan_from_dict, plan_to_dict
from repro.planner.search import (
    balanced_target,
    drain_target,
    plan_moves,
    search_target,
    spread_target,
)
from repro.planner.telemetry import imbalance_ratio


def loads_under(config: BinnedConfiguration, bin_load, num_workers):
    loads = {w: 0.0 for w in range(num_workers)}
    for bin_id, load in bin_load.items():
        loads[config.worker_of(bin_id)] += load
    return loads


def test_balanced_target_reduces_imbalance():
    # Worker 0 owns every hot bin.
    assignment = [0] * 8 + [1] * 8 + [2] * 8 + [3] * 8
    current = BinnedConfiguration(tuple(assignment))
    bin_load = {b: 10.0 for b in range(8)}
    bin_load.update({b: 1.0 for b in range(8, 32)})
    target = balanced_target(current, bin_load, num_workers=4)
    before = imbalance_ratio(loads_under(current, bin_load, 4))
    after = imbalance_ratio(loads_under(target, bin_load, 4))
    assert after < before
    assert after < 1.25


def test_balanced_target_leaves_balanced_alone():
    current = BinnedConfiguration.round_robin(16, 4)
    bin_load = {b: 1.0 for b in range(16)}
    target = balanced_target(current, bin_load, num_workers=4)
    assert target == current


def test_balanced_target_never_moves_cold_bins():
    current = BinnedConfiguration(tuple([0] * 8 + [1] * 8))
    bin_load = {0: 10.0}  # every other bin unobserved
    target = balanced_target(current, bin_load, num_workers=2)
    for bin_id in range(1, 16):
        assert target.worker_of(bin_id) == current.worker_of(bin_id)


def test_balanced_target_respects_move_budget():
    assignment = [0] * 16 + [1] * 16
    current = BinnedConfiguration(tuple(assignment))
    bin_load = {b: float(32 - b) for b in range(32)}
    target = balanced_target(current, bin_load, num_workers=2, max_moves=3)
    assert len(current.moved_bins(target)) <= 3


def test_drain_target_empties_workers():
    current = BinnedConfiguration.round_robin(16, 4)
    bin_load = {b: 1.0 for b in range(16)}
    target = drain_target(current, bin_load, (3,), num_workers=4)
    assert target.bins_of(3) == []
    # Everything still owned, spread over survivors.
    assert sorted(
        b for w in range(3) for b in target.bins_of(w)
    ) == list(range(16))
    with pytest.raises(ValueError, match="drain every worker"):
        drain_target(current, bin_load, (0, 1, 2, 3), num_workers=4)


def test_spread_target_populates_fresh_workers():
    current = BinnedConfiguration.round_robin(16, 2)  # workers 0 and 1 only
    bin_load = {b: 1.0 for b in range(16)}
    target = spread_target(current, bin_load, num_workers=4)
    for worker in range(4):
        assert target.bins_of(worker), f"worker {worker} got no bins"
    after = imbalance_ratio(loads_under(target, bin_load, 4))
    assert after < 1.25


def test_plan_moves_steps_are_interference_free():
    current = BinnedConfiguration.round_robin(32, 4)
    bin_load = {b: float(b % 7) for b in range(32)}
    target = balanced_target(
        current, {b: 10.0 if b < 8 else 1.0 for b in range(32)}, num_workers=4
    )
    sizes = {b: 1024.0 for b in range(32)}
    plan = plan_moves(current, target, bin_bytes=sizes)
    assert plan.strategy == "planner"
    config = current
    for step in plan.steps:
        sources = [config.worker_of(inst.bin) for inst in step.insts]
        destinations = [inst.worker for inst in step.insts]
        assert len(sources) == len(set(sources)), "source used twice in a step"
        assert len(destinations) == len(set(destinations)), (
            "destination used twice in a step"
        )
        config = config.apply(list(step.insts))
    # The plan lands exactly on the target.
    assert config == target


def test_plan_moves_respects_byte_cap():
    current = BinnedConfiguration(tuple([0] * 8))
    target = BinnedConfiguration(tuple([1, 2, 3, 1, 2, 3, 1, 2]))
    sizes = {b: 1000.0 for b in range(8)}
    plan = plan_moves(
        current, target, bin_bytes=sizes, max_step_bytes=1000.0
    )
    for step in plan.steps:
        assert sum(sizes[inst.bin] for inst in step.insts) <= 1000.0
    assert plan.total_moves == 8


def test_plan_moves_emits_valid_plan_io_documents():
    """Plans the search emits are byte-valid plan_io documents that any
    existing controller can execute without planner imports."""
    current = BinnedConfiguration.round_robin(16, 4)
    target = balanced_target(
        current, {b: 10.0 if b < 4 else 1.0 for b in range(16)}, num_workers=4
    )
    plan = plan_moves(current, target)
    data = plan_to_dict(plan)
    json.dumps(data)  # actually JSON-serializable
    restored = plan_from_dict(json.loads(json.dumps(data)))
    assert restored.strategy == plan.strategy
    assert restored.steps == plan.steps


def test_search_target_registry():
    current = BinnedConfiguration.round_robin(8, 2)

    class FakeTelemetry:
        def bin_load(self):
            return {b: 1.0 for b in range(8)}

    target = search_target("balance", current, FakeTelemetry(), num_workers=2)
    assert isinstance(target, BinnedConfiguration)
    with pytest.raises(ValueError, match="unknown objective"):
        search_target("nope", current, FakeTelemetry())
    with pytest.raises(ValueError, match="drain_workers"):
        search_target("drain", current, FakeTelemetry())
