"""Unit tests for query building blocks, independent of the dataflow."""

import pytest

from repro.megaphone.operators import ApplicationContext
from repro.megaphone.api import Notificator
from repro.megaphone.bins import BinStore
from repro.nexmark.config import NexmarkConfig
from repro.nexmark.model import Auction, Bid, Person
from repro.nexmark.queries import q1, q5, q7
from repro.nexmark.queries.common import ClosedAuction, closed_auctions_fold


def bid(auction=1, price=100, t=0, bidder=7):
    return Bid(auction=auction, bidder=bidder, price=price, date_time=t)


def auction(id=1, t=0, expires=100, seller=3, reserve=1, category=2):
    return Auction(
        id=id, item_name=f"item-{id}", initial_bid=10, reserve=reserve,
        date_time=t, expires=expires, seller=seller, category=category,
    )


def make_app(time=0, state=None, entries=()):
    store = BinStore(num_bins=1, state_factory=dict)
    bin_ = store.create(0)
    if state is not None:
        bin_.state = state
    return ApplicationContext(time, bin_, list(entries))


def test_q1_currency_conversion_is_exact_integer_math():
    converted = q1._convert(bid(price=1000))
    assert converted.price == 908
    assert converted.auction == 1
    # Conversion is deterministic and proportional.
    assert q1._convert(bid(price=2000)).price == 1816


def test_q5_bucket_alignment():
    assert q5._bucket(1234, 1000) == 1000
    assert q5._bucket(999, 1000) == 0
    assert q5._bucket(2000, 1000) == 2000


def test_q7_window_end():
    assert q7._window_end(0, 1000) == 1000
    assert q7._window_end(999, 1000) == 1000
    assert q7._window_end(1000, 1000) == 2000


def test_closed_auctions_fold_tracks_best_bid_and_closes():
    state = {}
    app = make_app(time=0, state=state)
    notificator = Notificator(app)
    a = auction(id=5, expires=50, reserve=20)
    out = closed_auctions_fold(0, [a], [], state, notificator)
    assert out == []
    assert app.scheduled == [(50, (0, ("close", 5)))]
    # Bids below expiry fold into the max.
    closed_auctions_fold(10, [], [bid(auction=5, price=30, t=10)], state, notificator)
    closed_auctions_fold(20, [], [bid(auction=5, price=25, t=20)], state, notificator)
    assert state[5][1] == 30
    # A bid at/after expiry is ignored.
    closed_auctions_fold(50, [], [bid(auction=5, price=99, t=50)], state, notificator)
    assert state[5][1] == 30
    # The close marker emits the winner and clears the entry.
    out = closed_auctions_fold(50, [("close", 5)], [], state, notificator)
    assert out == [
        ClosedAuction(auction=5, seller=3, category=2, price=30, expires=50)
    ]
    assert 5 not in state


def test_closed_auctions_fold_respects_reserve():
    state = {}
    app = make_app(time=0, state=state)
    notificator = Notificator(app)
    a = auction(id=9, expires=10, reserve=1000)
    closed_auctions_fold(0, [a], [bid(auction=9, price=500, t=0)], state, notificator)
    out = closed_auctions_fold(10, [("close", 9)], [], state, notificator)
    assert out == []  # reserve not met: no sale


def test_notificator_rejects_past_times():
    app = make_app(time=100)
    with pytest.raises(ValueError):
        Notificator(app).notify_at(99, "x")


def test_application_context_emit_accumulates():
    app = make_app()
    app.emit([1, 2])
    app.emit([3])
    assert app.outputs == [1, 2, 3]


def test_q5_megaphone_fold_window_semantics():
    cfg = NexmarkConfig(q5_window_ms=3000, q5_period_ms=1000)
    from repro.nexmark.queries.q5 import megaphone  # noqa: F401  (fold is nested)

    # Exercise the fold through its module-level pieces: counts buckets and
    # prunes outside the window.
    state = {}
    app = make_app(time=0, state=state)
    notificator = Notificator(app)

    def fold(time, data):
        # Re-create the fold inline (mirrors q5.megaphone's fold closure).
        out = []
        for record in data:
            if isinstance(record, tuple):
                _, window_end = record
                state.get("flushes", set()).discard(window_end)
                horizon = window_end - cfg.q5_window_ms
                counts = state.get("counts", {})
                best = None
                for auction_id, buckets in list(counts.items()):
                    for b in [b for b in buckets if b < horizon]:
                        del buckets[b]
                    if not buckets:
                        del counts[auction_id]
                        continue
                    total = sum(n for b, n in buckets.items() if b < window_end)
                    if best is None or total > best[1]:
                        best = (auction_id, total)
                if best:
                    out.append((window_end,) + best)
            else:
                bucket = q5._bucket(record.date_time, cfg.q5_period_ms)
                counts = state.setdefault("counts", {})
                buckets = counts.setdefault(record.auction, {})
                buckets[bucket] = buckets.get(bucket, 0) + 1
        return out

    fold(0, [bid(auction=1, t=0), bid(auction=1, t=500), bid(auction=2, t=100)])
    out = fold(1000, [("flush", 1000)])
    assert out == [(1000, 1, 2)]
    # Far in the future: old buckets pruned away, nothing to report.
    out = fold(9000, [("flush", 9000)])
    assert out == []
    assert state["counts"] == {}
