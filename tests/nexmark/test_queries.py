"""Equivalence tests: native and Megaphone variants of every query must
produce the same results on identical inputs — with and without migration."""

import pytest

from repro.megaphone.controller import EpochTicker, MigrationController
from repro.megaphone.migration import imbalanced_target, make_plan
from repro.nexmark.config import NexmarkConfig
from repro.nexmark.generator import NexmarkGenerator
from repro.nexmark.queries import QUERIES
from repro.nexmark.queries.common import split_events
from tests.helpers import make_dataflow

WORKERS = 4
EPOCH_MS = 10
N_EPOCHS = 40
EVENTS_PER_EPOCH = 25

NEX_CFG = NexmarkConfig(
    active_auctions=20,
    auction_duration_ms=80,
    q5_window_ms=120,
    q5_period_ms=40,
    q7_window_ms=40,
    q8_window_ms=160,
)


def pregenerate():
    """One fixed event schedule shared by every variant."""
    gens = []
    for w in range(WORKERS):
        g = NexmarkGenerator(NEX_CFG, w, seed=5)
        g.configure_strides(WORKERS)
        gens.append(g)
    schedule = []
    for epoch in range(N_EPOCHS):
        t_ms = epoch * EPOCH_MS
        batches = [gens[w].generate(t_ms, EVENTS_PER_EPOCH) for w in range(WORKERS)]
        schedule.append((t_ms, batches))
    return schedule


SCHEDULE = pregenerate()


def run_query(query, variant, migrate=False, strategy="batched", num_bins=8):
    df = make_dataflow(num_workers=WORKERS, workers_per_process=2)
    control, control_group = df.new_input("control")
    events, data_group = df.new_input("events")
    streams = split_events(events)
    module = QUERIES[query]
    if variant == "native":
        out, op = module.native(streams, NEX_CFG)
        control.sink(name="control_sink")
    else:
        out, op = module.megaphone(control, streams, NEX_CFG, num_bins)
    outputs = []
    out.sink(lambda w, t, recs: outputs.extend(recs))
    probe = df.probe(out)
    runtime = df.build()

    ticker = EpochTicker(runtime, control_group, granularity_ms=EPOCH_MS)
    ticker.start()

    controller = None
    if migrate:
        assert op is not None
        initial = op.config.initial
        target = imbalanced_target(initial)
        plan = make_plan(strategy, initial, target, batch_size=2)
        controller = MigrationController(
            runtime, control_group, ticker, probe, plan
        )
        controller.start_at((N_EPOCHS // 3) * EPOCH_MS / 1000.0)

    def make_tick(t_ms, batches):
        def tick():
            for handle, batch in zip(data_group.handles(), batches):
                handle.send(t_ms, batch)
                handle.advance_to(t_ms + EPOCH_MS)

        return tick

    for t_ms, batches in SCHEDULE:
        runtime.sim.schedule_at(t_ms / 1000.0, make_tick(t_ms, batches))
    runtime.sim.schedule_at(N_EPOCHS * EPOCH_MS / 1000.0, data_group.close_all)

    runtime.run(until=(N_EPOCHS + 20) * EPOCH_MS / 1000.0)
    guard = 0
    while controller is not None and not controller.done:
        runtime.sim.run(max_events=10_000)
        guard += 1
        assert guard < 500, "migration stalled"
    ticker.stop()
    runtime.run_to_quiescence()
    if controller is not None:
        assert controller.result.completed_at is not None
    return outputs


def final_by_key(pairs):
    """Last value per key (for running aggregates)."""
    out = {}
    for key, value in pairs:
        out[key] = value
    return out


@pytest.mark.parametrize("query", [1, 2])
def test_stateless_queries_equivalent(query):
    native = run_query(query, "native")
    mega = run_query(query, "megaphone")
    assert sorted(native, key=repr) == sorted(mega, key=repr)
    assert native, "query produced no output"


@pytest.mark.parametrize("query", [3, 8])
def test_join_queries_equivalent(query):
    native = run_query(query, "native")
    mega = run_query(query, "megaphone")
    assert sorted(native, key=repr) == sorted(mega, key=repr)
    assert native, "query produced no output"


@pytest.mark.parametrize("query", [4, 6])
def test_aggregate_queries_equivalent_final_values(query):
    native = final_by_key(run_query(query, "native"))
    mega = final_by_key(run_query(query, "megaphone"))
    assert native == mega
    assert native, "query produced no output"


@pytest.mark.parametrize("query", [5, 7])
def test_windowed_queries_equivalent(query):
    native = run_query(query, "native")
    mega = run_query(query, "megaphone")
    assert sorted(native) == sorted(mega)
    assert native, "query produced no output"


@pytest.mark.parametrize("query", [3, 4, 8])
def test_migration_does_not_change_results(query):
    baseline = run_query(query, "megaphone")
    migrated = run_query(query, "megaphone", migrate=True)
    if query == 4:
        assert final_by_key(baseline) == final_by_key(migrated)
    else:
        assert sorted(baseline, key=repr) == sorted(migrated, key=repr)


@pytest.mark.parametrize("strategy", ["all-at-once", "fluid"])
def test_q3_migration_strategies(strategy):
    baseline = run_query(3, "megaphone")
    migrated = run_query(3, "megaphone", migrate=True, strategy=strategy)
    assert sorted(baseline, key=repr) == sorted(migrated, key=repr)
