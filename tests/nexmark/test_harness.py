"""Tests for the NEXMark experiment harness."""

import pytest

from repro.harness.experiment import ExperimentConfig
from repro.nexmark.config import NexmarkConfig
from repro.nexmark.harness import STATEFUL_QUERIES, run_nexmark_experiment


def small_cfg(**overrides):
    defaults = dict(
        num_workers=4,
        workers_per_process=2,
        num_bins=16,
        rate=2_000,
        duration_s=2.0,
        granularity_ms=10,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_rejects_unknown_query():
    with pytest.raises(ValueError, match="unknown NEXMark query"):
        run_nexmark_experiment(9, small_cfg())


@pytest.mark.parametrize("query", sorted(STATEFUL_QUERIES))
def test_every_stateful_query_runs_with_migration(query):
    cfg = small_cfg(migrate_at_s=(1.0,), strategy="batched", batch_size=4)
    res = run_nexmark_experiment(query, cfg)
    assert res.records_injected == pytest.approx(4_000)
    assert len(res.migrations) == 1
    assert res.migrations[0].completed_at is not None
    assert res.timeline.series()


@pytest.mark.parametrize("query", [1, 2])
def test_stateless_queries_run_native_and_megaphone(query):
    for native in (True, False):
        res = run_nexmark_experiment(query, small_cfg(), native=native)
        assert res.timeline.series()


def test_dilation_threads_through():
    nexmark = NexmarkConfig(dilation=30)
    cfg = small_cfg(dilation=30, migrate_at_s=(1.0,))
    res = run_nexmark_experiment(7, cfg, nexmark=nexmark)
    # Migration timestamps are in the dilated event-time domain.
    assert res.migrations[0].steps[0].time >= 30_000


def test_memory_sampling_collects_state_bytes():
    nexmark = NexmarkConfig(state_bytes_scale=100.0)
    cfg = small_cfg(sample_memory=True, memory_sample_s=0.1)
    res = run_nexmark_experiment(3, cfg, nexmark=nexmark)
    assert res.memory
    # Q3 state grows without bound: the last samples outweigh the first.
    tl = res.memory[0]
    assert tl.samples[-1].rss_bytes > tl.samples[0].rss_bytes
