"""Tests for the NEXMark event generator."""

from collections import Counter

from repro.nexmark.config import NexmarkConfig
from repro.nexmark.generator import NexmarkGenerator, make_generator
from repro.nexmark.model import Auction, Bid, Person, kind_of


def gen(worker=0, seed=1, **cfg):
    g = NexmarkGenerator(NexmarkConfig(**cfg), worker, seed)
    g.configure_strides(4)
    return g


def test_event_mix_matches_proportions():
    g = gen()
    events = g.generate(0, 5000)
    counts = Counter(kind_of(e) for e in events)
    assert counts["person"] == 100
    assert counts["auction"] == 300
    assert counts["bid"] == 4600


def test_determinism():
    a = gen(seed=7).generate(10, 200)
    b = gen(seed=7).generate(10, 200)
    assert a == b
    c = gen(seed=8).generate(10, 200)
    assert a != c


def test_ids_monotone_and_strided():
    g0, g1 = gen(worker=0), gen(worker=1)
    ids0 = [e.id for e in g0.generate(0, 500) if isinstance(e, Person)]
    ids1 = [e.id for e in g1.generate(0, 500) if isinstance(e, Person)]
    assert ids0 == sorted(ids0)
    assert all(i % 4 == 0 for i in ids0)
    assert all(i % 4 == 1 for i in ids1)


def test_bids_target_active_auctions():
    cfg = NexmarkConfig(active_auctions=50)
    g = NexmarkGenerator(cfg, 0, 1)
    g.configure_strides(1)
    events = g.generate(0, 5000)
    auctions = [e for e in events if isinstance(e, Auction)]
    newest = auctions[-1].id
    bids_after_warmup = [
        e for e in events[2500:] if isinstance(e, Bid)
    ]
    # Bids reference recent auctions: within the active window of the
    # newest auction at generation end.
    for bid in bids_after_warmup:
        assert bid.auction <= newest
        assert bid.auction >= 0


def test_auction_expiry_and_timestamps():
    g = gen()
    events = g.generate(250, 100)
    for event in events:
        assert event.date_time == 250
        if isinstance(event, Auction):
            assert event.expires == 250 + NexmarkConfig().auction_duration_ms


def test_hot_auctions_receive_disproportionate_bids():
    cfg = NexmarkConfig(active_auctions=100, hot_auction_ratio=2, hot_auction_count=5)
    g = NexmarkGenerator(cfg, 0, 3)
    g.configure_strides(1)
    g.generate(0, 2000)  # warm up so the auction set is populated
    events = g.generate(1, 5000)
    newest = 0
    bids, hot = 0, 0
    for event in events:
        if isinstance(event, Auction):
            newest = event.id
        elif isinstance(event, Bid):
            bids += 1
            if newest - event.auction < 5:
                hot += 1
    # With ratio 2, roughly half the bids hit the 5 hottest of 100 active.
    assert hot > bids * 0.3


def test_make_generator_is_per_worker():
    generate = make_generator(NexmarkConfig(), num_workers=2, seed=1)
    a = generate(0, 0, 100)
    b = generate(1, 0, 100)
    person_ids_a = {e.id for e in a if isinstance(e, Person)}
    person_ids_b = {e.id for e in b if isinstance(e, Person)}
    assert not person_ids_a & person_ids_b
