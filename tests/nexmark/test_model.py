"""Tests for the NEXMark data model."""

import pytest

from repro.nexmark.model import Auction, Bid, Person, kind_of


def test_kind_of_dispatch():
    person = Person(id=1, name="n", email="e", city="c", state="OR", date_time=0)
    auction = Auction(id=1, item_name="i", initial_bid=1, reserve=2,
                      date_time=0, expires=10, seller=1, category=3)
    bid = Bid(auction=1, bidder=2, price=3, date_time=0)
    assert kind_of(person) == "person"
    assert kind_of(auction) == "auction"
    assert kind_of(bid) == "bid"
    with pytest.raises(TypeError):
        kind_of("not a record")


def test_records_are_immutable():
    bid = Bid(auction=1, bidder=2, price=3, date_time=0)
    with pytest.raises(AttributeError):
        bid.price = 99


def test_records_are_hashable_and_comparable():
    a = Bid(auction=1, bidder=2, price=3, date_time=0)
    b = Bid(auction=1, bidder=2, price=3, date_time=0)
    assert a == b
    assert len({a, b}) == 1
