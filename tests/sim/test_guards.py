"""Tests for the negative-balance guards on byte accounting.

A negative pool means a double release or a missed charge (fault paths are
the usual culprits).  The models clamp back to zero — keeping RSS metrics
sane — and, when fault tracing is on, publish an ``AccountingClamped``
warning so the bug is visible instead of silently absorbed.
"""

import pytest

from repro.runtime_events.bus import TraceLog
from repro.runtime_events.events import TOPIC_FAULTS, AccountingClamped
from repro.sim.engine import Simulator
from repro.sim.memory import MemoryModel
from repro.sim.network import Link, NetworkMessage


def test_memory_pools_clamp_and_warn():
    sim = Simulator()
    log = TraceLog(sim.trace, topics=(TOPIC_FAULTS,))
    memory = MemoryModel(base_bytes=10.0)
    memory.attach_trace(sim, "process[0]")

    memory.add_state(100.0)
    memory.add_state(-150.0)  # double release
    assert memory.state_bytes == 0.0
    assert memory.rss_bytes == 10.0

    memory.add_send_queue(-1.0)
    memory.add_recv_buffer(-1.0)
    memory.add_retained(-1.0)
    assert memory.send_queue_bytes == 0.0
    assert memory.recv_buffer_bytes == 0.0
    assert memory.retained_bytes == 0.0

    clamps = log.of_type(AccountingClamped)
    assert [e.pool for e in clamps] == [
        "state", "send_queue", "recv_buffer", "retained",
    ]
    assert all(e.owner == "process[0]" for e in clamps)
    assert clamps[0].value == pytest.approx(-50.0)


def test_memory_clamp_without_trace_is_silent():
    memory = MemoryModel()
    memory.add_state(-5.0)  # no attach_trace: clamp only, no publication
    assert memory.state_bytes == 0.0


def test_tiny_float_noise_not_reported():
    sim = Simulator()
    log = TraceLog(sim.trace, topics=(TOPIC_FAULTS,))
    memory = MemoryModel()
    memory.attach_trace(sim, "process[0]")
    memory.add_state(-1e-9)  # rounding noise, not an accounting bug
    assert memory.state_bytes == 0.0
    assert not log.of_type(AccountingClamped)


def test_link_queued_bytes_clamps_and_warns():
    sim = Simulator()
    log = TraceLog(sim.trace, topics=(TOPIC_FAULTS,))
    link = Link(
        sim, bandwidth_bytes_per_s=1e6, latency_s=0.001,
        src_process=0, dst_process=1,
    )
    message = NetworkMessage(
        src_worker=0, dst_worker=4, size_bytes=100.0, payload="x"
    )
    link.transmit(message, on_delivered=lambda m: None)
    # Simulate an external double-release of the queued bytes; the sent
    # callback then drives the counter negative.
    link.queued_bytes = 0.0
    sim.run()
    assert link.queued_bytes == 0.0
    clamps = log.of_type(AccountingClamped)
    assert len(clamps) == 1
    assert clamps[0].pool == "queued_bytes"
    assert clamps[0].owner == "link[0->1]"
    assert clamps[0].value == pytest.approx(-100.0)


def test_link_accounting_balanced_in_normal_operation():
    sim = Simulator()
    log = TraceLog(sim.trace, topics=(TOPIC_FAULTS,))
    link = Link(sim, bandwidth_bytes_per_s=1e6, latency_s=0.001)
    for _ in range(5):
        link.transmit(
            NetworkMessage(
                src_worker=0, dst_worker=4, size_bytes=100.0, payload="x"
            ),
            on_delivered=lambda m: None,
        )
    assert link.queued_bytes == pytest.approx(500.0)
    sim.run()
    assert link.queued_bytes == 0.0
    assert not log.of_type(AccountingClamped)
