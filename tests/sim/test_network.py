"""Tests for the cluster/network model."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Cluster, Link, NetworkMessage


def make_cluster(num_workers=8, workers_per_process=4, **kwargs):
    sim = Simulator()
    cluster = Cluster(sim, num_workers, workers_per_process, **kwargs)
    return sim, cluster


def test_process_grouping():
    _, cluster = make_cluster(num_workers=10, workers_per_process=4)
    assert len(cluster.processes) == 3
    assert cluster.processes[0].worker_ids == [0, 1, 2, 3]
    assert cluster.processes[2].worker_ids == [8, 9]
    assert cluster.process_of(5).index == 1


def test_invalid_sizes_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Cluster(sim, 0)
    with pytest.raises(ValueError):
        Cluster(sim, 4, workers_per_process=0)


def test_same_worker_delivery_is_immediate():
    sim, cluster = make_cluster()
    delivered = []
    msg = NetworkMessage(src_worker=0, dst_worker=0, size_bytes=100, payload="x")
    cluster.send(msg, lambda m: delivered.append(sim.now))
    sim.run()
    assert delivered == [0.0]


def test_intra_process_delivery_uses_fixed_latency():
    sim, cluster = make_cluster(intra_process_latency_s=1e-3)
    delivered = []
    msg = NetworkMessage(src_worker=0, dst_worker=1, size_bytes=1e9, payload="x")
    cluster.send(msg, lambda m: delivered.append(sim.now))
    sim.run()
    # Large payload but same process: no bandwidth term.
    assert delivered == [pytest.approx(1e-3)]


def test_cross_process_delivery_pays_bandwidth_and_latency():
    sim, cluster = make_cluster(
        bandwidth_bytes_per_s=1e6, network_latency_s=0.5
    )
    delivered = []
    msg = NetworkMessage(src_worker=0, dst_worker=4, size_bytes=1e6, payload="x")
    cluster.send(msg, lambda m: delivered.append(sim.now))
    sim.run()
    assert delivered == [pytest.approx(1.0 + 0.5)]


def test_link_serializes_backlogged_messages():
    sim, cluster = make_cluster(bandwidth_bytes_per_s=1e6, network_latency_s=0.0)
    delivered = []
    for _ in range(3):
        msg = NetworkMessage(src_worker=0, dst_worker=4, size_bytes=1e6, payload="x")
        cluster.send(msg, lambda m: delivered.append(sim.now))
    sim.run()
    assert delivered == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


def test_send_queue_bytes_charged_until_transmitted():
    sim, cluster = make_cluster(bandwidth_bytes_per_s=1e6, network_latency_s=0.0)
    proc0 = cluster.processes[0]
    msg = NetworkMessage(src_worker=0, dst_worker=4, size_bytes=2e6, payload="x")
    cluster.send(msg, lambda m: None)
    assert proc0.memory.send_queue_bytes == pytest.approx(2e6)
    sim.run(until=1.0)
    assert proc0.memory.send_queue_bytes == pytest.approx(2e6)
    sim.run()
    assert proc0.memory.send_queue_bytes == pytest.approx(0.0)
    assert proc0.memory.peak_bytes >= 2e6


def test_distinct_process_pairs_have_independent_links():
    sim, cluster = make_cluster(
        num_workers=12, workers_per_process=4,
        bandwidth_bytes_per_s=1e6, network_latency_s=0.0,
    )
    delivered = []
    cluster.send(
        NetworkMessage(src_worker=0, dst_worker=4, size_bytes=1e6, payload="a"),
        lambda m: delivered.append(("a", sim.now)),
    )
    cluster.send(
        NetworkMessage(src_worker=0, dst_worker=8, size_bytes=1e6, payload="b"),
        lambda m: delivered.append(("b", sim.now)),
    )
    sim.run()
    # Different destination processes: transfers proceed in parallel.
    assert delivered == [("a", pytest.approx(1.0)), ("b", pytest.approx(1.0))]


def test_link_direct_transmit_reports_delivery_time():
    sim = Simulator()
    link = Link(sim, bandwidth_bytes_per_s=100.0, latency_s=0.25)
    msg = NetworkMessage(0, 1, size_bytes=50.0, payload=None)
    delivery = link.transmit(msg, lambda m: None)
    assert delivery == pytest.approx(0.5 + 0.25)
    assert link.queued_bytes == pytest.approx(50.0)
    sim.run()
    assert link.queued_bytes == pytest.approx(0.0)
