"""Unit and property tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("late"))
    sim.schedule(1.0, lambda: fired.append("early"))
    sim.run()
    assert fired == ["early", "late"]
    assert sim.now == 2.0


def test_ties_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(1.0, lambda i=i: fired.append(i))
    sim.run()
    assert fired == list(range(10))


def test_negative_delay_clamps_to_now():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    fired = []
    sim.schedule(-1.0, lambda: fired.append(True))
    sim.run()
    assert fired == [True]
    assert sim.now == 5.0


def test_schedule_at_in_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("cancelled"))
    sim.schedule(2.0, lambda: fired.append("kept"))
    event.cancel()
    sim.run()
    assert fired == ["kept"]


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(3.0, lambda: fired.append(3))
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 3]


def test_run_until_advances_clock_when_heap_empty():
    sim = Simulator()
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_events_scheduled_during_execution_fire():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(1.0, lambda: fired.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["outer", "inner"]
    assert sim.now == 2.0


def test_zero_delay_event_fires_at_same_time():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: fired.append(sim.now)))
    sim.run()
    assert fired == [1.0]


def test_max_events_limits_execution():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i), lambda i=i: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_peek_time_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.peek_time() == 2.0


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 4


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_property_fires_in_nondecreasing_time(delays):
    sim = Simulator()
    observed = []
    for d in delays:
        sim.schedule(d, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100), st.integers(0, 99)),
        min_size=1,
        max_size=40,
    )
)
def test_property_equal_times_preserve_fifo(items):
    sim = Simulator()
    observed = []
    for time, tag in items:
        sim.schedule(time, lambda t=time, g=tag: observed.append((t, g)))
    sim.run()
    # Stable sort by time must equal the observed order, because ties fire
    # in scheduling order.
    assert observed == sorted(items, key=lambda x: x[0])


def test_heap_compaction_drops_cancelled_events():
    sim = Simulator()
    events = [sim.schedule(float(i), lambda: None) for i in range(300)]
    for event in events[:200]:
        event.cancel()
    # Compaction triggers once cancellations dominate the heap, so the
    # cancelled prefix must not linger until pop time.
    assert len(sim._heap) <= 150
    sim.run()
    assert sim.events_processed == 100
    assert sim.now == 299.0


def test_double_cancel_counts_once():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert sim._cancelled == 1
    sim.run()
    assert sim.events_processed == 0


def test_compaction_preserves_firing_order():
    sim = Simulator()
    fired = []
    keep = []
    for i in range(300):
        event = sim.schedule(1.0, lambda i=i: fired.append(i))
        if i % 3 == 0:
            keep.append(i)
        else:
            event.cancel()
    sim.run()
    # Ties fire in scheduling order even after the heap was rebuilt.
    assert fired == keep
