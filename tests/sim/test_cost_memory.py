"""Tests for the cost and memory models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.cost import CostModel
from repro.sim.memory import MemoryModel, MemoryTimeline


def test_cost_model_defaults_are_positive():
    cost = CostModel()
    assert cost.record_cost > 0
    assert cost.state_bytes(1000) == pytest.approx(1000 * cost.state_bytes_per_key)
    assert cost.serialize_cost(1e6) > 0
    assert cost.deserialize_cost(1e6) > 0


def test_with_overrides_returns_new_model():
    cost = CostModel()
    tweaked = cost.with_overrides(record_cost=1e-3)
    assert tweaked.record_cost == 1e-3
    assert cost.record_cost != 1e-3
    assert tweaked.batch_overhead == cost.batch_overhead


def test_route_cost_flat_until_cache_knee():
    cost = CostModel()
    assert cost.route_cost_for_bins(16) == cost.route_cost_for_bins(1 << 12)
    assert cost.route_cost_for_bins(1 << 20) > cost.route_cost_for_bins(1 << 12)


def test_route_cost_rejects_nonpositive_bins():
    with pytest.raises(ValueError):
        CostModel().route_cost_for_bins(0)


@given(st.integers(min_value=1, max_value=2**24))
def test_route_cost_monotone_in_bins(bins):
    cost = CostModel()
    assert cost.route_cost_for_bins(bins) <= cost.route_cost_for_bins(bins * 2)


def test_memory_model_accounting():
    mem = MemoryModel(base_bytes=100.0)
    assert mem.rss_bytes == 100.0
    mem.add_state(50.0)
    mem.add_send_queue(25.0)
    mem.add_recv_buffer(10.0)
    assert mem.rss_bytes == pytest.approx(185.0)
    mem.add_send_queue(-25.0)
    assert mem.rss_bytes == pytest.approx(160.0)
    assert mem.peak_bytes == pytest.approx(185.0)


def test_memory_timeline_queries():
    tl = MemoryTimeline(process=0)
    tl.record(0.0, 10.0)
    tl.record(1.0, 30.0)
    tl.record(2.0, 20.0)
    assert tl.peak() == 30.0
    assert tl.at(0.5) == 10.0
    assert tl.at(1.5) == 30.0
    assert tl.at(-1.0) == 0.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=50))
def test_memory_peak_never_below_current(deltas):
    mem = MemoryModel()
    for d in deltas:
        mem.add_state(d)
        assert mem.peak_bytes >= mem.rss_bytes
