"""Property tests for the simulation substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.network import Cluster, NetworkMessage


@given(
    st.lists(
        st.tuples(st.floats(min_value=1.0, max_value=1e6), st.integers(0, 3)),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=40, deadline=None)
def test_property_cross_process_delivery_is_fifo_per_link(messages):
    """Messages between one process pair arrive in send order."""
    sim = Simulator()
    cluster = Cluster(
        sim, num_workers=4, workers_per_process=2,
        bandwidth_bytes_per_s=1e6, network_latency_s=0.01,
    )
    arrivals = []
    for i, (size, _) in enumerate(messages):
        msg = NetworkMessage(src_worker=0, dst_worker=2, size_bytes=size, payload=i)
        cluster.send(msg, lambda m: arrivals.append(m.payload))
    sim.run()
    assert arrivals == list(range(len(messages)))


@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_property_simulation_replay_is_identical(delays):
    def run():
        sim = Simulator()
        trace = []
        for i, d in enumerate(delays):
            sim.schedule(d, lambda i=i: trace.append((sim.now, i)))
        sim.run()
        return trace, sim.events_processed

    assert run() == run()


@given(st.integers(1, 32), st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_property_every_worker_belongs_to_exactly_one_process(workers, per):
    sim = Simulator()
    cluster = Cluster(sim, num_workers=workers, workers_per_process=per)
    seen = []
    for process in cluster.processes:
        seen.extend(process.worker_ids)
    assert sorted(seen) == list(range(workers))
    for w in range(workers):
        assert w in cluster.process_of(w).worker_ids
