"""Tests for the migration-timeline analyzer.

The synthetic tests check the bookkeeping; the integration test checks the
load-bearing invariant: the five phases partition each bin's step duration
exactly, and for completion-paced fluid migrations the per-step totals sum
to the measured migration duration.
"""

import pytest

from repro.harness.experiment import ExperimentConfig, run_count_experiment
from repro.runtime_events import (
    BinMigrationPlanned,
    BinStateExtracted,
    BinStateInstalled,
    MigrationStepCompleted,
    MigrationStepIssued,
    MigrationTrace,
    TraceBus,
)


def _synthetic_trace():
    bus = TraceBus()
    trace = MigrationTrace(bus)
    bus.publish(MigrationStepIssued(time=100, moves=1, at=1.0))
    bus.publish(
        BinMigrationPlanned(name="op", time=100, bin=3, src=0, dst=1, at=1.01)
    )
    bus.publish(
        BinStateExtracted(
            name="op", time=100, bin=3, src=0, dst=1,
            size_bytes=1000.0, serialize_s=0.02, at=1.1,
        )
    )
    bus.publish(
        BinStateInstalled(
            name="op", time=100, bin=3, worker=1,
            size_bytes=1000.0, deserialize_s=0.01, at=1.3,
        )
    )
    bus.publish(MigrationStepCompleted(time=100, at=1.5))
    return trace


def test_synthetic_phase_partition():
    breakdown = _synthetic_trace().phase_breakdown()
    assert breakdown.incomplete == 0
    (row,) = breakdown.rows
    assert row.bin == 3
    assert row.src == 0 and row.dst == 1
    assert row.drain_s == pytest.approx(0.1)  # 1.0 -> 1.1
    assert row.extract_s == pytest.approx(0.02)
    assert row.ship_s == pytest.approx(1.3 - 1.12)
    assert row.install_s == pytest.approx(0.01)
    assert row.catchup_s == pytest.approx(1.5 - 1.31)
    assert row.total_s == pytest.approx(0.5)  # exactly issued -> completed
    assert breakdown.total_duration() == pytest.approx(0.5)


def test_synthetic_step_duration_query():
    trace = _synthetic_trace()
    assert trace.step_duration(100) == pytest.approx(0.5)
    assert trace.step_duration(999) is None


def test_incomplete_bins_are_counted_not_rowed():
    bus = TraceBus()
    trace = MigrationTrace(bus)
    bus.publish(MigrationStepIssued(time=100, moves=1, at=1.0))
    bus.publish(
        BinStateExtracted(
            name="op", time=100, bin=5, src=0, dst=1,
            size_bytes=10.0, serialize_s=0.0, at=1.1,
        )
    )
    # Never installed, never completed.
    breakdown = trace.phase_breakdown()
    assert breakdown.rows == []
    assert breakdown.incomplete == 1


def _traced_config(strategy="fluid"):
    return ExperimentConfig(
        num_workers=4,
        workers_per_process=2,
        num_bins=32,
        domain=20_000,
        rate=4000.0,
        duration_s=4.0,
        migrate_at_s=(1.5,),
        strategy=strategy,
        collect_trace=True,
    )


def test_experiment_phase_partition_matches_step_durations():
    result = run_count_experiment(_traced_config())
    trace = result.migration_trace
    assert trace is not None
    breakdown = trace.phase_breakdown()
    assert breakdown.rows, "fluid migration should move bins"
    assert breakdown.incomplete == 0

    # Every phase is a real (non-negative) interval.
    for row in breakdown.rows:
        for value in row.phase_values():
            assert value >= -1e-12

    # Each bin's phases partition its step's measured duration exactly.
    steps = {s.time: s for s in result.migrations[0].steps}
    for row in breakdown.rows:
        assert row.total_s == pytest.approx(steps[row.time].duration, abs=1e-12)

    # Fluid + completion pacing + zero gap: per-step totals sum to the
    # measured migration duration (the acceptance identity).
    assert breakdown.total_duration() == pytest.approx(
        result.migration_duration(0), abs=1e-9
    )


def test_experiment_trace_absent_without_collect_trace():
    cfg = _traced_config()
    cfg.collect_trace = False
    result = run_count_experiment(cfg)
    assert result.migration_trace is None
