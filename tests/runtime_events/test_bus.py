"""Unit tests for the trace bus and its recording subscriber."""

import pytest

from repro.runtime_events import (
    TOPIC_MIGRATION,
    TOPIC_NETWORK,
    TOPICS,
    MessageEnqueued,
    MessageTransmitted,
    MigrationStepCompleted,
    TraceBus,
    TraceLog,
)


def test_wants_flags_default_false():
    bus = TraceBus()
    for topic in TOPICS:
        assert getattr(bus, f"wants_{topic}") is False
    assert bus.active_topics() == ()


def test_subscribe_sets_and_unsubscribe_clears_wants_flag():
    bus = TraceBus()
    unsubscribe = bus.subscribe(lambda e: None, topics=(TOPIC_NETWORK,))
    assert bus.wants_network is True
    assert bus.wants_migration is False
    assert bus.active_topics() == (TOPIC_NETWORK,)
    unsubscribe()
    assert bus.wants_network is False
    assert bus.active_topics() == ()


def test_publish_routes_by_topic():
    bus = TraceBus()
    network, migration = [], []
    bus.subscribe(network.append, topics=(TOPIC_NETWORK,))
    bus.subscribe(migration.append, topics=(TOPIC_MIGRATION,))
    sent = MessageEnqueued(src_worker=0, dst_worker=1, size_bytes=10.0, at=0.5)
    done = MigrationStepCompleted(time=100, at=0.7)
    bus.publish(sent)
    bus.publish(done)
    assert network == [sent]
    assert migration == [done]


def test_subscribe_all_topics_by_default():
    bus = TraceBus()
    seen = []
    bus.subscribe(seen.append)
    for topic in TOPICS:
        assert getattr(bus, f"wants_{topic}") is True
    bus.publish(MessageEnqueued(src_worker=0, dst_worker=1, size_bytes=1.0, at=0.0))
    bus.publish(MigrationStepCompleted(time=1, at=0.0))
    assert len(seen) == 2


def test_unknown_topic_rejected():
    bus = TraceBus()
    with pytest.raises(ValueError, match="unknown trace topic"):
        bus.subscribe(lambda e: None, topics=("bogus",))


def test_wants_flag_survives_other_subscriber_leaving():
    bus = TraceBus()
    first = bus.subscribe(lambda e: None, topics=(TOPIC_NETWORK,))
    bus.subscribe(lambda e: None, topics=(TOPIC_NETWORK,))
    first()
    assert bus.wants_network is True


def test_trace_log_records_in_order_and_filters_by_type():
    bus = TraceBus()
    log = TraceLog(bus, topics=(TOPIC_NETWORK,))
    a = MessageEnqueued(src_worker=0, dst_worker=1, size_bytes=1.0, at=0.1)
    b = MessageTransmitted(src_worker=0, dst_worker=1, size_bytes=1.0, at=0.2)
    bus.publish(a)
    bus.publish(b)
    bus.publish(MigrationStepCompleted(time=1, at=0.3))  # other topic: unseen
    assert log.events == [a, b]
    assert log.of_type(MessageTransmitted) == [b]
    assert len(log) == 2
    log.close()
    bus.publish(a)
    assert len(log) == 2


def test_events_are_frozen():
    event = MessageEnqueued(src_worker=0, dst_worker=1, size_bytes=1.0, at=0.0)
    with pytest.raises(AttributeError):
        event.size_bytes = 2.0
