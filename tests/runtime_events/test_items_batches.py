"""``DestinationBatch`` carriers and ``batch_record_count`` accounting."""

from repro.runtime_events.items import DestinationBatch, batch_record_count


def test_plain_lists_count_by_len():
    assert batch_record_count([]) == 0
    assert batch_record_count([("k", 1), ("k", 2)]) == 2


def test_grouped_batches_count_underlying_records():
    batches = [
        DestinationBatch(dst=0, count=3, bins={1: [(0, "a"), (0, "b")], 2: [(0, "c")]}),
        DestinationBatch(dst=2, count=1, bins={5: [(0, "d")]}),
    ]
    assert batch_record_count(batches) == 4


def test_count_field_is_authoritative_for_costing():
    # The carrier's count — not the number of carriers — is what cost
    # models must see; one carrier can hold arbitrarily many records.
    batch = DestinationBatch(dst=1, count=100, bins={})
    assert batch_record_count([batch]) == 100
