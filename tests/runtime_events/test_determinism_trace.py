"""Attaching trace subscribers must not perturb the simulation.

The bus contract says subscribers are pure observers; these tests enforce it
end to end: identical seeds produce bit-identical outputs, event counts, and
latency series whether or not a subscriber — even one recording every topic —
is attached.
"""

from repro.harness.experiment import ExperimentConfig, run_count_experiment
from repro.runtime_events import TraceLog
from tests.megaphone.driver import drive_wordcount


def _wordcount_fingerprint(run):
    sim = run.runtime.sim
    steps = [
        (s.time, s.moves, s.issued_at, s.completed_at) for s in run.result.steps
    ]
    return (
        repr(run.outputs),
        repr(run.applications),
        repr(steps),
        sim.events_processed,
        sim.now,
    )


def test_all_topic_subscriber_does_not_change_wordcount():
    base = drive_wordcount(strategy="fluid")

    captured = {}

    def instrument(runtime):
        captured["log"] = TraceLog(runtime.sim.trace)  # every topic

    traced = drive_wordcount(strategy="fluid", instrument=instrument)

    assert _wordcount_fingerprint(base) == _wordcount_fingerprint(traced)
    # The subscriber really did observe the run.
    assert len(captured["log"]) > 0


def _experiment_fingerprint(result):
    steps = [
        (s.time, s.moves, s.issued_at, s.completed_at)
        for m in result.migrations
        for s in m.steps
    ]
    return (
        result.timeline.series(),
        repr(steps),
        result.records_injected,
        result.sim_events,
    )


def test_collect_trace_does_not_change_experiment_series():
    def run(collect):
        cfg = ExperimentConfig(
            num_workers=4,
            workers_per_process=2,
            num_bins=16,
            domain=10_000,
            rate=3000.0,
            duration_s=3.0,
            migrate_at_s=(1.0,),
            strategy="batched",
            batch_size=4,
            collect_trace=collect,
        )
        return run_count_experiment(cfg)

    plain = run(False)
    traced = run(True)
    assert _experiment_fingerprint(plain) == _experiment_fingerprint(traced)
    assert traced.migration_trace.phase_breakdown().rows
