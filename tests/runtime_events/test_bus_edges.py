"""Edge-case tests for TraceBus pinned by the obsv subsystem.

The observability layer leans on three bus properties beyond the basics
covered in ``test_bus.py``: detaching an observer restores the zero-cost
publish path exactly, ``active_topics`` reports in canonical TOPICS
order, and multiple subscribers see events in a deterministic order.
"""

from repro.runtime_events import (
    TOPICS,
    MessageEnqueued,
    MigrationStepCompleted,
    TraceBus,
)
from repro.runtime_events.events import (
    TOPIC_BATCH,
    TOPIC_MIGRATION,
    TOPIC_NETWORK,
)


def _event(at=0.1):
    return MessageEnqueued(src_worker=0, dst_worker=1, size_bytes=1.0, at=at)


def test_unsubscribe_restores_zero_cost_publish_path():
    bus = TraceBus()
    baseline = {t: getattr(bus, f"wants_{t}") for t in TOPICS}
    seen = []
    unsubscribe = bus.subscribe(seen.append)  # all topics
    assert all(getattr(bus, f"wants_{t}") for t in TOPICS)
    unsubscribe()
    # Every wants_* flag is back to its pristine value: publish sites
    # guarded by the flag allocate nothing again.
    assert {t: getattr(bus, f"wants_{t}") for t in TOPICS} == baseline
    assert bus.active_topics() == ()
    bus.publish(_event())  # no subscriber: delivered to nobody
    assert seen == []


def test_unsubscribe_is_idempotent():
    bus = TraceBus()
    unsubscribe = bus.subscribe(lambda e: None, topics=(TOPIC_NETWORK,))
    unsubscribe()
    unsubscribe()  # second call must be a harmless no-op
    assert bus.wants_network is False


def test_active_topics_follow_canonical_order():
    bus = TraceBus()
    # Subscribe in an order unlike TOPICS; the report must not follow it.
    bus.subscribe(lambda e: None, topics=(TOPIC_MIGRATION,))
    bus.subscribe(lambda e: None, topics=(TOPIC_BATCH,))
    bus.subscribe(lambda e: None, topics=(TOPIC_NETWORK,))
    active = bus.active_topics()
    assert set(active) == {TOPIC_BATCH, TOPIC_NETWORK, TOPIC_MIGRATION}
    assert list(active) == [t for t in TOPICS if t in active]


def test_multi_subscriber_delivery_order_is_subscription_order():
    bus = TraceBus()
    calls = []
    bus.subscribe(lambda e: calls.append(("first", e)), topics=(TOPIC_NETWORK,))
    bus.subscribe(lambda e: calls.append(("second", e)), topics=(TOPIC_NETWORK,))
    bus.subscribe(lambda e: calls.append(("third", e)), topics=(TOPIC_NETWORK,))
    event = _event()
    bus.publish(event)
    assert [name for name, _ in calls] == ["first", "second", "third"]
    assert all(e is event for _, e in calls)


def test_middle_unsubscribe_preserves_remaining_order():
    bus = TraceBus()
    calls = []
    bus.subscribe(lambda e: calls.append("first"), topics=(TOPIC_NETWORK,))
    second = bus.subscribe(
        lambda e: calls.append("second"), topics=(TOPIC_NETWORK,)
    )
    bus.subscribe(lambda e: calls.append("third"), topics=(TOPIC_NETWORK,))
    second()
    bus.publish(_event())
    assert calls == ["first", "third"]
    assert bus.wants_network is True  # others still listening


def test_same_callback_on_disjoint_topics_detaches_cleanly():
    bus = TraceBus()
    seen = []
    unsubscribe = bus.subscribe(
        seen.append, topics=(TOPIC_NETWORK, TOPIC_MIGRATION)
    )
    bus.publish(_event())
    bus.publish(MigrationStepCompleted(time=1, at=0.2))
    assert len(seen) == 2
    unsubscribe()
    assert bus.wants_network is False
    assert bus.wants_migration is False
    bus.publish(_event())
    assert len(seen) == 2
