"""Unit tests of the columnar batch kernels (both representations).

Every kernel in ``repro.runtime_events.columns`` carries a bit-exactness
contract against its scalar reference; these tests pin the contract for the
active (numpy) representation and — by monkeypatching the module-global
``_np`` to ``None`` — for the pure-``array`` fallback, so the optional
numpy dependency can disappear without changing a single simulated bit.
"""

from __future__ import annotations

import pytest

from repro.harness.openloop import Lcg
from repro.runtime_events import columns
from repro.runtime_events.columns import ColumnBatch, VectorLcg
from repro.runtime_events.items import DestinationBatch, batch_record_count


@pytest.fixture(params=["active", "fallback"])
def representation(request, monkeypatch):
    """Run a test under the active representation and the array fallback."""
    if request.param == "fallback":
        monkeypatch.setattr(columns, "_np", None)
    return request.param


def _scalar_bin(key: int, shift: int) -> int:
    mask = (1 << 64) - 1
    value = (key + 0x9E3779B97F4A7C15) & mask
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & mask
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & mask
    return (value ^ (value >> 31)) >> shift


def test_roundtrip_kv(representation):
    records = [(7, 1), (2**63 + 5, -3), (0, 1), (123456789, 42)]
    batch = ColumnBatch.from_records(records)
    assert len(batch) == 4
    assert batch.to_records() == records
    assert list(batch) == records
    assert batch.key_list() == [r[0] for r in records]
    assert batch_record_count(batch) == 4


def test_roundtrip_objects(representation):
    objs = ["a", "b", "c"]
    batch = ColumnBatch.from_objects(objs, [10, 20, 30])
    assert batch.to_records() == objs
    assert batch.key_list() == [10, 20, 30]


def test_take_and_slice(representation):
    records = [(k, k * 2) for k in range(10)]
    batch = ColumnBatch.from_records(records)
    sel = columns.make_index_vector([1, 3, 5])
    taken = batch.take(sel)
    assert taken.to_records() == [records[1], records[3], records[5]]
    sliced = batch.slice(2, 5)
    assert sliced.to_records() == records[2:5]


def test_concat(representation):
    a = ColumnBatch.from_records([(1, 1), (2, 1)])
    b = ColumnBatch.from_records([(3, 1)])
    merged = ColumnBatch.concat([a, b])
    assert merged.to_records() == [(1, 1), (2, 1), (3, 1)]


def test_bin_ids_match_scalar_splitmix(representation):
    keys = [0, 1, 2**64 - 1, 0x9E3779B97F4A7C15, 424242, 2**63]
    shift = 64 - 8  # 256 bins
    batch = ColumnBatch.from_kv(keys, [1] * len(keys))
    got = list(columns.bin_ids_for(batch.keys, shift))
    assert [int(b) for b in got] == [_scalar_bin(k, shift) for k in keys]


def test_bin_ids_single_bin(representation):
    batch = ColumnBatch.from_kv([5, 6], [1, 1])
    assert [int(b) for b in columns.bin_ids_for(batch.keys, 64)] == [0, 0]


def test_vector_lcg_matches_scalar(representation):
    seed = 1000003 * 7 + 3
    scalar = Lcg(seed)
    vector = VectorLcg(seed)
    expected = [scalar.next() for _ in range(40)]
    got = list(vector.next_batch(25)) + list(vector.next_batch(15))
    assert [int(v) for v in got] == expected


def test_vector_lcg_empty_batch(representation):
    vector = VectorLcg(9)
    assert len(vector.next_batch(0)) == 0


def test_split_by_destination_first_occurrence_order(representation):
    dsts = columns.make_index_vector([2, 0, 2, 1, 0, 2])
    order, bounds = columns.split_by_destination(dsts)
    assert [dst for dst, _lo, _hi in bounds] == [2, 0, 1]
    seen = []
    for dst, lo, hi in bounds:
        positions = [int(order[i]) for i in range(lo, hi)]
        # Within a destination, arrival order is preserved.
        assert positions == sorted(positions)
        seen.extend(positions)
    assert sorted(seen) == list(range(6))


def test_split_by_destination_single_destination(representation):
    dsts = columns.make_index_vector([3, 3, 3])
    order, bounds = columns.split_by_destination(dsts)
    assert order is None
    assert bounds == [(3, 0, 3)]


def test_split_by_destination_empty(representation):
    order, bounds = columns.split_by_destination(columns.make_index_vector([]))
    assert order is None
    assert bounds == []


def test_group_by_bin_sorted(representation):
    bins = columns.make_index_vector([5, 1, 5, 1, 9])
    order, ubins, starts = columns.group_by_bin_sorted(bins)
    assert ubins == [1, 5, 9]
    assert starts == [0, 2, 4, 5]
    assert [int(order[i]) for i in range(5)] == [1, 3, 0, 2, 4]


def test_group_by_bin_sorted_empty(representation):
    order, ubins, starts = columns.group_by_bin_sorted(
        columns.make_index_vector([])
    )
    assert list(order) == []
    assert ubins == []
    assert starts == [0]


def test_active_representation_names():
    assert columns.active_representation() in (
        "columnar-numpy",
        "columnar-array",
    )


def test_fallback_representation_name(monkeypatch):
    monkeypatch.setattr(columns, "_np", None)
    assert columns.active_representation() == "columnar-array"
    assert not columns.numpy_active()


def test_fallback_columns_are_stdlib_arrays(monkeypatch):
    from array import array

    monkeypatch.setattr(columns, "_np", None)
    batch = ColumnBatch.from_records([(1, 2), (3, 4)])
    assert isinstance(batch.keys, array)
    assert isinstance(batch.vals, array)
    assert batch.to_records() == [(1, 2), (3, 4)]


def test_import_without_numpy_selects_fallback(monkeypatch):
    """Executing the module with numpy unimportable lands on the fallback.

    Loaded under a throwaway name so the shared module object (and every
    ``from columns import ...`` binding elsewhere) stays untouched.
    """
    import importlib.util
    import sys

    monkeypatch.setitem(sys.modules, "numpy", None)
    spec = importlib.util.spec_from_file_location(
        "repro_columns_no_numpy", columns.__file__
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module._np is None
    assert module.active_representation() == "columnar-array"
    batch = module.ColumnBatch.from_records([(1, 2), (3, 4)])
    assert batch.to_records() == [(1, 2), (3, 4)]


def test_destination_batch_count_over_mixed_layouts(representation):
    colbatch = ColumnBatch.from_records([(1, 1), (2, 1), (3, 1)])
    grouped = [
        DestinationBatch(dst=0, count=3, bin_ids=None, columns=colbatch),
        DestinationBatch(dst=1, count=2, bins={4: [(0, (9, 1)), (0, (9, 1))]}),
    ]
    assert batch_record_count(grouped) == 5
    assert batch_record_count([(1, 1), (2, 1)]) == 2
