"""Suite-wide fixtures: a per-test wall-clock timeout.

Fault-injection tests drive event loops that, on a liveness bug, would spin
forever rather than fail.  Each test therefore runs under a SIGALRM-based
deadline (``REPRO_TEST_TIMEOUT_S`` seconds, default 120) so a wedged run
aborts with a stack trace instead of hanging CI.  Implemented with the
standard library only; on platforms without SIGALRM (or off the main
thread) the guard degrades to a no-op.
"""

import os
import signal
import threading

import pytest

DEFAULT_TIMEOUT_S = 120


class TestTimeout(Exception):
    """Raised in-test when the per-test deadline expires."""


@pytest.fixture(autouse=True)
def _per_test_timeout(request):
    timeout_s = int(os.environ.get("REPRO_TEST_TIMEOUT_S", DEFAULT_TIMEOUT_S))
    if (
        timeout_s <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):
        raise TestTimeout(
            f"{request.node.nodeid} exceeded {timeout_s}s "
            "(REPRO_TEST_TIMEOUT_S) — likely a liveness bug: the event loop "
            "kept running without the test's exit condition becoming true"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(timeout_s)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
