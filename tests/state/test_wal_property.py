"""Property tests for WAL recovery: truncation always yields a valid prefix.

The crash-consistency claim, stated as a property: however the log is cut —
at any byte offset, torn, or bit-flipped — recovery parses a checksum-valid
*prefix* of the original frame sequence and rebuilds exactly the state that
prefix implies.  No cut can make replay invent, reorder, or corrupt state.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.state.wal import (
    K_CREATE,
    K_DELETE,
    K_DROP,
    K_PUT,
    WorkerWal,
    replay_frames,
)

# One logical operation: (op, bin, key, value) with small domains so ops
# collide on bins/keys (creates, overwrites, deletes, drops all interleave).
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["create", "put", "delete", "drop"]),
        st.integers(0, 3),
        st.integers(0, 5),
        st.integers(-100, 100),
    ),
    min_size=1,
    max_size=60,
)


def _build_log(ops, sync_at=None, segment_bytes=256):
    """Fold an op list into a WorkerWal the way WalBackend frames it.

    ``sync_at`` places the fsync horizon after that many ops (default: all
    of them).
    """
    wal = WorkerWal(0, segment_bytes=segment_bytes)
    live = set()
    for epoch, (op, bin_id, key, value) in enumerate(ops):
        if op == "create":
            if bin_id not in live:
                live.add(bin_id)
                wal.append(K_CREATE, (bin_id, epoch))
        elif op == "drop":
            if bin_id in live:
                live.discard(bin_id)
                wal.append(K_DROP, (bin_id, epoch))
        elif bin_id in live:
            if op == "put":
                wal.append(K_PUT, (bin_id, epoch, key, value))
            else:
                wal.append(K_DELETE, (bin_id, epoch, key))
        if sync_at is not None and epoch + 1 == sync_at:
            wal.sync()
    if sync_at is None:
        wal.sync()
    return wal


def _fold(frames):
    """Independent reference fold of a frame sequence (dict bins only)."""
    bins = {}
    for kind, record in frames:
        bin_id = record[0]
        if kind == K_CREATE:
            bins[bin_id] = {}
        elif kind == K_DROP:
            bins.pop(bin_id, None)
        elif kind == K_PUT and bin_id in bins:
            bins[bin_id][record[2]] = record[3]
        elif kind == K_DELETE and bin_id in bins:
            bins[bin_id].pop(record[2], None)
    return bins


def _replayed_state(frames):
    bins, _ = replay_frames(frames, dict)
    return {b: dict(e.state) for b, e in bins.items()}


@settings(max_examples=60, deadline=None)
@given(ops=_OPS, cut=st.floats(0.0, 1.0))
def test_any_byte_truncation_recovers_a_valid_prefix(ops, cut):
    full_frames, full_recovery = _build_log(ops).scan()
    assert full_recovery.clean

    wal = _build_log(ops)
    offset = int(cut * wal.total_bytes())
    wal._truncate_to(offset)
    frames, recovery = wal.scan()

    # Whatever survived parses as an exact prefix of the original sequence,
    # and replay rebuilds exactly the state that prefix implies.
    assert frames == full_frames[: len(frames)]
    assert _replayed_state(frames) == _fold(frames)
    # A cut through the middle of a frame is detected, never absorbed.
    if recovery.truncated_bytes:
        assert recovery.torn_frame
    # The scan repaired the log: a second scan is clean and idempotent.
    again, second = wal.scan()
    assert again == frames
    assert second.clean


@settings(max_examples=40, deadline=None)
@given(ops=_OPS, seed=st.integers(0, 2**16), flips=st.integers(1, 4))
def test_bit_flips_never_corrupt_the_replayed_prefix(ops, seed, flips):
    full_frames, _ = _build_log(ops).scan()

    wal = _build_log(ops)
    wal.apply_crash(bit_flips=flips, rng=random.Random(seed))
    frames, recovery = wal.scan()

    # CRC catches damage: replay never yields a non-prefix, and if any
    # frame was lost the damage is reported, not silently absorbed.
    assert frames == full_frames[: len(frames)]
    if len(frames) < len(full_frames):
        assert not recovery.clean
    assert _replayed_state(frames) == _fold(frames)


@settings(max_examples=40, deadline=None)
@given(
    ops=_OPS,
    sync_fraction=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**16),
    torn=st.booleans(),
    lose_tail=st.booleans(),
)
def test_crash_fault_combinations_preserve_the_synced_prefix(
    ops, sync_fraction, seed, torn, lose_tail
):
    sync_at = int(sync_fraction * len(ops))
    synced_frames, _ = _build_log(ops[:sync_at]).scan()

    wal = _build_log(ops, sync_at=sync_at)
    wal.apply_crash(
        lose_unsynced_tail=lose_tail,
        torn_write=torn,
        rng=random.Random(seed),
    )
    frames, recovery = wal.scan()

    # Everything behind the fsync horizon survives any crash verbatim.
    assert frames[: len(synced_frames)] == synced_frames
    assert _replayed_state(frames) == _fold(frames)
    if recovery.truncated_bytes:
        assert recovery.torn_frame or recovery.corrupt_frame
