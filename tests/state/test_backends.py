"""Backend unit tests: lifecycle, residency errors, spill/promote, compaction,
and the registry's unknown-name behavior."""

import pytest

from repro.megaphone.bins import BinStore
from repro.state import (
    BinNotResident,
    DictBackend,
    LogState,
    ModeledCodec,
    SortedLogBackend,
    StateBackend,
    TieredSpillBackend,
    backend_names,
    codec_names,
    make_backend,
    register_backend,
    resolve_backend,
    resolve_codec,
)


def _size_fn(state):
    return len(state) * 8


def _backend(name, **options):
    return make_backend(name, dict, _size_fn, codec="modeled", options=options)


@pytest.mark.parametrize("name", ["dict", "sorted-log", "tiered", "wal"])
def test_backend_lifecycle(name):
    backend = _backend(name)
    backend.create_bin(3)
    assert backend.has_bin(3)
    assert backend.bin_ids() == [3]
    backend.put(3, "k", 1)
    backend.put(3, "j", 2)
    assert backend.get(3, "k") == 1
    assert backend.get(3, "missing", 99) == 99
    assert dict(backend.items(3)) == {"k": 1, "j": 2}
    backend.delete(3, "j")
    assert backend.bin_stats(3).keys == 1
    assert backend.state_bytes(3) >= 8
    with pytest.raises(ValueError):
        backend.create_bin(3)
    backend.drop_bin(3)
    assert not backend.has_bin(3)


@pytest.mark.parametrize("name", ["dict", "sorted-log", "tiered", "wal"])
def test_extract_install_round_trip(name):
    backend = _backend(name)
    backend.create_bin(0)
    backend.put(0, 1, 10)
    backend.put(0, 2, 20)
    payload = backend.extract_bin(0, remove=True)
    assert not backend.has_bin(0)
    assert payload.keys == 2 or name == "tiered"  # tiered reports 0 for cold
    other = _backend(name)
    other.install_bin(payload)
    assert dict(other.items(0)) == {1: 10, 2: 20}


def test_bin_not_resident_error_names_the_disagreement():
    store = BinStore(num_bins=8, state_factory=dict, worker_id=3)
    store.create(1)
    store.create(5)
    with pytest.raises(BinNotResident) as excinfo:
        store.get(2)
    message = str(excinfo.value)
    assert "bin 2" in message
    assert "worker 3" in message
    assert "1" in message and "5" in message  # the resident set
    assert excinfo.value.bin_id == 2
    assert excinfo.value.worker == 3
    assert set(excinfo.value.resident) == {1, 5}
    # take() goes through the same residency check.
    with pytest.raises(BinNotResident):
        store.take(2)
    # BinNotResident is a KeyError, so pre-existing handlers still work.
    assert isinstance(excinfo.value, KeyError)


def test_tiered_spills_coldest_bin_first():
    backend = _backend("tiered", hot_capacity_bytes=40)
    for bin_id in range(3):
        backend.create_bin(bin_id)
        for k in range(2):
            backend.put(bin_id, k, k)  # 16 bytes per bin
    # Touch 0 and 2 so bin 1 is the coldest.
    backend.state_of(0)
    backend.state_of(2)
    backend.create_bin(3)
    backend.put(3, 1, 1)  # pushes resident past 40 bytes
    assert backend.spills >= 1
    stats = {b: backend.bin_stats(b) for b in backend.bin_ids()}
    assert not stats[1].resident  # the coldest was evicted
    assert backend.spilled_bytes() > 0
    assert backend.resident_bytes() <= 40
    # Touching the spilled bin promotes it back (and may evict another).
    assert dict(backend.items(1)) == {0: 0, 1: 1}
    assert backend.promotions >= 1
    assert backend.bin_stats(1).resident


def test_tiered_spill_order_is_deterministic():
    def build():
        backend = _backend("tiered", hot_capacity_bytes=64)
        for bin_id in range(8):
            backend.create_bin(bin_id)
            backend.put(bin_id, bin_id, bin_id)
            backend.put(bin_id, -bin_id - 1, 0)
        return backend

    first, second = build(), build()
    assert [first.bin_stats(b).resident for b in range(8)] == [
        second.bin_stats(b).resident for b in range(8)
    ]
    assert first.spills == second.spills


def test_tiered_extract_ships_cold_payload_without_promotion():
    backend = _backend("tiered", hot_capacity_bytes=8)
    backend.create_bin(0)
    backend.put(0, 1, 10)
    backend.create_bin(1)
    backend.put(1, 2, 20)
    backend.note_applied(1)  # re-enforce capacity: spills the colder bin 0
    assert not backend.bin_stats(0).resident
    promotions = backend.promotions
    payload = backend.extract_bin(0, remove=True)
    assert backend.promotions == promotions  # shipped cold, not promoted
    assert payload.state_bytes == 8
    other = _backend("dict")
    other.install_bin(payload)
    assert dict(other.items(0)) == {1: 10}


def test_sorted_log_compacts_after_threshold():
    backend = _backend("sorted-log", compact_threshold=8)
    backend.create_bin(0)
    state = backend.state_of(0)
    assert isinstance(state, LogState)
    for i in range(20):
        state[i % 4] = i
        backend.note_applied(0)
    assert backend.compactions >= 1
    assert dict(state.items()) == {0: 16, 1: 17, 2: 18, 3: 19}
    # Uncompacted tail entries carry modeled log overhead...
    assert backend.state_bytes(0) == 4 * 8 + state.log_len * 16
    # ...which disappears once the log folds into the base.
    state.compact()
    assert backend.state_bytes(0) == 4 * 8


def test_sorted_log_tombstones_delete_across_compaction():
    state = LogState()
    state["a"] = 1
    state["b"] = 2
    state.compact()
    del state["a"]
    assert "a" not in state
    assert len(state) == 1
    state.compact()
    assert dict(state.items()) == {"b": 2}
    with pytest.raises(KeyError):
        del state["a"]


def test_sorted_log_extract_materializes_flat_state():
    backend = _backend("sorted-log")
    backend.create_bin(0)
    backend.put(0, "x", 1)
    backend.put(0, "x", 2)
    payload = backend.extract_bin(0, remove=True)
    # The shipped payload is the compacted mapping, not the log.
    assert payload.payload == {"x": 2}
    assert payload.state_bytes == 8


def test_registry_lists_builtins_and_rejects_unknown_names():
    assert {"dict", "sorted-log", "tiered", "wal"} <= set(backend_names())
    assert {"modeled", "pickle", "struct"} <= set(codec_names())
    with pytest.raises(ValueError, match="dict, sorted-log, tiered, wal"):
        resolve_backend("rocksdb")
    with pytest.raises(ValueError, match="modeled"):
        resolve_codec("arrow")


def test_registry_rejects_conflicting_registration():
    class Impostor(StateBackend):
        name = "dict"

    with pytest.raises(ValueError, match="already registered"):
        register_backend(Impostor)
    # Re-registering the same class is idempotent.
    assert register_backend(DictBackend) is DictBackend
    assert resolve_backend("tiered") is TieredSpillBackend
    assert resolve_backend("sorted-log") is SortedLogBackend


def test_make_backend_drops_none_options():
    backend = make_backend(
        "tiered", dict, _size_fn,
        codec=ModeledCodec(),
        options={"hot_capacity_bytes": None},
    )
    assert backend.hot_capacity_bytes is None
    with pytest.raises(TypeError):
        make_backend("dict", dict, _size_fn, options={"hot_capacity_bytes": 8})
