"""Property tests: every backend x codec combination must round-trip bin
state through the single serialization path (extract -> encode -> wire ->
decode -> install) without loss."""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.state import make_backend, resolve_codec

BACKENDS = ["dict", "sorted-log", "tiered"]
CODECS = ["modeled", "pickle", "struct"]


def _size_fn(state):
    return len(state) * 8


def _build(backend_name, codec_name, **options):
    return make_backend(backend_name, dict, _size_fn, codec=codec_name, options=options)


# struct packs <qq pairs, so stay inside signed 64-bit range; bools are ints
# by inheritance and exercise the pickle fallback path.
int64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)
int_states = st.dictionaries(int64 | st.booleans(), int64, max_size=16)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("codec_name", CODECS)
@given(state=int_states)
@settings(max_examples=25, deadline=None)
def test_extract_install_round_trip(backend_name, codec_name, state):
    source = _build(backend_name, codec_name)
    source.create_bin(7)
    for key, value in state.items():
        source.put(7, key, value)

    payload = source.extract_bin(7, remove=True)
    assert not source.has_bin(7)
    assert payload.codec == codec_name
    assert payload.keys == len(state)

    # Snapshots and the chaos log pickle the payload itself; the wire hop
    # must not corrupt it.
    revived = pickle.loads(pickle.dumps(payload))
    assert revived.decode_state(copy=True) == state

    destination = _build(backend_name, codec_name)
    destination.install_bin(revived)
    assert dict(destination.items(7)) == state
    assert destination.bin_stats(7).keys == len(state)


@pytest.mark.parametrize("codec_name", CODECS)
@given(state=int_states)
@settings(max_examples=25, deadline=None)
def test_cross_backend_migration_preserves_state(codec_name, state):
    """A bin extracted from any backend installs into any other backend."""
    backends = [_build(name, codec_name) for name in BACKENDS]
    backends[0].create_bin(0)
    for key, value in state.items():
        backends[0].put(0, key, value)
    for source, destination in zip(backends, backends[1:] + backends[:1]):
        destination.install_bin(source.extract_bin(0, remove=True))
    assert dict(backends[0].items(0)) == state


# The modeled and pickle codecs take arbitrary picklable state, not just
# flat integer maps.
rich_states = st.dictionaries(
    st.integers() | st.text(max_size=4),
    st.integers() | st.lists(st.integers(), max_size=3),
    max_size=8,
)


@pytest.mark.parametrize("codec_name", ["modeled", "pickle"])
@given(state=rich_states)
@settings(max_examples=25, deadline=None)
def test_rich_state_round_trips(codec_name, state):
    codec = resolve_codec(codec_name)
    assert codec.decode(codec.encode(codec.copy(state))) == state


@given(state=int_states)
@settings(max_examples=15, deadline=None)
def test_tiered_cold_extract_round_trips(state):
    """Bins extracted straight from the cold tier still ship full state."""
    backend = _build("tiered", "struct", hot_capacity_bytes=8)
    backend.create_bin(0)
    for key, value in state.items():
        backend.put(0, key, value)
    backend.create_bin(1)
    backend.put(1, 0, 0)
    backend.note_applied(1)  # enforce capacity: bin 0 goes cold
    destination = _build("dict", "struct")
    destination.install_bin(backend.extract_bin(0, remove=True))
    assert dict(destination.items(0)) == state
