"""Codec unit tests: round trips, measured sizes, cost asymmetry."""

import pytest

from repro.sim.cost import CostModel
from repro.state import ModeledCodec, PickleCodec, StructCodec, resolve_codec

SAMPLE_STATES = [
    {},
    {1: 2, 3: -4},
    {-(1 << 62): 1 << 62},
    {"a": 1, "b": [1, 2]},
    {(1, 2): {"nested": True}},
]


@pytest.mark.parametrize("codec", [ModeledCodec(), PickleCodec(), StructCodec()])
@pytest.mark.parametrize("state", SAMPLE_STATES)
def test_encode_decode_round_trips(codec, state):
    assert codec.decode(codec.encode(state)) == state


@pytest.mark.parametrize("codec", [ModeledCodec(), PickleCodec(), StructCodec()])
def test_copy_is_independent(codec):
    state = {1: [10]} if codec.name != "struct" else {1: 10}
    clone = codec.copy(state)
    assert clone == state
    assert clone is not state


def test_modeled_codec_is_identity_with_modeled_sizes():
    codec = ModeledCodec()
    state = {1: 2}
    assert codec.encode(state) is state
    assert codec.decode(state) is state
    assert codec.measured_bytes(state) is None


def test_pickle_codec_measures_payload_bytes():
    codec = PickleCodec()
    payload = codec.encode({i: i for i in range(100)})
    assert codec.measured_bytes(payload) == len(payload)


def test_struct_codec_packs_int_maps_compactly():
    codec = StructCodec()
    # Full-width ints: pickle's varint opcodes win on tiny values, so the
    # compactness claim is about realistic 64-bit keys/counters.
    state = {i + (1 << 60): (i * 7) - (1 << 60) for i in range(64)}
    payload = codec.encode(state)
    # 1 tag byte + 16 bytes per entry, below pickle for the same map.
    assert len(payload) == 1 + 16 * len(state)
    assert len(payload) < len(PickleCodec().encode(state))
    assert codec.decode(payload) == state


def test_struct_codec_falls_back_to_pickle():
    codec = StructCodec()
    state = {"not": "packable"}
    payload = codec.encode(state)
    assert payload[:1] == b"P"
    assert codec.decode(payload) == state
    # Booleans are ints by inheritance but must not be silently packed
    # (they would decode as plain ints).
    assert codec.encode({True: 1})[:1] == b"P"


def test_struct_codec_cost_asymmetry():
    cost = CostModel()
    codec = StructCodec()
    n = 1 << 20
    assert codec.encode_cost(cost, n) == cost.serialize_cost(n) * 0.5
    assert codec.decode_cost(cost, n) == cost.deserialize_cost(n) * 1.25
    # The default codec keeps the seed's symmetric prices.
    modeled = ModeledCodec()
    assert modeled.encode_cost(cost, n) == cost.serialize_cost(n)
    assert modeled.decode_cost(cost, n) == cost.deserialize_cost(n)


def test_codecs_resolve_by_name():
    assert resolve_codec("modeled").name == "modeled"
    assert resolve_codec("pickle").name == "pickle"
    assert resolve_codec("struct").name == "struct"
