"""WAL backend unit tests: framing, crash faults, recovery, delta, compaction.

The crash-consistency headline lives here too: after a crash with a torn
final write and a lost unsynced tail, a replayed backend holds exactly the
state a fault-free backend holds at the same fsync horizon.
"""

import pickle
import zlib

import pytest

from repro.state import make_backend
from repro.state.wal import (
    _HEADER,
    _MAGIC,
    K_CKPT,
    K_CREATE,
    K_PUT,
    WalBackend,
    WalRegistry,
    WalState,
    WorkerWal,
    encode_frame,
    replay_frames,
)


def _size_fn(state):
    return len(state) * 8


def _wal_backend(registry=None, **options):
    if registry is not None:
        options["wal_registry"] = registry
    return make_backend("wal", dict, _size_fn, codec="modeled", options=options)


def _decode(frame: bytes):
    magic, kind, length, crc = _HEADER.unpack_from(frame, 0)
    body = frame[_HEADER.size : _HEADER.size + length]
    assert magic == _MAGIC
    assert zlib.crc32(body) == crc
    return kind, pickle.loads(body)


# -- framing ------------------------------------------------------------------


def test_frame_round_trip():
    frame = encode_frame(K_PUT, (3, 7, "key", 42))
    kind, record = _decode(frame)
    assert kind == K_PUT
    assert record == (3, 7, "key", 42)


def test_unknown_frame_kind_rejected():
    with pytest.raises(ValueError):
        encode_frame(99, (0, 0))


def test_append_rolls_segments_without_straddling():
    wal = WorkerWal(0, segment_bytes=128)
    for i in range(64):
        wal.append(K_PUT, (0, i, i, i))
    assert len(wal.segments) > 1
    # No frame straddles a boundary: each non-final segment parses cleanly
    # on its own.
    for seg in wal.segments:
        pos = 0
        data = bytes(seg)
        while pos < len(data):
            _, _, length, _ = _HEADER.unpack_from(data, pos)
            pos += _HEADER.size + length
        assert pos == len(data)


def test_sync_advances_horizon():
    wal = WorkerWal(0)
    wal.append(K_PUT, (0, 1, "a", 1))
    assert wal.unsynced_bytes() > 0
    wal.sync()
    assert wal.unsynced_bytes() == 0
    assert wal.synced == wal.total_bytes()


# -- scan and crash faults ----------------------------------------------------


def test_scan_clean_log():
    wal = WorkerWal(0)
    wal.append(K_CREATE, (5, 0))
    wal.append(K_PUT, (5, 0, "a", 1))
    frames, recovery = wal.scan()
    assert [k for k, _ in frames] == [K_CREATE, K_PUT]
    assert recovery.clean
    assert recovery.frames_replayed == 2
    assert recovery.truncated_bytes == 0


def test_torn_write_detected_and_truncated():
    wal = WorkerWal(0)
    wal.append(K_CREATE, (1, 0))
    wal.append(K_PUT, (1, 0, "a", 1))
    wal.sync()
    damage = wal.apply_crash(torn_write=True)
    assert damage["torn_bytes"] > 0
    frames, recovery = wal.scan()
    assert recovery.torn_frame
    assert not recovery.clean
    assert recovery.truncated_bytes > 0
    assert len(frames) == 2  # the intact prefix survives in full
    # The log itself was repaired: a second scan is clean.
    _, second = wal.scan()
    assert second.clean


def test_lost_unsynced_tail_respects_fsync_horizon():
    wal = WorkerWal(0)
    wal.append(K_PUT, (0, 0, "synced", 1))
    wal.sync()
    wal.append(K_PUT, (0, 1, "unsynced", 2))
    lost = wal.unsynced_bytes()
    damage = wal.apply_crash(lose_unsynced_tail=True)
    assert damage["lost_tail_bytes"] == lost
    frames, recovery = wal.scan()
    assert [record[2] for _, record in frames] == ["synced"]
    # Losing exactly the unsynced tail leaves whole frames: a clean cut.
    assert recovery.clean


def test_bit_flip_detected_by_checksum():
    wal = WorkerWal(0)
    for i in range(20):
        wal.append(K_PUT, (0, i, i, i))
    wal.sync()
    import random

    wal.apply_crash(bit_flips=1, rng=random.Random(7))
    frames, recovery = wal.scan()
    assert not recovery.clean
    assert recovery.corrupt_frame or recovery.torn_frame
    assert len(frames) < 20
    # Surviving prefix is intact.
    for _, record in frames:
        assert record[2] == record[3]


# -- backend lifecycle and recovery -------------------------------------------


def test_backend_recovers_states_from_log_alone():
    registry = WalRegistry()
    backend = _wal_backend(registry)
    backend.bind_worker(0)
    backend.create_bin(1)
    backend.create_bin(2)
    backend.put(1, "a", 10)
    backend.put(1, "b", 20)
    backend.put(2, "x", 1)
    backend.delete(1, "b")
    backend.note_applied(1)
    backend.note_applied(2)

    reborn = _wal_backend(registry)
    reborn.bind_worker(0)
    assert sorted(reborn.bin_ids()) == [1, 2]
    assert dict(reborn.items(1)) == {"a": 10}
    assert dict(reborn.items(2)) == {"x": 1}
    assert reborn.last_recovery is not None
    assert reborn.last_recovery.clean
    assert reborn.last_recovery.bins_recovered == 2
    # The reborn backend's epoch is strictly ahead of everything replayed.
    assert reborn.current_epoch() > reborn.last_recovery.max_epoch


def test_recovery_preserves_dirty_epochs_for_delta():
    registry = WalRegistry()
    backend = _wal_backend(registry)
    backend.bind_worker(3)
    backend.create_bin(0)
    backend.put(0, "a", 1)
    backend.note_applied(0)
    backend.put(0, "b", 2)
    backend.note_applied(0)

    reborn = _wal_backend(registry)
    reborn.bind_worker(3)
    state = reborn._states[0]
    assert isinstance(state, WalState)
    assert state.dirty["b"] > state.dirty["a"]


def test_dropped_bin_stays_dropped_after_replay():
    registry = WalRegistry()
    backend = _wal_backend(registry)
    backend.bind_worker(0)
    backend.create_bin(4)
    backend.put(4, "a", 1)
    backend.drop_bin(4)
    reborn = _wal_backend(registry)
    reborn.bind_worker(0)
    assert reborn.bin_ids() == []


def test_recovery_after_torn_write_and_lost_tail():
    registry = WalRegistry()
    backend = _wal_backend(registry)
    backend.bind_worker(0)
    backend.create_bin(0)
    backend.put(0, "durable", 1)
    backend.note_applied(0)  # sync_every=1: synced here
    # These writes never reach the fsync horizon.
    state = backend._states[0]
    state["volatile"] = 2
    registry.apply_crash_faults([0], lose_unsynced_tail=True, torn_write=True, seed=5)

    reborn = _wal_backend(registry)
    reborn.bind_worker(0)
    assert dict(reborn.items(0)) == {"durable": 1}
    recovery = reborn.last_recovery
    assert recovery.torn_frame
    assert recovery.lost_tail_bytes > 0
    assert recovery.truncated_bytes > 0


def test_crash_consistency_matches_fault_free_run_at_horizon():
    """The §13 contract: recovery == fault-free state at the fsync horizon."""
    faulted_reg, clean_reg = WalRegistry(), WalRegistry()
    faulted = _wal_backend(faulted_reg)
    clean = _wal_backend(clean_reg)
    for backend in (faulted, clean):
        backend.bind_worker(0)
        backend.create_bin(0)
        for i in range(50):
            backend.put(0, f"k{i}", i)
        backend.note_applied(0)  # fsync horizon: both logs agree here
    # Only the faulted worker keeps writing; the crash destroys all of it.
    for i in range(25):
        faulted.put(0, f"k{i}", -i)
    # No bit flips here: those may land in the durable region, where data
    # loss is detected (not silent) but the horizon guarantee ends.
    faulted_reg.apply_crash_faults(
        [0], lose_unsynced_tail=True, torn_write=True, seed=11
    )
    reborn = _wal_backend(faulted_reg)
    reborn.bind_worker(0)
    assert dict(reborn.items(0)) == dict(clean.items(0))


# -- opaque (non-mapping) state ------------------------------------------------


class _Counter:
    def __init__(self, value=0):
        self.value = value


def test_opaque_state_checkpointed_per_batch():
    registry = WalRegistry()
    backend = make_backend(
        "wal", _Counter, lambda s: 8.0, codec="modeled",
        options={"wal_registry": registry},
    )
    backend.bind_worker(0)
    backend.create_bin(0)
    backend._states[0].value = 17
    backend.note_applied(0)
    reborn = make_backend(
        "wal", _Counter, lambda s: 8.0, codec="modeled",
        options={"wal_registry": registry},
    )
    reborn.bind_worker(0)
    assert reborn._states[0].value == 17
    assert not reborn.bin_delta_capable(0)


# -- delta extraction ----------------------------------------------------------


def test_delta_extraction_ships_only_dirty_keys():
    backend = _wal_backend()
    backend.bind_worker(0)
    backend.create_bin(0)
    for i in range(10):
        backend.put(0, i, i)
    backend.note_applied(0)
    base = backend.extract_bin(0, remove=False)
    assert base.kind == "full"
    # Mutate a subset after the base snapshot.
    backend.put(0, 3, 33)
    backend.put(0, 10, 100)
    backend.delete(0, 7)
    delta = backend.extract_bin(0, dirty_since=base.base_epoch)
    assert delta.kind == "delta"
    assert delta.base_epoch == base.base_epoch
    assert delta.decode_state() == {3: 33, 10: 100}
    assert delta.deleted == (7,)
    assert not backend.has_bin(0)  # delta extraction honored remove=True


def test_delta_of_unchanged_bin_is_empty():
    backend = _wal_backend()
    backend.bind_worker(0)
    backend.create_bin(0)
    backend.put(0, "a", 1)
    backend.note_applied(0)
    base = backend.extract_bin(0, remove=False)
    delta = backend.extract_bin(0, dirty_since=base.base_epoch, remove=False)
    assert delta.decode_state() == {}
    assert delta.deleted == ()


def test_delta_bytes_scale_with_dirty_fraction():
    """The acceptance line: 10% dirty ships < 25% of whole-bin bytes."""
    backend = _wal_backend()
    backend.bind_worker(0)
    backend.create_bin(0)
    for i in range(100):
        backend.put(0, i, i)
    backend.note_applied(0)
    base = backend.extract_bin(0, remove=False)
    for i in range(10):  # 10% of keys dirtied since the base snapshot
        backend.put(0, i, -i)
    delta = backend.extract_bin(0, dirty_since=base.base_epoch, remove=False)
    assert delta.size_bytes < 0.25 * base.size_bytes


# -- compaction ----------------------------------------------------------------


def test_compaction_bounds_log_and_preserves_state():
    registry = WalRegistry()
    backend = _wal_backend(registry, compact_threshold=32)
    backend.bind_worker(0)
    backend.create_bin(0)
    for i in range(500):
        backend.put(0, i % 8, i)
        if i % 4 == 0:
            backend.note_applied(0)
    assert backend.compactions > 0
    # Post-compaction the log is one checkpoint frame per bin (plus any
    # writes since), far smaller than 500 put frames.
    frames, recovery = registry.wal_for(0).scan()
    assert recovery.clean
    assert len(frames) < 64
    reborn = _wal_backend(registry)
    reborn.bind_worker(0)
    assert dict(reborn.items(0)) == dict(backend.items(0))


def test_compacted_log_replays_checkpoint_frames():
    registry = WalRegistry()
    backend = _wal_backend(registry)
    backend.bind_worker(0)
    backend.create_bin(0)
    backend.put(0, "a", 1)
    backend.compact()
    frames, _ = registry.wal_for(0).scan()
    assert [k for k, _ in frames] == [K_CKPT]
    bins, _ = replay_frames(frames, dict)
    assert bins[0].state == {"a": 1}


# -- registry and options ------------------------------------------------------


def test_registry_isolates_workers():
    registry = WalRegistry()
    a = _wal_backend(registry)
    a.bind_worker(0)
    b = _wal_backend(registry)
    b.bind_worker(1)
    a.create_bin(0)
    a.put(0, "a", 1)
    assert registry.wal_for(1).total_bytes() == 0
    assert registry.workers() == [0, 1]


def test_crash_faults_are_deterministic_per_seed():
    def damaged_log(seed):
        registry = WalRegistry()
        backend = _wal_backend(registry)
        backend.bind_worker(0)
        backend.create_bin(0)
        for i in range(30):
            backend.put(0, i, i)
        backend.note_applied(0)
        registry.apply_crash_faults(
            [0], torn_write=True, bit_flips=3, seed=seed
        )
        return b"".join(bytes(s) for s in registry.wal_for(0).segments)

    assert damaged_log(9) == damaged_log(9)
    assert damaged_log(9) != damaged_log(10)


def test_bad_options_rejected():
    with pytest.raises(ValueError):
        WalBackend(dict, _size_fn, None, compact_threshold=0)
    with pytest.raises(ValueError):
        WalBackend(dict, _size_fn, None, sync_every=0)
    with pytest.raises(ValueError):
        WorkerWal(0, segment_bytes=4)
