"""Tests for multi-batch activations (batches_per_activation > 1)."""

from tests.helpers import feed_epochs, make_dataflow


def run_wordcountish(batches_per_activation):
    from tests.helpers import FAST_COST

    # A slow per-record cost backs queues up, so multi-batch activations
    # actually get to coalesce work.
    df = make_dataflow(num_workers=2, cost=FAST_COST.with_overrides(record_cost=1e-4))
    stream, group = df.new_input()
    seen = []
    stream.exchange(lambda kv: kv[0]).sink(
        lambda w, t, recs: seen.extend(recs)
    )
    runtime = df.build(batches_per_activation=batches_per_activation)
    feed_epochs(runtime, group, [[(i % 5, i) for i in range(20)]] * 5)
    runtime.run_to_quiescence()
    return sorted(seen), runtime.sim.events_processed, runtime.sim.now


def test_batching_preserves_results():
    single = run_wordcountish(1)
    batched = run_wordcountish(4)
    assert single[0] == batched[0]


def test_batching_reduces_event_count():
    single = run_wordcountish(1)
    batched = run_wordcountish(4)
    assert batched[1] < single[1]
