"""Property-based tests of progress-tracking invariants.

The safety property behind everything: a frontier never advances past a
timestamp that may still appear.  We drive the tracker with random but
*legal* update sequences (capabilities registered before use, messages
consumed only after being sent) and check conservativeness throughout.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timely.graph import GraphBuilder, Pipeline
from repro.timely.progress import ProgressTracker


def chain(n_ops=3):
    graph = GraphBuilder()
    graph.add_operator("source", 0, 1, lambda w: object(), is_source=True)
    for i in range(1, n_ops):
        graph.add_operator(f"op{i}", 1, 1, lambda w: object())
        graph.connect(i - 1, 0, i, 0, Pipeline())
    return graph


@st.composite
def update_scripts(draw):
    """A legal sequence of progress updates on a 3-op chain."""
    script = []
    outstanding_caps = {}
    outstanding_msgs = {}
    n = draw(st.integers(5, 40))
    for _ in range(n):
        kind = draw(st.sampled_from(["cap+", "cap-", "send", "consume"]))
        if kind == "cap+":
            op = draw(st.integers(0, 2))
            t = draw(st.integers(0, 20))
            outstanding_caps[(op, t)] = outstanding_caps.get((op, t), 0) + 1
            script.append(("cap", op, t, +1))
        elif kind == "cap-":
            live = [k for k, v in outstanding_caps.items() if v > 0]
            if not live:
                continue
            op, t = draw(st.sampled_from(live))
            outstanding_caps[(op, t)] -= 1
            script.append(("cap", op, t, -1))
        elif kind == "send":
            ch = draw(st.integers(0, 1))
            t = draw(st.integers(0, 20))
            outstanding_msgs[(ch, t)] = outstanding_msgs.get((ch, t), 0) + 1
            script.append(("send", ch, t))
        else:
            live = [k for k, v in outstanding_msgs.items() if v > 0]
            if not live:
                continue
            ch, t = draw(st.sampled_from(live))
            outstanding_msgs[(ch, t)] -= 1
            script.append(("consume", ch, t))
    return script


@given(update_scripts())
@settings(max_examples=60, deadline=None)
def test_frontiers_are_always_conservative(script):
    tracker = ProgressTracker(chain())
    live_caps = {}
    live_msgs = {}
    for action in script:
        if action[0] == "cap":
            _, op, t, delta = action
            tracker.capability_update(op, t, delta)
            live_caps[(op, t)] = live_caps.get((op, t), 0) + delta
        elif action[0] == "send":
            _, ch, t = action
            tracker.message_sent(ch, t)
            live_msgs[(ch, t)] = live_msgs.get((ch, t), 0) + 1
        else:
            _, ch, t = action
            tracker.message_consumed(ch, t)
            live_msgs[(ch, t)] -= 1

        # Conservativeness: the chain-final *output* frontier covers every
        # live capability and in-flight message anywhere upstream (identity
        # path summaries propagate them all the way down).
        final_frontier = tracker.output_frontier(2)
        for (op, t), count in live_caps.items():
            if count > 0:
                assert final_frontier.less_equal(t), (
                    f"frontier {final_frontier!r} passed live capability "
                    f"({op}, {t})"
                )
        for (ch, t), count in live_msgs.items():
            if count > 0:
                assert final_frontier.less_equal(t)


@given(update_scripts())
@settings(max_examples=30, deadline=None)
def test_draining_everything_closes_frontiers(script):
    tracker = ProgressTracker(chain())
    live_caps = {}
    live_msgs = {}
    for action in script:
        if action[0] == "cap":
            _, op, t, delta = action
            tracker.capability_update(op, t, delta)
            live_caps[(op, t)] = live_caps.get((op, t), 0) + delta
        elif action[0] == "send":
            _, ch, t = action
            tracker.message_sent(ch, t)
            live_msgs[(ch, t)] = live_msgs.get((ch, t), 0) + 1
        else:
            _, ch, t = action
            tracker.message_consumed(ch, t)
            live_msgs[(ch, t)] -= 1
    # Drain everything that is still live.
    for (op, t), count in live_caps.items():
        if count > 0:
            tracker.capability_update(op, t, -count)
    for (ch, t), count in live_msgs.items():
        if count > 0:
            tracker.message_consumed(ch, t, count)
    assert tracker.idle()
    assert tracker.input_frontier(2, 0).is_empty()
    assert tracker.output_frontier(2).is_empty()
