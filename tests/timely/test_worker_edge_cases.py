"""Edge-case tests for the worker runtime and operator contexts."""

import pytest

from repro.timely.operators import FnLogic
from tests.helpers import feed_epochs, make_dataflow


def test_notification_registered_during_notification_fires_in_order():
    """A callback that registers an earlier-but-due notification must see
    it delivered before any later pending one (regression test for the
    precomputed-due-list bug found via NEXMark Q5)."""
    df = make_dataflow(num_workers=1, workers_per_process=1)
    stream, group = df.new_input()
    fired = []

    def factory(worker_id):
        def on_input(ctx, port, time, records):
            for r in records:
                ctx.notify_at(r)

        def on_notify(ctx, time):
            fired.append(time)
            if time == 10:
                # 15 is already past the (closed) frontier, and 20 was
                # registered before us: 15 must still fire before 20.
                ctx.notify_at(15)

        return FnLogic(on_input=on_input, on_notify=on_notify)

    stream.unary("reg", factory)
    runtime = df.build()
    runtime.sim.schedule_at(0.0, lambda: group.handle(0).send(5, [10, 20]))
    runtime.sim.schedule_at(0.001, group.close_all)
    runtime.run_to_quiescence()
    assert fired == [10, 15, 20]


def test_capability_hold_release_discipline():
    df = make_dataflow(num_workers=1, workers_per_process=1)
    stream, group = df.new_input()
    state = {}

    def factory(worker_id):
        def on_input(ctx, port, time, records):
            ctx.hold_capability(time + 100)
            state["ctx"] = ctx

        return FnLogic(on_input=on_input)

    stream.unary("cap", factory)
    runtime = df.build()
    runtime.sim.schedule_at(0.0, lambda: group.handle(0).send(0, ["x"]))
    runtime.sim.schedule_at(0.001, group.close_all)
    runtime.run(until=0.01)
    ctx = state["ctx"]
    assert ctx.held_capabilities() == [100]
    # Double release is an error.
    ctx.release_capability(100)
    with pytest.raises(RuntimeError, match="does not hold"):
        ctx.release_capability(100)
    runtime.run_to_quiescence()
    assert runtime.idle()


def test_charge_rejects_negative_cost():
    df = make_dataflow(num_workers=1, workers_per_process=1)
    stream, group = df.new_input()

    def factory(worker_id):
        def on_input(ctx, port, time, records):
            with pytest.raises(ValueError):
                ctx.charge(-1.0)

        return FnLogic(on_input=on_input)

    stream.unary("neg", factory)
    runtime = df.build()
    runtime.sim.schedule_at(0.0, lambda: group.handle(0).send(0, ["x"]))
    runtime.sim.schedule_at(0.001, group.close_all)
    runtime.run_to_quiescence()


def test_charge_extends_busy_time():
    def run(extra):
        df = make_dataflow(num_workers=1, workers_per_process=1)
        stream, group = df.new_input()

        def factory(worker_id):
            def on_input(ctx, port, time, records):
                ctx.charge(extra)

            return FnLogic(on_input=on_input)

        probe = stream.unary("busy", factory).probe()
        runtime = df.build()
        done = {}
        probe.on_advance(
            lambda f: done.setdefault("t", runtime.sim.now) if f.is_empty() else None
        )
        runtime.sim.schedule_at(0.0, lambda: group.handle(0).send(0, ["x"]))
        runtime.sim.schedule_at(0.0001, group.close_all)
        runtime.run_to_quiescence()
        return done["t"]

    assert run(0.5) >= run(0.0) + 0.49


def test_notify_at_coalesces_duplicates():
    df = make_dataflow(num_workers=1, workers_per_process=1)
    stream, group = df.new_input()
    fired = []

    def factory(worker_id):
        def on_input(ctx, port, time, records):
            ctx.notify_at(time)
            ctx.notify_at(time)
            ctx.notify_at(time)

        def on_notify(ctx, time):
            fired.append(time)

        return FnLogic(on_input=on_input, on_notify=on_notify)

    stream.unary("dup", factory)
    runtime = df.build()
    runtime.sim.schedule_at(0.0, lambda: group.handle(0).send(3, ["x"]))
    runtime.sim.schedule_at(0.001, group.close_all)
    runtime.run_to_quiescence()
    assert fired == [3]
    assert runtime.idle()


def test_sends_to_unconnected_output_are_dropped_cleanly():
    df = make_dataflow(num_workers=1, workers_per_process=1)
    stream, group = df.new_input()

    def factory(worker_id):
        def on_input(ctx, port, time, records):
            ctx.send(0, time, records)  # nothing listens downstream

        return FnLogic(on_input=on_input)

    stream.unary("dangling", factory)
    runtime = df.build()
    runtime.sim.schedule_at(0.0, lambda: group.handle(0).send(0, ["x"]))
    runtime.sim.schedule_at(0.001, group.close_all)
    runtime.run_to_quiescence()
    assert runtime.idle()


def test_multiple_outputs_route_independently():
    df = make_dataflow(num_workers=1, workers_per_process=1)
    stream, group = df.new_input()

    def factory(worker_id):
        def on_input(ctx, port, time, records):
            evens = [r for r in records if r % 2 == 0]
            odds = [r for r in records if r % 2 == 1]
            ctx.send(0, time, evens)
            ctx.send(1, time, odds)

        return FnLogic(on_input=on_input)

    outputs = df.add_operator(
        "split",
        inputs=[(stream, __import__("repro.timely.graph", fromlist=["Pipeline"]).Pipeline())],
        n_outputs=2,
        logic_factory=factory,
    )
    seen = {"even": [], "odd": []}
    outputs[0].sink(lambda w, t, recs: seen["even"].extend(recs))
    outputs[1].sink(lambda w, t, recs: seen["odd"].extend(recs))
    runtime = df.build()
    feed_epochs(runtime, group, [[1, 2, 3, 4, 5]])
    runtime.run_to_quiescence()
    assert sorted(seen["even"]) == [2, 4]
    assert sorted(seen["odd"]) == [1, 3, 5]
