"""Tests for the remaining Stream combinators."""

from tests.helpers import feed_epochs, make_dataflow


def test_flat_map_expands_records():
    df = make_dataflow(num_workers=2)
    stream, group = df.new_input()
    seen = []
    stream.flat_map(lambda x: [x] * x).sink(lambda w, t, recs: seen.extend(recs))
    runtime = df.build()
    feed_epochs(runtime, group, [[0, 1, 2, 3]])
    runtime.run_to_quiescence()
    assert sorted(seen) == [1, 2, 2, 3, 3, 3]


def test_inspect_observes_and_passes_through():
    df = make_dataflow(num_workers=2)
    stream, group = df.new_input()
    observed, delivered = [], []
    stream.inspect(lambda w, t, recs: observed.extend(recs)).sink(
        lambda w, t, recs: delivered.extend(recs)
    )
    runtime = df.build()
    feed_epochs(runtime, group, [[10, 20]])
    runtime.run_to_quiescence()
    assert sorted(observed) == [10, 20]
    assert sorted(delivered) == [10, 20]


def test_chained_combinators_compose():
    df = make_dataflow(num_workers=3, workers_per_process=3)
    stream, group = df.new_input()
    seen = []
    (
        stream
        .flat_map(lambda x: [(x, i) for i in range(2)])
        .filter(lambda kv: kv[1] == 0)
        .exchange(lambda kv: kv[0])
        .map(lambda kv: kv[0] * 10)
        .sink(lambda w, t, recs: seen.extend(recs))
    )
    runtime = df.build()
    feed_epochs(runtime, group, [[1, 2, 3]])
    runtime.run_to_quiescence()
    assert sorted(seen) == [10, 20, 30]
