"""Tests for the PendingQueue (Megaphone's extended notificator core)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.timely.notificator import PendingQueue


def test_pop_ready_respects_order_and_threshold():
    queue = PendingQueue()
    queue.push(5, "e")
    queue.push(1, "a")
    queue.push(3, "c")
    ready = queue.pop_ready(lambda t: t <= 3)
    assert ready == [(1, "a"), (3, "c")]
    assert len(queue) == 1
    assert queue.peek_time() == 5


def test_fifo_within_equal_times():
    queue = PendingQueue()
    queue.push(2, "first")
    queue.push(2, "second")
    queue.push(2, "third")
    assert [item for _, item in queue.drain()] == ["first", "second", "third"]


def test_extend_and_times():
    queue = PendingQueue()
    queue.extend([(4, "x"), (2, "y"), (4, "z")])
    assert queue.times() == [2, 4]
    assert bool(queue)
    queue.drain()
    assert not queue
    assert queue.peek_time() is None


def test_product_timestamps_sort_deterministically():
    queue = PendingQueue()
    queue.push((1, 2), "a")
    queue.push((0, 9), "b")
    drained = queue.drain()
    assert drained == [((0, 9), "b"), ((1, 2), "a")]


@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 1000)), max_size=60))
def test_property_drain_is_stably_time_sorted(entries):
    queue = PendingQueue()
    for time, payload in entries:
        queue.push(time, payload)
    drained = queue.drain()
    times = [t for t, _ in drained]
    assert times == sorted(times)
    # Stability: equal times preserve insertion order.
    by_time = {}
    for time, payload in entries:
        by_time.setdefault(time, []).append(payload)
    for time in by_time:
        got = [p for t, p in drained if t == time]
        assert got == by_time[time]
