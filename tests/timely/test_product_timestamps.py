"""End-to-end tests with partially ordered (product) timestamps.

Timely dataflow frontiers are set-valued because timestamps may be only
partially ordered (paper Definition 1).  These tests run actual dataflows
on product timestamps and check the frontier machinery copes.
"""

from repro.timely.operators import FnLogic
from tests.helpers import make_dataflow


def test_product_timestamps_flow_and_complete():
    df = make_dataflow(num_workers=1, workers_per_process=1)
    stream, group = df.new_input(initial_timestamp=(0, 0))
    seen = []
    stream.map(lambda x: x).sink(lambda w, t, recs: seen.append((t, list(recs))))
    runtime = df.build()

    def drive():
        handle = group.handle(0)
        handle.send((0, 1), ["a"])
        handle.send((1, 0), ["b"])  # incomparable with (0, 1)
        handle.close()

    runtime.sim.schedule_at(0.0, drive)
    runtime.run_to_quiescence()
    assert sorted(seen) == [((0, 1), ["a"]), ((1, 0), ["b"])]
    assert runtime.idle()


def test_set_valued_frontier_observed_by_probe():
    df = make_dataflow(num_workers=1, workers_per_process=1)
    stream, group = df.new_input(initial_timestamp=(0, 0))
    probe = stream.map(lambda x: x).probe()
    runtime = df.build()
    observed = []

    def drive():
        handle = group.handle(0)
        # Hold capabilities at two incomparable timestamps.
        handle.send((0, 5), ["x"])
        handle.send((5, 0), ["y"])

    runtime.sim.schedule_at(0.0, drive)
    runtime.run(until=0.01)
    frontier = probe.frontier()
    # The epoch capability (0, 0) dominates both in-flight timestamps.
    assert frontier.elements() == [(0, 0)]
    runtime.sim.schedule(0.0, group.close_all)
    runtime.run_to_quiescence()
    assert probe.done()


def test_incomparable_notifications_deliver_eventually():
    df = make_dataflow(num_workers=1, workers_per_process=1)
    stream, group = df.new_input(initial_timestamp=(0, 0))
    fired = []

    def factory(worker_id):
        def on_input(ctx, port, time, records):
            ctx.notify_at(time)

        def on_notify(ctx, time):
            fired.append(time)

        return FnLogic(on_input=on_input, on_notify=on_notify)

    stream.unary("pnotify", factory)
    runtime = df.build()

    def drive():
        handle = group.handle(0)
        handle.send((0, 1), ["a"])
        handle.send((1, 0), ["b"])
        handle.close()

    runtime.sim.schedule_at(0.0, drive)
    runtime.run_to_quiescence()
    assert sorted(fired) == [(0, 1), (1, 0)]
