"""Tests for timestamp partial orders."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.timely.timestamp import (
    in_advance_of,
    join,
    less_equal,
    less_than,
    meet,
    minimum_like,
    totally_ordered,
)


def test_integer_order():
    assert less_equal(1, 2)
    assert less_equal(2, 2)
    assert not less_equal(3, 2)
    assert less_than(1, 2)
    assert not less_than(2, 2)


def test_product_order_is_partial():
    assert less_equal((1, 2), (2, 3))
    assert less_equal((1, 2), (1, 2))
    assert not less_equal((1, 3), (2, 2))
    assert not less_equal((2, 2), (1, 3))
    assert not totally_ordered([(1, 3), (2, 2)])
    assert totally_ordered([(1, 1), (2, 2), (3, 3)])


def test_in_advance_of_matches_paper_example():
    # "a time 6 is in advance of 5" (paper, Definition 2).
    assert in_advance_of(6, 5)
    assert in_advance_of(5, 5)
    assert not in_advance_of(4, 5)


def test_join_meet_integers():
    assert join(3, 5) == 5
    assert meet(3, 5) == 3


def test_join_meet_products():
    assert join((1, 4), (3, 2)) == (3, 4)
    assert meet((1, 4), (3, 2)) == (1, 2)


def test_minimum_like():
    assert minimum_like(17) == 0
    assert minimum_like((5, (7, 9))) == (0, (0, 0))


def test_mixed_comparison_raises():
    with pytest.raises(TypeError):
        less_equal(1, (1, 2))
    with pytest.raises(TypeError):
        join((1,), (1, 2))
    with pytest.raises(TypeError):
        meet(3, (1, 2))


@given(st.tuples(st.integers(0, 100), st.integers(0, 100)),
       st.tuples(st.integers(0, 100), st.integers(0, 100)))
def test_property_join_is_upper_bound(a, b):
    j = join(a, b)
    assert less_equal(a, j)
    assert less_equal(b, j)


@given(st.tuples(st.integers(0, 100), st.integers(0, 100)),
       st.tuples(st.integers(0, 100), st.integers(0, 100)))
def test_property_meet_is_lower_bound(a, b):
    m = meet(a, b)
    assert less_equal(m, a)
    assert less_equal(m, b)


@given(st.integers(-50, 50), st.integers(-50, 50), st.integers(-50, 50))
def test_property_transitivity(a, b, c):
    if less_equal(a, b) and less_equal(b, c):
        assert less_equal(a, c)
