"""End-to-end tests of the simulated timely runtime."""

import pytest

from repro.timely.operators import FnLogic, concatenate
from tests.helpers import feed_epochs, make_dataflow


def test_map_pipeline_delivers_all_records():
    df = make_dataflow(num_workers=2)
    stream, group = df.new_input("numbers")
    seen = []
    stream.map(lambda x: x * 2).sink(lambda w, t, recs: seen.extend(recs))
    runtime = df.build()
    feed_epochs(runtime, group, [[1, 2], [3], [4, 5]])
    runtime.run_to_quiescence()
    assert sorted(seen) == [2, 4, 6, 8, 10]
    assert runtime.idle()


def test_filter_drops_records():
    df = make_dataflow(num_workers=2)
    stream, group = df.new_input()
    seen = []
    stream.filter(lambda x: x % 2 == 0).sink(lambda w, t, recs: seen.extend(recs))
    runtime = df.build()
    feed_epochs(runtime, group, [list(range(10))])
    runtime.run_to_quiescence()
    assert sorted(seen) == [0, 2, 4, 6, 8]


def test_exchange_routes_by_key():
    df = make_dataflow(num_workers=4, workers_per_process=2)
    stream, group = df.new_input()
    arrivals = []
    stream.exchange(lambda x: x).sink(lambda w, t, recs: arrivals.extend((w, r) for r in recs))
    runtime = df.build()
    feed_epochs(runtime, group, [list(range(16))])
    runtime.run_to_quiescence()
    assert len(arrivals) == 16
    for worker, record in arrivals:
        assert record % 4 == worker


def test_broadcast_reaches_every_worker():
    df = make_dataflow(num_workers=3, workers_per_process=3)
    stream, group = df.new_input()
    arrivals = []
    stream.broadcast().sink(lambda w, t, recs: arrivals.extend((w, r) for r in recs))
    runtime = df.build()
    feed_epochs(runtime, group, [["cmd"]])
    runtime.run_to_quiescence()
    assert sorted(arrivals) == [(0, "cmd"), (1, "cmd"), (2, "cmd")]


def test_probe_tracks_completion():
    df = make_dataflow(num_workers=2)
    stream, group = df.new_input()
    out = stream.map(lambda x: x)
    probe = out.probe()
    runtime = df.build()
    feed_epochs(runtime, group, [[1], [2], [3]])
    assert probe.pending(0)
    runtime.run_to_quiescence()
    assert probe.done()
    assert probe.passed(2)


def test_probe_on_advance_fires_in_order():
    df = make_dataflow(num_workers=2)
    stream, group = df.new_input()
    probe = stream.map(lambda x: x).probe()
    runtime = df.build()
    frontiers = []
    probe.on_advance(lambda f: frontiers.append(f.elements()))
    feed_epochs(runtime, group, [[1], [2]])
    runtime.run_to_quiescence()
    # Last change closes the stream.
    assert frontiers[-1] == []
    # Frontier elements only ever advance.
    lows = [f[0] for f in frontiers if f]
    assert lows == sorted(lows)


def test_notificator_batches_per_epoch_sums():
    """A frontier-aware operator accumulates per-time sums and emits each
    sum exactly when the frontier passes that time."""
    df = make_dataflow(num_workers=1, workers_per_process=1)
    stream, group = df.new_input()

    def factory(worker_id):
        sums = {}

        def on_input(ctx, port, time, records):
            if time not in sums:
                sums[time] = 0
                ctx.notify_at(time)
            for r in records:
                sums[time] += r

        def on_notify(ctx, time):
            ctx.send(0, time, [(time, sums.pop(time))])

        return FnLogic(on_input=on_input, on_notify=on_notify)

    out = []
    stream.unary("epoch_sum", factory).sink(lambda w, t, recs: out.extend(recs))
    runtime = df.build()
    feed_epochs(runtime, group, [[1, 2], [5], [7, 3]])
    runtime.run_to_quiescence()
    assert out == [(0, 3), (1, 5), (2, 10)]


def test_notification_fires_even_without_later_input():
    """Notifications are driven by frontier movement, not by data arrival."""
    df = make_dataflow(num_workers=1, workers_per_process=1)
    stream, group = df.new_input()
    notified = []

    def factory(worker_id):
        def on_input(ctx, port, time, records):
            ctx.notify_at(time + 5)

        def on_notify(ctx, time):
            notified.append(time)

        return FnLogic(on_input=on_input, on_notify=on_notify)

    stream.unary("future", factory)
    runtime = df.build()
    runtime.sim.schedule_at(0.0, lambda: group.handle(0).send(0, ["x"]))
    runtime.sim.schedule_at(0.001, lambda: group.close_all())
    runtime.run_to_quiescence()
    assert notified == [5]


def test_send_without_capability_is_rejected():
    df = make_dataflow(num_workers=1, workers_per_process=1)
    stream, group = df.new_input()

    def factory(worker_id):
        def on_input(ctx, port, time, records):
            ctx.send(0, time - 1, records)  # time travel: must fail

        return FnLogic(on_input=on_input)

    stream.unary("bad", factory)
    runtime = df.build()

    def drive():
        group.handle(0).send(5, ["x"])
        # Advance the epoch so nothing justifies an emission at time 4.
        group.advance_all(6)

    runtime.sim.schedule_at(0.0, drive)
    with pytest.raises(RuntimeError, match="without a justifying capability"):
        runtime.run_to_quiescence()


def test_input_handle_epoch_discipline():
    df = make_dataflow(num_workers=1, workers_per_process=1)
    _, group = df.new_input()
    runtime = df.build()
    handle = group.handle(0)

    def drive():
        handle.send(3, ["a"])
        handle.advance_to(4)
        with pytest.raises(ValueError):
            handle.send(2, ["late"])
        with pytest.raises(ValueError):
            handle.advance_to(1)
        handle.close()
        with pytest.raises(RuntimeError):
            handle.send(9, ["closed"])

    runtime.sim.schedule_at(0.0, drive)
    runtime.run_to_quiescence()


def test_binary_operator_sees_both_inputs():
    df = make_dataflow(num_workers=2)
    left, lgroup = df.new_input("left")
    right, rgroup = df.new_input("right")
    seen = {"l": [], "r": []}

    def factory(worker_id):
        def on_input(ctx, port, time, records):
            seen["l" if port == 0 else "r"].extend(records)

        return FnLogic(on_input=on_input)

    left.binary(right, "pair", factory)
    runtime = df.build()
    feed_epochs(runtime, lgroup, [[1, 2]])
    feed_epochs(runtime, rgroup, [["a"]])
    runtime.run_to_quiescence()
    assert sorted(seen["l"]) == [1, 2]
    assert seen["r"] == ["a"]


def test_concatenate_merges_streams():
    df = make_dataflow(num_workers=1, workers_per_process=1)
    a, ga = df.new_input("a")
    b, gb = df.new_input("b")
    seen = []
    concatenate([a, b]).sink(lambda w, t, recs: seen.extend(recs))
    runtime = df.build()
    feed_epochs(runtime, ga, [[1]])
    feed_epochs(runtime, gb, [[2]])
    runtime.run_to_quiescence()
    assert sorted(seen) == [1, 2]


def test_deterministic_replay():
    def run_once():
        df = make_dataflow(num_workers=4)
        stream, group = df.new_input()
        seen = []
        stream.exchange(lambda x: x * 7).map(lambda x: x + 1).sink(
            lambda w, t, recs: seen.extend((w, t, r) for r in recs)
        )
        runtime = df.build()
        feed_epochs(runtime, group, [list(range(20)), list(range(20, 40))])
        runtime.run_to_quiescence()
        return seen, runtime.sim.events_processed, runtime.sim.now

    first = run_once()
    second = run_once()
    assert first == second


def test_latency_reflects_processing_cost():
    """Completion of an epoch (probe passing it) happens after the work,
    and a slower cost model yields a later completion."""

    def completion_time(record_cost):
        from tests.helpers import FAST_COST

        df = make_dataflow(
            num_workers=1,
            workers_per_process=1,
            cost=FAST_COST.with_overrides(record_cost=record_cost),
        )
        stream, group = df.new_input()
        probe = stream.map(lambda x: x).probe()
        runtime = df.build()
        done_at = {}
        probe.on_advance(
            lambda f: done_at.setdefault("t", runtime.sim.now)
            if probe.passed(0)
            else None
        )
        feed_epochs(runtime, group, [list(range(1000))])
        runtime.run_to_quiescence()
        return done_at["t"]

    fast = completion_time(1e-6)
    slow = completion_time(100e-6)
    assert slow > fast > 0.0
