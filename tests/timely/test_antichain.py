"""Tests for antichains and counted antichains."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.timely.antichain import Antichain, MutableAntichain
from repro.timely.timestamp import less_equal

products = st.tuples(st.integers(0, 6), st.integers(0, 6))


def test_insert_keeps_minimal_elements():
    chain = Antichain()
    assert chain.insert(5)
    assert not chain.insert(7)  # dominated by 5
    assert chain.insert(3)      # dominates 5, replaces it
    assert chain.elements() == [3]


def test_less_equal_and_less_than():
    chain = Antichain([4])
    assert chain.less_equal(4)
    assert chain.less_equal(9)
    assert not chain.less_equal(3)
    assert chain.less_than(5)
    assert not chain.less_than(4)


def test_empty_antichain_is_closed():
    chain = Antichain()
    assert chain.is_empty()
    assert not chain.less_equal(0)
    assert not chain.less_than(10**9)


def test_partial_order_antichain_holds_incomparable_elements():
    chain = Antichain([(1, 3), (2, 2)])
    assert len(chain) == 2
    assert chain.less_equal((2, 3))
    assert not chain.less_equal((0, 0))


def test_dominates():
    assert Antichain([2]).dominates(Antichain([3, 5]))
    assert not Antichain([4]).dominates(Antichain([3]))
    assert Antichain([2]).dominates(Antichain())  # vacuous


def test_equality_ignores_order():
    assert Antichain([(1, 3), (2, 2)]) == Antichain([(2, 2), (1, 3)])
    assert Antichain([1]) != Antichain([2])


def test_mutable_antichain_counts():
    chain = MutableAntichain()
    chain.update(5, 2)
    assert chain.count(5) == 2
    assert chain.frontier().elements() == [5]
    chain.update(5, -1)
    assert chain.frontier().elements() == [5]
    chain.update(5, -1)
    assert chain.is_empty()
    assert chain.frontier().is_empty()


def test_mutable_antichain_negative_count_raises():
    chain = MutableAntichain()
    with pytest.raises(ValueError):
        chain.update(3, -1)


def test_mutable_antichain_frontier_advances_as_counts_drain():
    chain = MutableAntichain()
    chain.update(1, 1)
    chain.update(2, 3)
    assert chain.frontier().elements() == [1]
    chain.update(1, -1)
    assert chain.frontier().elements() == [2]
    assert chain.total() == 3


@given(st.lists(products, max_size=30))
def test_property_antichain_elements_mutually_incomparable(times):
    chain = Antichain(times)
    elements = chain.elements()
    for i, a in enumerate(elements):
        for b in elements[i + 1:]:
            assert not less_equal(a, b)
            assert not less_equal(b, a)


@given(st.lists(products, min_size=1, max_size=30))
def test_property_every_inserted_time_in_advance_of_frontier(times):
    chain = Antichain(times)
    for t in times:
        assert chain.less_equal(t)


@given(st.lists(st.tuples(products, st.integers(1, 3)), max_size=30))
def test_property_mutable_frontier_covers_all_live_times(entries):
    chain = MutableAntichain()
    for time, count in entries:
        chain.update(time, count)
    frontier = chain.frontier()
    for time, _ in entries:
        assert frontier.less_equal(time)
