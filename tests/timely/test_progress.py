"""Tests for the progress tracker on hand-built graphs."""

import pytest

from repro.timely.graph import GraphBuilder, Pipeline
from repro.timely.progress import ProgressTracker


class _Noop:
    pass


def chain_graph(n_ops=3):
    """source -> op -> ... -> op, all pipeline channels."""
    graph = GraphBuilder()
    graph.add_operator("source", 0, 1, lambda w: _Noop(), is_source=True)
    for i in range(1, n_ops):
        graph.add_operator(f"op{i}", 1, 1, lambda w: _Noop())
        graph.connect(i - 1, 0, i, 0, Pipeline())
    return graph


def test_initial_frontiers_closed_without_capabilities():
    tracker = ProgressTracker(chain_graph())
    assert tracker.output_frontier(0).is_empty()
    assert tracker.input_frontier(2, 0).is_empty()


def test_capability_defines_downstream_frontier():
    tracker = ProgressTracker(chain_graph())
    tracker.capability_update(0, 5, +1)
    assert tracker.output_frontier(0).elements() == [5]
    assert tracker.input_frontier(1, 0).elements() == [5]
    assert tracker.input_frontier(2, 0).elements() == [5]


def test_capability_downgrade_advances_frontier():
    tracker = ProgressTracker(chain_graph())
    tracker.capability_update(0, 0, +1)
    tracker.capability_update(0, 10, +1)
    tracker.capability_update(0, 0, -1)
    assert tracker.input_frontier(2, 0).elements() == [10]


def test_in_flight_message_holds_frontier():
    tracker = ProgressTracker(chain_graph())
    tracker.capability_update(0, 10, +1)
    tracker.message_sent(0, 3)  # channel source->op1 at time 3
    assert tracker.input_frontier(1, 0).elements() == [3]
    # Downstream of op1 also sees 3 through the identity summary.
    assert tracker.input_frontier(2, 0).elements() == [3]
    tracker.message_consumed(0, 3)
    assert tracker.input_frontier(1, 0).elements() == [10]


def test_midstream_capability_holds_downstream_only():
    tracker = ProgressTracker(chain_graph())
    tracker.capability_update(0, 10, +1)
    tracker.capability_update(1, 4, +1)  # op1 notificator holds time 4
    assert tracker.input_frontier(1, 0).elements() == [10]
    assert tracker.input_frontier(2, 0).elements() == [4]
    tracker.capability_update(1, 4, -1)
    assert tracker.input_frontier(2, 0).elements() == [10]


def test_drain_changes_reports_each_change_once():
    tracker = ProgressTracker(chain_graph())
    tracker.capability_update(0, 0, +1)
    changes = tracker.drain_changes()
    changed_ports = {(c.op, c.port) for c in changes.inputs}
    assert (1, 0) in changed_ports and (2, 0) in changed_ports
    assert 0 in changes.outputs
    # No new updates: nothing further to drain.
    assert not tracker.drain_changes()


def test_queries_do_not_swallow_changes():
    tracker = ProgressTracker(chain_graph())
    tracker.capability_update(0, 0, +1)
    # A query triggers propagation...
    assert tracker.input_frontier(1, 0).elements() == [0]
    # ...but the changes are still available to the runtime.
    assert tracker.drain_changes()


def test_idle_reflects_outstanding_work():
    tracker = ProgressTracker(chain_graph())
    assert tracker.idle()
    tracker.capability_update(0, 0, +1)
    assert not tracker.idle()
    tracker.message_sent(0, 0)
    tracker.capability_update(0, 0, -1)
    assert not tracker.idle()
    tracker.message_consumed(0, 0)
    assert tracker.idle()


def test_two_input_operator_merges_frontiers():
    graph = GraphBuilder()
    graph.add_operator("a", 0, 1, lambda w: _Noop(), is_source=True)
    graph.add_operator("b", 0, 1, lambda w: _Noop(), is_source=True)
    graph.add_operator("join", 2, 1, lambda w: _Noop())
    graph.connect(0, 0, 2, 0, Pipeline())
    graph.connect(1, 0, 2, 1, Pipeline())
    tracker = ProgressTracker(graph)
    tracker.capability_update(0, 3, +1)
    tracker.capability_update(1, 8, +1)
    assert tracker.input_frontier(2, 0).elements() == [3]
    assert tracker.input_frontier(2, 1).elements() == [8]
    # Output frontier is the merge (min) of both inputs.
    assert tracker.output_frontier(2).elements() == [3]


def test_partial_order_frontier_is_set_valued():
    graph = GraphBuilder()
    graph.add_operator("a", 0, 1, lambda w: _Noop(), is_source=True)
    graph.add_operator("sink", 1, 1, lambda w: _Noop())
    graph.connect(0, 0, 1, 0, Pipeline())
    tracker = ProgressTracker(graph)
    tracker.capability_update(0, (1, 3), +1)
    tracker.capability_update(0, (2, 2), +1)
    frontier = tracker.input_frontier(1, 0)
    assert len(frontier) == 2
    assert frontier.less_equal((2, 3))


def test_cycle_detection():
    graph = GraphBuilder()
    graph.add_operator("a", 1, 1, lambda w: _Noop())
    graph.add_operator("b", 1, 1, lambda w: _Noop())
    graph.connect(0, 0, 1, 0, Pipeline())
    graph.connect(1, 0, 0, 0, Pipeline())
    with pytest.raises(ValueError):
        ProgressTracker(graph)
