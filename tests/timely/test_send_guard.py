"""Progress-accounting discipline tests.

Two windows where a frontier could illegally overtake outstanding work:

* between an operator's send decision and the flush that charges in-flight
  counts (closed by the transient send-guard capability in
  ``OpContext.send``), and
* between a batch's delivery and the completion of its CPU work (closed by
  deferring progress decrements to ``busy_until`` in ``_run_activation``).
"""

from repro.timely.graph import Pipeline
from tests.helpers import FAST_COST, feed_epochs, make_dataflow

LATE_TIME = 7


class _HoldAndSendLate:
    """Holds a capability at LATE_TIME, then sends there and releases the
    capability *in the same callback* — the pattern that relies on the send
    guard to keep the frontier behind the buffered batch."""

    def __init__(self):
        self._held = False
        self._sent = False

    def on_input(self, ctx, port, time, records):
        if not self._held:
            ctx.hold_capability(LATE_TIME)
            self._held = True

    def on_frontier(self, ctx):
        if self._held and not self._sent and ctx.all_inputs_passed(LATE_TIME - 1):
            self._sent = True
            ctx.send(0, LATE_TIME, [("late", 1)])
            # Without the send guard this release would leave the buffered
            # send with no capability until the end-of-activation flush.
            ctx.release_capability(LATE_TIME)


def test_send_guard_covers_send_until_flush():
    df = make_dataflow(num_workers=1, workers_per_process=1)
    sim = df.cluster.sim
    data, group = df.new_input("data")
    out = data.unary("holder", lambda w: _HoldAndSendLate(), pact=Pipeline())
    deliveries = []
    sunk = out.sink(lambda w, t, recs: deliveries.append((sim.now, t, list(recs))))
    # Probe downstream of the delivery: in-flight batches hold the
    # *receiver's* frontier, so this is where backlog is visible.
    probe = df.probe(sunk)
    runtime = df.build()

    passed_log = []
    probe.on_advance(
        lambda frontier: passed_log.append((sim.now, not frontier.less_equal(LATE_TIME)))
    )

    feed_epochs(runtime, group, [[("x", 1)]])
    runtime.run_to_quiescence()

    late = [(at, recs) for at, t, recs in deliveries if t == LATE_TIME]
    assert late == [(late[0][0], [("late", 1)])], "late send must be delivered"
    first_passed = min(at for at, passed in passed_log if passed)
    # The frontier may pass LATE_TIME only once the delivered batch's CPU
    # work has completed — never in the send/flush window.
    assert first_passed > late[0][0]


class _Null:
    def on_input(self, ctx, port, time, records):
        pass


def test_progress_decrements_deferred_to_busy_until():
    df = make_dataflow(num_workers=1, workers_per_process=1)
    data, group = df.new_input("data")
    out = data.unary("null", lambda w: _Null(), pact=Pipeline())
    probe = df.probe(out)
    runtime = df.build()
    sim = runtime.sim

    passed_at = []
    probe.on_advance(
        lambda frontier: (
            passed_at.append(sim.now)
            if not frontier.less_equal(0) and not passed_at
            else None
        )
    )

    n = 100
    feed_epochs(runtime, group, [[("k", 1)] * n])
    runtime.run_to_quiescence()

    assert passed_at, "output frontier must eventually pass epoch 0"
    # The decrement for the consumed batch lands at busy_until, so the
    # frontier cannot pass epoch 0 before the batch's own CPU cost is paid.
    min_work = FAST_COST.batch_overhead + n * FAST_COST.record_cost
    assert passed_at[0] >= min_work
