"""Negative-path tests for Megaphone's public API."""

import pytest

from repro.megaphone.api import state_machine
from repro.megaphone.control import BinnedConfiguration
from repro.megaphone.operators import build_migrateable
from tests.helpers import make_dataflow


def make_inputs():
    df = make_dataflow(num_workers=2, workers_per_process=2)
    control, _ = df.new_input("control")
    data, _ = df.new_input("data")
    return df, control, data


def test_state_machine_requires_fold():
    _, control, data = make_inputs()
    with pytest.raises(ValueError, match="fold"):
        state_machine(control, data, num_bins=4)


def test_build_requires_matching_key_fns():
    _, control, data = make_inputs()
    with pytest.raises(ValueError, match="one key function per data stream"):
        build_migrateable(control, [data], [], lambda app: None, num_bins=4,
                          name="bad")


def test_build_requires_a_data_stream():
    _, control, _ = make_inputs()
    with pytest.raises(ValueError, match="at least one data stream"):
        build_migrateable(control, [], [], lambda app: None, num_bins=4,
                          name="bad")


def test_build_rejects_wrong_initial_size():
    _, control, data = make_inputs()
    with pytest.raises(ValueError, match="wrong number of bins"):
        build_migrateable(
            control, [data], [lambda r: 0], lambda app: None, num_bins=8,
            name="bad", initial=BinnedConfiguration.round_robin(4, 2),
        )


def test_non_power_of_two_bins_rejected_at_routing():
    _, control, data = make_inputs()
    op = build_migrateable(
        control, [data], [lambda r: 0], lambda app: None, num_bins=4,
        name="ok",
    )
    # bin_of itself guards the power-of-two requirement.
    from repro.megaphone.control import bin_of

    with pytest.raises(ValueError):
        bin_of(1, 6)


def test_duplicate_build_on_same_dataflow():
    df, control, data = make_inputs()
    state_machine(control, data, fold=lambda k, v, s: [], num_bins=4, name="a")
    state_machine(control, data, fold=lambda k, v, s: [], num_bins=4, name="b")
    runtime = df.build()
    with pytest.raises(RuntimeError, match="already built"):
        df.build()
