"""Unit tests for the EpochTicker and MigrationController."""

import pytest

from repro.megaphone.control import BinnedConfiguration
from repro.megaphone.controller import EpochTicker, MigrationController
from repro.megaphone.migration import make_plan
from repro.megaphone.operators import build_migrateable
from repro.runtime_events.events import MigrationStepOutcome
from tests.helpers import make_dataflow


def build_counting(num_workers=2, num_bins=4):
    df = make_dataflow(num_workers=num_workers, workers_per_process=2)
    control, control_group = df.new_input("control")
    data, data_group = df.new_input("data")
    initial = BinnedConfiguration.round_robin(num_bins, num_workers)

    def applier(app):
        state = app.state
        for _tag, (key, val) in app.entries:
            state[key] = state.get(key, 0) + val

    op = build_migrateable(
        control, [data], [lambda r: hash(r[0]) & 0xFFFF], applier,
        num_bins=num_bins, name="ctl", initial=initial,
    )
    probe = df.probe(op.output)
    runtime = df.build()
    return runtime, control_group, data_group, probe, op, initial


def feed_steadily(runtime, data_group, n_epochs, epoch_ms=1):
    def make(e):
        def tick():
            for handle in data_group.handles():
                handle.send(e, [(f"k{e % 5}", 1)])
                handle.advance_to(e + 1)

        return tick

    for e in range(n_epochs):
        runtime.sim.schedule_at(e * epoch_ms / 1000.0, make(e))
    runtime.sim.schedule_at(n_epochs * epoch_ms / 1000.0, data_group.close_all)


def test_ticker_advances_epochs_with_time():
    runtime, control_group, data_group, probe, op, initial = build_counting()
    ticker = EpochTicker(runtime, control_group, granularity_ms=5)
    ticker.start()
    feed_steadily(runtime, data_group, 20)
    runtime.run(until=0.032)
    epochs = {h.epoch for h in control_group.handles()}
    assert epochs == {35}  # 30ms quantized + one tick ahead
    ticker.stop()
    runtime.run_to_quiescence()
    assert all(h.epoch is None for h in control_group.handles())


def test_ticker_dilation_scales_epochs():
    runtime, control_group, data_group, probe, op, initial = build_counting()
    ticker = EpochTicker(runtime, control_group, granularity_ms=5, dilation=10)
    assert ticker.current_epoch() == 0
    ticker.start()
    feed_steadily(runtime, data_group, 10)
    runtime.run(until=0.012)
    assert ticker.current_epoch() == 100  # 10ms * dilation
    ticker.stop()
    runtime.run_to_quiescence()


def test_controller_records_step_timings():
    runtime, control_group, data_group, probe, op, initial = build_counting()
    ticker = EpochTicker(runtime, control_group, granularity_ms=1)
    ticker.start()
    target = BinnedConfiguration(tuple((w + 1) % 2 for w in initial.assignment))
    plan = make_plan("fluid", initial, target)
    done_results = []
    controller = MigrationController(
        runtime, control_group, ticker, probe, plan,
        on_done=done_results.append,
    )
    controller.start_at(0.005)
    feed_steadily(runtime, data_group, 50)
    runtime.run(until=0.08)
    assert controller.done
    ticker.stop()
    runtime.run_to_quiescence()
    assert done_results and done_results[0] is controller.result
    result = controller.result
    assert len(result.steps) == plan.total_moves
    for step in result.steps:
        assert step.completed_at is not None
        assert step.completed_at >= step.issued_at
    # Steps are strictly sequential under completion pacing.
    for a, b in zip(result.steps, result.steps[1:]):
        assert a.completed_at <= b.issued_at
    assert result.duration == pytest.approx(
        result.completed_at - result.started_at
    )


def test_timer_paced_controller_overlaps_steps():
    runtime, control_group, data_group, probe, op, initial = build_counting(
        num_workers=2, num_bins=8
    )
    ticker = EpochTicker(runtime, control_group, granularity_ms=1)
    ticker.start()
    target = BinnedConfiguration(tuple((w + 1) % 2 for w in initial.assignment))
    plan = make_plan("fluid", initial, target)
    controller = MigrationController(
        runtime, control_group, ticker, probe, plan, pace_s=0.001
    )
    controller.start_at(0.005)
    feed_steadily(runtime, data_group, 60)
    runtime.run(until=0.1)
    assert controller.done
    ticker.stop()
    runtime.run_to_quiescence()
    issued = [s.issued_at for s in controller.result.steps]
    # Timer pacing: issues spaced by the pace, independent of completion.
    for a, b in zip(issued, issued[1:]):
        assert b - a == pytest.approx(0.001, abs=2e-4)


def test_empty_plan_completes_immediately():
    runtime, control_group, data_group, probe, op, initial = build_counting()
    ticker = EpochTicker(runtime, control_group, granularity_ms=1)
    ticker.start()
    plan = make_plan("all-at-once", initial, initial)
    controller = MigrationController(
        runtime, control_group, ticker, probe, plan
    )
    controller.start_at(0.002)
    feed_steadily(runtime, data_group, 10)
    runtime.run(until=0.02)
    assert controller.done
    assert controller.result.steps == []
    ticker.stop()
    runtime.run_to_quiescence()


def test_step_outcomes_published_on_trace_bus():
    runtime, control_group, data_group, probe, op, initial = build_counting(
        num_workers=2, num_bins=8
    )
    outcomes = []
    runtime.sim.trace.subscribe(
        lambda e: outcomes.append(e) if isinstance(e, MigrationStepOutcome) else None,
        topics=("migration",),
    )
    ticker = EpochTicker(runtime, control_group, granularity_ms=1)
    ticker.start()
    target = BinnedConfiguration(tuple((w + 1) % 2 for w in initial.assignment))
    plan = make_plan("batched", initial, target, batch_size=3)
    controller = MigrationController(runtime, control_group, ticker, probe, plan)
    controller.start_at(0.005)
    feed_steadily(runtime, data_group, 60)
    runtime.run(until=0.1)
    assert controller.done
    ticker.stop()
    runtime.run_to_quiescence()
    # One outcome per step, mirroring the result's accounting.
    result = controller.result
    assert len(outcomes) == len(result.steps) == len(plan.steps)
    assert [o.moves for o in outcomes] == [s.moves for s in result.steps]
    assert result.batch_sizes == [o.batch_size for o in outcomes]
    assert all(o.batch_size >= o.moves for o in outcomes)
    assert result.total_attempts == sum(o.attempts for o in outcomes)
    assert not any(o.abandoned for o in outcomes)
    for outcome, step in zip(outcomes, result.steps):
        assert outcome.duration_s == pytest.approx(step.duration)
