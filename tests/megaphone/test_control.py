"""Unit tests for control commands, binning, and configurations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.megaphone.control import (
    BinnedConfiguration,
    ControlInst,
    bin_of,
    splitmix64,
    stable_hash,
)


def test_bin_of_requires_power_of_two():
    with pytest.raises(ValueError):
        bin_of(1, 3)
    with pytest.raises(ValueError):
        bin_of(1, 0)


def test_bin_of_single_bin():
    assert bin_of(12345, 1) == 0


@given(st.integers(0, 2**63), st.sampled_from([2, 4, 64, 4096]))
def test_property_bin_of_in_range(key, bins):
    assert 0 <= bin_of(key, bins) < bins


def test_bin_of_uses_most_significant_bits():
    # Keys differing only in low hash bits should not systematically share
    # a bin; the distribution over bins should be roughly uniform.
    bins = 16
    counts = [0] * bins
    for key in range(4096):
        counts[bin_of(key, bins)] += 1
    assert min(counts) > 0
    assert max(counts) < 3 * (4096 // bins)


def test_stable_hash_deterministic_across_types():
    assert stable_hash("word") == stable_hash("word")
    assert stable_hash(17) == splitmix64(17)
    assert stable_hash(("a", 1)) == stable_hash(("a", 1))
    assert stable_hash("a") != stable_hash("b")
    with pytest.raises(TypeError):
        stable_hash(3.14)


def test_round_robin_configuration():
    config = BinnedConfiguration.round_robin(8, 3)
    assert config.assignment == (0, 1, 2, 0, 1, 2, 0, 1)
    assert config.bins_of(0) == [0, 3, 6]
    assert config.worker_of(5) == 2


def test_contiguous_configuration():
    config = BinnedConfiguration.contiguous(8, 2)
    assert config.assignment == (0, 0, 0, 0, 1, 1, 1, 1)


def test_moved_bins_and_apply_roundtrip():
    a = BinnedConfiguration.round_robin(8, 4)
    b = BinnedConfiguration.contiguous(8, 4)
    insts = a.moved_bins(b)
    assert all(isinstance(i, ControlInst) for i in insts)
    assert a.apply(insts) == b
    assert b.moved_bins(b) == []


def test_moved_bins_size_mismatch():
    with pytest.raises(ValueError):
        BinnedConfiguration.round_robin(4, 2).moved_bins(
            BinnedConfiguration.round_robin(8, 2)
        )


@given(st.integers(1, 6), st.integers(1, 6))
def test_property_round_robin_is_balanced(log_bins, workers):
    bins = 2 ** log_bins
    config = BinnedConfiguration.round_robin(bins, workers)
    sizes = [len(config.bins_of(w)) for w in range(workers)]
    assert max(sizes) - min(sizes) <= 1
