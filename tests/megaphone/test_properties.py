"""Property-based tests: random workloads and migration schedules must
preserve the paper's three guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.megaphone.control import BinnedConfiguration, bin_of, stable_hash
from repro.megaphone.controller import EpochTicker, MigrationController
from repro.megaphone.migration import make_plan
from repro.megaphone.operators import build_migrateable
from tests.helpers import make_dataflow

WORKERS = 3
BINS = 8


@st.composite
def workloads(draw):
    n_epochs = draw(st.integers(8, 20))
    events = []
    for epoch in range(n_epochs):
        n = draw(st.integers(0, 4))
        batch = [
            (draw(st.integers(0, 9)), draw(st.integers(1, 5))) for _ in range(n)
        ]
        events.append(batch)
    migrate_epoch = draw(st.integers(1, max(1, n_epochs - 3)))
    strategy = draw(st.sampled_from(["all-at-once", "fluid", "batched", "optimized"]))
    scramble = draw(st.integers(1, WORKERS - 1))
    return events, migrate_epoch, strategy, scramble


@given(workloads())
@settings(max_examples=15, deadline=None)
def test_random_migrations_preserve_all_three_properties(workload):
    events, migrate_epoch, strategy, scramble = workload
    initial = BinnedConfiguration.round_robin(BINS, WORKERS)
    target = BinnedConfiguration(
        tuple((w + scramble) % WORKERS for w in initial.assignment)
    )
    plan = make_plan(strategy, initial, target, batch_size=2)

    df = make_dataflow(num_workers=WORKERS, workers_per_process=2)
    control, control_group = df.new_input("control")
    data, data_group = df.new_input("data")
    applications = []

    def applier(app):
        state = app.state
        for _tag, (key, val) in app.entries:
            state[key] = state.get(key, 0) + val
            applications.append((app.time, app.worker, key, val))

    op = build_migrateable(
        control, [data], [lambda record: stable_hash(record[0])],
        applier, num_bins=BINS, name="prop", initial=initial,
    )
    probe = df.probe(op.output)
    runtime = df.build()
    ticker = EpochTicker(runtime, control_group, granularity_ms=1)
    ticker.start()
    controller = MigrationController(
        runtime, control_group, ticker, probe, plan
    )
    controller.start_at(migrate_epoch * 0.001)

    def make_tick(epoch, batch):
        def tick():
            for i, handle in enumerate(data_group.handles()):
                part = [r for j, r in enumerate(batch) if j % WORKERS == i]
                if part:
                    handle.send(epoch, part)
                handle.advance_to(epoch + 1)

        return tick

    for epoch, batch in enumerate(events):
        runtime.sim.schedule_at(epoch * 0.001, make_tick(epoch, batch))
    runtime.sim.schedule_at(len(events) * 0.001, data_group.close_all)

    runtime.run(until=(len(events) + 5) * 0.001)
    guard = 0
    while not controller.done:
        runtime.sim.run(max_events=10_000)
        guard += 1
        assert guard < 500, "migration stalled (liveness violation)"
    ticker.stop()
    runtime.run_to_quiescence()

    # Completion: everything drained.
    assert runtime.idle()

    # Correctness: per-key totals match a sequential reference.
    expected: dict = {}
    for batch in events:
        for key, val in batch:
            expected[key] = expected.get(key, 0) + val
    observed: dict = {}
    for _t, _w, key, val in applications:
        observed[key] = observed.get(key, 0) + val
    assert observed == expected

    # Correctness: per-key applications happen in timestamp order.
    per_key_times: dict = {}
    for t, _w, key, _v in applications:
        per_key_times.setdefault(key, []).append(t)
    for times in per_key_times.values():
        assert times == sorted(times)

    # Migration: updates at configuration(time, key).
    step_times = [s.time for s in controller.result.steps]

    def config_at(time):
        cfg = initial
        for step_time, step in zip(step_times, plan.steps):
            if step_time <= time:
                cfg = cfg.apply(list(step.insts))
        return cfg

    for time, worker, key, _val in applications:
        assert config_at(time).worker_of(bin_of(stable_hash(key), BINS)) == worker
