"""Test driver: a migrating word-count dataflow exercised end to end."""

from dataclasses import dataclass, field

from repro.megaphone.control import BinnedConfiguration, stable_hash
from repro.megaphone.controller import EpochTicker, MigrationController
from repro.megaphone.migration import imbalanced_target, make_plan
from repro.megaphone.operators import ApplicationContext, build_migrateable
from tests.helpers import make_dataflow


@dataclass
class WordCountRun:
    """Everything a test needs to assert on after a run."""

    outputs: list = field(default_factory=list)
    applications: list = field(default_factory=list)  # (time, worker, key, val)
    result: object = None
    runtime: object = None
    controller: object = None
    op: object = None
    plan: object = None
    initial: BinnedConfiguration = None

    def final_counts(self) -> dict:
        counts: dict = {}
        for time, batch in self.outputs:
            for key, value in batch:
                counts[key] = value
        return counts


def drive_wordcount(
    strategy=None,
    num_workers=4,
    num_bins=8,
    n_epochs=40,
    migrate_epoch=10,
    batch_size=2,
    gap_s=0.0,
    epoch_ms=1,
    records_per_epoch_per_worker=5,
    n_keys=20,
    target_fn=imbalanced_target,
    instrument=None,
    state_backend="dict",
    backend_options=None,
    delta_migration=False,
    controller_cls=MigrationController,
):
    """Run word count under an optional migration strategy.

    Returns a :class:`WordCountRun`.  The workload is deterministic: every
    epoch, every worker sends ``records_per_epoch_per_worker`` increments
    cycling over ``n_keys`` keys.  ``instrument``, if given, is called with
    the built runtime before anything runs (e.g. to attach trace
    subscribers).
    """
    run = WordCountRun()
    df = make_dataflow(num_workers=num_workers, workers_per_process=2)
    control, control_group = df.new_input("control")
    data, data_group = df.new_input("data")

    initial = BinnedConfiguration.round_robin(num_bins, num_workers)
    run.initial = initial

    def applier(app: ApplicationContext) -> None:
        state = app.state
        out = []
        for _tag, (key, val) in app.entries:
            state[key] = state.get(key, 0) + val
            out.append((key, state[key]))
            run.applications.append((app.time, app.worker, key, val))
        app.emit(out)

    op = build_migrateable(
        control,
        [data],
        [lambda record: stable_hash(record[0])],
        applier,
        num_bins=num_bins,
        name="wordcount",
        initial=initial,
        state_backend=state_backend,
        backend_options=backend_options,
        delta_migration=delta_migration,
    )
    run.op = op
    op.output.sink(lambda w, t, recs: run.outputs.append((t, list(recs))))
    out_probe = df.probe(op.output)
    runtime = df.build()
    run.runtime = runtime
    if instrument is not None:
        instrument(runtime)
    sim = runtime.sim
    tick_s = epoch_ms / 1000.0

    ticker = EpochTicker(runtime, control_group, granularity_ms=epoch_ms)
    ticker.start()

    keys = [f"key{i}" for i in range(n_keys)]
    counter = {"i": 0}

    def make_tick(epoch):
        def tick():
            t_ms = epoch * epoch_ms
            for handle in data_group.handles():
                batch = []
                for _ in range(records_per_epoch_per_worker):
                    batch.append((keys[counter["i"] % n_keys], 1))
                    counter["i"] += 1
                handle.send(t_ms, batch)
                handle.advance_to(t_ms + epoch_ms)

        return tick

    for epoch in range(n_epochs):
        sim.schedule_at(epoch * tick_s, make_tick(epoch))
    sim.schedule_at(n_epochs * tick_s, data_group.close_all)

    controller = None
    if strategy is not None:
        target = target_fn(initial)
        run.plan = make_plan(strategy, initial, target, batch_size=batch_size)
        controller = controller_cls(
            runtime,
            control_group,
            ticker,
            out_probe,
            run.plan,
            gap_s=gap_s,
        )
        controller.start_at(migrate_epoch * tick_s)

    # Run the scripted part, then let any outstanding migration finish
    # before closing the control stream.
    runtime.run(until=(n_epochs + 2) * tick_s)
    guard = 0
    while controller is not None and not controller.done:
        runtime.sim.run(max_events=10_000)
        guard += 1
        if guard > 1000:
            raise AssertionError("migration did not complete")
    ticker.stop()
    runtime.run_to_quiescence()
    if controller is not None:
        run.result = controller.result
        run.controller = controller
    return run


def expected_counts(run: WordCountRun, num_workers, n_epochs, per_worker, n_keys):
    total = num_workers * n_epochs * per_worker
    counts: dict = {}
    for i in range(total):
        key = f"key{i % n_keys}"
        counts[key] = counts.get(key, 0) + 1
    return counts
