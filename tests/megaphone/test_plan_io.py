"""Tests for plan/configuration serialization."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.megaphone.control import BinnedConfiguration, ControlInst
from repro.megaphone.migration import make_plan
from repro.megaphone.plan_io import (
    configuration_from_dict,
    configuration_to_dict,
    dump_plan,
    inst_from_dict,
    inst_to_dict,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    dump_configuration,
    load_configuration,
)


def test_configuration_roundtrip():
    config = BinnedConfiguration.round_robin(16, 4)
    assert configuration_from_dict(configuration_to_dict(config)) == config


def test_inst_roundtrip():
    inst = ControlInst(bin=7, worker=2)
    assert inst_from_dict(inst_to_dict(inst)) == inst


@given(
    st.integers(1, 4).map(lambda p: 2 ** p),
    st.integers(1, 5),
    st.sampled_from(["all-at-once", "fluid", "batched", "optimized"]),
)
def test_property_plan_roundtrip(bins, workers, strategy):
    current = BinnedConfiguration.round_robin(bins * 4, workers)
    target = BinnedConfiguration(
        tuple((w + 1) % workers for w in current.assignment)
    )
    plan = make_plan(strategy, current, target, batch_size=3)
    restored = plan_from_dict(plan_to_dict(plan))
    assert restored.strategy == plan.strategy
    assert restored.steps == plan.steps
    # The JSON form is actually JSON-serializable.
    json.dumps(plan_to_dict(plan))


def test_file_roundtrip(tmp_path):
    current = BinnedConfiguration.round_robin(8, 2)
    target = BinnedConfiguration.contiguous(8, 2)
    plan = make_plan("batched", current, target, batch_size=2)
    path = tmp_path / "plan.json"
    dump_plan(plan, path)
    assert load_plan(path).steps == plan.steps
    cpath = tmp_path / "config.json"
    dump_configuration(current, cpath)
    assert load_configuration(cpath) == current


def test_rejects_wrong_kind_and_version():
    config = BinnedConfiguration.round_robin(4, 2)
    data = configuration_to_dict(config)
    with pytest.raises(ValueError, match="expected kind"):
        plan_from_dict(data)
    data["version"] = 99
    with pytest.raises(ValueError, match="format version"):
        configuration_from_dict(data)
    with pytest.raises(ValueError, match="worker ids"):
        configuration_from_dict(
            {"version": 1, "kind": "configuration", "assignment": ["x"]}
        )
