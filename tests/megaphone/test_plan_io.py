"""Tests for plan/configuration serialization."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.megaphone.control import BinnedConfiguration, ControlInst
from repro.megaphone.migration import make_plan
from repro.megaphone.plan_io import (
    PlanProvenance,
    configuration_from_dict,
    configuration_to_dict,
    dump_plan,
    inst_from_dict,
    inst_to_dict,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    dump_configuration,
    load_configuration,
)


def test_configuration_roundtrip():
    config = BinnedConfiguration.round_robin(16, 4)
    assert configuration_from_dict(configuration_to_dict(config)) == config


def test_inst_roundtrip():
    inst = ControlInst(bin=7, worker=2)
    assert inst_from_dict(inst_to_dict(inst)) == inst


@given(
    st.integers(1, 4).map(lambda p: 2 ** p),
    st.integers(1, 5),
    st.sampled_from(["all-at-once", "fluid", "batched", "optimized"]),
)
def test_property_plan_roundtrip(bins, workers, strategy):
    current = BinnedConfiguration.round_robin(bins * 4, workers)
    target = BinnedConfiguration(
        tuple((w + 1) % workers for w in current.assignment)
    )
    plan = make_plan(strategy, current, target, batch_size=3)
    restored = plan_from_dict(plan_to_dict(plan))
    assert restored.strategy == plan.strategy
    assert restored.steps == plan.steps
    # The JSON form is actually JSON-serializable.
    json.dumps(plan_to_dict(plan))


def test_file_roundtrip(tmp_path):
    current = BinnedConfiguration.round_robin(8, 2)
    target = BinnedConfiguration.contiguous(8, 2)
    plan = make_plan("batched", current, target, batch_size=2)
    path = tmp_path / "plan.json"
    dump_plan(plan, path)
    assert load_plan(path).steps == plan.steps
    cpath = tmp_path / "config.json"
    dump_configuration(current, cpath)
    assert load_configuration(cpath) == current


def test_provenance_roundtrip_as_version_2():
    current = BinnedConfiguration.round_robin(8, 2)
    target = BinnedConfiguration.contiguous(8, 2)
    plan = make_plan("fluid", current, target)
    plan.provenance = PlanProvenance(
        source="planner", objective="balance", window_s=2.0, created_at=4.5
    )
    data = plan_to_dict(plan)
    assert data["version"] == 2
    assert data["provenance"]["source"] == "planner"
    json.dumps(data)  # still plain JSON
    restored = plan_from_dict(data)
    assert restored.provenance == plan.provenance
    assert restored.steps == plan.steps


def test_provenance_free_plans_stay_version_1():
    """Plans without provenance serialize as v1 so pre-planner readers
    keep working byte-for-byte."""
    current = BinnedConfiguration.round_robin(8, 2)
    plan = make_plan("all-at-once", current, BinnedConfiguration.contiguous(8, 2))
    data = plan_to_dict(plan)
    assert data["version"] == 1
    assert "provenance" not in data
    assert plan_from_dict(data).provenance is None


def test_version_1_documents_still_readable():
    current = BinnedConfiguration.round_robin(8, 2)
    plan = make_plan("batched", current, BinnedConfiguration.contiguous(8, 2), batch_size=2)
    data = plan_to_dict(plan)
    data["version"] = 1  # as written by an old tool
    restored = plan_from_dict(data)
    assert restored.steps == plan.steps


def test_provenance_rejects_unknown_source():
    with pytest.raises(ValueError, match="provenance source"):
        PlanProvenance.from_dict({"source": "oracle"})


def test_rejects_wrong_kind_and_version():
    config = BinnedConfiguration.round_robin(4, 2)
    data = configuration_to_dict(config)
    with pytest.raises(ValueError, match="expected kind"):
        plan_from_dict(data)
    data["version"] = 99
    with pytest.raises(ValueError, match="format version"):
        configuration_from_dict(data)
    with pytest.raises(ValueError, match="worker ids"):
        configuration_from_dict(
            {"version": 1, "kind": "configuration", "assignment": ["x"]}
        )
