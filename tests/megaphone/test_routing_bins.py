"""Unit tests for the routing table and bin store."""

import pytest

from repro.megaphone.bins import Bin, BinStore
from repro.megaphone.control import BinnedConfiguration, ControlInst
from repro.megaphone.routing import RoutingTable


def table_for(num_bins=4, workers=2):
    return RoutingTable(BinnedConfiguration.round_robin(num_bins, workers))


def test_initial_lookup_matches_configuration():
    table = table_for()
    assert table.worker_for(0, 0) == 0
    assert table.worker_for(1, 10**9) == 1
    assert table.current_owner(2) == 0


def test_update_applies_from_its_time_onwards():
    table = table_for()
    table.integrate(16, [ControlInst(bin=0, worker=1)])
    assert table.worker_for(0, 15) == 0
    assert table.worker_for(0, 16) == 1
    assert table.worker_for(0, 100) == 1
    assert table.current_owner(0) == 1


def test_multiple_updates_for_one_bin():
    table = table_for()
    table.integrate(10, [ControlInst(bin=0, worker=1)])
    table.integrate(20, [ControlInst(bin=0, worker=0)])
    assert table.worker_for(0, 5) == 0
    assert table.worker_for(0, 12) == 1
    assert table.worker_for(0, 25) == 0


def test_same_time_update_last_write_wins():
    table = table_for()
    table.integrate(10, [ControlInst(bin=0, worker=1)])
    table.integrate(10, [ControlInst(bin=0, worker=0)])
    assert table.worker_for(0, 10) == 0


def test_out_of_order_integration_rejected():
    table = table_for()
    table.integrate(20, [ControlInst(bin=0, worker=1)])
    with pytest.raises(ValueError):
        table.integrate(10, [ControlInst(bin=0, worker=0)])


def test_compact_preserves_semantics_at_or_after_base():
    table = table_for()
    table.integrate(10, [ControlInst(bin=0, worker=1)])
    table.integrate(20, [ControlInst(bin=0, worker=0)])
    table.compact(15)
    assert table.worker_for(0, 15) == 1
    assert table.worker_for(0, 25) == 0


def test_snapshot_reflects_latest():
    table = table_for()
    table.integrate(5, [ControlInst(bin=3, worker=0)])
    snap = table.snapshot()
    assert snap.worker_of(3) == 0
    assert snap.worker_of(1) == 1


def test_bin_store_lifecycle():
    store = BinStore(num_bins=4, state_factory=dict, bytes_per_key=8.0)
    bin_ = store.create(2)
    assert store.has(2)
    assert store.resident_bins() == [2]
    bin_.state["a"] = 1
    bin_.state["b"] = 2
    assert store.state_size(2) == pytest.approx(16.0)
    taken = store.take(2)
    assert not store.has(2)
    store.install(taken)
    assert store.has(2)
    assert store.total_keys() == 2


def test_bin_store_duplicate_create_rejected():
    store = BinStore(num_bins=4, state_factory=dict)
    store.create(0)
    with pytest.raises(ValueError):
        store.create(0)
    taken = store.extract(0, remove=False)
    with pytest.raises(ValueError):
        store.install(taken)


def test_bin_store_pending_counts_toward_size():
    store = BinStore(num_bins=2, state_factory=dict, bytes_per_key=10.0)
    bin_ = store.create(0)
    bin_.pending.push(5, (0, ("k", 1)))
    assert store.state_size(0) == pytest.approx(10.0)
    bin_.state["k"] = 1
    assert store.state_size(0) == pytest.approx(20.0)


def test_bin_store_custom_size_fn():
    store = BinStore(
        num_bins=2, state_factory=list, state_size_fn=lambda s: 1000.0
    )
    store.create(1)
    assert store.state_size(1) == 1000.0
    assert store.total_state_size() == 1000.0
