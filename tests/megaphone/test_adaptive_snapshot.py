"""Tests for the adaptive controller and bin-granular snapshots."""


from repro.megaphone.adaptive import AdaptiveConfig, AdaptiveMigrationController
from repro.megaphone.control import BinnedConfiguration, stable_hash
from repro.megaphone.controller import EpochTicker
from repro.megaphone.operators import build_migrateable
from repro.megaphone.snapshot import SnapshotCoordinator, restore_into
from tests.helpers import make_dataflow

WORKERS = 2
BINS = 16


def build(initial=None, sink=None):
    df = make_dataflow(num_workers=WORKERS, workers_per_process=2)
    control, control_group = df.new_input("control")
    data, data_group = df.new_input("data")
    if initial is None:
        initial = BinnedConfiguration.round_robin(BINS, WORKERS)

    def applier(app):
        state = app.state
        for _tag, (key, val) in app.entries:
            state[key] = state.get(key, 0) + val
            if sink is not None:
                sink.append((app.time, key, state[key]))

    op = build_migrateable(
        control, [data], [lambda r: stable_hash(r[0])], applier,
        num_bins=BINS, name="snap", initial=initial,
    )
    probe = df.probe(op.output)
    runtime = df.build()
    ticker = EpochTicker(runtime, control_group, granularity_ms=1)
    ticker.start()
    return df, runtime, control_group, data_group, probe, op, initial, ticker


def feed(runtime, data_group, n_epochs, keys=8):
    def make(e):
        def tick():
            for w, handle in enumerate(data_group.handles()):
                handle.send(e, [(f"k{(e + w) % keys}", 1)])
                handle.advance_to(e + 1)

        return tick

    for e in range(n_epochs):
        runtime.sim.schedule_at(e * 0.001, make(e))
    runtime.sim.schedule_at(n_epochs * 0.001, data_group.close_all)


def drain(runtime, ticker, controller=None):
    runtime.run(until=0.2)
    guard = 0
    while controller is not None and not controller.done:
        runtime.sim.run(max_events=10_000)
        guard += 1
        assert guard < 500
    ticker.stop()
    runtime.run_to_quiescence()


def test_adaptive_controller_migrates_everything():
    df, runtime, cg, dg, probe, op, initial, ticker = build()
    target = BinnedConfiguration(tuple((w + 1) % WORKERS for w in initial.assignment))
    controller = AdaptiveMigrationController(
        runtime, cg, ticker, probe, initial, target,
        config=AdaptiveConfig(initial_batch=1, target_step_s=0.01),
    )
    controller.start_at(0.02)
    feed(runtime, dg, 80)
    drain(runtime, ticker, controller)
    assert controller.done
    moved = sum(s.moves for s in controller.result.steps)
    assert moved == len(initial.moved_bins(target))
    for worker in range(WORKERS):
        store = op.store(runtime, worker)
        assert sorted(store.resident_bins()) == sorted(target.bins_of(worker))


def test_adaptive_controller_grows_batches_when_cheap():
    df, runtime, cg, dg, probe, op, initial, ticker = build()
    target = BinnedConfiguration(tuple((w + 1) % WORKERS for w in initial.assignment))
    controller = AdaptiveMigrationController(
        runtime, cg, ticker, probe, initial, target,
        config=AdaptiveConfig(initial_batch=1, target_step_s=1.0),
    )
    controller.start_at(0.02)
    feed(runtime, dg, 80)
    drain(runtime, ticker, controller)
    # Cheap steps: batch sizes must have grown.
    assert controller.batch_history[0] == 1
    assert max(controller.batch_history) > 1


def test_snapshot_is_consistent_cut():
    outputs = []
    df, runtime, cg, dg, probe, op, initial, ticker = build(sink=outputs)
    snap_time = 40
    coordinator = SnapshotCoordinator(runtime, op, probe, snap_time)
    feed(runtime, dg, 80)
    drain(runtime, ticker)
    snapshot = coordinator.snapshot
    assert snapshot is not None
    assert snapshot.time == snap_time
    # The snapshot equals a sequential replay of all updates through the
    # cut (``passed(T)`` means T itself has been applied).
    expected = {}
    for time, key, _count in outputs:
        if time <= snap_time:
            expected[key] = expected.get(key, 0) + 1
    merged = {}
    for bin_snapshot in snapshot.bins.values():
        merged.update(bin_snapshot.state)
    assert merged == expected
    assert snapshot.total_bytes > 0
    # Captured placement matches the (unmigrated) initial configuration.
    assert snapshot.assignment() == {
        b: initial.worker_of(b) for b in snapshot.bins
    }


def test_snapshot_restore_resumes_computation():
    outputs = []
    df, runtime, cg, dg, probe, op, initial, ticker = build(sink=outputs)
    snap_time = 40
    coordinator = SnapshotCoordinator(runtime, op, probe, snap_time)
    feed(runtime, dg, 40)  # stop the input exactly at the snapshot time
    drain(runtime, ticker)
    snapshot = coordinator.snapshot
    assert snapshot is not None

    # A fresh dataflow, restored from the snapshot, then fed the "rest".
    outputs2 = []
    df2, runtime2, cg2, dg2, probe2, op2, initial2, ticker2 = build(sink=outputs2)
    restore_into(runtime2, op2, snapshot)

    def make(e):
        def tick():
            for w, handle in enumerate(dg2.handles()):
                handle.send(e, [(f"k{(e + w) % 8}", 1)])
                handle.advance_to(e + 1)

        return tick

    for e in range(40, 80):
        runtime2.sim.schedule_at((e - 40) * 0.001, make(e))
    runtime2.sim.schedule_at(0.040, dg2.close_all)
    drain(runtime2, ticker2)

    # Reference: one continuous run over all 80 epochs.
    outputs_ref = []
    df3, runtime3, cg3, dg3, probe3, op3, initial3, ticker3 = build(sink=outputs_ref)
    feed(runtime3, dg3, 80)
    drain(runtime3, ticker3)

    def final_counts(op_handle, run):
        counts = {}
        for w in range(WORKERS):
            store = op_handle.store(run, w)
            for b in store.resident_bins():
                counts.update(store.get(b).state)
        return counts

    assert final_counts(op2, runtime2) == final_counts(op3, runtime3)
