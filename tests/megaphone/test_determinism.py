"""Whole-system determinism: identical runs produce identical everything.

Determinism is what makes the simulation's measurements trustworthy and
its bugs reproducible; any nondeterminism (hash-order iteration, unseeded
randomness, heap tie-breaking) would show up here.
"""

from tests.megaphone.driver import drive_wordcount

PARAMS = dict(num_workers=4, n_epochs=25, records_per_epoch_per_worker=4, n_keys=12)


def fingerprint(run):
    return (
        tuple((t, tuple(batch)) for t, batch in run.outputs),
        tuple(run.applications),
        tuple(
            (s.time, s.moves, s.issued_at, s.completed_at)
            for s in (run.result.steps if run.result else [])
        ),
        run.runtime.sim.events_processed,
        run.runtime.sim.now,
    )


def test_identical_runs_are_bit_identical():
    a = fingerprint(drive_wordcount(strategy="batched", **PARAMS))
    b = fingerprint(drive_wordcount(strategy="batched", **PARAMS))
    assert a == b


def test_strategy_changes_timing_but_not_results():
    a = drive_wordcount(strategy="all-at-once", **PARAMS)
    b = drive_wordcount(strategy="fluid", **PARAMS)
    assert a.final_counts() == b.final_counts()
    assert fingerprint(a) != fingerprint(b)  # schedules differ
