"""Delta migration end to end: base-then-delta shipping, fencing, retries.

The protocol under test: with ``delta_migration`` on and a delta-capable
backend, F ships each moving bin's *base* snapshot when the migration is
announced and only the keys dirtied since (plus the pending drain) when the
move executes.  S stages bases and merges deltas; installs are fenced so a
controller retry that double-ships a bin cannot clobber installed state.
"""

from repro.megaphone.bins import BinStore
from repro.megaphone.controller import ResilientMigrationController
from repro.runtime_events.events import (
    TOPIC_MIGRATION,
    BinStateExtracted,
    BinStateInstalled,
)
from repro.state.wal import WalRegistry
from tests.megaphone.driver import drive_wordcount, expected_counts


def _collect_migration_events(events):
    """An ``instrument=`` hook appending migration events to ``events``."""

    def instrument(runtime):
        runtime.sim.trace.subscribe(events.append, topics=(TOPIC_MIGRATION,))

    return instrument


def _wal_options():
    return {"wal_registry": WalRegistry()}


def _drive(delta, state_backend="wal", **kwargs):
    events = []
    run = drive_wordcount(
        strategy="batched",
        state_backend=state_backend,
        backend_options=_wal_options() if state_backend == "wal" else None,
        delta_migration=delta,
        instrument=_collect_migration_events(events),
        **kwargs,
    )
    return run, events


def test_delta_migration_preserves_wordcount_correctness():
    run, _ = _drive(delta=True)
    assert run.final_counts() == expected_counts(run, 4, 40, 5, 20)


def test_delta_run_ships_base_then_delta():
    run, events = _drive(delta=True)
    extracted = [e for e in events if type(e) is BinStateExtracted]
    installed = [e for e in events if type(e) is BinStateInstalled]
    base_ex = [e for e in extracted if e.kind == "base"]
    delta_ex = [e for e in extracted if e.kind == "delta"]
    assert base_ex, "no base snapshots were shipped ahead"
    assert delta_ex, "no deltas were shipped at execution"
    # Every migrated bin ships exactly one base and one delta, base first.
    moved = {e.bin for e in delta_ex}
    assert {e.bin for e in base_ex} == moved
    for bin_id in moved:
        base_at = min(e.at for e in base_ex if e.bin == bin_id)
        delta_at = min(e.at for e in delta_ex if e.bin == bin_id)
        assert base_at <= delta_at
    # S staged each base and merged each delta.
    assert {e.bin for e in installed if e.kind == "base"} == moved
    assert {e.bin for e in installed if e.kind == "delta"} == moved


def test_delta_execution_ships_fewer_bytes_than_whole_bin():
    full_run, full_events = _drive(delta=False)
    delta_run, delta_events = _drive(delta=True)
    assert full_run.final_counts() == delta_run.final_counts()
    full_bytes = sum(
        e.size_bytes
        for e in full_events
        if type(e) is BinStateExtracted and e.kind == "full"
    )
    delta_bytes = sum(
        e.size_bytes
        for e in delta_events
        if type(e) is BinStateExtracted and e.kind == "delta"
    )
    # Routing flips at the announcement, so only writes racing the move
    # land in the delta — far fewer execution-time bytes than whole bins
    # (an idle bin legitimately ships an empty delta).
    assert delta_bytes < full_bytes
    assert full_bytes > 0


def test_delta_flag_degrades_to_full_on_incapable_backend():
    run, events = _drive(delta=True, state_backend="dict")
    assert run.final_counts() == expected_counts(run, 4, 40, 5, 20)
    kinds = {e.kind for e in events if type(e) is BinStateExtracted}
    assert kinds == {"full"}


def test_delta_migration_equivalent_across_backends():
    baseline, _ = _drive(delta=False, state_backend="dict")
    delta, _ = _drive(delta=True)
    assert baseline.final_counts() == delta.final_counts()


# -- install fencing ----------------------------------------------------------


def _store(worker_id=0):
    return BinStore(
        num_bins=8,
        state_factory=dict,
        worker_id=worker_id,
        backend="wal",
        backend_options=_wal_options(),
    )


def test_duplicate_fenced_install_is_a_no_op():
    src, dst = _store(0), _store(1)
    src.create(2)
    src.get(2).state["k"] = 1
    payload = src.extract(2)
    payload.pending = [(5, ("k", 1))]
    payload.fence = (2, 1)

    first = dst.install(payload)
    pending_after_first = len(first.pending)
    # A controller retry double-ships the same fenced payload.
    second = dst.install(payload)
    assert second is first
    assert len(first.pending) == pending_after_first  # not re-queued
    assert first.state["k"] == 1


def test_unfenced_install_still_replaces():
    dst = _store(1)
    src = _store(0)
    src.create(3)
    src.get(3).state["k"] = 7
    payload = src.extract(3)
    dst.install(payload)
    # Legacy path (no fence): a second install with replace is honored.
    src2 = _store(2)
    src2.create(3)
    src2.get(3).state["k"] = 9
    dst.install(src2.extract(3), replace=True)
    assert dst.get(3).state["k"] == 9


def test_round_trip_migration_reinstalls_after_fence_clear():
    a, b = _store(0), _store(1)
    a.create(5)
    a.get(5).state["x"] = 1
    out = a.extract(5)
    out.fence = (5, 1)
    b.install(out)
    # The bin migrates back: extract-with-remove clears b's fence...
    back = b.extract(5)
    back.fence = (5, 0)
    a2 = a.install(back)
    assert a2.state["x"] == 1
    # ...so a later re-migration to b under the same fence installs again.
    out2 = a.extract(5)
    out2.fence = (5, 1)
    again = b.install(out2)
    assert again.state["x"] == 1
    assert 5 in b.resident_bins()


# -- controller retry idempotence ---------------------------------------------


def test_retrying_a_completed_step_is_a_no_op():
    run, events = _drive(
        delta=True, controller_cls=ResilientMigrationController
    )
    controller = run.controller
    assert controller.done
    steps = run.result.steps
    assert steps and all(s.completed_at is not None for s in steps)
    extracted_before = sum(1 for e in events if type(e) is BinStateExtracted)
    attempts_before = [s.attempts for s in steps]
    # Fire the timeout path for every completed step: the guard must drop
    # each one without re-issuing (no new control messages, no attempts).
    for step in steps:
        controller._on_timeout(step)
    run.runtime.run_to_quiescence()
    assert [s.attempts for s in steps] == attempts_before
    extracted_after = sum(1 for e in events if type(e) is BinStateExtracted)
    assert extracted_after == extracted_before
    assert run.final_counts() == expected_counts(run, 4, 40, 5, 20)
