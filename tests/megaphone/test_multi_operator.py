"""Multiple migrateable operators in one dataflow (paper §3.4).

"This construction can be repeated for all the operators in the dataflow
that need support for migration.  Separate operators can be migrated
independently (via separate configuration update streams), or in a
coordinated manner by re-using the same configuration update stream."
"""


from repro.megaphone.control import BinnedConfiguration, bin_of, stable_hash
from repro.megaphone.controller import EpochTicker, MigrationController
from repro.megaphone.migration import plan_all_at_once
from repro.megaphone.operators import build_migrateable
from tests.helpers import make_dataflow

WORKERS = 2
BINS = 4


def counting_applier(log):
    def applier(app):
        state = app.state
        out = []
        for _tag, (key, val) in app.entries:
            state[key] = state.get(key, 0) + val
            log.append((app.time, app.worker, key))
            out.append((key, 1))
        app.emit(out)

    return applier


def drive(runtime, ticker, data_group, controllers, n_epochs=50):
    def make(e):
        def tick():
            for w, handle in enumerate(data_group.handles()):
                handle.send(e, [(f"k{(e * 3 + w) % 6}", 1)])
                handle.advance_to(e + 1)

        return tick

    for e in range(n_epochs):
        runtime.sim.schedule_at(e * 0.001, make(e))
    runtime.sim.schedule_at(n_epochs * 0.001, data_group.close_all)
    runtime.run(until=(n_epochs + 10) * 0.001)
    guard = 0
    while any(not c.done for c in controllers):
        runtime.sim.run(max_events=10_000)
        guard += 1
        assert guard < 500
    ticker.stop()
    runtime.run_to_quiescence()


def test_shared_control_stream_migrates_operators_in_lockstep():
    df = make_dataflow(num_workers=WORKERS, workers_per_process=2)
    control, control_group = df.new_input("control")
    data, data_group = df.new_input("data")
    initial = BinnedConfiguration.round_robin(BINS, WORKERS)
    log_a, log_b = [], []

    op_a = build_migrateable(
        control, [data], [lambda r: stable_hash(r[0])],
        counting_applier(log_a), num_bins=BINS, name="a", initial=initial,
    )
    # The second operator consumes the first's output — a two-stage
    # stateful pipeline sharing one control stream.
    op_b = build_migrateable(
        control, [op_a.output], [lambda r: stable_hash(r[0])],
        counting_applier(log_b), num_bins=BINS, name="b", initial=initial,
    )
    probe = df.probe(op_b.output)
    runtime = df.build()
    ticker = EpochTicker(runtime, control_group, granularity_ms=1)
    ticker.start()

    target = BinnedConfiguration(tuple((w + 1) % WORKERS for w in initial.assignment))
    controller = MigrationController(
        runtime, control_group, ticker, probe, plan_all_at_once(initial, target)
    )
    controller.start_at(0.010)
    drive(runtime, ticker, data_group, [controller])

    migration_time = controller.result.steps[0].time
    # Both operators' bins moved (same commands, same stream).
    for worker in range(WORKERS):
        for op in (op_a, op_b):
            store = op.store(runtime, worker)
            assert sorted(store.resident_bins()) == sorted(target.bins_of(worker))
    # Both operators honored the same configuration switch point.
    for log, op in ((log_a, op_a), (log_b, op_b)):
        assert log
        for time, worker, key in log:
            bin_id = bin_of(stable_hash(key), BINS)
            expected = (
                target if time >= migration_time else initial
            ).worker_of(bin_id)
            assert worker == expected


def test_independent_control_streams_migrate_independently():
    df = make_dataflow(num_workers=WORKERS, workers_per_process=2)
    control_a, group_a = df.new_input("control_a")
    control_b, group_b = df.new_input("control_b")
    data, data_group = df.new_input("data")
    initial = BinnedConfiguration.round_robin(BINS, WORKERS)
    log_a, log_b = [], []

    op_a = build_migrateable(
        control_a, [data], [lambda r: stable_hash(r[0])],
        counting_applier(log_a), num_bins=BINS, name="a", initial=initial,
    )
    op_b = build_migrateable(
        control_b, [op_a.output], [lambda r: stable_hash(r[0])],
        counting_applier(log_b), num_bins=BINS, name="b", initial=initial,
    )
    probe_a = df.probe(op_a.output)
    probe_b = df.probe(op_b.output)
    runtime = df.build()
    ticker_a = EpochTicker(runtime, group_a, granularity_ms=1)
    ticker_b = EpochTicker(runtime, group_b, granularity_ms=1)
    ticker_a.start()
    ticker_b.start()

    target = BinnedConfiguration(tuple((w + 1) % WORKERS for w in initial.assignment))
    # Only operator A migrates.
    controller = MigrationController(
        runtime, group_a, ticker_a, probe_a, plan_all_at_once(initial, target)
    )
    controller.start_at(0.010)

    def make(e):
        def tick():
            for w, handle in enumerate(data_group.handles()):
                handle.send(e, [(f"k{(e + w) % 6}", 1)])
                handle.advance_to(e + 1)

        return tick

    for e in range(50):
        runtime.sim.schedule_at(e * 0.001, make(e))
    runtime.sim.schedule_at(0.050, data_group.close_all)
    runtime.run(until=0.08)
    guard = 0
    while not controller.done:
        runtime.sim.run(max_events=10_000)
        guard += 1
        assert guard < 500
    ticker_a.stop()
    ticker_b.stop()
    runtime.run_to_quiescence()

    for worker in range(WORKERS):
        assert sorted(op_a.store(runtime, worker).resident_bins()) == sorted(
            target.bins_of(worker)
        )
        # B never migrated.
        assert sorted(op_b.store(runtime, worker).resident_bins()) == sorted(
            initial.bins_of(worker)
        )
    assert log_b, "downstream operator still processed data"
