"""Property test: columnar routing == per-record reference routing.

Random batches are encoded into a :class:`ColumnBatch`, pushed through F's
routing logic twice — once with ``reference_routing=True`` (decode +
per-record memoized loop, the correctness pin) and once down the columnar
fast path — and the emitted destination batches are decoded back and
compared: same destination emission order, same per-destination record
counts, same per-bin grouping with entries in arrival order.

Both the active (numpy) and the pure-``array`` fallback representation are
exercised, and both the steady-state owners-vector path and the memoized
``worker_for`` path (forced by a pending migration marker).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.megaphone.control import BinnedConfiguration
from repro.megaphone.operators import MegaphoneConfig, _FLogic
from repro.runtime_events import columns
from repro.runtime_events.columns import ColumnBatch


class _RecordingCtx:
    """The only piece of the operator context ``_route_batch`` touches."""

    def __init__(self) -> None:
        self.sent: list = []

    def send(self, port: int, time, records) -> None:
        assert port == 0
        self.sent.append((time, records))


def _make_logic(
    num_bins: int, num_workers: int, reference: bool, pending: bool
) -> _FLogic:
    config = MegaphoneConfig(
        name="prop",
        num_bins=num_bins,
        initial=BinnedConfiguration.round_robin(num_bins, num_workers),
        key_fns=[lambda r: r[0], lambda r: r[0]],
        applier=lambda app: None,
        state_factory=dict,
        state_size_fn=None,
        reference_routing=reference,
    )
    logic = _FLogic(config, worker_id=0)
    if pending:
        # A non-empty pending-migration list forces the memoized
        # ``worker_for`` owner resolution in both implementations without
        # changing any ownership (the table history is still flat).
        logic._pending_migrations.append(((99.0,), []))
    return logic


def _decode(sent: list) -> list:
    """Normalize emitted DestinationBatch lists into comparable structure.

    Returns ``[(dst, count, [(bin, [(tag, record), ...]), ...])]``
    preserving emission order, bin first-occurrence order, and per-bin
    record arrival order for both batch layouts.
    """
    assert len(sent) <= 1
    out = []
    for _time, batches in sent:
        for db in batches:
            if db.columns is not None:
                bins: dict[int, list] = {}
                for bin_id, record in zip(db.bin_ids, db.columns.to_records()):
                    bins.setdefault(int(bin_id), []).append((db.tag, record))
            else:
                bins = db.bins
            out.append((db.dst, db.count, list(bins.items())))
    return out


_RECORDS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**64 - 1),
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
    ),
    max_size=60,
)


@pytest.mark.parametrize("representation", ["active", "fallback"])
@pytest.mark.parametrize("pending", [False, True])
@settings(max_examples=40, deadline=None)
@given(
    records=_RECORDS,
    num_bins=st.sampled_from([1, 16, 256]),
    num_workers=st.integers(min_value=1, max_value=8),
    port_tag=st.integers(min_value=0, max_value=1),
)
def test_columnar_routing_matches_reference(
    representation, pending, records, num_bins, num_workers, port_tag
):
    saved_np = columns._np
    if representation == "fallback":
        columns._np = None
    try:
        batch = ColumnBatch.from_records(records)
        reference = _make_logic(num_bins, num_workers, True, pending)
        columnar = _make_logic(num_bins, num_workers, False, pending)
        ref_ctx = _RecordingCtx()
        col_ctx = _RecordingCtx()
        reference._route_batch(ref_ctx, (1.0,), port_tag, batch)
        columnar._route_batch(col_ctx, (1.0,), port_tag, batch)
        assert _decode(col_ctx.sent) == _decode(ref_ctx.sent)
        total = sum(db.count for _t, bs in col_ctx.sent for db in bs)
        assert total == len(records)
    finally:
        columns._np = saved_np
