"""Tests for migration strategy planning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.megaphone.control import BinnedConfiguration
from repro.megaphone.migration import (
    imbalanced_target,
    make_plan,
    plan_all_at_once,
    plan_batched,
    plan_fluid,
    plan_optimized,
    rebalanced_target,
)


def configs(num_bins=16, workers=4):
    current = BinnedConfiguration.round_robin(num_bins, workers)
    target = BinnedConfiguration.contiguous(num_bins, workers)
    return current, target


def test_all_at_once_single_step():
    current, target = configs()
    plan = plan_all_at_once(current, target)
    assert len(plan.steps) == 1
    assert plan.configurations(current)[-1] == target


def test_all_at_once_noop_when_equal():
    current, _ = configs()
    assert plan_all_at_once(current, current).steps == []


def test_fluid_one_move_per_step():
    current, target = configs()
    plan = plan_fluid(current, target)
    assert all(len(step) == 1 for step in plan.steps)
    assert plan.total_moves == len(current.moved_bins(target))
    assert plan.configurations(current)[-1] == target


def test_batched_respects_batch_size():
    current, target = configs()
    plan = plan_batched(current, target, batch_size=3)
    assert all(len(step) <= 3 for step in plan.steps)
    assert plan.configurations(current)[-1] == target
    with pytest.raises(ValueError):
        plan_batched(current, target, batch_size=0)


def test_optimized_steps_use_disjoint_worker_pairs():
    current, target = configs()
    plan = plan_optimized(current, target)
    for step in plan.steps:
        sources = [current.worker_of(i.bin) for i in step.insts]
        dests = [i.worker for i in step.insts]
        assert len(set(sources)) == len(sources)
        assert len(set(dests)) == len(dests)
    assert plan.configurations(current)[-1] == target


def test_optimized_fewer_steps_than_fluid():
    current, target = configs(num_bins=64, workers=8)
    fluid = plan_fluid(current, target)
    optimized = plan_optimized(current, target)
    assert len(optimized.steps) < len(fluid.steps)
    assert optimized.total_moves == fluid.total_moves


def test_make_plan_dispatch():
    current, target = configs()
    assert make_plan("all-at-once", current, target).strategy == "all-at-once"
    assert make_plan("fluid", current, target).strategy == "fluid"
    assert make_plan("batched", current, target, batch_size=2).strategy == "batched"
    assert make_plan("optimized", current, target).strategy == "optimized"
    with pytest.raises(ValueError):
        make_plan("bogus", current, target)


def test_imbalanced_target_moves_quarter_of_state():
    initial = BinnedConfiguration.round_robin(16, 4)
    target = imbalanced_target(initial)
    moves = initial.moved_bins(target)
    # Half the bins of half the workers: 16 bins / 4 = 4 per worker;
    # workers 0 and 1 each give up 2 bins.
    assert len(moves) == 4
    for inst in moves:
        assert initial.worker_of(inst.bin) in (0, 1)
        assert inst.worker in (2, 3)
    assert rebalanced_target(initial, target) == initial


@given(
    st.integers(1, 5).map(lambda p: 2 ** p),
    st.integers(2, 6),
    st.sampled_from(["all-at-once", "fluid", "batched", "optimized"]),
)
def test_property_every_strategy_reaches_target(log_bins, workers, strategy):
    current = BinnedConfiguration.round_robin(log_bins * 4, workers)
    # A deterministic scrambled target.
    target = BinnedConfiguration(
        tuple((w * 3 + 1) % workers for w in current.assignment)
    )
    plan = make_plan(strategy, current, target, batch_size=3)
    if current == target:
        assert plan.total_moves == 0
    else:
        assert plan.configurations(current)[-1] == target
