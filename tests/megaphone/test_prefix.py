"""Tests for prefix-tree binning (paper §4.4's discussed alternative)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.megaphone.control import splitmix64
from repro.megaphone.prefix import (
    HASH_BITS,
    Prefix,
    PrefixRouter,
    SplittableBinStore,
    plan_split_migration,
)


def test_prefix_validation():
    with pytest.raises(ValueError):
        Prefix(bits=2, length=1)  # bits don't fit
    with pytest.raises(ValueError):
        Prefix(bits=0, length=65)
    assert str(Prefix(0b101, 3)) == "101"
    assert str(Prefix(0, 0)) == "*"


def test_prefix_containment_and_children():
    root = Prefix(0, 0)
    left, right = root.children()
    assert left == Prefix(0, 1)
    assert right == Prefix(1, 1)
    assert root.contains(left) and root.contains(right)
    assert not left.contains(right)
    assert left.parent() == root
    with pytest.raises(ValueError):
        root.parent()


def test_prefix_contains_hash():
    p = Prefix(0b1, 1)  # top bit set
    assert p.contains_hash(1 << 63)
    assert not p.contains_hash(0)


def test_router_initial_partition():
    router = PrefixRouter(num_workers=3, initial_depth=2)
    assert len(router.leaves()) == 4
    assert router.is_partition()
    assert {router.worker_of(p) for p in router.leaves()} <= {0, 1, 2}


def test_router_lookup_and_assign():
    router = PrefixRouter(num_workers=2, initial_depth=1)
    leaf = router.leaf_for_hash(1 << 63)
    assert leaf == Prefix(1, 1)
    router.assign(leaf, 0)
    assert router.worker_of(leaf) == 0
    with pytest.raises(KeyError):
        router.assign(Prefix(0, 3), 0)
    with pytest.raises(ValueError):
        router.assign(leaf, 9)


def test_router_split_and_merge_roundtrip():
    router = PrefixRouter(num_workers=2, initial_depth=1)
    leaf = Prefix(0, 1)
    left, right = router.split(leaf)
    assert router.is_partition()
    assert router.worker_of(left) == router.worker_of(right)
    merged = router.merge(leaf)
    assert merged == leaf
    assert router.is_partition()


def test_router_merge_rejects_cross_worker():
    router = PrefixRouter(num_workers=2, initial_depth=1)
    left, right = router.split(Prefix(0, 1))
    router.assign(right, (router.worker_of(left) + 1) % 2)
    with pytest.raises(ValueError):
        router.merge(Prefix(0, 1))


def test_router_longest_prefix_wins():
    router = PrefixRouter(num_workers=4, initial_depth=1)
    left, right = router.split(Prefix(0, 1))
    router.assign(left, 3)
    # A hash under `left` routes to the finer leaf's worker.
    h = 0  # top bits 00...
    assert router.leaf_for_hash(h) == left
    assert router.route_key(0) in range(4)


@given(st.integers(0, 2**64 - 1), st.integers(1, 4))
def test_property_every_hash_has_exactly_one_leaf(key_hash, depth):
    router = PrefixRouter(num_workers=2, initial_depth=depth)
    covering = [p for p in router.leaves() if p.contains_hash(key_hash)]
    assert len(covering) == 1


@given(st.lists(st.integers(0, 10**6), min_size=1, max_size=60))
def test_property_split_partitions_state(keys):
    store = SplittableBinStore(key_hash_fn=lambda k: splitmix64(k))
    root = Prefix(0, 0)
    state = store.create(root)
    for k in keys:
        state[k] = k * 2
    left, right = store.split(root)
    left_state, right_state = store.get(left), store.get(right)
    assert len(left_state) + len(right_state) == len(set(keys))
    for k in left_state:
        assert left.contains_hash(splitmix64(k))
    for k in right_state:
        assert right.contains_hash(splitmix64(k))
    # Merge restores exactly the original content.
    store.merge(root)
    assert store.get(root) == {k: k * 2 for k in set(keys)}


def test_store_take_install_cycle():
    store = SplittableBinStore(key_hash_fn=splitmix64)
    p = Prefix(0, 1)
    store.create(p)["a"] = 1
    state = store.take(p)
    assert not store.has(p)
    store.install(p, state)
    assert store.get(p) == {"a": 1}
    with pytest.raises(ValueError):
        store.install(p, {})


def test_plan_split_migration_respects_threshold():
    router = PrefixRouter(num_workers=2, initial_depth=1)
    sizes = {Prefix(0, 1): 1000.0, Prefix(1, 1): 10.0}
    actions = plan_split_migration(
        router,
        store_sizes=lambda p: sizes[p],
        hot_threshold=300.0,
        target_worker_fn=lambda p: p.bits & 1,
    )
    splits = [a for a in actions if a[0] == "split"]
    moves = [a for a in actions if a[0] == "move"]
    # The hot leaf (1000 > 300) splits twice: 1000 -> 500 -> 250.
    assert len(splits) == 3  # parent + two children
    # Every move carries at most the threshold's worth of modeled state.
    assert all(m[2] in (0, 1) for m in moves)
    # The cold leaf moves unsplit.
    assert ("move", Prefix(1, 1), 1) in moves
