"""The routing table's steady-state fast-path bookkeeping.

``current_owners``/``history_flat`` exist so F can route a record with one
flat array read instead of a per-record binary search; ``compact`` folds
settled history back into the base so the fast path re-arms after a
migration.  These tests pin the invariant the fast path relies on: whenever
``history_flat`` is True, ``worker_for(bin, t) == current_owners[bin]`` for
every routable time ``t``.
"""

from repro.megaphone.control import BinnedConfiguration, ControlInst
from repro.megaphone.routing import RoutingTable


def _table(num_bins: int = 8, num_workers: int = 4) -> RoutingTable:
    return RoutingTable(BinnedConfiguration.round_robin(num_bins, num_workers))


def test_initially_flat_and_owners_mirror_assignment():
    table = _table()
    assert table.history_flat
    for b in range(table.num_bins):
        assert table.current_owners[b] == table.worker_for(b, 0)
        assert table.current_owners[b] == table.current_owner(b)


def test_integrate_deepens_history_and_updates_owners():
    table = _table()
    old = table.current_owners[3]
    new = (old + 1) % 4
    table.integrate(100, [ControlInst(bin=3, worker=new)])
    assert not table.history_flat
    assert table.current_owners[3] == new
    # The history still answers for both sides of the reconfiguration time.
    assert table.worker_for(3, 99) == old
    assert table.worker_for(3, 100) == new
    # Untouched bins keep flat single-entry histories.
    assert table.worker_for(0, 100) == table.current_owners[0]


def test_compact_restores_flatness_and_agrees_with_owners():
    table = _table()
    moves = [ControlInst(bin=b, worker=(b + 1) % 4) for b in range(4)]
    table.integrate(100, moves)
    assert not table.history_flat
    table.compact(100)
    assert table.history_flat
    for b in range(table.num_bins):
        for t in (100, 150, 10_000):
            assert table.worker_for(b, t) == table.current_owners[b]


def test_compact_keeps_entries_still_reachable():
    table = _table()
    table.integrate(100, [ControlInst(bin=1, worker=2)])
    table.integrate(200, [ControlInst(bin=1, worker=3)])
    # Times in (150, 200) can still be queried: the 200 entry must survive.
    table.compact(150)
    assert not table.history_flat
    assert table.worker_for(1, 150) == 2
    assert table.worker_for(1, 200) == 3
    # Once 200 is settled too, the history folds down to a single base.
    table.compact(200)
    assert table.history_flat
    assert table.worker_for(1, 0) == 3
    assert table.current_owners[1] == 3


def test_same_time_update_overwrites_without_deepening():
    table = _table()
    table.integrate(100, [ControlInst(bin=5, worker=1)])
    table.integrate(100, [ControlInst(bin=5, worker=2)])
    assert table.worker_for(5, 100) == 2
    assert table.current_owners[5] == 2
    table.compact(100)
    assert table.history_flat


def test_snapshot_matches_current_owners():
    table = _table()
    table.integrate(50, [ControlInst(bin=0, worker=3)])
    snapshot = table.snapshot()
    assert list(snapshot.assignment) == table.current_owners
