"""End-to-end tests of the Megaphone mechanism (paper §3.2 properties)."""

import pytest

from repro.megaphone.control import BinnedConfiguration, bin_of, stable_hash
from tests.megaphone.driver import drive_wordcount, expected_counts

PARAMS = dict(num_workers=4, n_epochs=40, records_per_epoch_per_worker=5, n_keys=20)


def test_wordcount_without_migration_is_correct():
    run = drive_wordcount(strategy=None, **PARAMS)
    assert run.final_counts() == expected_counts(run, 4, 40, 5, 20)
    assert run.runtime.idle()


@pytest.mark.parametrize("strategy", ["all-at-once", "fluid", "batched", "optimized"])
def test_correctness_property_under_migration(strategy):
    """Paper Property 1: outputs equal the timestamp-ordered per-key
    application, regardless of migration strategy."""
    run = drive_wordcount(strategy=strategy, **PARAMS)
    assert run.final_counts() == expected_counts(run, 4, 40, 5, 20)


@pytest.mark.parametrize("strategy", ["all-at-once", "fluid", "batched"])
def test_completion_property_under_migration(strategy):
    """Paper Property 3: once inputs and control close, the computation
    drains completely."""
    run = drive_wordcount(strategy=strategy, **PARAMS)
    assert run.runtime.idle()
    assert run.result is not None
    assert run.result.completed_at is not None


@pytest.mark.parametrize("strategy", ["all-at-once", "fluid", "batched", "optimized"])
def test_migration_property_updates_at_configured_worker(strategy):
    """Paper Property 2: every update to a key at time t is performed at
    configuration(t, key)."""
    run = drive_wordcount(strategy=strategy, **PARAMS)
    num_bins = run.op.config.num_bins

    # Reconstruct configuration(time, bin) from the issued steps.
    step_times = [(s.time, s) for s in run.result.steps]

    def config_at(time):
        cfg = run.initial
        for t, step in step_times:
            if t <= time:
                insts = run.plan.steps[[s for _, s in step_times].index(step)].insts
                cfg = cfg.apply(list(insts))
        return cfg

    assert run.applications, "no applications recorded"
    for time, worker, key, _val in run.applications:
        bin_id = bin_of(stable_hash(key), num_bins)
        assert config_at(time).worker_of(bin_id) == worker, (
            f"key {key} (bin {bin_id}) applied at worker {worker} at time "
            f"{time}, expected {config_at(time).worker_of(bin_id)}"
        )


def test_migration_actually_moves_bins():
    run = drive_wordcount(strategy="all-at-once", **PARAMS)
    # After the imbalanced migration, workers 0/1 own half their bins and
    # workers 2/3 own the rest.
    final_config = run.initial
    for step in run.plan.steps:
        final_config = final_config.apply(list(step.insts))
    for worker in range(4):
        store = run.op.store(run.runtime, worker)
        assert sorted(store.resident_bins()) == sorted(final_config.bins_of(worker))
    assert run.op.migration_probe.total_bytes() > 0


def test_fluid_migration_has_one_move_per_step():
    run = drive_wordcount(strategy="fluid", **PARAMS)
    assert all(s.moves == 1 for s in run.result.steps)
    # Steps complete strictly in sequence.
    for earlier, later in zip(run.result.steps, run.result.steps[1:]):
        assert earlier.completed_at is not None
        assert earlier.completed_at <= later.issued_at


def test_all_at_once_has_single_step_with_all_moves():
    run = drive_wordcount(strategy="all-at-once", **PARAMS)
    assert len(run.result.steps) == 1
    assert run.result.steps[0].moves == run.plan.total_moves


def test_gap_delays_next_step():
    fast = drive_wordcount(strategy="fluid", gap_s=0.0, **PARAMS)
    slow = drive_wordcount(strategy="fluid", gap_s=0.005, **PARAMS)
    assert slow.result.duration > fast.result.duration


def test_migration_memory_accounting_balances():
    run = drive_wordcount(strategy="all-at-once", **PARAMS)
    cluster = run.runtime.cluster
    # After the run: send queues drained, retained (serialized) copies
    # released, and a transient spike was recorded on migrating processes.
    for process in cluster.processes:
        assert process.memory.send_queue_bytes == pytest.approx(0.0)
        assert process.memory.retained_bytes == pytest.approx(0.0)
    moved = run.op.migration_probe.total_bytes()
    assert moved > 0
    sender_peak = max(p.memory.peak_bytes for p in cluster.processes)
    assert sender_peak > 0


def test_scheduled_records_survive_migration():
    """Post-dated records (the extended notificator) migrate with bins and
    replay at the destination."""
    from repro.megaphone.operators import build_migrateable
    from repro.megaphone.controller import EpochTicker, MigrationController
    from repro.megaphone.migration import plan_all_at_once
    from tests.helpers import make_dataflow

    df = make_dataflow(num_workers=2, workers_per_process=2)
    control, control_group = df.new_input("control")
    data, data_group = df.new_input("data")
    initial = BinnedConfiguration.round_robin(4, 2)
    applied = []

    def applier(app):
        for tag, record in app.entries:
            if record == "schedule":
                # Post-date a reminder 20 ms into the future.
                app.schedule(app.time + 20, ("reminder", app.time))
            else:
                applied.append((app.time, app.worker, record))

    op = build_migrateable(
        control, [data], [lambda r: 7], applier, num_bins=4,
        name="sched", initial=initial,
    )
    probe = df.probe(op.output)
    runtime = df.build()
    ticker = EpochTicker(runtime, control_group, granularity_ms=1)
    ticker.start()

    target = BinnedConfiguration(tuple((w + 1) % 2 for w in initial.assignment))
    controller = MigrationController(
        runtime, control_group, ticker, probe, plan_all_at_once(initial, target)
    )

    def feed(epoch, payload):
        def tick():
            for handle in data_group.handles():
                if handle is data_group.handle(0):
                    handle.send(epoch, [payload])
                handle.advance_to(epoch + 1)

        return tick

    runtime.sim.schedule_at(0.000, feed(0, "schedule"))
    controller.start_at(0.004)
    for e in range(1, 40):
        runtime.sim.schedule_at(e * 0.001, feed(e, f"noise{e}"))
    runtime.sim.schedule_at(0.040, data_group.close_all)
    runtime.run(until=0.060)
    assert controller.done
    ticker.stop()
    runtime.run_to_quiescence()

    reminders = [a for a in applied if isinstance(a[2], tuple)]
    assert reminders == [(20, reminders[0][1], ("reminder", 0))]
    # The reminder applied at the bin's post-migration owner.
    migration_time = controller.result.steps[0].time
    assert migration_time < 20
    bin_id = bin_of(7, 4)
    assert reminders[0][1] == target.worker_of(bin_id)
