"""Property tests: snapshot serialization round-trips losslessly.

The durable form (``snapshot_to_bytes``/``snapshot_from_bytes``) must
preserve every bin — including *empty* bins, which a fault-tolerance
mechanism needs to distinguish from *missing* bins (an empty bin restores
as "known, zero keys"; a missing one would be recreated with default
state at an arbitrary later time).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.megaphone.snapshot import (
    BinSnapshot,
    OperatorSnapshot,
    snapshot_from_bytes,
    snapshot_to_bytes,
)
from repro.state.backend import BinPayload
from tests.megaphone.test_adaptive_snapshot import build, drain, feed
from repro.megaphone.snapshot import SnapshotCoordinator, restore_into

bin_states = st.dictionaries(
    keys=st.text(alphabet="abcdefgh", min_size=1, max_size=4),
    values=st.integers(min_value=-(2**40), max_value=2**40),
    max_size=6,
)

pending_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=100),
        st.tuples(st.text(alphabet="xyz", min_size=1, max_size=2), st.integers()),
    ),
    max_size=3,
)


@st.composite
def snapshots(draw):
    bin_ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=31), unique=True, max_size=8
        )
    )
    snapshot = OperatorSnapshot(
        name=draw(st.sampled_from(["op", "count", "q5"])),
        time=draw(st.integers(min_value=0, max_value=1000)),
        captured_at=draw(
            st.floats(min_value=0.0, max_value=60.0, allow_nan=False)
        ),
        frontier_at_capture=tuple(
            draw(st.lists(st.integers(min_value=0, max_value=1000), max_size=2))
        ),
    )
    for bin_id in bin_ids:
        state = draw(bin_states)
        pending = draw(pending_entries)
        size = draw(st.integers(min_value=0, max_value=10**9))
        snapshot.bins[bin_id] = BinSnapshot(
            bin_id=bin_id,
            worker=draw(st.integers(min_value=0, max_value=3)),
            payload=BinPayload(
                bin_id=bin_id,
                codec="modeled",
                payload=state,
                pending=pending,
                state_bytes=size,
                size_bytes=size,
                keys=len(state),
            ),
            size_bytes=size,
        )
    return snapshot


@given(snapshots())
def test_serialized_snapshot_roundtrips(snapshot):
    restored = snapshot_from_bytes(snapshot_to_bytes(snapshot))
    assert restored.name == snapshot.name
    assert restored.time == snapshot.time
    assert restored.captured_at == snapshot.captured_at
    assert restored.frontier_at_capture == snapshot.frontier_at_capture
    assert set(restored.bins) == set(snapshot.bins)
    for bin_id, original in snapshot.bins.items():
        copy = restored.bins[bin_id]
        assert copy.bin_id == original.bin_id
        assert copy.worker == original.worker
        assert copy.state == original.state
        assert copy.pending == original.pending
        assert copy.size_bytes == original.size_bytes
    # Sizes are integer bytes end-to-end, so the total is exact.
    assert restored.total_bytes == snapshot.total_bytes
    assert restored.assignment() == snapshot.assignment()


@given(st.integers(min_value=1, max_value=4))
@settings(max_examples=8, deadline=None)
def test_extract_serialize_install_is_lossless(keys):
    # Extract from a live run.  With few keys most of the 16 bins stay
    # empty, which is exactly the degenerate case worth exercising.
    df, runtime, cg, dg, probe, op, initial, ticker = build()
    snap_time = 30
    coordinator = SnapshotCoordinator(runtime, op, probe, snap_time)
    feed(runtime, dg, 30, keys=keys)
    drain(runtime, ticker)
    snapshot = coordinator.snapshot
    assert snapshot is not None
    nonempty = sum(1 for b in snapshot.bins.values() if b.state)
    assert nonempty <= keys  # the rest round-trip as empty bins

    # Serialize -> durable bytes -> deserialize -> install into a fresh run.
    restored = snapshot_from_bytes(snapshot_to_bytes(snapshot))
    df2, runtime2, cg2, dg2, probe2, op2, initial2, ticker2 = build()
    restore_into(runtime2, op2, restored)
    for bin_id, expected in snapshot.bins.items():
        store = op2.store(runtime2, expected.worker)
        assert store.has(bin_id)
        assert store.get(bin_id).state == expected.state
    dg2.close_all()
    drain(runtime2, ticker2)
