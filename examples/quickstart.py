#!/usr/bin/env python3
"""Quickstart: a migrating word-count dataflow (paper Listing 2 / Figure 4).

Builds a four-worker simulated cluster, runs a stateful word count through
Megaphone's ``state_machine`` operator, and performs a live fluid migration
halfway through — while input keeps flowing — printing where each bin lives
before and after, and demonstrating that the counts are unaffected.

Run:  python examples/quickstart.py
"""

from repro.megaphone import (
    BinnedConfiguration,
    EpochTicker,
    MigrationController,
    imbalanced_target,
    plan_fluid,
    state_machine,
)
from repro.sim.engine import Simulator
from repro.sim.network import Cluster
from repro.timely.dataflow import Dataflow

NUM_WORKERS = 4
NUM_BINS = 8
EPOCH_MS = 1
TEXT = (
    "the quick brown fox jumps over the lazy dog "
    "the dog barks and the fox runs away over the hill"
).split()


def count_fold(word, diff, state):
    """The paper's Listing 2 fold: accumulate counts per word."""
    state[word] = state.get(word, 0) + diff
    return [(word, state[word])]


def main():
    sim = Simulator()
    cluster = Cluster(sim, num_workers=NUM_WORKERS, workers_per_process=2)
    dataflow = Dataflow(cluster)

    # Two inputs: the text stream, and Megaphone's configuration stream.
    control, control_group = dataflow.new_input("control")
    text, text_group = dataflow.new_input("text")

    initial = BinnedConfiguration.round_robin(NUM_BINS, NUM_WORKERS)
    wordcount = state_machine(
        control,
        text,
        fold=count_fold,
        num_bins=NUM_BINS,
        initial=initial,
        name="wordcount",
    )
    latest = {}
    wordcount.output.sink(lambda w, t, recs: latest.update(recs))
    probe = dataflow.probe(wordcount.output)
    runtime = dataflow.build()

    # Keep logical time moving on the control stream.
    ticker = EpochTicker(runtime, control_group, granularity_ms=EPOCH_MS)
    ticker.start()

    # Feed one (word, +1) pair per epoch, round-robin across workers.
    def feed(epoch, word):
        def tick():
            for w, handle in enumerate(text_group.handles()):
                if w == epoch % NUM_WORKERS:
                    handle.send(epoch, [(word, 1)])
                handle.advance_to(epoch + 1)

        return tick

    for epoch, word in enumerate(TEXT):
        sim.schedule_at(epoch * EPOCH_MS / 1000.0, feed(epoch, word))
    sim.schedule_at(len(TEXT) * EPOCH_MS / 1000.0, text_group.close_all)

    # Halfway through, migrate a quarter of the state, one bin at a time.
    target = imbalanced_target(initial)
    plan = plan_fluid(initial, target)
    controller = MigrationController(
        runtime, control_group, ticker, probe, plan
    )
    controller.start_at(len(TEXT) // 2 * EPOCH_MS / 1000.0)

    print(f"bins before migration: {initial.assignment}")
    runtime.run(until=len(TEXT) * EPOCH_MS / 1000.0 + 0.05)
    while not controller.done:
        sim.run(max_events=10_000)
    ticker.stop()
    runtime.run_to_quiescence()

    print(f"bins after migration:  {target.assignment}")
    print(
        f"migration: {len(controller.result.steps)} steps, "
        f"{controller.result.duration * 1000:.1f} ms total"
    )
    print("\nword counts (unaffected by the live migration):")
    for word in sorted(latest):
        print(f"  {word:>6s}: {latest[word]}")

    expected = {}
    for word in TEXT:
        expected[word] = expected.get(word, 0) + 1
    assert latest == expected, "migration must not change results!"
    print("\nOK: counts match a sequential reference.")


if __name__ == "__main__":
    main()
