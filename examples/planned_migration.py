#!/usr/bin/env python3
"""Ahead-of-time migration: reconfiguration as timestamped data.

The paper's second differentiating feature: because configuration updates
are ordinary records on a dataflow stream, a migration can be *prepared*
long before it happens — the update simply carries a future logical
timestamp.  No coordination is needed at the moment it takes effect; the
frontier machinery triggers it exactly when all earlier data has been
absorbed.

This example issues, at t~0.1s, a reconfiguration effective at logical
time 2000 ms.  The dataflow keeps processing; the state moves at t~2s on
its own.

Run:  python examples/planned_migration.py
"""

from repro.megaphone import (
    BinnedConfiguration,
    ControlInst,
    EpochTicker,
    imbalanced_target,
    state_machine,
)
from repro.sim.engine import Simulator
from repro.sim.network import Cluster
from repro.timely.dataflow import Dataflow

WORKERS = 4
BINS = 16
EPOCH_MS = 10
EFFECTIVE_AT_MS = 2000
DURATION_S = 3.0


def main():
    sim = Simulator()
    cluster = Cluster(sim, num_workers=WORKERS, workers_per_process=2)
    df = Dataflow(cluster)
    control, control_group = df.new_input("control")
    data, data_group = df.new_input("data")

    initial = BinnedConfiguration.round_robin(BINS, WORKERS)
    target = imbalanced_target(initial)

    def fold(key, val, state):
        state[key] = state.get(key, 0) + val
        return []

    op = state_machine(
        control, data, fold=fold, num_bins=BINS, initial=initial, name="planned"
    )
    df.probe(op.output)
    runtime = df.build()
    ticker = EpochTicker(runtime, control_group, granularity_ms=EPOCH_MS)
    ticker.start()

    # Prepare the future migration NOW: commands post-dated to 2000 ms.
    insts = [
        ControlInst(bin=b, worker=w)
        for b, w in enumerate(target.assignment)
        if initial.worker_of(b) != w
    ]

    def prepare():
        control_group.handle(0).send(EFFECTIVE_AT_MS, insts)
        print(f"t={sim.now:.2f}s: issued {len(insts)} moves, "
              f"effective at logical time {EFFECTIVE_AT_MS} ms — no further "
              "coordination will happen")

    sim.schedule_at(0.1, prepare)

    # Watch when the state physically moves.
    moved_at = {}

    def watch():
        probe_steps = op.migration_probe.steps
        step = probe_steps.get(EFFECTIVE_AT_MS)
        if step and step["started"] is not None and "t" not in moved_at:
            moved_at["t"] = step["started"]
            print(f"t={sim.now:.2f}s: migration executed "
                  f"({step['moves']} moves, {step['bytes']:.0f} modeled bytes)")
        if sim.now < DURATION_S:
            sim.schedule(0.05, watch)

    sim.schedule_at(0.2, watch)

    # A steady trickle of data the whole time.
    def feed(epoch):
        def tick():
            t_ms = epoch * EPOCH_MS
            for w, handle in enumerate(data_group.handles()):
                handle.send(t_ms, [(f"key{(epoch * 13 + w) % 50}", 1)])
                handle.advance_to(t_ms + EPOCH_MS)

        return tick

    n_epochs = int(DURATION_S * 1000 / EPOCH_MS)
    for epoch in range(n_epochs):
        sim.schedule_at(epoch * EPOCH_MS / 1000.0, feed(epoch))
    sim.schedule_at(DURATION_S, data_group.close_all)

    runtime.run(until=DURATION_S + 0.1)
    ticker.stop()
    runtime.run_to_quiescence()

    assert "t" in moved_at, "the prepared migration never executed"
    assert moved_at["t"] >= EFFECTIVE_AT_MS / 1000.0 - 0.05
    for worker in range(WORKERS):
        resident = sorted(op.store(runtime, worker).resident_bins())
        assert resident == sorted(target.bins_of(worker))
        print(f"worker {worker}: bins {resident}")
    print("\nOK: the migration fired exactly at its prepared logical time.")


if __name__ == "__main__":
    main()
