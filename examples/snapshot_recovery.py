#!/usr/bin/env python3
"""Fine-grained snapshots and recovery (paper §4.4, fault tolerance).

The paper observes that Megaphone's migration mechanism "effectively
provides programmable snapshots on finer granularities".  This example
exercises that idea end to end:

1. run a stateful word count and capture a bin-granular snapshot at a
   chosen logical time (the same frontier condition that triggers a
   migration guarantees the snapshot is a consistent cut);
2. "lose" the deployment;
3. restore the snapshot into a fresh cluster and replay only the input
   after the cut;
4. verify the recovered counts match an uninterrupted run.

Run:  python examples/snapshot_recovery.py
"""

from repro.megaphone import (
    BinnedConfiguration,
    EpochTicker,
    SnapshotCoordinator,
    restore_into,
    state_machine,
)
from repro.sim.engine import Simulator
from repro.sim.network import Cluster
from repro.timely.dataflow import Dataflow

WORKERS = 4
BINS = 16
EPOCHS = 60
CUT = 30  # snapshot at logical time 30 ms


def build():
    sim = Simulator()
    cluster = Cluster(sim, num_workers=WORKERS, workers_per_process=2)
    df = Dataflow(cluster)
    control, control_group = df.new_input("control")
    data, data_group = df.new_input("data")
    initial = BinnedConfiguration.round_robin(BINS, WORKERS)

    def fold(word, diff, state):
        state[word] = state.get(word, 0) + diff
        return []

    op = state_machine(
        control, data, fold=fold, num_bins=BINS, initial=initial, name="wc"
    )
    probe = df.probe(op.output)
    runtime = df.build()
    ticker = EpochTicker(runtime, control_group, granularity_ms=1)
    ticker.start()
    return runtime, data_group, probe, op, ticker


def feed(runtime, data_group, epochs, close=True):
    def make(e):
        def tick():
            for w, handle in enumerate(data_group.handles()):
                handle.send(e, [(f"word{(e * 7 + w) % 12}", 1)])
                handle.advance_to(e + 1)

        return tick

    for e in epochs:
        runtime.sim.schedule_at((e - epochs[0]) * 0.001, make(e))
    if close:
        runtime.sim.schedule_at(len(epochs) * 0.001, data_group.close_all)


def finish(runtime, ticker):
    runtime.run(until=0.2)
    ticker.stop()
    runtime.run_to_quiescence()


def counts_of(op, runtime):
    merged = {}
    for w in range(WORKERS):
        store = op.store(runtime, w)
        for b in store.resident_bins():
            merged.update(store.get(b).state)
    return merged


def main():
    # --- phase 1: the original deployment, snapshotted mid-run -------------
    runtime, data_group, probe, op, ticker = build()
    coordinator = SnapshotCoordinator(runtime, op, probe, CUT)
    feed(runtime, data_group, list(range(CUT)))  # input up to the cut
    finish(runtime, ticker)
    snapshot = coordinator.snapshot
    assert snapshot is not None
    print(f"captured snapshot at logical time {snapshot.time} ms: "
          f"{len(snapshot.bins)} bins, {snapshot.total_bytes:.0f} modeled bytes")

    # --- phase 2: recovery into a fresh cluster -----------------------------
    runtime2, data_group2, probe2, op2, ticker2 = build()
    restore_into(runtime2, op2, snapshot)
    print("restored snapshot into a fresh cluster; replaying the suffix ...")
    feed(runtime2, data_group2, list(range(CUT, EPOCHS)))
    finish(runtime2, ticker2)

    # --- reference: one uninterrupted run -----------------------------------
    runtime3, data_group3, probe3, op3, ticker3 = build()
    feed(runtime3, data_group3, list(range(EPOCHS)))
    finish(runtime3, ticker3)

    recovered = counts_of(op2, runtime2)
    reference = counts_of(op3, runtime3)
    assert recovered == reference, "recovery diverged from the reference run"
    print(f"recovered counts for {len(recovered)} words match the "
          "uninterrupted reference run")
    for word in sorted(recovered)[:4]:
        print(f"  {word}: {recovered[word]}")
    print("\nOK: snapshot + suffix replay == uninterrupted execution.")


if __name__ == "__main__":
    main()
