#!/usr/bin/env python3
"""NEXMark hot items (Q5) with a live migration.

Runs the paper's Query 5 — "which auction has the most bids over the
trailing window?" — on the simulated cluster at a sustained event rate,
performs a batched migration of the windowed counts mid-run, and prints
the latency timeline so the (absence of a) disruption is visible.

Run:  python examples/nexmark_hot_items.py [--strategy all-at-once|fluid|batched]
"""

import argparse

from repro.harness.experiment import ExperimentConfig
from repro.harness.report import print_table, print_timeline
from repro.nexmark.config import NexmarkConfig
from repro.nexmark.harness import run_nexmark_experiment


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--strategy",
        default="batched",
        choices=["all-at-once", "fluid", "batched", "optimized"],
    )
    parser.add_argument("--rate", type=float, default=10_000.0,
                        help="events per second (simulated)")
    args = parser.parse_args()

    nexmark = NexmarkConfig(
        # Scale the modeled per-entry bytes up so the migration moves a
        # meaningful amount of state at example scale.
        state_bytes_scale=4096.0,
    )
    cfg = ExperimentConfig(
        num_workers=8,
        workers_per_process=4,
        num_bins=256,
        rate=args.rate,
        duration_s=8.0,
        granularity_ms=10,
        migrate_at_s=(4.0,),
        strategy=args.strategy,
        batch_size=16,
    )
    print(f"running NEXMark Q5 at {args.rate:,.0f} events/s, "
          f"{args.strategy} migration at t=4s ...")
    result = run_nexmark_experiment(5, cfg, nexmark=nexmark)

    print_timeline(
        f"Q5 service latency ({args.strategy})",
        result.timeline.series(),
        every=2,
    )
    migration = result.migrations[0]
    print_table(
        "migration summary",
        ["strategy", "steps", "moves", "duration [ms]", "max latency [ms]"],
        [(
            args.strategy,
            len(migration.steps),
            sum(s.moves for s in migration.steps),
            f"{result.migration_duration(0) * 1000:.1f}",
            f"{result.migration_max_latency(0) * 1000:.2f}",
        )],
    )
    print(f"\nsteady-state max latency: "
          f"{result.steady_max_latency() * 1000:.2f} ms")


if __name__ == "__main__":
    main()
