#!/usr/bin/env python3
"""Elastic rescaling driven by an observing controller (paper §4.4).

Megaphone deliberately externalizes the *policy*: any controller that can
write ``(time, bin, worker)`` updates to the control stream can drive it —
the paper names DS2, Dhalion, and Chi.  This example implements a small
DS2-flavoured closed loop:

1. the workload's key skew shifts over time (a hot key range moves);
2. the controller periodically samples per-worker load (records applied
   per interval, observed through the bin stores);
3. when imbalance exceeds a threshold, it plans a rebalancing migration
   with the `optimized` strategy and feeds it to the control stream —
   while data keeps flowing.

Run:  python examples/elastic_rescaling.py
"""

from repro.megaphone import (
    BinnedConfiguration,
    EpochTicker,
    MigrationController,
    bin_of,
    plan_optimized,
    state_machine,
    stable_hash,
)
from repro.sim.engine import Simulator
from repro.sim.network import Cluster
from repro.timely.dataflow import Dataflow

WORKERS = 4
BINS = 64
EPOCH_MS = 5
DURATION_S = 4.0
RECORDS_PER_EPOCH = 120
REBALANCE_EVERY_S = 0.5
IMBALANCE_THRESHOLD = 1.5


def main():
    sim = Simulator()
    cluster = Cluster(sim, num_workers=WORKERS, workers_per_process=2)
    df = Dataflow(cluster)
    control, control_group = df.new_input("control")
    data, data_group = df.new_input("data")

    initial = BinnedConfiguration.round_robin(BINS, WORKERS)
    bin_load = [0] * BINS  # records applied per bin since the last sample

    def fold(key, val, state):
        state[key] = state.get(key, 0) + val
        bin_load[bin_of(stable_hash(key), BINS)] += 1
        return []

    op = state_machine(
        control, data, fold=fold, num_bins=BINS, initial=initial, name="skewed"
    )
    probe = df.probe(op.output)
    runtime = df.build()
    ticker = EpochTicker(runtime, control_group, granularity_ms=EPOCH_MS)
    ticker.start()

    # --- the skewed workload: the hot range drifts over time -----------------
    def feed(epoch):
        def tick():
            t_ms = epoch * EPOCH_MS
            phase = epoch // 100  # the hot range jumps every ~0.5 s
            for w, handle in enumerate(data_group.handles()):
                batch = []
                for i in range(RECORDS_PER_EPOCH // WORKERS):
                    if i % 3:  # two thirds of traffic hits the hot range
                        key = f"hot{phase}-{i % 8}"
                    else:
                        key = f"cold-{(epoch * 31 + i * 7 + w) % 1000}"
                    batch.append((key, 1))
                handle.send(t_ms, batch)
                handle.advance_to(t_ms + EPOCH_MS)

        return tick

    n_epochs = int(DURATION_S * 1000 / EPOCH_MS)
    for epoch in range(n_epochs):
        sim.schedule_at(epoch * EPOCH_MS / 1000.0, feed(epoch))
    sim.schedule_at(DURATION_S, data_group.close_all)

    # --- the controller loop ---------------------------------------------------
    state = {"config": initial, "controller": None, "migrations": 0}

    def worker_loads(config):
        loads = [0] * WORKERS
        for b, records in enumerate(bin_load):
            loads[config.worker_of(b)] += records
        return loads

    def control_loop():
        controller = state["controller"]
        if controller is None or controller.done:
            config = state["config"]
            loads = worker_loads(config)
            total = sum(loads) or 1
            imbalance = max(loads) / (total / WORKERS)
            if imbalance > IMBALANCE_THRESHOLD:
                target = plan_target(config)
                plan = plan_optimized(config, target)
                if plan.total_moves:
                    print(
                        f"t={sim.now:5.2f}s loads={loads} imbalance="
                        f"{imbalance:.2f} -> migrating {plan.total_moves} bins"
                    )
                    controller = MigrationController(
                        runtime, control_group, ticker, probe, plan
                    )
                    controller.start_at(sim.now)
                    state["controller"] = controller
                    state["config"] = target
                    state["migrations"] += 1
        for b in range(BINS):
            bin_load[b] = 0
        if sim.now < DURATION_S:
            sim.schedule(REBALANCE_EVERY_S, control_loop)

    def plan_target(config):
        # Greedy: order bins by observed load, deal them to workers so the
        # per-worker load is as even as possible (a DS2-style decision).
        order = sorted(range(BINS), key=lambda b: -bin_load[b])
        loads = [0.0] * WORKERS
        assignment = list(config.assignment)
        for b in order:
            w = min(range(WORKERS), key=lambda w: loads[w])
            assignment[b] = w
            loads[w] += bin_load[b] + 1e-9
        return BinnedConfiguration(tuple(assignment))

    sim.schedule_at(REBALANCE_EVERY_S, control_loop)

    runtime.run(until=DURATION_S + 0.2)
    controller = state["controller"]
    while controller is not None and not controller.done:
        sim.run(max_events=10_000)
    ticker.stop()
    runtime.run_to_quiescence()

    print(f"\ncompleted {state['migrations']} controller-initiated migrations")
    final = state["config"]
    sizes = [
        sum(
            len(op.store(runtime, w).get(b).state)
            for b in final.bins_of(w)
            if op.store(runtime, w).has(b)
        )
        for w in range(WORKERS)
    ]
    print(f"final per-worker key counts: {sizes}")
    assert state["migrations"] >= 1, "controller should have reacted to skew"
    print("OK: the controller rebalanced the skewed workload live.")


if __name__ == "__main__":
    main()
