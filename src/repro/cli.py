"""Command-line interface for running reproduction experiments.

Usage (module form)::

    python -m repro.cli count --strategy fluid --bins 4096 --domain 1e9
    python -m repro.cli nexmark --query 5 --strategy batched --dilation 60
    python -m repro.cli compare --domain 1e9           # Figure 1 in one line
    python -m repro.cli trace --domain 1e7             # per-bin phase breakdown
    python -m repro.cli plan --workload skewed         # closed-loop planner
    python -m repro.cli bench --scale smoke            # hot-path throughput
    python -m repro.cli count --record run.jsonl       # record an event log
    python -m repro.cli replay run.jsonl               # verify it reproduces
    python -m repro.cli matrix --spec sweep.toml       # experiment matrix
    python -m repro.cli list

``--profile`` (before the subcommand) wraps any command in cProfile and
prints the top 25 functions by cumulative time after the report.

Each command builds the simulated cluster, runs the workload with the
requested migrations, and prints the latency timeline plus a migration
summary in the same format the benchmarks use.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.experiment import ExperimentConfig, run_count_experiment
from repro.harness.report import (
    format_duration,
    format_latency,
    print_phase_breakdown,
    print_table,
    print_timeline,
)
from repro.megaphone.migration import STRATEGIES
from repro.nexmark.config import NexmarkConfig
from repro.nexmark.harness import run_nexmark_experiment
from repro.perf.hotpath import SCALES


def _common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--workers-per-process", type=int, default=4)
    parser.add_argument("--bins", type=int, default=256)
    parser.add_argument("--rate", type=float, default=20_000)
    parser.add_argument("--duration", type=float, default=8.0)
    parser.add_argument("--strategy", choices=STRATEGIES, default="batched")
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument(
        "--migrate-at", type=float, nargs="*", default=[3.0],
        help="simulated seconds at which to start migrations",
    )
    parser.add_argument("--granularity-ms", type=int, default=10)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--network-latency", type=float, default=40e-6, metavar="SECONDS",
        help="cross-process link latency; in --parallel runs it is also "
        "the conservative lookahead, so ms-scale values (e.g. 0.01) keep "
        "the synchronization round count practical",
    )
    parser.add_argument(
        "--state-backend", default="dict",
        help="state backend holding bin state (see `repro.cli list`)",
    )
    parser.add_argument(
        "--codec", default="modeled",
        help="codec serializing migrated/snapshotted state",
    )
    parser.add_argument(
        "--hot-capacity", type=float, default=None,
        help="tiered backend: hot-tier capacity in bytes before spilling",
    )
    parser.add_argument(
        "--delta-migration", action="store_true",
        help="ship each bin's base state ahead of the move and only the "
        "dirtied delta at execution (needs a delta-capable backend such "
        "as wal; falls back to whole-bin shipment otherwise)",
    )


def _parallel_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="shard the simulation over the workers-per-process partition: "
        "N >= 1 forks N shard processes, 0 runs the sharded reference "
        "engine in-process; all values produce byte-identical results",
    )


def _obsv_args(parser: argparse.ArgumentParser) -> None:
    """The observability surface shared by the experiment commands."""
    parser.add_argument(
        "--export-metrics", default=None, metavar="PATH",
        help="stream JSON-line metric snapshots to PATH ('-' = stdout)",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus text metrics on localhost:PORT during the "
        "run (0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--record", default=None, metavar="PATH",
        help="write the versioned event log that `repro.cli replay` "
        "re-executes and verifies",
    )


def _elastic_args(parser: argparse.ArgumentParser) -> None:
    """Elastic membership: standby slots, scripted scaling, autoscaling."""
    parser.add_argument(
        "--active", type=int, default=None, metavar="N",
        help="initially active workers; the remaining --workers slots are "
        "provisioned standbys that joins can admit mid-run",
    )
    parser.add_argument(
        "--scaling-plan", default=None, metavar="SPEC",
        help="scripted membership changes, e.g. 'join@2:4,5;leave@5:4,5' "
        "(semicolon-separated action@seconds:worker,worker)",
    )
    parser.add_argument(
        "--autoscale", action="store_true",
        help="attach the closed-loop autoscaler (threshold policy with "
        "hysteresis and cooldown; see `repro.cli list`)",
    )
    parser.add_argument(
        "--scale-out-load", type=float, default=1500.0,
        help="autoscaler: mean records/s per active worker above which "
        "a standby is admitted",
    )
    parser.add_argument(
        "--scale-in-load", type=float, default=400.0,
        help="autoscaler: mean load below which the highest active "
        "worker is drained (must stay below --scale-out-load; the gap "
        "is the anti-thrash hysteresis band)",
    )
    parser.add_argument(
        "--autoscale-cooldown", type=float, default=3.0,
        help="autoscaler: seconds between scaling actions",
    )


def _validate_common(parser: argparse.ArgumentParser, args) -> None:
    """Reject nonsensical parameter combinations with a clear message.

    All checks funnel through ``parser.error`` (usage + message, exit code
    2) so a typo'd flag and an out-of-range value fail the same way.
    """
    if args.workers <= 0:
        parser.error(f"--workers must be positive, got {args.workers}")
    if args.workers_per_process <= 0:
        parser.error(
            f"--workers-per-process must be positive, got {args.workers_per_process}"
        )
    if args.workers % args.workers_per_process != 0:
        parser.error(
            f"--workers ({args.workers}) must be divisible by "
            f"--workers-per-process ({args.workers_per_process}); the "
            "cluster hosts equal-size process groups"
        )
    if args.bins <= 0:
        parser.error(f"--bins must be positive, got {args.bins}")
    if args.bins & (args.bins - 1) != 0:
        parser.error(f"--bins must be a power of two, got {args.bins}")
    if args.rate <= 0:
        parser.error(f"--rate must be positive, got {args.rate}")
    if args.duration <= 0:
        parser.error(f"--duration must be positive, got {args.duration}")
    if args.batch_size <= 0:
        parser.error(f"--batch-size must be positive, got {args.batch_size}")
    if args.granularity_ms <= 0:
        parser.error(
            f"--granularity-ms must be positive, got {args.granularity_ms}"
        )
    if args.network_latency <= 0:
        parser.error(
            f"--network-latency must be positive, got {args.network_latency}"
        )
    for at in args.migrate_at:
        if not 0 < at < args.duration:
            parser.error(
                f"--migrate-at {at} is outside (0, {args.duration}): a "
                "migration must start after the run begins and before the "
                "input closes"
            )
    _validate_backend_args(parser, args)
    if args.hot_capacity is not None and args.hot_capacity <= 0:
        parser.error(
            f"--hot-capacity must be positive, got {args.hot_capacity}"
        )
    if getattr(args, "hot_keys", 1) <= 0:
        parser.error(f"--hot-keys must be positive, got {args.hot_keys}")
    if not 0.0 <= getattr(args, "hot_fraction", 0.5) <= 1.0:
        parser.error(
            f"--hot-fraction must be within [0, 1], got {args.hot_fraction}"
        )
    if getattr(args, "min_gain", 0.0) < 0.0:
        parser.error(f"--min-gain must be non-negative, got {args.min_gain}")
    metrics_port = getattr(args, "metrics_port", None)
    if metrics_port is not None and metrics_port < 0:
        parser.error(f"--metrics-port must be >= 0, got {metrics_port}")
    parallel = getattr(args, "parallel", None)
    if parallel is not None:
        if parallel < 0:
            parser.error(f"--parallel must be >= 0, got {parallel}")
        if getattr(args, "native", False):
            parser.error(
                "--parallel does not support --native; the sharded engine "
                "only runs the migrateable operator"
            )
    _validate_elastic_args(parser, args)


def _validate_elastic_args(parser: argparse.ArgumentParser, args) -> None:
    """Membership-shape checks mirroring ``ExperimentConfig`` validation,
    surfaced as usage errors before any cluster is built."""
    active = getattr(args, "active", None)
    spec = getattr(args, "scaling_plan", None)
    autoscale = getattr(args, "autoscale", False)
    elastic = bool(spec) or autoscale or (
        active is not None and active != args.workers
    )
    if active is not None and not 1 <= active <= args.workers:
        parser.error(
            f"--active must be within [1, {args.workers}], got {active}"
        )
    if spec:
        from repro.elastic import MembershipError, ScalingPlan

        try:
            plan = ScalingPlan.parse(spec)
            plan.validate(args.workers, active if active is not None else args.workers)
        except (ValueError, MembershipError) as exc:
            parser.error(f"--scaling-plan {spec!r}: {exc}")
    if autoscale and args.scale_in_load >= args.scale_out_load:
        parser.error(
            f"--scale-in-load ({args.scale_in_load}) must be below "
            f"--scale-out-load ({args.scale_out_load}); the gap is the "
            "hysteresis band that prevents thrash"
        )
    if elastic and getattr(args, "parallel", None) is not None:
        parser.error(
            "elastic membership is not supported with --parallel; the "
            "sharded engine partitions a fixed worker set"
        )
    if elastic and getattr(args, "native", False):
        parser.error(
            "elastic membership needs the megaphone operator; "
            "--native has no routing table to rescale"
        )


def _validate_backend_args(parser: argparse.ArgumentParser, args) -> None:
    """Registry-driven name checks: a backend registered via
    ``repro.state.register_backend`` is accepted with no CLI edits, and an
    unknown name exits listing what *is* registered."""
    from repro.state import backend_names, codec_names

    if args.state_backend not in backend_names():
        parser.error(
            f"unknown --state-backend {args.state_backend!r}; "
            f"registered: {', '.join(backend_names())}"
        )
    if getattr(args, "codec", "modeled") not in codec_names():
        parser.error(
            f"unknown --codec {args.codec!r}; "
            f"registered: {', '.join(codec_names())}"
        )


def _elastic_extra(args) -> dict:
    """Elastic config fields from the CLI flags (empty when absent)."""
    out: dict = {}
    if getattr(args, "active", None) is not None:
        out["active_workers"] = args.active
    if getattr(args, "scaling_plan", None):
        from repro.elastic import ScalingPlan

        out["scaling_plan"] = ScalingPlan.parse(args.scaling_plan)
    if getattr(args, "autoscale", False):
        from repro.elastic import AutoscalerConfig

        out["autoscale"] = AutoscalerConfig(
            scale_out_load=args.scale_out_load,
            scale_in_load=args.scale_in_load,
            cooldown_s=args.autoscale_cooldown,
        )
    return out


def _config_from(args, **extra) -> ExperimentConfig:
    extra = {**_elastic_extra(args), **extra}
    return ExperimentConfig(
        num_workers=args.workers,
        workers_per_process=args.workers_per_process,
        num_bins=args.bins,
        rate=args.rate,
        duration_s=args.duration,
        granularity_ms=args.granularity_ms,
        migrate_at_s=tuple(args.migrate_at),
        strategy=args.strategy,
        batch_size=args.batch_size,
        seed=args.seed,
        state_backend=args.state_backend,
        codec=args.codec,
        network_latency_s=args.network_latency,
        hot_capacity_bytes=(
            int(args.hot_capacity) if args.hot_capacity is not None else None
        ),
        delta_migration=args.delta_migration,
        export_metrics=getattr(args, "export_metrics", None),
        metrics_port=getattr(args, "metrics_port", None),
        record_log=getattr(args, "record", None),
        **extra,
    )


def _report(result, title: str) -> None:
    print_timeline(title, result.timeline.series(), every=2)
    rows = []
    for i, migration in enumerate(result.migrations):
        rows.append(
            (
                i,
                migration.strategy,
                len(migration.steps),
                format_duration(result.migration_duration(i)),
                format_latency(result.migration_max_latency(i)),
            )
        )
    if rows:
        print_table(
            "migrations",
            ["#", "strategy", "steps", "duration", "max latency"],
            rows,
        )
    print(f"\nsteady-state max latency: {format_latency(result.steady_max_latency())}")
    print(f"records injected: {result.records_injected:,.0f}; "
          f"wall time: {result.wall_seconds:.1f}s")


def _report_obsv(result, args) -> None:
    """One line per attached observer, so runs with observers say so."""
    if result.metrics_port is not None:
        print(f"metrics served on localhost:{result.metrics_port}")
    record = getattr(args, "record", None)
    if record:
        print(f"event log recorded to {record} "
              f"(verify: python -m repro.cli replay {record})")


def _report_elastic(result) -> None:
    """Scaling operations and autoscaler decisions, when the run had any."""
    report = getattr(result, "scaling", None)
    if report is None:
        return
    rows = [
        (
            op.kind,
            ",".join(str(w) for w in op.workers),
            op.moves,
            format_duration(op.duration_s) if op.completed_at else "pending",
            op.residual_bins,
        )
        for op in report.operations
    ]
    print_table(
        "scaling operations",
        ["kind", "workers", "moves", "duration", "residual bins"],
        rows if rows else [("-", "-", 0, "-", "no membership changes")],
    )
    decisions = getattr(result, "autoscale_decisions", None) or []
    acted = [d for d in decisions if d.action != "hold"]
    held = len(decisions) - len(acted)
    if decisions:
        print_table(
            "autoscaler decisions",
            ["at", "action", "reason", "mean load", "active → target"],
            [
                (
                    f"{d.at:.2f}s",
                    d.action,
                    d.reason,
                    f"{d.mean_load:,.0f}",
                    f"{d.active} → {d.target}",
                )
                for d in acted
            ]
            or [("-", "hold", "-", "-", "-")],
        )
        print(f"autoscaler holds (cooldown/busy/bounds): {held}")


def cmd_count(args) -> int:
    """Run the counting microbenchmark and print its report."""
    cfg = _config_from(
        args,
        domain=int(args.domain),
        bytes_per_key=args.bytes_per_key,
        native=args.native,
        parallel=args.parallel,
        profile_shards=bool(args.profile and args.parallel),
    )
    result = run_count_experiment(cfg)
    _report(result, f"key-count, domain {int(args.domain):,}")
    _report_elastic(result)
    if result.parallel is not None:
        info = result.parallel
        print(
            f"parallel: mode={info['mode']} children={info['children']} "
            f"domains={info['domains']} rounds={info['rounds']} "
            f"lookahead={info['lookahead_s'] * 1e3:.2f}ms "
            f"shm batches={info['shm_encoded']} "
            f"(pickle fallback {info['shm_fallback']})"
        )
        _print_merged_shard_profile(info["profile_paths"])
    _report_obsv(result, args)
    return 0


def _print_merged_shard_profile(paths: list) -> None:
    """Aggregate per-shard cProfile dumps into one report (``--profile``)."""
    import os

    paths = [p for p in paths if p and os.path.exists(p)]
    if not paths:
        return
    import pstats

    stats = pstats.Stats(paths[0])
    for path in paths[1:]:
        stats.add(path)
    print(f"\nmerged shard profile ({len(paths)} shard processes):")
    stats.sort_stats("cumulative").print_stats(25)


def cmd_nexmark(args) -> int:
    """Run one NEXMark query and print its report."""
    nexmark = NexmarkConfig(
        dilation=args.dilation, state_bytes_scale=args.state_scale
    )
    cfg = _config_from(args, dilation=args.dilation, native=args.native)
    result = run_nexmark_experiment(args.query, cfg, nexmark=nexmark)
    _report(result, f"NEXMark Q{args.query}")
    _report_elastic(result)
    _report_obsv(result, args)
    return 0


def cmd_scale(args) -> int:
    """Run an elastic scaling run and verify its membership guarantees.

    Exits 1 if any scaling operation failed to complete, if a drained
    worker ended the run with resident bins, or (with ``--verify-twin``)
    if the global state fingerprint or record count diverged from a
    static-membership twin of the same configuration — the zero
    lost/duplicated records check.
    """
    import dataclasses

    if not args.scaling_plan and not args.autoscale:
        print(
            "scale needs --scaling-plan and/or --autoscale "
            "(a run with neither never changes membership)",
            file=sys.stderr,
        )
        return 2
    cfg = _config_from(
        args,
        domain=int(args.domain),
        bytes_per_key=args.bytes_per_key,
        fingerprint_state=True,
    )
    result = run_count_experiment(cfg)
    _report(result, "elastic scaling run")
    _report_elastic(result)
    print_table(
        "membership transitions",
        ["at", "worker", "transition"],
        [
            (f"{at:.2f}s", worker, f"{prev} -> {state}")
            for at, worker, prev, state in result.membership
        ]
        or [("-", "-", "no transitions")],
    )
    print(f"cluster state fingerprint: {result.cluster_fingerprint}")
    _report_obsv(result, args)

    failures = []
    report = result.scaling
    incomplete = [op for op in report.operations if op.completed_at is None]
    if incomplete:
        failures.append(
            f"{len(incomplete)} scaling operation(s) never completed"
        )
    if report.residual_bins:
        failures.append(
            f"drained workers ended with {report.residual_bins} resident "
            "bins; evacuation must hand off every bin before retirement"
        )
    if args.verify_twin:
        twin_cfg = dataclasses.replace(
            cfg,
            scaling_plan=None,
            autoscale=None,
            record_log=None,
            export_metrics=None,
            metrics_port=None,
        )
        twin = run_count_experiment(twin_cfg)
        if twin.records_injected != result.records_injected:
            failures.append(
                f"records diverged from the static twin: "
                f"{result.records_injected:,.0f} elastic vs "
                f"{twin.records_injected:,.0f} static"
            )
        if twin.cluster_fingerprint != result.cluster_fingerprint:
            failures.append(
                "cluster fingerprint diverged from the static-membership "
                f"twin ({result.cluster_fingerprint} vs "
                f"{twin.cluster_fingerprint}): state was lost or duplicated"
            )
        if not failures:
            print(
                "twin check: fingerprint and record count match the "
                "static-membership run"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("\nscaling guarantees hold: all operations completed, "
          "drained workers emptied")
    return 0


def cmd_compare(args) -> int:
    """Run all four strategies on one workload (a one-line Figure 1)."""
    rows = []
    for strategy in ("all-at-once", "fluid", "batched", "optimized"):
        cfg = _config_from(args, domain=int(args.domain))
        cfg.strategy = strategy
        result = run_count_experiment(cfg)
        rows.append(
            (
                strategy,
                format_latency(result.migration_max_latency(0)),
                format_duration(result.migration_duration(0)),
                format_latency(result.steady_max_latency()),
            )
        )
    print_table(
        f"strategy comparison, domain {int(args.domain):,}",
        ["strategy", "max latency", "duration", "steady max"],
        rows,
    )
    return 0


def cmd_trace(args) -> int:
    """Run one migration with trace collection and print its timeline.

    Defaults to the fluid strategy, whose completion-paced single-bin steps
    make the per-bin totals sum exactly to the measured migration duration.
    """
    cfg = _config_from(
        args,
        domain=int(args.domain),
        bytes_per_key=args.bytes_per_key,
        collect_trace=True,
        # --topics with no names counts every topic; absent counts none.
        collect_topic_counts=(
            tuple(args.topics) if args.topics is not None else None
        ),
    )
    result = run_count_experiment(cfg)
    trace = result.migration_trace
    breakdown = trace.phase_breakdown()
    print_phase_breakdown(
        f"migration phases, {cfg.strategy}, domain {int(args.domain):,}",
        breakdown,
        max_rows=args.max_rows,
    )
    measured = sum(
        result.migration_duration(i) for i in range(len(result.migrations))
    )
    print(f"measured migration duration: {format_duration(measured)}")
    outcomes = trace.outcome_rows()
    if outcomes:
        print_table(
            "step outcomes",
            ["time", "moves", "batch", "attempts", "duration"],
            [
                (
                    o.time,
                    o.moves,
                    o.batch_size,
                    o.attempts,
                    format_duration(o.duration_s),
                )
                for o in outcomes[: args.max_rows]
            ],
        )
    if args.topics is not None:
        counts = result.topic_counts
        print_table(
            "bus events by topic",
            ["topic", "events"],
            [(t, f"{counts[t]:,}") for t in sorted(counts)]
            or [("-", "no events on the selected topics")],
        )
    return 0


def cmd_plan(args) -> int:
    """Observe a run, propose migration plans, optionally execute them.

    Runs the counting workload (skewed by default) with the closed-loop
    planner attached.  Without ``--execute`` the planner is an advisor:
    it searches and prices plans but never migrates.  ``--output`` writes
    the first gate-clearing plan as a plan_io JSON document (exit 1 if no
    plan cleared the gate).
    """
    from repro.megaphone.plan_io import dump_plan
    from repro.planner import PlannerConfig, TelemetryConfig

    objective_options = {}
    if args.objective == "drain":
        if not args.drain:
            print(
                "the drain objective needs --drain <worker> [...]",
                file=sys.stderr,
            )
            return 2
        objective_options["drain_workers"] = tuple(args.drain)
    planner_cfg = PlannerConfig(
        objective=args.objective,
        telemetry=TelemetryConfig(
            sample_s=args.sample_s, window_s=args.window_s
        ),
        decide_s=args.decide_s,
        start_s=args.observe_s,
        cooldown_s=args.cooldown_s,
        min_gain=args.min_gain,
        slo_step_s=args.slo_step_s,
        propose_only=not args.execute,
        objective_options=objective_options,
    )
    cfg = _config_from(
        args,
        domain=int(args.domain),
        workload=args.workload,
        hot_keys=args.hot_keys,
        hot_fraction=args.hot_fraction,
        zipf_exponent=args.zipf_exponent,
        planner=planner_cfg,
    )
    result = run_count_experiment(cfg)
    report = result.planner
    rows = [
        (
            f"{p.at:.2f}s",
            p.moves,
            p.steps,
            format_duration(p.predicted_cost_s),
            f"{p.predicted_gain:+.2f}",
            "adopted" if p.adopted else p.reason,
        )
        for p in report.proposals
    ]
    print_table(
        f"planner decisions, objective {args.objective}"
        + ("" if args.execute else " (propose-only)"),
        ["at", "moves", "steps", "pred. cost", "gain", "verdict"],
        rows if rows else [("-", 0, 0, "-", "-", "nothing to propose")],
    )
    print(
        f"\ndecision points: {report.decisions}; proposals: "
        f"{len(report.proposals)}; adopted: {len(report.adopted)}"
    )
    print(f"final imbalance (max/mean): {result.final_imbalance:.2f}x")
    _report_obsv(result, args)
    if args.execute and result.migrations:
        _report(result, f"planner-driven run, objective {args.objective}")
    if args.output:
        adopted = report.adopted
        if not adopted:
            print("no plan cleared the gate; nothing written")
            return 1
        dump_plan(adopted[0].plan, args.output)
        plan = adopted[0].plan
        print(
            f"plan written to {args.output} "
            f"({plan.total_moves} moves in {len(plan.steps)} steps)"
        )
    return 0


def cmd_chaos(args) -> int:
    """Run a fault-injection scenario against every migration strategy.

    Prints one verdict row per strategy (the watchdog's classification of
    the run) and exits non-zero if any strategy's frontier stalled — the
    Completion guarantee is the pass/fail line.
    """
    from repro.chaos.experiment import run_chaos_matrix

    cfg = _config_from(
        args,
        domain=int(args.domain),
        bytes_per_key=args.bytes_per_key,
        bandwidth_bytes_per_s=args.bandwidth,
    )
    results = run_chaos_matrix(
        args.scenario,
        cfg=cfg,
        seed=args.chaos_seed,
        restart_after_s=args.restart_after,
        drop_prob=args.drop_prob,
    )
    rows = [
        (
            r.strategy,
            r.verdict,
            r.recoveries,
            r.abandoned_steps,
            r.dropped_messages,
            r.restored_bins,
        )
        for r in results
    ]
    print_table(
        f"chaos: {args.scenario} (seed {args.chaos_seed})",
        ["strategy", "verdict", "recoveries", "abandoned", "drops", "restored"],
        rows,
    )
    damaged = [
        (r.strategy, report)
        for r in results
        for report in r.result.storage_faults
    ]
    if damaged:
        print()
        print_table(
            "storage damage repaired during durable recovery",
            ["strategy", "worker", "torn", "truncated [B]", "frames", "bins"],
            [
                (
                    strategy,
                    report.worker,
                    "yes" if report.torn_frame else "no",
                    report.truncated_bytes,
                    report.frames_replayed,
                    report.bins_recovered,
                )
                for strategy, report in damaged
            ],
        )
    if args.record:
        from repro.chaos.experiment import _per_strategy_path

        logs = [_per_strategy_path(args.record, r.strategy) for r in results]
        print("\nevent logs recorded (one per strategy): " + ", ".join(logs))
    stalled = [r.strategy for r in results if not r.live]
    if stalled:
        print(f"\nFAIL: frontier stalled under {', '.join(stalled)}")
        for r in results:
            if not r.live:
                for diagnosis in r.result.chaos_diagnoses[-1:]:
                    print(diagnosis.describe())
        return 1
    print("\nall strategies drained (Completion holds under this plan)")
    return 0


def cmd_bench(args) -> int:
    """Measure hot-path throughput and write ``BENCH_hotpath.json``."""
    from repro.perf.hotpath import check_report, run_bench, write_report

    overrides = {}
    for spec in args.tolerance_override:
        workload, sep, frac = spec.partition("=")
        if not sep:
            print(f"bad --tolerance-override {spec!r}; expected WORKLOAD=FRAC")
            return 2
        overrides[workload] = float(frac)
    report = run_bench(
        args.scale,
        layers=not args.no_layers,
        repeats=args.repeats,
        state_backend=args.state_backend,
        parallel=args.parallel,
    )
    rows = []
    for workload, numbers in report["workloads"].items():
        rows.append(
            (
                workload,
                f"{numbers['records']:,}",
                f"{numbers['wall_seconds']:.3f}s",
                f"{numbers['records_per_s']:,.0f}",
                f"{numbers['sim_events_per_s']:,.0f}",
            )
        )
    print_table(
        f"hot-path bench, scale {report['scale']}",
        ["workload", "records", "wall", "records/s", "events/s"],
        rows,
    )
    print(
        f"batch representation: {report['batch_representation']}, "
        f"state backend: {report['state_backend']}"
    )
    if "layers" in report:
        for workload, layers in report["layers"].items():
            top = list(layers.items())[:5]
            breakdown = ", ".join(
                f"{layer} {entry['fraction']:.0%}" for layer, entry in top
            )
            print(f"{workload} CPU by layer: {breakdown}")
    if "speedup" in report:
        for workload, factor in report["speedup"].items():
            base = report["baseline"][workload]["records_per_s"]
            print(f"{workload}: {factor:.2f}x vs baseline ({base:,.0f} rec/s)")
    if "parallel" in report:
        par = report["parallel"]
        print(
            f"parallel: {par['shards']} shards, "
            f"{par['speedup']:.2f}x vs serial-sharded "
            f"(machine has {report['machine']['cpu_count']} cores), "
            f"deterministic: {par['deterministic']}"
        )
    if args.check is not None:
        ok, deltas = check_report(
            report,
            args.check,
            tolerance=args.tolerance,
            tolerance_overrides=overrides,
        )
        print_table(
            f"regression check vs {args.check} (tolerance {args.tolerance:.0%})",
            ["workload", "committed rec/s", "current rec/s", "delta", "status"],
            [
                (
                    row["workload"],
                    f"{row['baseline_records_per_s']:,.0f}",
                    f"{row['records_per_s']:,.0f}",
                    f"{row['delta']:+.1%}",
                    row["status"],
                )
                for row in deltas
            ],
        )
        if any(row["status"] == "cross-machine-warn" for row in deltas):
            print(
                "note: baseline was measured on a different machine; "
                "regressions reported as warnings only"
            )
        passed = sum(1 for row in deltas if row["status"] == "ok")
        warned = sum(
            1 for row in deltas if row["status"] == "cross-machine-warn"
        )
        failed = len(deltas) - passed - warned
        print(
            f"check summary: {passed} passed, {warned} warned, "
            f"{failed} failed"
        )
        if not ok:
            print("FAIL: throughput regressed beyond tolerance")
            return 1
        print("check passed")
        return 0
    write_report(report, args.output)
    print(f"report written to {args.output}")
    return 0


def cmd_replay(args) -> int:
    """Re-execute a recorded run and verify its result fingerprint.

    Exit 0 when the replay reproduces the recorded ``result_fingerprint``
    byte-identically (and every recorded topic's event count), 1 on
    drift, 2 when the log itself is unreadable.
    """
    from repro.obsv import EventLogError, replay_run

    try:
        report = replay_run(args.log)
    except (EventLogError, OSError) as exc:
        print(f"cannot replay {args.log}: {exc}", file=sys.stderr)
        return 2
    print(f"replayed {report.path} (workload: {report.workload_kind})")
    print(f"recorded fingerprint: {report.expected_fingerprint}")
    print(f"replayed fingerprint: {report.actual_fingerprint}")
    print(
        f"records: {report.records_injected:,}; "
        f"sim events: {report.sim_events:,}"
    )
    if report.ok:
        print("replay OK: run reproduced byte-identically")
        return 0
    if not report.fingerprint_match:
        print("FAIL: result fingerprint drifted")
    drifted = report.drifted_topics
    if drifted:
        print_table(
            "drifted topics",
            ["topic", "recorded", "replayed"],
            [
                (
                    t,
                    report.expected_events.get(t, 0),
                    report.actual_events.get(t, 0),
                )
                for t in drifted
            ],
        )
    return 1


def cmd_matrix(args) -> int:
    """Run an experiment-matrix spec; write or gate on the report.

    Without ``--check`` the aggregated report is written to ``--output``.
    With ``--check BASELINE`` the fresh report is compared cell-by-cell
    against the committed baseline and the command exits 1 on any
    regression, fingerprint drift, or failed cell.
    """
    from repro.obsv.matrix import (
        MatrixSpecError,
        check_matrix,
        load_spec,
        run_matrix,
        write_matrix_report,
    )

    try:
        spec = load_spec(args.spec)
    except (MatrixSpecError, OSError) as exc:
        print(f"cannot load {args.spec}: {exc}", file=sys.stderr)
        return 2
    report = run_matrix(spec, jobs=args.jobs, spec_path=args.spec)
    rows = []
    for row in report["cells"]:
        rows.append(
            (
                row["cell"],
                row["status"],
                f"{row.get('records', 0):,}",
                f"{row.get('records_per_s', 0.0):,.0f}",
                format_latency(row["steady_max_latency_s"])
                if "steady_max_latency_s" in row
                else "-",
                row.get("chaos_verdict", "-"),
            )
        )
    print_table(
        f"experiment matrix ({len(rows)} cells, mode {report['mode']})",
        ["cell", "status", "records", "records/s", "steady max", "chaos"],
        rows,
    )
    if args.check is not None:
        try:
            ok, deltas = check_matrix(
                report, args.check, tolerance=args.tolerance
            )
        except (OSError, ValueError) as exc:
            print(f"cannot check against {args.check}: {exc}", file=sys.stderr)
            return 2
        print_table(
            f"matrix check vs {args.check}",
            ["cell", "committed rec/s", "current rec/s", "delta", "status"],
            [
                (
                    row["cell"],
                    f"{row['baseline_records_per_s']:,.0f}"
                    if row["baseline_records_per_s"]
                    else "-",
                    f"{row['records_per_s']:,.0f}",
                    f"{row['delta']:+.1%}" if row["delta"] is not None else "-",
                    row["status"],
                )
                for row in deltas
            ],
        )
        passed = sum(1 for row in deltas if row["status"] in ("ok", "new"))
        warned = sum(1 for row in deltas if row["status"].endswith("-warn"))
        failed = len(deltas) - passed - warned
        print(
            f"check summary: {passed} passed, {warned} warned, "
            f"{failed} failed"
        )
        if not ok:
            print("FAIL: matrix regressed vs the committed baseline")
            return 1
        print("matrix check passed")
        return 0
    write_matrix_report(report, args.output)
    print(f"matrix report written to {args.output}")
    failed_cells = [
        row["cell"] for row in report["cells"] if row["status"] != "ok"
    ]
    if failed_cells:
        print(f"FAIL: cells did not complete: {', '.join(failed_cells)}")
        return 1
    return 0


def cmd_list(args) -> int:
    """List available workloads, strategies, backends, and codecs."""
    from repro.planner import OBJECTIVES
    from repro.state import backend_names, codec_names

    from repro.runtime_events.bus import TOPICS
    from repro.runtime_events.columns import active_representation

    print("workloads: count (microbenchmark, uniform or skewed), "
          "nexmark (queries 1-8)")
    print(f"strategies: {', '.join(STRATEGIES)}")
    print(f"state backends: {', '.join(backend_names())}")
    print(f"codecs: {', '.join(codec_names())}")
    print(f"bus topics: {', '.join(TOPICS)}")
    print(f"batch representation: {active_representation()}")
    print(f"planner objectives: {', '.join(OBJECTIVES)}")
    print("planner policies: closed-loop (cooldown, cost/benefit gate, "
          "SLO pacing), propose-only (advisor)")
    from repro.elastic.autoscaler import POLICIES as AUTOSCALER_POLICIES

    for name in sorted(AUTOSCALER_POLICIES):
        print(f"autoscaler policy: {name} — {AUTOSCALER_POLICIES[name]}")
    print("bench: python -m repro.cli bench --scale smoke|full  (hot-path throughput)")
    print("benchmarks: pytest benchmarks/ --benchmark-only  (one per paper figure)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--profile", action="store_true",
        help="run the command under cProfile and print the top 25 functions "
        "by cumulative time",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    count = sub.add_parser("count", help="run the counting microbenchmark")
    _common_args(count)
    _parallel_arg(count)
    _obsv_args(count)
    _elastic_args(count)
    count.add_argument("--domain", type=float, default=1e6)
    count.add_argument("--bytes-per-key", type=float, default=8.0)
    count.add_argument("--native", action="store_true")
    count.set_defaults(fn=cmd_count)

    nexmark = sub.add_parser("nexmark", help="run a NEXMark query")
    _common_args(nexmark)
    _obsv_args(nexmark)
    _elastic_args(nexmark)
    nexmark.add_argument("--query", type=int, required=True, choices=range(1, 9))
    nexmark.add_argument("--dilation", type=int, default=1)
    nexmark.add_argument("--state-scale", type=float, default=1.0)
    nexmark.add_argument("--native", action="store_true")
    nexmark.set_defaults(fn=cmd_nexmark)

    scale = sub.add_parser(
        "scale",
        help="run an elastic scaling run and verify membership guarantees",
    )
    _common_args(scale)
    _obsv_args(scale)
    _elastic_args(scale)
    # Small two-process cluster with provisioned standbys: the default is
    # the acceptance scenario — scale 4 -> 6 mid-run, then drain back to 4.
    scale.set_defaults(
        workers=6,
        workers_per_process=2,
        bins=16,
        rate=2_000.0,
        duration=6.0,
        migrate_at=[],
        strategy="fluid",
        active=4,
        scaling_plan="join@1.5:4,5;leave@3.5:4,5",
    )
    scale.add_argument("--domain", type=float, default=float(1 << 12))
    scale.add_argument("--bytes-per-key", type=float, default=8.0)
    scale.add_argument(
        "--verify-twin", action="store_true",
        help="also run a static-membership twin of the same config and "
        "fail unless record count and state fingerprint match exactly",
    )
    scale.set_defaults(fn=cmd_scale)

    compare = sub.add_parser("compare", help="compare all strategies (Figure 1)")
    _common_args(compare)
    compare.add_argument("--domain", type=float, default=1e8)
    compare.set_defaults(fn=cmd_compare)

    trace = sub.add_parser(
        "trace", help="run one migration and print its per-bin phase breakdown"
    )
    _common_args(trace)
    trace.add_argument("--domain", type=float, default=1e6)
    trace.add_argument("--bytes-per-key", type=float, default=8.0)
    trace.add_argument("--max-rows", type=int, default=16)
    from repro.runtime_events.bus import TOPICS

    trace.add_argument(
        "--topics", nargs="*", choices=TOPICS, default=None, metavar="TOPIC",
        help="also count bus events on these topics (no names = all; "
        "see `repro.cli list` for the topic names)",
    )
    trace.set_defaults(fn=cmd_trace, strategy="fluid")

    chaos = sub.add_parser(
        "chaos", help="fault-inject every strategy and report verdicts"
    )
    _common_args(chaos)
    _obsv_args(chaos)
    # Small two-process cluster with heavy state: faults land mid-migration.
    chaos.set_defaults(
        workers=4,
        workers_per_process=2,
        bins=16,
        rate=20_000.0,
        duration=6.0,
        migrate_at=[2.0],
        batch_size=4,
    )
    from repro.chaos.experiment import SCENARIOS

    chaos.add_argument(
        "--scenario", choices=SCENARIOS, default="crash-target",
        help="which fault plan to inject (default: crash-target)",
    )
    chaos.add_argument("--domain", type=float, default=float(1 << 12))
    chaos.add_argument("--bytes-per-key", type=float, default=2048.0)
    chaos.add_argument(
        "--bandwidth", type=float, default=4e6,
        help="link bandwidth in bytes/s (low by default so steps take time)",
    )
    chaos.add_argument(
        "--restart-after", type=float, default=None,
        help="crash-restart: seconds until the crashed process rejoins",
    )
    chaos.add_argument(
        "--drop-prob", type=float, default=0.3,
        help="lossy: per-message drop probability",
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed of the fault plan's RNG (lossy links only)",
    )
    chaos.set_defaults(fn=cmd_chaos)

    bench = sub.add_parser(
        "bench", help="measure hot-path throughput (records/s, events/s)"
    )
    bench.add_argument(
        "--scale", choices=sorted(SCALES), default="full",
        help="workload size (full matches the checked-in baseline)",
    )
    bench.add_argument(
        "--repeats", type=int, default=None,
        help="timed repetitions per workload (default: the scale's own)",
    )
    bench.add_argument(
        "--output", default="BENCH_hotpath.json",
        help="where to write the JSON report",
    )
    bench.add_argument(
        "--no-layers", action="store_true",
        help="skip the profiled per-layer CPU breakdown",
    )
    bench.add_argument(
        "--state-backend", default="dict",
        help="state backend the benched operators run on",
    )
    bench.add_argument(
        "--check", default=None, metavar="BASELINE_JSON",
        help="compare against a committed bench report instead of writing "
        "one; exit 1 if records/s regressed beyond the tolerance",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.15,
        help="allowed relative records/s drop in --check mode (default 0.15)",
    )
    bench.add_argument(
        "--tolerance-override", action="append", default=[],
        metavar="WORKLOAD=FRAC",
        help="per-workload tolerance in --check mode, e.g. "
        "count_skewed=0.25; repeatable",
    )
    bench.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="also time the sharded engine: serial-sharded vs N forked "
        "shards, recording speedup and determinism in the report",
    )
    bench.set_defaults(fn=cmd_bench)

    plan = sub.add_parser(
        "plan",
        help="observe load, propose migration plans, optionally execute",
    )
    _common_args(plan)
    _obsv_args(plan)
    # A planner run schedules no static migrations; the planner decides.
    plan.set_defaults(migrate_at=[], bins=64, workers=4, duration=8.0)
    from repro.planner import OBJECTIVES

    plan.add_argument(
        "--objective", choices=sorted(OBJECTIVES), default="balance",
        help="what the plan search optimizes (default: balance)",
    )
    plan.add_argument("--domain", type=float, default=float(1 << 12))
    plan.add_argument(
        "--workload", choices=("uniform", "skewed"), default="skewed",
        help="key distribution of the observed run (default: skewed)",
    )
    plan.add_argument("--hot-keys", type=int, default=12)
    plan.add_argument("--hot-fraction", type=float, default=0.85)
    plan.add_argument("--zipf-exponent", type=float, default=0.8)
    plan.add_argument(
        "--observe-s", type=float, default=1.0,
        help="simulated seconds of telemetry before the first decision",
    )
    plan.add_argument("--sample-s", type=float, default=0.25)
    plan.add_argument("--window-s", type=float, default=1.0)
    plan.add_argument("--decide-s", type=float, default=0.5)
    plan.add_argument("--cooldown-s", type=float, default=1.5)
    plan.add_argument(
        "--min-gain", type=float, default=0.05,
        help="required drop in max/mean imbalance to adopt a plan",
    )
    plan.add_argument(
        "--slo-step-s", type=float, default=0.05,
        help="per-step latency budget the step search packs within",
    )
    plan.add_argument(
        "--drain", type=int, nargs="*", default=[],
        help="drain objective: worker ids to empty (scale-in)",
    )
    plan.add_argument(
        "--execute", action="store_true",
        help="execute adopted plans (default: propose-only advisor mode)",
    )
    plan.add_argument(
        "--output", default=None,
        help="write the first adopted plan as plan_io JSON "
        "(exit 1 if nothing cleared the gate)",
    )
    plan.set_defaults(fn=cmd_plan)

    replay = sub.add_parser(
        "replay",
        help="re-execute a recorded event log and verify its fingerprint",
    )
    replay.add_argument(
        "log", help="event log written by --record on a previous run"
    )
    replay.set_defaults(fn=cmd_replay)

    matrix = sub.add_parser(
        "matrix",
        help="sweep an experiment matrix across parallel workers",
    )
    matrix.add_argument(
        "--spec", required=True, metavar="SPEC_TOML_OR_JSON",
        help="matrix spec: [matrix] axes, [base] experiment config, "
        "[tolerance] per-cell check tolerances",
    )
    matrix.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: min(cells, cpus); 0 runs inline)",
    )
    matrix.add_argument(
        "--output", default="BENCH_matrix.json",
        help="where to write the aggregated report",
    )
    matrix.add_argument(
        "--check", default=None, metavar="BASELINE_JSON",
        help="compare against a committed matrix report instead of "
        "writing one; exit 1 on regression or fingerprint drift",
    )
    matrix.add_argument(
        "--tolerance", type=float, default=None,
        help="override the spec's default throughput tolerance in "
        "--check mode",
    )
    matrix.set_defaults(fn=cmd_matrix)

    lst = sub.add_parser("list", help="list workloads and strategies")
    lst.set_defaults(fn=cmd_list)
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if hasattr(args, "workers"):
        _validate_common(parser, args)
    elif hasattr(args, "state_backend"):
        _validate_backend_args(parser, args)
    if hasattr(args, "repeats") and args.repeats is not None and args.repeats <= 0:
        parser.error(f"--repeats must be positive, got {args.repeats}")
    if not args.profile:
        return args.fn(args)
    import cProfile
    import pstats

    profile = cProfile.Profile()
    profile.enable()
    try:
        status = args.fn(args)
    finally:
        profile.disable()
        stats = pstats.Stats(profile)
        stats.sort_stats("cumulative").print_stats(25)
    return status


if __name__ == "__main__":
    sys.exit(main())
