"""Hot-path benchmark: wall-clock throughput of the two judged workloads.

The benchmark exists to answer one question reproducibly: how many input
records per wall-clock second does the simulator sustain end to end?  Two
workloads cover the two cost regimes:

* **hash-count** — the paper's hash-map counting microbenchmark with one
  batched migration mid-run; dominated by Megaphone's F/S routing path.
* **NEXMark Q3** — a stateful join without migrations; dominated by the
  generic operator/runtime machinery.

Every scale is fully deterministic in *simulated* terms (fixed seed, fixed
rate, fixed schedule), so two runs differ only in wall-clock time.  Each
workload runs ``repeats`` times and reports the fastest wall time — the
standard guard against scheduler noise on a shared machine.

``BASELINE`` holds the pre-optimization numbers, measured at the ``full``
scale on the commit immediately before the hot-path work landed, so
``speedup`` in the report always compares against a fixed, checked-in
reference rather than whatever happens to be on disk.
"""

from __future__ import annotations

import cProfile
import json
import pstats
from dataclasses import asdict, dataclass
from typing import Callable, Optional

from repro.harness.experiment import ExperimentConfig, run_count_experiment
from repro.nexmark.harness import run_nexmark_experiment
from repro.runtime_events.columns import active_representation
from repro.versions import BENCH_SCHEMA

# Layers reported by the per-layer CPU breakdown, matched by source path.
_LAYERS = (
    "megaphone",
    "timely",
    "sim",
    "runtime_events",
    "harness",
    "nexmark",
)


@dataclass(frozen=True)
class BenchScale:
    """One size point of the benchmark.

    ``full`` reproduces the configuration the checked-in baseline was
    measured at; the smaller scales exist for CI smoke jobs and tests.
    """

    name: str
    num_workers: int
    workers_per_process: int
    num_bins: int
    rate: float
    duration_s: float
    domain: int
    q3_rate: float
    repeats: int
    # Which repro.state backend the benched operators run on.  "dict" is
    # the seed-identical default; CI also smokes "tiered".
    state_backend: str = "dict"
    # Cross-process link latency.  The default matches the cluster default;
    # the "parallel" scale raises it to milliseconds — the conservative
    # window protocol's lookahead equals this latency, and a sharded run
    # amortizes its barrier cost over one window of events.
    network_latency_s: float = 40e-6

    def hashcount_config(self, parallel=None) -> ExperimentConfig:
        """The hash-count workload at this scale (one batched migration)."""
        return ExperimentConfig(
            num_workers=self.num_workers,
            workers_per_process=self.workers_per_process,
            num_bins=self.num_bins,
            rate=self.rate,
            duration_s=self.duration_s,
            granularity_ms=10,
            migrate_at_s=(self.duration_s * 0.4,),
            strategy="batched",
            batch_size=16,
            seed=1,
            domain=self.domain,
            variant="hash",
            state_backend=self.state_backend,
            network_latency_s=self.network_latency_s,
            parallel=parallel,
        )

    def q3_config(self) -> ExperimentConfig:
        """The NEXMark Q3 workload at this scale (no migrations)."""
        return ExperimentConfig(
            num_workers=self.num_workers,
            workers_per_process=self.workers_per_process,
            num_bins=self.num_bins,
            rate=self.q3_rate,
            duration_s=self.duration_s,
            granularity_ms=10,
            migrate_at_s=(),
            seed=1,
            state_backend=self.state_backend,
            network_latency_s=self.network_latency_s,
        )


SCALES: dict[str, BenchScale] = {
    # Fast enough for unit tests (< a second end to end).
    "tiny": BenchScale(
        name="tiny",
        num_workers=2,
        workers_per_process=2,
        num_bins=16,
        rate=5_000.0,
        duration_s=0.5,
        domain=1 << 12,
        q3_rate=2_000.0,
        repeats=1,
    ),
    # The CI perf-smoke job's scale: seconds, not minutes.
    "smoke": BenchScale(
        name="smoke",
        num_workers=4,
        workers_per_process=2,
        num_bins=64,
        rate=20_000.0,
        duration_s=2.0,
        domain=1 << 16,
        q3_rate=8_000.0,
        repeats=2,
    ),
    # The scale the checked-in BASELINE numbers were measured at.
    "full": BenchScale(
        name="full",
        num_workers=8,
        workers_per_process=4,
        num_bins=256,
        rate=50_000.0,
        duration_s=5.0,
        domain=1_000_000,
        q3_rate=20_000.0,
        repeats=3,
    ),
    # Sharded-execution scale: four domains (8 workers / 2 per process) and
    # millisecond links, so each conservative window covers a meaningful
    # slab of events instead of a handful.
    "parallel": BenchScale(
        name="parallel",
        num_workers=8,
        workers_per_process=2,
        num_bins=256,
        rate=40_000.0,
        duration_s=4.0,
        domain=1_000_000,
        q3_rate=16_000.0,
        repeats=2,
        network_latency_s=10e-3,
    ),
}


# Pre-optimization throughput, measured 2026-08-05 at the ``full`` scale on
# the commit immediately preceding the hot-path work (single run each).
# The report's ``speedup`` section divides current numbers by these.
BASELINE: dict[str, dict] = {
    "hash_count": {
        "records": 250_000,
        "wall_seconds": 3.0787,
        "records_per_s": 81_203.27,
        "sim_events": 201_751,
        "sim_events_per_s": 65_531.36,
    },
    "nexmark_q3": {
        "records": 100_000,
        "wall_seconds": 1.8406,
        "records_per_s": 54_329.49,
        "sim_events": 119_989,
        "sim_events_per_s": 65_189.42,
    },
}


def machine_metadata() -> dict:
    """The measurement environment, recorded alongside every report.

    Throughput numbers are only comparable between identical environments;
    ``check_report`` downgrades regressions to warnings when these differ
    (a 1-core CI runner must not fail a gate calibrated on a laptop).
    """
    import os
    import platform

    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover
        numpy_version = None
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "batch_representation": active_representation(),
    }


def _measure(run: Callable[[], object], repeats: int) -> dict:
    """Run a workload ``repeats`` times; report the fastest wall time.

    Simulated results are identical across runs (the workload is
    deterministic), so the minimum wall time is the least-noisy estimate of
    the code's actual speed.
    """
    walls: list[float] = []
    result = None
    for _ in range(max(repeats, 1)):
        result = run()
        walls.append(result.wall_seconds)
    best = min(walls)
    return {
        "records": result.records_injected,
        "wall_seconds": round(best, 4),
        "records_per_s": round(result.records_injected / best, 2),
        "sim_events": result.sim_events,
        "sim_events_per_s": round(result.sim_events / best, 2),
        "wall_seconds_all": [round(w, 4) for w in walls],
    }


def run_hashcount_bench(scale: BenchScale) -> dict:
    """Throughput of the hash-count workload at ``scale``."""
    cfg = scale.hashcount_config()
    return _measure(lambda: run_count_experiment(cfg), scale.repeats)


def run_q3_bench(scale: BenchScale) -> dict:
    """Throughput of NEXMark Q3 at ``scale``."""
    cfg = scale.q3_config()
    return _measure(lambda: run_nexmark_experiment(3, cfg), scale.repeats)


def _layer_of(filename: str) -> str:
    """Map a profiled source path onto a runtime layer name."""
    marker = "/repro/"
    at = filename.rfind(marker)
    if at < 0:
        return "other"
    rest = filename[at + len(marker):]
    package = rest.split("/", 1)[0]
    if package.endswith(".py"):
        package = package[:-3]
    if package in _LAYERS:
        return f"repro.{package}"
    return "repro.other" if package else "other"


def layer_breakdown(run: Callable[[], object]) -> dict[str, dict]:
    """Profile one run of ``run``; aggregate CPU time per runtime layer.

    Aggregates ``tottime`` (time inside each function, callees excluded) so
    the layer fractions sum to one — ``cumtime`` would double-count every
    cross-layer call.  Profiling dilates wall time, so this runs separately
    from the timed repetitions and only the *fractions* are meaningful.
    """
    profile = cProfile.Profile()
    profile.enable()
    run()
    profile.disable()
    stats = pstats.Stats(profile)
    per_layer: dict[str, float] = {}
    total = 0.0
    for (filename, _line, _name), row in stats.stats.items():
        tottime = row[2]
        layer = _layer_of(filename)
        per_layer[layer] = per_layer.get(layer, 0.0) + tottime
        total += tottime
    if total <= 0.0:
        return {}
    return {
        layer: {
            "seconds": round(seconds, 4),
            "fraction": round(seconds / total, 4),
        }
        for layer, seconds in sorted(
            per_layer.items(), key=lambda kv: -kv[1]
        )
    }


def run_parallel_bench(scale: BenchScale, shards: int) -> dict:
    """Sharded vs sharded-reference throughput of the hash-count workload.

    Times the ``--parallel 0`` in-process reference engine against
    ``--parallel shards`` forked execution of the *same* sharded
    simulation, asserts they were byte-identical (``deterministic``), and
    reports the wall-clock speedup.  On a single-core box the forked run
    can be slower — that is the honest number, which is why the machine
    metadata travels with the report.
    """
    from repro.parallel.runner import result_fingerprint

    serial_cfg = scale.hashcount_config(parallel=0)
    parallel_cfg = scale.hashcount_config(parallel=shards)
    fingerprints: dict[str, str] = {}

    def timed(cfg, key):
        def run():
            result = run_count_experiment(cfg)
            fingerprints[key] = result_fingerprint(result)
            return result

        return run

    serial = _measure(timed(serial_cfg, "serial"), scale.repeats)
    forked = _measure(timed(parallel_cfg, "parallel"), scale.repeats)
    return {
        "shards": shards,
        "serial_sharded": serial,
        "parallel": forked,
        "speedup": round(
            forked["records_per_s"] / serial["records_per_s"], 3
        ),
        "deterministic": fingerprints["serial"] == fingerprints["parallel"],
        "fingerprint": fingerprints["serial"],
    }


def run_bench(
    scale_name: str = "full",
    layers: bool = True,
    repeats: Optional[int] = None,
    state_backend: str = "dict",
    parallel: Optional[int] = None,
) -> dict:
    """Run both workloads at ``scale_name``; return the full report dict.

    The report carries the scale's exact configuration, the measurement
    environment, the measured throughput of both workloads, the per-layer
    CPU breakdown (unless ``layers`` is False), the sharded-execution
    section (when ``parallel`` is set), and — at the ``full`` scale, where
    the checked-in baseline applies — the baseline numbers and the speedup
    against them.
    """
    if scale_name not in SCALES:
        raise ValueError(
            f"unknown bench scale {scale_name!r}; known: {sorted(SCALES)}"
        )
    scale = SCALES[scale_name]
    overrides = {}
    if repeats is not None:
        overrides["repeats"] = repeats
    if state_backend != scale.state_backend:
        overrides["state_backend"] = state_backend
    if overrides:
        scale = BenchScale(**{**asdict(scale), **overrides})
    report: dict = {
        "schema": BENCH_SCHEMA,
        "scale": scale.name,
        "state_backend": scale.state_backend,
        "batch_representation": active_representation(),
        "machine": machine_metadata(),
        "config": asdict(scale),
        "workloads": {
            "hash_count": run_hashcount_bench(scale),
            "nexmark_q3": run_q3_bench(scale),
        },
    }
    if parallel is not None:
        report["parallel"] = run_parallel_bench(scale, parallel)
    if layers:
        hc_cfg = scale.hashcount_config()
        q3_cfg = scale.q3_config()
        report["layers"] = {
            "hash_count": layer_breakdown(lambda: run_count_experiment(hc_cfg)),
            "nexmark_q3": layer_breakdown(
                lambda: run_nexmark_experiment(3, q3_cfg)
            ),
        }
    # The checked-in baseline was measured on the dict backend; a speedup
    # against it is only meaningful on the same backend.
    if scale.name == "full" and scale.state_backend == "dict":
        report["baseline"] = BASELINE
        report["speedup"] = {
            workload: round(
                report["workloads"][workload]["records_per_s"]
                / BASELINE[workload]["records_per_s"],
                3,
            )
            for workload in ("hash_count", "nexmark_q3")
        }
    return report


def write_report(report: dict, path: str) -> None:
    """Write ``report`` as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as out:
        json.dump(report, out, indent=2, sort_keys=False)
        out.write("\n")


# Machine-metadata keys that make throughput numbers comparable at all.
_MACHINE_KEYS = (
    "cpu_count",
    "machine",
    "implementation",
    "numpy",
    "batch_representation",
)


def machines_comparable(current: Optional[dict], committed: Optional[dict]) -> bool:
    """Whether two reports were measured in comparable environments.

    Older (schema 1) baselines carry no machine block; they are treated as
    *not* comparable — the check degrades to warnings until the baseline
    is regenerated with metadata.
    """
    if not current or not committed:
        return False
    return all(current.get(k) == committed.get(k) for k in _MACHINE_KEYS)


def check_report(
    report: dict,
    baseline_path: str,
    tolerance: float = 0.15,
    tolerance_overrides: Optional[dict] = None,
) -> tuple[bool, list[dict]]:
    """Compare a fresh report against a committed baseline report file.

    Returns ``(ok, rows)``: one row per workload present in both reports,
    each carrying the baseline and current ``records_per_s``, the relative
    delta, and a status — ``"ok"``, or ``"regression"`` when throughput
    dropped more than the workload's tolerance below the committed number
    (``tolerance_overrides`` maps workload name to a per-workload
    tolerance; others use ``tolerance``).  Faster runs never fail.

    When the two reports' machine metadata differ (different core count,
    CPU architecture, interpreter, numpy availability, or batch
    representation — anything that legitimately moves throughput), a
    regression is reported as ``"cross-machine-warn"`` and does **not**
    fail the check: wall-clock numbers only gate within one environment.

    The scales must match: throughput at one scale says nothing about
    another, so a mismatch raises instead of passing silently.
    """
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    baseline_scale = baseline.get("scale")
    if baseline_scale != report.get("scale"):
        raise ValueError(
            f"bench scale {report.get('scale')!r} does not match the committed "
            f"baseline's scale {baseline_scale!r}; rerun with --scale "
            f"{baseline_scale}"
        )
    comparable = machines_comparable(
        report.get("machine"), baseline.get("machine")
    )
    overrides = tolerance_overrides or {}
    rows: list[dict] = []
    ok = True
    for workload, numbers in report["workloads"].items():
        committed = baseline.get("workloads", {}).get(workload)
        if committed is None:
            continue
        base_rps = committed["records_per_s"]
        current_rps = numbers["records_per_s"]
        delta = (current_rps - base_rps) / base_rps if base_rps else 0.0
        allowed = overrides.get(workload, tolerance)
        regressed = delta < -allowed
        if regressed and comparable:
            ok = False
            status = "regression"
        elif regressed:
            status = "cross-machine-warn"
        else:
            status = "ok"
        rows.append(
            {
                "workload": workload,
                "baseline_records_per_s": base_rps,
                "records_per_s": current_rps,
                "delta": round(delta, 4),
                "tolerance": allowed,
                "status": status,
            }
        )
    return ok, rows
