"""Wall-clock performance measurement of the simulator's hot path.

``repro.perf.hotpath`` drives the two paper workloads the optimization work
is judged against — the hash-count microbenchmark and NEXMark Q3 — and
reports wall-clock records/s, simulator events/s, and a per-layer CPU
breakdown.  ``python -m repro.cli bench`` is the command-line entry point.
"""

from repro.perf.hotpath import (
    BASELINE,
    SCALES,
    BenchScale,
    layer_breakdown,
    run_bench,
    run_hashcount_bench,
    run_q3_bench,
    write_report,
)

__all__ = [
    "BASELINE",
    "SCALES",
    "BenchScale",
    "layer_breakdown",
    "run_bench",
    "run_hashcount_bench",
    "run_q3_bench",
    "write_report",
]
