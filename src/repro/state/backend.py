"""The state-backend layer: where bin state bytes live.

Megaphone's mechanism (paper §3-4) only needs operator state to be
*extractable* and *installable* at a timestamp; everything else about the
representation — dicts in RAM, an append-only log, a tiered store that
spills cold bins to modeled disk — is a backend decision the operator never
sees.  :class:`StateBackend` is that seam: ``BinStore`` owns one backend
per worker-operator pair, and migration, snapshots, and crash recovery all
serialize through :meth:`StateBackend.extract_bin` +
:meth:`~StateBackend.install_bin` (one path, one codec).

The backend also owns byte accounting (``state_bytes``, resident vs
spilled) and per-bin access statistics (key counts and heat), which
skew-aware placement and tiered-memory policies consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar, Iterable, Iterator

from repro.state.codecs import Codec


def default_state_size(state: object, bytes_per_key: float) -> int:
    """Modeled size of a bin's state in integer bytes: entries x bytes-per-key."""
    try:
        size = len(state) * bytes_per_key  # type: ignore[arg-type]
    except TypeError:
        size = bytes_per_key
    return int(round(size))


class BinNotResident(KeyError):
    """A bin was requested on a worker that does not hold it.

    Carries the bin id, the requesting worker, and the worker's resident
    set so chaos stall diagnoses name the disagreement instead of showing a
    bare dict ``KeyError``.
    """

    def __init__(self, bin_id: object, worker: int, resident: Iterable) -> None:
        self.bin_id = bin_id
        self.worker = worker
        self.resident = tuple(resident)
        super().__init__(bin_id)

    def __str__(self) -> str:
        where = f"worker {self.worker}" if self.worker >= 0 else "this worker"
        shown = ", ".join(str(b) for b in self.resident[:16])
        if len(self.resident) > 16:
            shown += f", ... ({len(self.resident)} total)"
        return (
            f"bin {self.bin_id} is not resident on {where} "
            f"(resident bins: [{shown}])"
        )


@dataclass(frozen=True)
class BinStats:
    """Per-bin metadata a placement policy can act on."""

    bin_id: object
    keys: int
    heat: int  # number of state accesses since creation/installation
    last_access: int  # backend-wide access sequence number (0 = never)
    resident_bytes: int
    spilled_bytes: int
    # Records applied to the bin since creation/installation.  Unlike
    # ``heat`` (which ticks once per application batch) this weights by
    # record count, so it reflects key-skew in the offered load — the
    # signal the migration planner's telemetry aggregates.
    records: int = 0

    @property
    def resident(self) -> bool:
        return self.spilled_bytes == 0

    @property
    def total_bytes(self) -> int:
        return self.resident_bytes + self.spilled_bytes


@dataclass
class BinPayload:
    """A bin's serialized form: the unit migration, snapshots, and crash
    recovery all ship and install.

    ``payload`` is codec-encoded state (for the ``modeled`` codec, the
    state object itself); ``pending`` is the bin's post-dated record list
    in drain order.  ``state_bytes`` covers the state alone and
    ``size_bytes`` adds the modeled pending-record bytes — the number a
    migration ships over the simulated network.
    """

    bin_id: object
    codec: str
    payload: object
    pending: list = field(default_factory=list)
    state_bytes: int = 0
    size_bytes: int = 0
    keys: int = 0
    # Delta-migration wire metadata.  ``kind`` is "full" (a complete
    # state), "base" (a pre-copy snapshot shipped ahead of the move), or
    # "delta" (only keys dirtied strictly after ``base_epoch``, plus the
    # keys ``deleted`` since then).  ``fence`` names the migration step
    # that produced the payload so a duplicated install (retried step) is
    # recognized and dropped instead of double-applied.
    kind: str = "full"
    base_epoch: int = -1
    deleted: tuple = ()
    fence: object = None

    def decode_state(self, *, copy: bool = False) -> object:
        """Decode the payload with its codec (registry-resolved).

        ``copy=True`` guarantees a fresh object even for identity codecs —
        required when the payload outlives the install (snapshot restore).
        """
        from repro.state.registry import resolve_codec

        codec = resolve_codec(self.codec)
        state = codec.decode(self.payload)
        return codec.copy(state) if copy else state


def _as_bytes(value: float) -> int:
    """Coerce a modeled size to integer bytes (non-negative)."""
    size = int(round(value))
    return size if size > 0 else 0


def _key_count(state: object) -> int:
    try:
        return len(state)  # type: ignore[arg-type]
    except TypeError:
        return 0


class StateBackend:
    """Base class: bin-granular state storage behind a uniform interface.

    Subclasses choose the representation; this base owns the pieces every
    backend shares — the size model, the codec, and access statistics.
    ``size_fn(state) -> bytes`` is the modeled size of one bin's resident
    state (the seed's ``keys x bytes-per-key`` model by default).
    """

    name: ClassVar[str] = ""
    # Backends that track per-key dirty epochs can serve delta extraction
    # (``extract_bin(..., dirty_since=E)``); ``BinStore`` checks this flag
    # before passing the keyword, so flat backends keep their signature.
    supports_delta: ClassVar[bool] = False

    def __init__(
        self,
        state_factory: Callable[[], object],
        size_fn: Callable[[object], float],
        codec: Codec,
    ) -> None:
        self._state_factory = state_factory
        self._size_fn = size_fn
        self.codec = codec
        self._heat: dict[object, int] = {}
        self._records: dict[object, int] = {}
        self._last_access: dict[object, int] = {}
        self._access_seq = 0

    def bind_worker(self, worker_id: int) -> None:
        """Attach the backend to its owning worker (default no-op).

        Durable backends locate their per-worker log here and replay it if
        non-empty — recovery after a crash/restart happens at bind time.
        """

    def bin_delta_capable(self, bin_id: object) -> bool:
        """Whether this specific bin can serve a delta extraction (a
        delta-capable backend may still hold opaque, untracked states)."""
        return False

    # -- bookkeeping shared by all backends ------------------------------------

    def _touch(self, bin_id: object) -> None:
        self._access_seq += 1
        self._heat[bin_id] = self._heat.get(bin_id, 0) + 1
        self._last_access[bin_id] = self._access_seq

    def _forget(self, bin_id: object) -> None:
        self._heat.pop(bin_id, None)
        self._records.pop(bin_id, None)
        self._last_access.pop(bin_id, None)

    def note_records(self, bin_id: object, count: int) -> None:
        """Account ``count`` records applied to ``bin_id`` (load telemetry).

        Pure bookkeeping — no representation change, no touch — so calling
        it never perturbs spill/compaction policies.
        """
        if count > 0:
            self._records[bin_id] = self._records.get(bin_id, 0) + count

    def records_applied(self, bin_id: object) -> int:
        """Records applied to ``bin_id`` since creation/installation."""
        return self._records.get(bin_id, 0)

    def modeled_bytes(self, state: object) -> int:
        """Modeled resident bytes of one state object."""
        return _as_bytes(self._size_fn(state))

    # -- bin lifecycle ----------------------------------------------------------

    def create_bin(self, bin_id: object) -> object:
        raise NotImplementedError

    def has_bin(self, bin_id: object) -> bool:
        raise NotImplementedError

    def drop_bin(self, bin_id: object) -> None:
        raise NotImplementedError

    def bin_ids(self) -> list:
        raise NotImplementedError

    # -- whole-state access -----------------------------------------------------

    def state_of(self, bin_id: object) -> object:
        """The bin's mutable user state (bumps heat; may promote)."""
        raise NotImplementedError

    def put_state(self, bin_id: object, state: object) -> None:
        """Replace the bin's state wholesale (restore paths)."""
        raise NotImplementedError

    def note_applied(self, bin_id: object) -> None:
        """Hook called after an applier mutated the bin (default no-op)."""

    def states_of_group(self, bin_ids) -> list:
        """States of several bins in order — one :meth:`state_of` each.

        Backends with flat bookkeeping override this to batch the touch
        accounting; the default preserves subclass ``state_of`` semantics
        (promotion, spill) exactly.
        """
        return [self.state_of(bin_id) for bin_id in bin_ids]

    def note_applied_group(self, bin_ids, starts) -> None:
        """Batched applier bookkeeping for one sorted bin group.

        ``starts`` brackets each bin's records: bin ``j`` applied
        ``starts[j+1] - starts[j]`` records.  Equivalent to one
        ``note_records`` + ``note_applied`` pair per bin, in order.
        """
        records = self._records
        hook_overridden = type(self).note_applied is not StateBackend.note_applied
        for j, bin_id in enumerate(bin_ids):
            count = starts[j + 1] - starts[j]
            if count > 0:
                records[bin_id] = records.get(bin_id, 0) + count
            if hook_overridden:
                self.note_applied(bin_id)

    # -- key-level access (mapping states) --------------------------------------

    def get(self, bin_id: object, key: object, default: object = None) -> object:
        state = self.state_of(bin_id)
        return state.get(key, default)  # type: ignore[attr-defined]

    def put(self, bin_id: object, key: object, value: object) -> None:
        self.state_of(bin_id)[key] = value  # type: ignore[index]

    def delete(self, bin_id: object, key: object) -> None:
        del self.state_of(bin_id)[key]  # type: ignore[attr-defined]

    def items(self, bin_id: object) -> Iterator:
        return iter(list(self.state_of(bin_id).items()))  # type: ignore[attr-defined]

    # -- byte accounting --------------------------------------------------------

    def state_bytes(self, bin_id: object) -> int:
        """Modeled bytes of one bin's state (resident or spilled)."""
        raise NotImplementedError

    def resident_bytes(self) -> int:
        """Modeled bytes currently held in the hot tier (RAM)."""
        raise NotImplementedError

    def spilled_bytes(self) -> int:
        """Modeled bytes currently held in the cold tier (0 for flat backends)."""
        return 0

    def total_bytes(self) -> int:
        return self.resident_bytes() + self.spilled_bytes()

    # -- statistics -------------------------------------------------------------

    def bin_stats(self, bin_id: object) -> BinStats:
        raise NotImplementedError

    def key_count(self, bin_id: object) -> int:
        return self.bin_stats(bin_id).keys

    # -- the single serialization path ------------------------------------------

    def extract_bin(self, bin_id: object, *, remove: bool = True) -> BinPayload:
        """Serialize one bin's state through the codec.

        ``remove=True`` (migration, crash extraction) drops the bin;
        ``remove=False`` (snapshots) leaves it untouched and returns an
        independent payload.  Pending records are attached by the caller
        (``BinStore`` owns the pending queues).
        """
        raise NotImplementedError

    def install_bin(self, payload: BinPayload, *, replace: bool = False) -> object:
        """Install a payload produced by :meth:`extract_bin`.

        Returns the installed state object.  ``replace=True`` overwrites an
        existing bin (snapshot restore); otherwise an existing bin is an
        error, exactly as the seed's ``BinStore.install`` behaved.
        """
        raise NotImplementedError


class DictBackend(StateBackend):
    """The seed's representation: one in-memory object per bin.

    Every method is a dict operation; sizes come straight from the size
    model.  This backend is the default and must remain byte-identical to
    the pre-backend code — the equivalence tests pin that.
    """

    name = "dict"

    def __init__(
        self,
        state_factory: Callable[[], object],
        size_fn: Callable[[object], float],
        codec: Codec,
    ) -> None:
        super().__init__(state_factory, size_fn, codec)
        self._states: dict[object, object] = {}

    # -- bin lifecycle ----------------------------------------------------------

    def create_bin(self, bin_id: object) -> object:
        if bin_id in self._states:
            raise ValueError(f"bin {bin_id} already present")
        state = self._state_factory()
        self._states[bin_id] = state
        return state

    def has_bin(self, bin_id: object) -> bool:
        return bin_id in self._states

    def drop_bin(self, bin_id: object) -> None:
        self._states.pop(bin_id, None)
        self._forget(bin_id)

    def bin_ids(self) -> list:
        return list(self._states)

    # -- state access -----------------------------------------------------------

    def state_of(self, bin_id: object) -> object:
        state = self._states[bin_id]
        self._touch(bin_id)
        return state

    def states_of_group(self, bin_ids) -> list:
        # The flat backend's ``state_of`` is a dict read plus ``_touch``:
        # inline both over the group, bumping the access sequence in the
        # same per-bin order one call at a time would.
        states = self._states
        heat = self._heat
        last = self._last_access
        seq = self._access_seq
        out = []
        for bin_id in bin_ids:
            seq += 1
            heat[bin_id] = heat.get(bin_id, 0) + 1
            last[bin_id] = seq
            out.append(states[bin_id])
        self._access_seq = seq
        return out

    def put_state(self, bin_id: object, state: object) -> None:
        self._states[bin_id] = state
        self._touch(bin_id)

    # -- byte accounting --------------------------------------------------------

    def state_bytes(self, bin_id: object) -> int:
        return self.modeled_bytes(self._states[bin_id])

    def resident_bytes(self) -> int:
        return sum(self.modeled_bytes(s) for s in self._states.values())

    # -- statistics -------------------------------------------------------------

    def bin_stats(self, bin_id: object) -> BinStats:
        state = self._states[bin_id]
        return BinStats(
            bin_id=bin_id,
            keys=_key_count(state),
            heat=self._heat.get(bin_id, 0),
            last_access=self._last_access.get(bin_id, 0),
            resident_bytes=self.modeled_bytes(state),
            spilled_bytes=0,
            records=self._records.get(bin_id, 0),
        )

    # -- serialization ----------------------------------------------------------

    def extract_bin(self, bin_id: object, *, remove: bool = True) -> BinPayload:
        state = self._states[bin_id]
        keys = _key_count(state)
        if remove:
            del self._states[bin_id]
            self._forget(bin_id)
            payload = self.codec.encode(state)
        else:
            payload = self.codec.encode(self.codec.copy(state))
        measured = self.codec.measured_bytes(payload)
        nbytes = measured if measured is not None else self.modeled_bytes(state)
        return BinPayload(
            bin_id=bin_id,
            codec=self.codec.name,
            payload=payload,
            state_bytes=nbytes,
            size_bytes=nbytes,
            keys=keys,
        )

    def install_bin(self, payload: BinPayload, *, replace: bool = False) -> object:
        if not replace and payload.bin_id in self._states:
            raise ValueError(f"bin {payload.bin_id} already present")
        from repro.state.registry import resolve_codec

        state = resolve_codec(payload.codec).decode(payload.payload)
        self._states[payload.bin_id] = state
        return state
