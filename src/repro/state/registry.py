"""Registries of state backends and codecs.

Selection everywhere (``ExperimentConfig``, the NEXMark harness, the CLI's
``--state-backend``/``--codec`` flags) is by registered name, so a
third-party backend only needs :func:`register_backend` — no CLI or
harness edits.  Unknown names raise ``ValueError`` listing what *is*
registered; the CLI turns that into a clean exit.
"""

from __future__ import annotations

from typing import Callable, Optional, Type

from repro.state.backend import DictBackend, StateBackend
from repro.state.codecs import Codec, ModeledCodec, PickleCodec, StructCodec
from repro.state.sortedlog import SortedLogBackend
from repro.state.tiered import TieredSpillBackend
from repro.state.wal import WalBackend

DEFAULT_BACKEND = "dict"
DEFAULT_CODEC = "modeled"

_BACKENDS: dict[str, Type[StateBackend]] = {}
_CODECS: dict[str, Codec] = {}


def register_backend(cls: Type[StateBackend]) -> Type[StateBackend]:
    """Register a backend class under its ``name`` (idempotent for the same
    class; re-registering a different class under a taken name is an error)."""
    name = cls.name
    if not name:
        raise ValueError(f"{cls.__name__} has no backend name")
    existing = _BACKENDS.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"backend name {name!r} is already registered")
    _BACKENDS[name] = cls
    return cls


def register_codec(codec: Codec) -> Codec:
    """Register a codec instance under its ``name`` (codecs are stateless)."""
    name = codec.name
    if not name:
        raise ValueError(f"{type(codec).__name__} has no codec name")
    existing = _CODECS.get(name)
    if existing is not None and type(existing) is not type(codec):
        raise ValueError(f"codec name {name!r} is already registered")
    _CODECS[name] = codec
    return codec


def backend_names() -> list[str]:
    return sorted(_BACKENDS)


def codec_names() -> list[str]:
    return sorted(_CODECS)


def resolve_backend(name: str) -> Type[StateBackend]:
    """The backend class registered under ``name`` (ValueError if unknown)."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown state backend {name!r}; registered: "
            f"{', '.join(backend_names())}"
        ) from None


def resolve_codec(name: str) -> Codec:
    """The codec instance registered under ``name`` (ValueError if unknown)."""
    try:
        return _CODECS[name]
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; registered: {', '.join(codec_names())}"
        ) from None


def make_backend(
    name: str,
    state_factory: Callable[[], object],
    size_fn: Callable[[object], float],
    codec: str | Codec = DEFAULT_CODEC,
    options: Optional[dict] = None,
) -> StateBackend:
    """Construct a registered backend with a resolved codec.

    ``options`` are backend-specific constructor keywords (e.g. the tiered
    backend's ``hot_capacity_bytes``); ``None`` values are dropped so
    callers can thread optional config fields through unconditionally.
    """
    cls = resolve_backend(name)
    if isinstance(codec, str):
        codec = resolve_codec(codec)
    kwargs = {
        key: value for key, value in (options or {}).items() if value is not None
    }
    return cls(state_factory, size_fn, codec, **kwargs)


# The built-in set.
register_backend(DictBackend)
register_backend(SortedLogBackend)
register_backend(TieredSpillBackend)
register_backend(WalBackend)
register_codec(ModeledCodec())
register_codec(PickleCodec())
register_codec(StructCodec())
