"""Codecs: how bin state turns into shipped bytes.

Megaphone treats operator state as opaque payloads that are serialized,
shipped, and installed (paper §3-4).  A :class:`Codec` decides what those
payloads look like and how many bytes they occupy; the cost model
(:class:`repro.sim.cost.CostModel`) prices the CPU seconds per byte, and a
codec may scale those prices asymmetrically (a compact encoder can be
cheaper to write than to read back, or vice versa).

Three codecs ship:

* ``modeled`` — the default.  Payloads are the state objects themselves
  (zero-copy inside the simulation) and sizes come from the bin's modeled
  size function, so a run with this codec is byte-identical to the
  pre-backend code: shipped bytes equal the ``keys x bytes-per-key`` model.
* ``pickle`` — real ``pickle.dumps`` bytes.  Sizes are measured, not
  modeled, so state with heavy Python overhead ships more bytes than the
  model predicts.
* ``struct`` — a compact fixed-width packing for integer mappings (the
  counting workloads), falling back to pickle for anything else.  Encoding
  is cheaper per byte than decoding, exercising cost asymmetry.
"""

from __future__ import annotations

import copy
import pickle
import struct
from typing import ClassVar, Optional


class Codec:
    """Turns a bin's user state into a shippable payload and back.

    ``encode``/``decode`` must round-trip losslessly.  ``measured_bytes``
    returns the payload's actual size, or ``None`` when the codec defers to
    the bin's modeled size function (the ``modeled`` codec).  The cost
    factors scale the cost model's per-byte serialize/deserialize prices.
    """

    name: ClassVar[str] = ""
    encode_cost_factor: ClassVar[float] = 1.0
    decode_cost_factor: ClassVar[float] = 1.0

    def encode(self, state: object) -> object:
        raise NotImplementedError

    def decode(self, payload: object) -> object:
        raise NotImplementedError

    def copy(self, state: object) -> object:
        """An independent copy of ``state`` (snapshots must not alias)."""
        return self.decode(self.encode(state))

    def measured_bytes(self, payload: object) -> Optional[int]:
        """Actual payload bytes, or None to use the modeled size."""
        return None

    def encode_cost(self, cost, num_bytes: int) -> float:
        """CPU seconds to encode ``num_bytes`` of state."""
        return cost.serialize_cost(num_bytes) * self.encode_cost_factor

    def decode_cost(self, cost, num_bytes: int) -> float:
        """CPU seconds to decode ``num_bytes`` of payload."""
        return cost.deserialize_cost(num_bytes) * self.decode_cost_factor


class ModeledCodec(Codec):
    """Identity payloads, modeled sizes: the seed's exact behavior."""

    name = "modeled"

    def encode(self, state: object) -> object:
        return state

    def decode(self, payload: object) -> object:
        return payload

    def copy(self, state: object) -> object:
        return copy.deepcopy(state)


class PickleCodec(Codec):
    """Pickle-bytes payloads with measured sizes."""

    name = "pickle"

    def encode(self, state: object) -> bytes:
        return pickle.dumps(state, protocol=4)

    def decode(self, payload: object) -> object:
        return pickle.loads(payload)

    def measured_bytes(self, payload: object) -> Optional[int]:
        return len(payload)


_STRUCT_TAG = b"S"
_PICKLE_TAG = b"P"
_PAIR = struct.Struct("<qq")


def _packable(state: object) -> bool:
    if not isinstance(state, dict):
        return False
    for key, value in state.items():
        if type(key) is not int or type(value) is not int:
            return False
        if not (-(1 << 63) <= key < (1 << 63) and -(1 << 63) <= value < (1 << 63)):
            return False
    return True


class StructCodec(Codec):
    """Compact fixed-width packing for ``dict[int, int]`` states.

    16 bytes per entry instead of pickle's per-object overhead.  Non-
    conforming states fall back to pickle behind a one-byte tag, so the
    codec is safe for any workload.  Encoding is modeled cheaper per byte
    than decoding (writers stream, readers validate) — the asymmetry the
    sorted-log backend's compaction schedule is sensitive to.
    """

    name = "struct"
    encode_cost_factor = 0.5
    decode_cost_factor = 1.25

    def encode(self, state: object) -> bytes:
        if _packable(state):
            parts = [_STRUCT_TAG]
            pack = _PAIR.pack
            parts.extend(pack(key, value) for key, value in sorted(state.items()))
            return b"".join(parts)
        return _PICKLE_TAG + pickle.dumps(state, protocol=4)

    def decode(self, payload: object) -> object:
        tag, body = payload[:1], payload[1:]
        if tag == _STRUCT_TAG:
            return {
                key: value
                for key, value in _PAIR.iter_unpack(body)
            }
        return pickle.loads(body)

    def measured_bytes(self, payload: object) -> Optional[int]:
        return len(payload)
