"""Durable write-ahead state: a segmented, checksummed log per worker.

The paper's future work calls for migrating state that lives on disk; this
backend is that representation.  Every mutation of a bin — key-level writes
for mapping states, whole-state checkpoints for opaque ones — appends a
CRC32-framed record to a per-worker :class:`WorkerWal`.  The log is the
bin's durable truth: after a crash-and-restart wipes the worker's in-memory
stores, :meth:`WalBackend.bind_worker` replays the surviving log and
rebuilds every resident bin from frames alone (no in-memory snapshot is
consulted).

Frame format (DESIGN.md §13)::

    <HBII little-endian  =  magic(0xWA1F) | kind(1B) | length(4B) | crc32(4B)
    followed by `length` payload bytes (pickled record tuple)

Recovery scans frames in order and stops at the first invalid one — bad
magic, a CRC mismatch (bit flip), or a frame that runs past the end of the
log (torn final write).  Everything before the cut is intact by
construction; everything after it is truncated away, and the damage is
summarized in a :class:`WalRecovery` the chaos layer publishes as a
``StorageFaultReport``.

Crash-consistency model: :meth:`WorkerWal.sync` advances the fsync horizon.
Frames behind the horizon survive any crash; frames past it exist only in
the modeled page cache and are destroyed by the ``lose_unsynced_tail``
storage fault (an optimistic disk keeps them when no fault is injected).
``WalBackend`` syncs after every application batch by default
(``sync_every=1``), i.e. one fsync per committed transaction.

Epoch stamps: the backend counts application batches; every frame carries
the epoch it was written under and key-level writes additionally record a
per-key dirty epoch.  ``extract_bin(..., dirty_since=E)`` produces a
*delta* payload holding only keys dirtied strictly after ``E`` — the wire
format of delta migration (base payloads record their epoch at capture).

Compaction reuses the sorted-log design at log granularity: once
``compact_threshold`` frames accumulate, the whole log is rewritten as one
checkpoint frame per resident bin, bounding replay work and log size.
"""

from __future__ import annotations

import pickle
import random
import struct
import zlib
from collections.abc import MutableMapping
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.state.backend import BinPayload, DictBackend
from repro.state.codecs import Codec

# Frame header: magic, kind, payload length, payload crc32.
_HEADER = struct.Struct("<HBII")
_MAGIC = 0xA51F

# Frame kinds.
K_CREATE = 1  # ("create", bin_id, epoch)
K_PUT = 2  # ("put", bin_id, epoch, key, value)
K_DELETE = 3  # ("del", bin_id, epoch, key)
K_CKPT = 4  # ("ckpt", bin_id, epoch, state)
K_INSTALL = 5  # ("install", bin_id, epoch, state)
K_DROP = 6  # ("drop", bin_id, epoch)

_KINDS = (K_CREATE, K_PUT, K_DELETE, K_CKPT, K_INSTALL, K_DROP)


def encode_frame(kind: int, record: tuple) -> bytes:
    """One framed record: header (magic, kind, length, crc) + payload."""
    if kind not in _KINDS:
        raise ValueError(f"unknown frame kind {kind}")
    payload = pickle.dumps(record, protocol=4)
    return _HEADER.pack(_MAGIC, kind, len(payload), zlib.crc32(payload)) + payload


@dataclass
class WalRecovery:
    """What one log replay found: intact frames, and how the tail died."""

    frames_replayed: int = 0
    bins_recovered: int = 0
    bytes_scanned: int = 0
    truncated_bytes: int = 0  # bytes discarded at the first invalid frame
    torn_frame: bool = False  # log ended inside a frame (torn final write)
    corrupt_frame: bool = False  # CRC or magic mismatch (bit flip)
    lost_tail_bytes: int = 0  # unsynced bytes destroyed by the crash itself
    max_epoch: int = 0

    @property
    def clean(self) -> bool:
        """True when every byte of the log parsed as valid frames."""
        return not (self.torn_frame or self.corrupt_frame or self.truncated_bytes)


class WorkerWal:
    """One worker's durable log: segments of framed records + fsync horizon.

    The byte store is a list of ``bytearray`` segments (the modeled disk);
    ``synced`` marks how far :meth:`sync` has pushed the fsync horizon, as a
    total byte offset across segments.  Frames never straddle segments.
    """

    def __init__(self, worker_id: int, segment_bytes: int = 1 << 16) -> None:
        if segment_bytes < _HEADER.size + 1:
            raise ValueError("segment_bytes too small to hold a frame")
        self.worker_id = worker_id
        self.segment_bytes = segment_bytes
        self.segments: list[bytearray] = [bytearray()]
        self.synced = 0  # fsync horizon, total bytes across segments
        self.frames_appended = 0
        self.syncs = 0

    # -- writing ---------------------------------------------------------------

    def total_bytes(self) -> int:
        return sum(len(seg) for seg in self.segments)

    def unsynced_bytes(self) -> int:
        return self.total_bytes() - self.synced

    def append(self, kind: int, record: tuple) -> None:
        """Append one framed record (rolls to a new segment on overflow)."""
        frame = encode_frame(kind, record)
        seg = self.segments[-1]
        if seg and len(seg) + len(frame) > self.segment_bytes:
            seg = bytearray()
            self.segments.append(seg)
        seg.extend(frame)
        self.frames_appended += 1

    def sync(self) -> None:
        """Advance the fsync horizon to the end of the log."""
        self.synced = self.total_bytes()
        self.syncs += 1

    def reset(self, frames: list[tuple[int, tuple]]) -> None:
        """Rewrite the log wholesale (compaction); ends synced."""
        self.segments = [bytearray()]
        self.synced = 0
        for kind, record in frames:
            self.append(kind, record)
        self.sync()

    # -- crash faults ----------------------------------------------------------

    def apply_crash(
        self,
        *,
        lose_unsynced_tail: bool = False,
        torn_write: bool = False,
        bit_flips: int = 0,
        rng: Optional[random.Random] = None,
    ) -> dict:
        """Mutate the byte store the way a crash with storage faults would.

        ``lose_unsynced_tail`` drops every byte past the fsync horizon (the
        page cache died with the process).  ``torn_write`` appends a
        partial frame — a write that was in flight when the power went.
        ``bit_flips`` flips that many seeded bits anywhere in the log
        (recovery detects them via CRC and truncates).  Returns a summary
        of the damage inflicted for the fault log.
        """
        rng = rng if rng is not None else random.Random(0)
        lost = 0
        if lose_unsynced_tail:
            lost = self.unsynced_bytes()
            self._truncate_to(self.synced)
        torn = 0
        if torn_write:
            # Header claims a full payload; only part of it hit the disk.
            claimed = 64 + rng.randrange(64)
            body = bytes(rng.randrange(256) for _ in range(claimed // 2))
            frame = _HEADER.pack(_MAGIC, K_PUT, claimed, zlib.crc32(body)) + body
            self.segments[-1].extend(frame)
            torn = len(frame)
        flipped: list[int] = []
        total = self.total_bytes()
        if bit_flips > 0 and total > 0:
            for _ in range(bit_flips):
                offset = rng.randrange(total)
                seg_index, local = self._locate(offset)
                self.segments[seg_index][local] ^= 1 << rng.randrange(8)
                flipped.append(offset)
        return {
            "lost_tail_bytes": lost,
            "torn_bytes": torn,
            "bit_flips": flipped,
        }

    def _locate(self, offset: int) -> tuple[int, int]:
        for i, seg in enumerate(self.segments):
            if offset < len(seg):
                return i, offset
            offset -= len(seg)
        raise IndexError("offset past end of log")

    def _truncate_to(self, offset: int) -> None:
        kept: list[bytearray] = []
        remaining = offset
        for seg in self.segments:
            if remaining >= len(seg):
                kept.append(seg)
                remaining -= len(seg)
            else:
                kept.append(seg[:remaining])
                remaining = 0
        while kept and not kept[-1] and len(kept) > 1:
            kept.pop()
        self.segments = kept or [bytearray()]
        self.synced = min(self.synced, self.total_bytes())

    # -- reading ---------------------------------------------------------------

    def scan(self) -> tuple[list[tuple[int, tuple]], WalRecovery]:
        """Parse every valid frame in order; truncate at the first bad one.

        Mutates the log: everything from the first invalid frame onward is
        discarded, so the surviving store and the replayed state agree.
        """
        data = b"".join(bytes(seg) for seg in self.segments)
        recovery = WalRecovery(bytes_scanned=len(data))
        frames: list[tuple[int, tuple]] = []
        pos = 0
        valid_end = 0
        while pos < len(data):
            if pos + _HEADER.size > len(data):
                recovery.torn_frame = True
                break
            magic, kind, length, crc = _HEADER.unpack_from(data, pos)
            if magic != _MAGIC or kind not in _KINDS:
                recovery.corrupt_frame = True
                break
            body_start = pos + _HEADER.size
            if body_start + length > len(data):
                recovery.torn_frame = True
                break
            body = data[body_start : body_start + length]
            if zlib.crc32(body) != crc:
                recovery.corrupt_frame = True
                break
            try:
                record = pickle.loads(body)
            except Exception:
                recovery.corrupt_frame = True
                break
            frames.append((kind, record))
            pos = body_start + length
            valid_end = pos
        recovery.frames_replayed = len(frames)
        recovery.truncated_bytes = len(data) - valid_end
        if recovery.truncated_bytes:
            self._truncate_to(valid_end)
            self.synced = min(self.synced, valid_end)
        return frames, recovery


class WalRegistry:
    """Per-run home of every worker's durable log.

    Backends live in ``worker.shared`` and die on restart; the registry is
    threaded through ``backend_options`` and owned by the experiment run,
    so the logs survive a crash/restart cycle exactly like a local disk
    would — and two separate runs of the same config never share state.
    """

    def __init__(self, segment_bytes: int = 1 << 16) -> None:
        self.segment_bytes = segment_bytes
        self._wals: dict[int, WorkerWal] = {}
        # Damage summaries from the latest crash, keyed by worker.
        self.crash_damage: dict[int, dict] = {}

    def wal_for(self, worker_id: int, segment_bytes: Optional[int] = None) -> WorkerWal:
        wal = self._wals.get(worker_id)
        if wal is None:
            wal = self._wals[worker_id] = WorkerWal(
                worker_id,
                segment_bytes=segment_bytes
                if segment_bytes is not None
                else self.segment_bytes,
            )
        return wal

    def workers(self) -> list[int]:
        return sorted(self._wals)

    def apply_crash_faults(
        self,
        worker_ids,
        *,
        lose_unsynced_tail: bool = False,
        torn_write: bool = False,
        bit_flips: int = 0,
        seed: int = 0,
    ) -> dict[int, dict]:
        """Inflict a crash's storage faults on the named workers' logs.

        Randomness is drawn from a seed derived per worker, independent of
        the injector's lossy-link RNG — crashes stay deterministic.
        """
        damage: dict[int, dict] = {}
        for worker_id in sorted(worker_ids):
            wal = self._wals.get(worker_id)
            if wal is None:
                continue
            rng = random.Random((seed << 8) ^ (worker_id * 0x9E3779B1))
            damage[worker_id] = wal.apply_crash(
                lose_unsynced_tail=lose_unsynced_tail,
                torn_write=torn_write,
                bit_flips=bit_flips,
                rng=rng,
            )
        self.crash_damage.update(damage)
        return damage


class WalState(MutableMapping):
    """A mapping whose writes go to the owning backend's log, write-through.

    Unlike the sorted-log's :class:`~repro.state.sortedlog.LogState`, reads
    and writes hit ``data`` directly (the log is durability, not the read
    path).  Each write stamps the key's dirty epoch for delta extraction.
    """

    __slots__ = ("data", "dirty", "_owner", "_bin_id")

    def __init__(self, owner: "WalBackend", bin_id: object, base: dict | None = None):
        self.data: dict = dict(base) if base else {}
        self.dirty: dict = {}
        self._owner = owner
        self._bin_id = bin_id

    def __getitem__(self, key):
        return self.data[key]

    def __setitem__(self, key, value) -> None:
        self.data[key] = value
        self._owner._log_put(self._bin_id, self, key, value)

    def __delitem__(self, key) -> None:
        del self.data[key]
        self._owner._log_delete(self._bin_id, self, key)

    def __iter__(self) -> Iterator:
        return iter(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __contains__(self, key) -> bool:
        return key in self.data


@dataclass
class _RecoveredBin:
    """Replay accumulator for one bin."""

    state: object
    mapping: bool
    dirty: dict = field(default_factory=dict)


def replay_frames(
    frames: list[tuple[int, tuple]], state_factory: Callable[[], object]
) -> tuple[dict, int]:
    """Fold a frame sequence into per-bin states.

    Returns ``(bins, max_epoch)`` where ``bins`` maps bin id to a
    :class:`_RecoveredBin`.  Pure function of the frames — the property
    tests drive it directly.
    """
    bins: dict[object, _RecoveredBin] = {}
    max_epoch = 0

    def fresh() -> _RecoveredBin:
        state = state_factory()
        return _RecoveredBin(state=state, mapping=isinstance(state, (dict, MutableMapping)))

    for kind, record in frames:
        bin_id = record[0]
        epoch = record[1]
        if epoch > max_epoch:
            max_epoch = epoch
        if kind == K_CREATE:
            bins[bin_id] = fresh()
        elif kind == K_DROP:
            bins.pop(bin_id, None)
        elif kind in (K_CKPT, K_INSTALL):
            state = record[2]
            bins[bin_id] = _RecoveredBin(
                state=state, mapping=isinstance(state, (dict, MutableMapping))
            )
        elif kind == K_PUT:
            entry = bins.get(bin_id)
            if entry is None:
                entry = bins[bin_id] = fresh()
            if entry.mapping:
                entry.state[record[2]] = record[3]
                entry.dirty[record[2]] = epoch
        elif kind == K_DELETE:
            entry = bins.get(bin_id)
            if entry is not None and entry.mapping:
                entry.state.pop(record[2], None)
                entry.dirty[record[2]] = epoch
    return bins, max_epoch


class WalBackend(DictBackend):
    """In-memory working set + durable per-worker write-ahead log."""

    name = "wal"
    supports_delta = True

    def __init__(
        self,
        state_factory: Callable[[], object],
        size_fn: Callable[[object], float],
        codec: Codec,
        wal_registry: Optional[WalRegistry] = None,
        segment_bytes: int = 1 << 16,
        compact_threshold: int = 512,
        sync_every: int = 1,
    ) -> None:
        super().__init__(state_factory, size_fn, codec)
        if compact_threshold <= 0:
            raise ValueError("compact_threshold must be positive")
        if sync_every <= 0:
            raise ValueError("sync_every must be positive")
        self._registry = wal_registry if wal_registry is not None else WalRegistry()
        self._segment_bytes = segment_bytes
        self.compact_threshold = compact_threshold
        self.sync_every = sync_every
        self.worker_id = -1
        self._wal: Optional[WorkerWal] = None
        self._epoch = 0
        self._applies_since_sync = 0
        self._frames_since_compaction = 0
        self.compactions = 0
        # Recovery summary from bind time (None when the log was empty).
        self.last_recovery: Optional[WalRecovery] = None

    # -- binding and recovery ---------------------------------------------------

    def bind_worker(self, worker_id: int) -> None:
        """Attach to the worker's durable log; replay it if non-empty.

        Called by ``BinStore`` right after construction.  A non-empty log
        means this backend is the reincarnation of a crashed worker: the
        resident bins are rebuilt from frames alone.
        """
        self.worker_id = worker_id
        self._wal = self._registry.wal_for(worker_id, segment_bytes=self._segment_bytes)
        if self._wal.total_bytes() == 0:
            return
        frames, recovery = self._wal.scan()
        damage = self._registry.crash_damage.get(worker_id)
        if damage is not None:
            recovery.lost_tail_bytes = damage.get("lost_tail_bytes", 0)
        bins, max_epoch = replay_frames(frames, self._state_factory)
        for bin_id, entry in bins.items():
            if entry.mapping:
                wrapped = WalState(self, bin_id, dict(entry.state))
                wrapped.dirty = dict(entry.dirty)
                self._states[bin_id] = wrapped
            else:
                self._states[bin_id] = entry.state
        recovery.bins_recovered = len(bins)
        recovery.max_epoch = max_epoch
        self._epoch = max_epoch + 1
        self.last_recovery = recovery

    def _log(self) -> WorkerWal:
        if self._wal is None:
            self.bind_worker(self.worker_id)
        return self._wal

    # -- logging helpers --------------------------------------------------------

    def _append(self, kind: int, record: tuple, *, sync: bool = False) -> None:
        wal = self._log()
        wal.append(kind, record)
        self._frames_since_compaction += 1
        if sync:
            wal.sync()
        if self._frames_since_compaction >= self.compact_threshold:
            self.compact()

    def _log_put(self, bin_id: object, state: WalState, key: object, value) -> None:
        state.dirty[key] = self._epoch
        self._append(K_PUT, (bin_id, self._epoch, key, value))

    def _log_delete(self, bin_id: object, state: WalState, key: object) -> None:
        state.dirty[key] = self._epoch
        self._append(K_DELETE, (bin_id, self._epoch, key))

    def _durable_form(self, state: object) -> object:
        """The object a checkpoint/install frame embeds (never a WalState)."""
        if isinstance(state, WalState):
            return dict(state.data)
        return state

    # -- maintenance ------------------------------------------------------------

    def current_epoch(self) -> int:
        """The open application epoch (stamped on in-flight mutations)."""
        return self._epoch

    def note_applied(self, bin_id: object) -> None:
        """Commit one application batch: checkpoint opaque bins, close the
        epoch, and fsync on the configured cadence."""
        state = self._states.get(bin_id)
        if state is not None and not isinstance(state, WalState):
            # Opaque state: mutations are invisible to the log, so each
            # batch writes the whole (small, modeled) object.
            self._append(K_CKPT, (bin_id, self._epoch, self._durable_form(state)))
        self._epoch += 1
        self._applies_since_sync += 1
        if self._applies_since_sync >= self.sync_every:
            self._log().sync()
            self._applies_since_sync = 0

    def compact(self) -> None:
        """Rewrite the log as one checkpoint frame per resident bin."""
        frames = [
            (K_CKPT, (bin_id, self._epoch, self._durable_form(state)))
            for bin_id, state in self._states.items()
        ]
        self._log().reset(frames)
        self._frames_since_compaction = 0
        self.compactions += 1

    def wal_bytes(self) -> int:
        """Current size of the durable log (diagnostics/benchmarks)."""
        return self._log().total_bytes()

    # -- bin lifecycle ----------------------------------------------------------

    def create_bin(self, bin_id: object) -> object:
        state = super().create_bin(bin_id)
        if isinstance(state, dict):
            state = WalState(self, bin_id, state)
            self._states[bin_id] = state
        self._append(K_CREATE, (bin_id, self._epoch), sync=True)
        return state

    def drop_bin(self, bin_id: object) -> None:
        present = bin_id in self._states
        super().drop_bin(bin_id)
        if present:
            self._append(K_DROP, (bin_id, self._epoch), sync=True)

    def put_state(self, bin_id: object, state: object) -> None:
        if isinstance(state, dict):
            state = WalState(self, bin_id, state)
        super().put_state(bin_id, state)
        self._append(
            K_INSTALL, (bin_id, self._epoch, self._durable_form(state)), sync=True
        )

    # -- serialization ----------------------------------------------------------

    def bin_delta_capable(self, bin_id: object) -> bool:
        return isinstance(self._states.get(bin_id), WalState)

    def extract_bin(
        self,
        bin_id: object,
        *,
        remove: bool = True,
        dirty_since: Optional[int] = None,
    ) -> BinPayload:
        state = self._states[bin_id]
        if dirty_since is not None and isinstance(state, WalState):
            return self._extract_delta(bin_id, state, dirty_since, remove)
        if isinstance(state, WalState):
            flat = dict(state.data)
            keys = len(flat)
            if remove:
                del self._states[bin_id]
                self._forget(bin_id)
                self._append(K_DROP, (bin_id, self._epoch), sync=True)
                payload = self.codec.encode(flat)
            else:
                payload = self.codec.encode(self.codec.copy(flat))
            measured = self.codec.measured_bytes(payload)
            nbytes = measured if measured is not None else self.modeled_bytes(state)
            result = BinPayload(
                bin_id=bin_id,
                codec=self.codec.name,
                payload=payload,
                state_bytes=nbytes,
                size_bytes=nbytes,
                keys=keys,
            )
        else:
            removed = remove
            result = super().extract_bin(bin_id, remove=remove)
            if removed:
                self._append(K_DROP, (bin_id, self._epoch), sync=True)
        # Stamp the capture epoch and close it, so writes that land after
        # this snapshot are strictly newer than ``base_epoch``.
        result.base_epoch = self._epoch
        if not remove:
            self._epoch += 1
        return result

    def _extract_delta(
        self, bin_id: object, state: WalState, since: int, remove: bool
    ) -> BinPayload:
        data = state.data
        live = {}
        deleted = []
        for key, epoch in state.dirty.items():
            if epoch <= since:
                continue
            if key in data:
                live[key] = data[key]
            else:
                deleted.append(key)
        payload = self.codec.encode(
            live if remove else self.codec.copy(live)
        )
        measured = self.codec.measured_bytes(payload)
        nbytes = measured if measured is not None else self.modeled_bytes(live)
        if remove:
            del self._states[bin_id]
            self._forget(bin_id)
            self._append(K_DROP, (bin_id, self._epoch), sync=True)
        result = BinPayload(
            bin_id=bin_id,
            codec=self.codec.name,
            payload=payload,
            state_bytes=nbytes,
            size_bytes=nbytes,
            keys=len(live),
            kind="delta",
            base_epoch=since,
            deleted=tuple(deleted),
        )
        return result

    def install_bin(self, payload: BinPayload, *, replace: bool = False) -> object:
        state = super().install_bin(payload, replace=replace)
        if isinstance(state, dict):
            state = WalState(self, payload.bin_id, state)
            self._states[payload.bin_id] = state
        self._append(
            K_INSTALL,
            (payload.bin_id, self._epoch, self._durable_form(state)),
            sync=True,
        )
        return state
