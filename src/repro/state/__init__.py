"""``repro.state`` — the pluggable state-backend layer.

Lifts bin state behind a :class:`~repro.state.backend.StateBackend`
interface (get/put/delete/iterate, ``extract_bin``/``install_bin``, byte
accounting, per-bin key/heat stats) with a
:class:`~repro.state.codecs.Codec` abstraction for the serialized form.
``BinStore`` owns one backend per worker-operator pair; migration
shipping, snapshots, and crash recovery all serialize through the single
``extract_bin`` + codec path.

Built-ins: ``dict`` (the seed's behavior, byte-identical), ``sorted-log``
(append + compaction), ``tiered`` (hot RAM tier, cold modeled-disk tier
with LRU spill and promote-on-access), and ``wal`` (segmented CRC32-framed
write-ahead log with crash-consistent recovery and per-key dirty epochs
for delta migration — DESIGN.md §13).  Codecs: ``modeled``, ``pickle``,
``struct``.  See DESIGN.md §10.
"""

from repro.state.backend import (
    BinNotResident,
    BinPayload,
    BinStats,
    DictBackend,
    StateBackend,
    default_state_size,
)
from repro.state.codecs import Codec, ModeledCodec, PickleCodec, StructCodec
from repro.state.registry import (
    DEFAULT_BACKEND,
    DEFAULT_CODEC,
    backend_names,
    codec_names,
    make_backend,
    register_backend,
    register_codec,
    resolve_backend,
    resolve_codec,
)
from repro.state.sortedlog import LogState, SortedLogBackend
from repro.state.tiered import TieredSpillBackend
from repro.state.wal import (
    WalBackend,
    WalRecovery,
    WalRegistry,
    WalState,
    WorkerWal,
)

__all__ = [
    "BinNotResident",
    "BinPayload",
    "BinStats",
    "Codec",
    "DEFAULT_BACKEND",
    "DEFAULT_CODEC",
    "DictBackend",
    "LogState",
    "ModeledCodec",
    "PickleCodec",
    "SortedLogBackend",
    "StateBackend",
    "StructCodec",
    "TieredSpillBackend",
    "WalBackend",
    "WalRecovery",
    "WalRegistry",
    "WalState",
    "WorkerWal",
    "backend_names",
    "codec_names",
    "default_state_size",
    "make_backend",
    "register_backend",
    "register_codec",
    "resolve_backend",
    "resolve_codec",
]
