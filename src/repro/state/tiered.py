"""Tiered spill backend: hot bins in modeled RAM, cold bins on modeled disk.

The paper's memory evaluation (Figure 20) is entirely about where state
bytes live over time.  This backend makes that a policy: resident (hot)
bins hold live state objects; once resident bytes exceed
``hot_capacity_bytes``, the least-recently-accessed bins are *spilled* —
codec-encoded and held in a cold tier whose bytes no longer count toward
the process's modeled RSS.  Touching a spilled bin *promotes* it back
(decode, then re-enforce the capacity), so access patterns drive a
deterministic spill/promote churn the tiered Fig. 20 bench plots as a
resident-vs-spilled timeline.

Everything is deterministic in simulated terms: spill order is the LRU
order of the backend's own access sequence, and no simulator events are
scheduled — the tier only moves bytes between accounting pools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.state.backend import (
    BinPayload,
    BinStats,
    StateBackend,
    _key_count,
)
from repro.state.codecs import Codec


@dataclass
class _Slot:
    """One bin's tier residence: exactly one of state/payload is set."""

    state: object = None
    payload: object = None
    cold_bytes: int = 0
    resident: bool = True


class TieredSpillBackend(StateBackend):
    """Two-tier bin storage with LRU spill and promote-on-access."""

    name = "tiered"

    def __init__(
        self,
        state_factory: Callable[[], object],
        size_fn: Callable[[object], float],
        codec: Codec,
        hot_capacity_bytes: Optional[int] = None,
    ) -> None:
        super().__init__(state_factory, size_fn, codec)
        if hot_capacity_bytes is not None and hot_capacity_bytes <= 0:
            raise ValueError("hot_capacity_bytes must be positive (or None)")
        self.hot_capacity_bytes = hot_capacity_bytes
        self._slots: dict[object, _Slot] = {}
        self.spills = 0
        self.promotions = 0
        self.spilled_bytes_total = 0
        self.promoted_bytes_total = 0

    # -- bin lifecycle ----------------------------------------------------------

    def create_bin(self, bin_id: object) -> object:
        if bin_id in self._slots:
            raise ValueError(f"bin {bin_id} already present")
        state = self._state_factory()
        self._slots[bin_id] = _Slot(state=state)
        self._enforce_capacity(exclude=bin_id)
        return state

    def has_bin(self, bin_id: object) -> bool:
        return bin_id in self._slots

    def drop_bin(self, bin_id: object) -> None:
        self._slots.pop(bin_id, None)
        self._forget(bin_id)

    def bin_ids(self) -> list:
        return list(self._slots)

    # -- tier movement ----------------------------------------------------------

    def _promote(self, bin_id: object, slot: _Slot) -> None:
        slot.state = self.codec.decode(slot.payload)
        self.promotions += 1
        self.promoted_bytes_total += slot.cold_bytes
        slot.payload = None
        slot.cold_bytes = 0
        slot.resident = True

    def _spill(self, bin_id: object, slot: _Slot) -> None:
        payload = self.codec.encode(slot.state)
        measured = self.codec.measured_bytes(payload)
        cold = measured if measured is not None else self.modeled_bytes(slot.state)
        slot.payload = payload
        slot.cold_bytes = cold
        slot.state = None
        slot.resident = False
        self.spills += 1
        self.spilled_bytes_total += cold

    def _enforce_capacity(self, exclude: object = None) -> None:
        capacity = self.hot_capacity_bytes
        if capacity is None:
            return
        resident = self.resident_bytes()
        if resident <= capacity:
            return
        # Coldest-first: smallest last-access sequence; bin id breaks ties
        # so spill order is deterministic across runs.
        candidates = sorted(
            (
                (self._last_access.get(bin_id, 0), repr(bin_id), bin_id)
                for bin_id, slot in self._slots.items()
                if slot.resident and bin_id != exclude
            ),
        )
        for _, _, bin_id in candidates:
            if resident <= capacity:
                break
            slot = self._slots[bin_id]
            size = self.modeled_bytes(slot.state)
            self._spill(bin_id, slot)
            resident -= size

    # -- state access -----------------------------------------------------------

    def state_of(self, bin_id: object) -> object:
        slot = self._slots[bin_id]
        self._touch(bin_id)
        if not slot.resident:
            self._promote(bin_id, slot)
            self._enforce_capacity(exclude=bin_id)
        return slot.state

    def put_state(self, bin_id: object, state: object) -> None:
        slot = self._slots[bin_id]
        slot.state = state
        slot.payload = None
        slot.cold_bytes = 0
        slot.resident = True
        self._touch(bin_id)
        self._enforce_capacity(exclude=bin_id)

    def note_applied(self, bin_id: object) -> None:
        """Re-enforce capacity after an applier grew the bin."""
        self._enforce_capacity(exclude=bin_id)

    # -- byte accounting --------------------------------------------------------

    def state_bytes(self, bin_id: object) -> int:
        slot = self._slots[bin_id]
        if slot.resident:
            return self.modeled_bytes(slot.state)
        return slot.cold_bytes

    def resident_bytes(self) -> int:
        return sum(
            self.modeled_bytes(slot.state)
            for slot in self._slots.values()
            if slot.resident
        )

    def spilled_bytes(self) -> int:
        return sum(
            slot.cold_bytes
            for slot in self._slots.values()
            if not slot.resident
        )

    # -- statistics -------------------------------------------------------------

    def bin_stats(self, bin_id: object) -> BinStats:
        slot = self._slots[bin_id]
        if slot.resident:
            keys = _key_count(slot.state)
            hot, cold = self.modeled_bytes(slot.state), 0
        else:
            keys = 0
            hot, cold = 0, slot.cold_bytes
        return BinStats(
            bin_id=bin_id,
            keys=keys,
            heat=self._heat.get(bin_id, 0),
            last_access=self._last_access.get(bin_id, 0),
            resident_bytes=hot,
            spilled_bytes=cold,
            records=self._records.get(bin_id, 0),
        )

    # -- serialization ----------------------------------------------------------

    def extract_bin(self, bin_id: object, *, remove: bool = True) -> BinPayload:
        slot = self._slots[bin_id]
        if slot.resident:
            state = slot.state
            keys = _key_count(state)
            if remove:
                payload = self.codec.encode(state)
            else:
                payload = self.codec.encode(self.codec.copy(state))
            measured = self.codec.measured_bytes(payload)
            nbytes = measured if measured is not None else self.modeled_bytes(state)
        else:
            # Already encoded in the cold tier: ship the payload as-is.
            payload = slot.payload
            nbytes = slot.cold_bytes
            keys = 0
            if not remove:
                payload = (
                    bytes(payload)
                    if isinstance(payload, (bytes, bytearray))
                    else self.codec.encode(self.codec.copy(self.codec.decode(payload)))
                )
        if remove:
            del self._slots[bin_id]
            self._forget(bin_id)
        return BinPayload(
            bin_id=bin_id,
            codec=self.codec.name,
            payload=payload,
            state_bytes=nbytes,
            size_bytes=nbytes,
            keys=keys,
        )

    def install_bin(self, payload: BinPayload, *, replace: bool = False) -> object:
        if not replace and payload.bin_id in self._slots:
            raise ValueError(f"bin {payload.bin_id} already present")
        from repro.state.registry import resolve_codec

        state = resolve_codec(payload.codec).decode(payload.payload)
        self._slots[payload.bin_id] = _Slot(state=state)
        self._touch(payload.bin_id)
        self._enforce_capacity(exclude=payload.bin_id)
        return state
