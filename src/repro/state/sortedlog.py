"""Sorted-log backend: append-first writes with periodic compaction.

Models an LSM-flavored representation: key-level writes append to a per-bin
log and reads consult the log before the compacted base.  Uncompacted
entries carry modeled overhead bytes, so a write-heavy bin's footprint
grows between compactions and shrinks when the log folds into the base —
the asymmetry a codec with cheap encodes and expensive decodes (``struct``)
amplifies, because extraction always materializes the compacted view.

Mapping states (anything the ``dict`` factory produces) are wrapped in
:class:`LogState`, a ``MutableMapping`` that routes mutations through the
log transparently — appliers keep using plain dict operations.  Opaque
states (e.g. the modeled count state) are stored as-is; the backend then
behaves like :class:`~repro.state.backend.DictBackend` for those bins.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from typing import Callable, Iterator

from repro.state.backend import BinPayload, BinStats, DictBackend, _key_count
from repro.state.codecs import Codec

_TOMBSTONE = object()


class LogState(MutableMapping):
    """A mapping whose writes append to a log until compaction.

    ``base`` holds compacted entries; ``log`` holds ``(key, value)`` pairs
    (``_TOMBSTONE`` values mark deletions) in write order.  Reads scan the
    log newest-first, then the base.
    """

    __slots__ = ("base", "log", "_live")

    def __init__(self, base: dict | None = None) -> None:
        self.base: dict = dict(base) if base else {}
        self.log: list[tuple] = []
        # Live key count, maintained incrementally so __len__ is O(1).
        self._live = len(self.base)

    # -- mapping protocol -------------------------------------------------------

    def __getitem__(self, key):
        for log_key, value in reversed(self.log):
            if log_key == key:
                if value is _TOMBSTONE:
                    raise KeyError(key)
                return value
        return self.base[key]

    def __setitem__(self, key, value) -> None:
        if key not in self:
            self._live += 1
        self.log.append((key, value))

    def __delitem__(self, key) -> None:
        if key not in self:
            raise KeyError(key)
        self._live -= 1
        self.log.append((key, _TOMBSTONE))

    def __iter__(self) -> Iterator:
        return iter(self.materialize())

    def __len__(self) -> int:
        return self._live

    def __contains__(self, key) -> bool:
        for log_key, value in reversed(self.log):
            if log_key == key:
                return value is not _TOMBSTONE
        return key in self.base

    # -- log maintenance --------------------------------------------------------

    @property
    def log_len(self) -> int:
        return len(self.log)

    def materialize(self) -> dict:
        """The logical mapping: base with the log folded in (sorted keys
        where the key space is orderable, insertion order otherwise)."""
        merged = dict(self.base)
        for key, value in self.log:
            if value is _TOMBSTONE:
                merged.pop(key, None)
            else:
                merged[key] = value
        try:
            return dict(sorted(merged.items()))
        except TypeError:
            return merged

    def compact(self) -> int:
        """Fold the log into the base; returns entries compacted away."""
        folded = len(self.log)
        if folded:
            self.base = self.materialize()
            self.log = []
        return folded


class SortedLogBackend(DictBackend):
    """Bin state as compacted base + append log, with modeled log overhead."""

    name = "sorted-log"

    def __init__(
        self,
        state_factory: Callable[[], object],
        size_fn: Callable[[object], float],
        codec: Codec,
        compact_threshold: int = 64,
        log_entry_overhead_bytes: int = 16,
    ) -> None:
        super().__init__(state_factory, size_fn, codec)
        if compact_threshold <= 0:
            raise ValueError("compact_threshold must be positive")
        self.compact_threshold = compact_threshold
        self.log_entry_overhead_bytes = log_entry_overhead_bytes
        self.compactions = 0

    def _wrap(self, state: object) -> object:
        if isinstance(state, LogState):
            return state
        if isinstance(state, dict):
            return LogState(state)
        return state

    # -- bin lifecycle ----------------------------------------------------------

    def create_bin(self, bin_id: object) -> object:
        state = super().create_bin(bin_id)
        wrapped = self._wrap(state)
        self._states[bin_id] = wrapped
        return wrapped

    def put_state(self, bin_id: object, state: object) -> None:
        super().put_state(bin_id, self._wrap(state))

    def note_applied(self, bin_id: object) -> None:
        """Compact once the uncompacted log crosses the threshold."""
        state = self._states.get(bin_id)
        if isinstance(state, LogState) and state.log_len >= self.compact_threshold:
            state.compact()
            self.compactions += 1

    # -- byte accounting --------------------------------------------------------

    def state_bytes(self, bin_id: object) -> int:
        state = self._states[bin_id]
        size = self.modeled_bytes(state)
        if isinstance(state, LogState):
            size += state.log_len * self.log_entry_overhead_bytes
        return size

    def resident_bytes(self) -> int:
        return sum(self.state_bytes(b) for b in self._states)

    def bin_stats(self, bin_id: object) -> BinStats:
        state = self._states[bin_id]
        return BinStats(
            bin_id=bin_id,
            keys=_key_count(state),
            heat=self._heat.get(bin_id, 0),
            last_access=self._last_access.get(bin_id, 0),
            resident_bytes=self.state_bytes(bin_id),
            spilled_bytes=0,
            records=self._records.get(bin_id, 0),
        )

    # -- serialization ----------------------------------------------------------

    def extract_bin(self, bin_id: object, *, remove: bool = True) -> BinPayload:
        state = self._states[bin_id]
        if isinstance(state, LogState):
            # Extraction always ships the compacted view: one flat mapping,
            # no log structure on the wire.
            flat = state.materialize()
            keys = len(flat)
            if remove:
                del self._states[bin_id]
                self._forget(bin_id)
                payload = self.codec.encode(flat)
            else:
                payload = self.codec.encode(self.codec.copy(flat))
            measured = self.codec.measured_bytes(payload)
            nbytes = measured if measured is not None else self.modeled_bytes(state)
            return BinPayload(
                bin_id=bin_id,
                codec=self.codec.name,
                payload=payload,
                state_bytes=nbytes,
                size_bytes=nbytes,
                keys=keys,
            )
        return super().extract_bin(bin_id, remove=remove)

    def install_bin(self, payload: BinPayload, *, replace: bool = False) -> object:
        state = super().install_bin(payload, replace=replace)
        wrapped = self._wrap(state)
        self._states[payload.bin_id] = wrapped
        return wrapped
