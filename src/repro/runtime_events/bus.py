"""The cross-layer trace bus.

One :class:`TraceBus` instance lives on the simulator and is reachable from
every layer (workers, network, progress pump, Megaphone operators and
controllers, harness).  Publishers guard each emission site with the bus's
per-topic ``wants_*`` flag::

    trace = self._sim.trace
    if trace.wants_migration:
        trace.publish(BinStateExtracted(...))

so that with no subscriber attached a site costs a single attribute read —
no event object is allocated and no dispatch happens.

Subscribers are strictly observers.  They may record, aggregate, and
filter, but they MUST NOT mutate runtime state or schedule simulation
events: the simulation must be bit-identical with and without any set of
subscribers attached.  Components whose *behaviour* depends on frontier
movement (controllers, recorders that gate shutdown) use probes — a
dataflow-semantic mechanism — not this bus.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.runtime_events.events import TOPICS

Subscriber = Callable[[object], None]


class TraceBus:
    """Topic-keyed publish/subscribe fabric for structured runtime events."""

    __slots__ = tuple(f"wants_{topic}" for topic in TOPICS) + ("_subscribers",)

    def __init__(self) -> None:
        self._subscribers: dict[str, list[Subscriber]] = {t: [] for t in TOPICS}
        for topic in TOPICS:
            setattr(self, f"wants_{topic}", False)

    def subscribe(
        self,
        callback: Subscriber,
        topics: Optional[Iterable[str]] = None,
    ) -> Callable[[], None]:
        """Attach ``callback`` to ``topics`` (all topics when ``None``).

        Returns a zero-argument function that detaches the subscription
        again.  Callbacks receive fully constructed event dataclasses and
        must not mutate runtime state or schedule simulation events.
        """
        selected = TOPICS if topics is None else tuple(topics)
        for topic in selected:
            if topic not in self._subscribers:
                raise ValueError(f"unknown trace topic {topic!r}; known: {TOPICS}")
            self._subscribers[topic].append(callback)
            setattr(self, f"wants_{topic}", True)

        def unsubscribe() -> None:
            for topic in selected:
                subs = self._subscribers[topic]
                if callback in subs:
                    subs.remove(callback)
                if not subs:
                    setattr(self, f"wants_{topic}", False)

        return unsubscribe

    def publish(self, event) -> None:
        """Deliver ``event`` to every subscriber of its topic.

        Publishers should guard the call (and the event's construction)
        with the topic's ``wants_*`` flag; calling unguarded is correct but
        pays the allocation even when nobody listens.
        """
        for callback in self._subscribers[event.topic]:
            callback(event)

    def active_topics(self) -> tuple[str, ...]:
        """Topics that currently have at least one subscriber."""
        return tuple(t for t in TOPICS if self._subscribers[t])


class TraceLog:
    """A subscriber that records every event it receives, in order.

    The simplest useful consumer: attach, run, inspect ``events``.  The
    recorded order is the deterministic publication order.
    """

    def __init__(
        self, bus: TraceBus, topics: Optional[Iterable[str]] = None
    ) -> None:
        self.events: list = []
        self._unsubscribe = bus.subscribe(self.events.append, topics=topics)

    def close(self) -> None:
        """Detach from the bus."""
        self._unsubscribe()

    def of_type(self, event_type) -> list:
        """All recorded events of one dataclass type."""
        return [e for e in self.events if type(e) is event_type]

    def __len__(self) -> int:
        return len(self.events)
