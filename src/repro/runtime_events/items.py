"""Typed, slotted carriers for the runtime's hot-path values.

These replace the ad-hoc tuples the worker and network layers historically
threaded around: string-tagged work-item tuples, 5-element send-buffer
tuples, and anonymous ``(channel, time, batch)`` network payloads.  Each
class is a plain slotted dataclass — construction
cost is comparable to a tuple, but every field has a name, a type, and a
single definition the whole runtime shares.

The ``channel`` fields hold :class:`repro.timely.graph.ChannelDesc`
instances; they are typed as ``object`` here because this package sits
below ``repro.timely`` and must not import it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(slots=True)
class SourceWork:
    """A batch injected by a source operator's input handle.

    Queued on the owning worker and processed during an activation, which
    charges ingest cost and forwards the records on output port 0.
    """

    op_index: int
    time: object
    records: list


@dataclass(slots=True)
class MessageWork:
    """A message batch delivered on a channel, awaiting processing.

    ``size_bytes`` is the modeled wire size, used for input-cost hooks
    (e.g. state installation pays deserialization cost per byte).
    """

    channel: object
    time: object
    records: list
    size_bytes: float


@dataclass(slots=True)
class BufferedSend:
    """One ``OpContext.send`` awaiting the activation's flush.

    A transient send-guard capability covers the send until the flush has
    charged in-flight counts.  ``size_bytes`` is an explicit wire size
    (``None`` derives it from the record count); ``retained_bytes`` is
    sender memory that must stay resident until the network has drained
    the message (migrating state keeps its serialized copy allocated —
    the all-at-once RSS spike of paper §5.3.5).
    """

    port: int
    time: object
    records: list
    size_bytes: Optional[float]
    retained_bytes: float


@dataclass(slots=True)
class RoutedSend:
    """A partitioned outbound batch, bound to one channel and destination."""

    channel: object
    dst_worker: int
    time: object
    records: list
    size_bytes: float
    retained_bytes: float


@dataclass(slots=True)
class ChannelPayload:
    """The dataflow payload of one network message."""

    channel: object
    time: object
    records: list


@dataclass(slots=True)
class DestinationBatch:
    """Records pre-grouped for one destination worker.

    Megaphone's F operator routes a whole input batch at once and emits one
    ``DestinationBatch`` per destination instead of per-record
    ``(dst, bin, tag, record)`` tuples: the exchange channel routes the
    group with a single ``route`` call, the network ships it as one payload,
    and S's inbox adopts the per-bin entry lists without regrouping.

    The carrier has two interchangeable payload layouts:

    * classic: ``bins`` maps ``bin_id -> [(tag, record), ...]`` preserving
      record arrival order per bin (``columns`` is ``None``);
    * columnar: ``columns`` is a
      :class:`repro.runtime_events.columns.ColumnBatch` holding the records
      as structure-of-arrays vectors, ``bin_ids`` is the parallel bin-id
      vector, and ``tag`` is the input-port tag shared by the whole batch
      (``bins`` is ``None``).

    ``count`` is the total number of records either way, which every layer
    that models per-record cost (CPU charge, wire bytes, trace events) must
    use instead of ``len(records)``.
    """

    dst: int
    count: int
    bins: Optional[dict] = None
    bin_ids: object = None
    columns: object = None
    tag: int = 0


def batch_record_count(records) -> int:
    """Number of underlying records in a batch.

    Grouped carriers (``DestinationBatch``) report the records they carry;
    columnar batches report their column length; plain batches report their
    length.  Cost models and wire-size derivations must go through this so
    grouped, columnar, and per-record paths charge identically.
    """
    if type(records) is list and records and type(records[0]) is DestinationBatch:
        return sum(batch.count for batch in records)
    return len(records)
