"""Structure-of-arrays record batches: the columnar hot-path core.

A :class:`ColumnBatch` carries one batch of records as parallel columns
(key vector, value vector, optional per-record timestamp vector) instead of
a list of per-record Python objects.  Everything the routing and apply
paths do per record — splitmix64 bin hashing, owner lookup, destination
grouping, count folding — then amortizes over whole arrays.

Two representations share one interface:

* **numpy** (when importable): columns are ``ndarray``s and the kernels
  below vectorize; this is the fast path.
* **pure ``array``** (stdlib) fallback: columns are ``array('Q')``/
  ``array('q')`` and the kernels loop — bit-identical results, no third-
  party dependency.

The active representation is chosen once at import; tests monkeypatch the
module-global ``_np`` to ``None`` to exercise the fallback.

Correctness contract: every kernel here is *bit-identical* to its scalar
reference (the per-record splitmix64 ``bin_fn`` in
``repro.megaphone.operators``, the ``Lcg`` in ``repro.harness.openloop``,
dict-insertion destination grouping in F).  The equivalence tests pin this;
the simulation must not be able to tell the representations apart.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Optional, Sequence

try:  # pragma: no cover - exercised via monkeypatch in tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

_MASK64 = (1 << 64) - 1

# Column kinds.  "kv" batches decode to ``(key, val)`` tuples (the count
# workloads); "obj" batches carry arbitrary Python records in ``vals`` with
# a precomputed integer routing key per record (the NEXMark relations).
KIND_KV = "kv"
KIND_OBJ = "obj"


def numpy_active() -> bool:
    """Whether the numpy representation is in use."""
    return _np is not None


def active_representation() -> str:
    """Name of the active columnar representation (for reports/CLI)."""
    return "columnar-numpy" if _np is not None else "columnar-array"


def _key_column(values: Sequence[int]):
    if _np is not None:
        return _np.asarray(values, dtype=_np.uint64)
    return array("Q", values)


def _val_column(values: Sequence[int]):
    if _np is not None:
        return _np.asarray(values, dtype=_np.int64)
    return array("q", values)


class ColumnBatch:
    """One record batch as structure-of-arrays columns.

    ``keys`` is always an unsigned 64-bit integer column (the routing key).
    For ``kind="kv"`` ``vals`` is a signed 64-bit column and record ``i``
    decodes to ``(int(keys[i]), int(vals[i]))``.  For ``kind="obj"``
    ``vals`` is a plain list of Python records and record ``i`` decodes to
    ``vals[i]`` (the keys were precomputed by the producer).  ``times`` is
    an optional per-record event-time column; ``None`` means every record
    shares the batch's dataflow timestamp (the common case — batches are
    per-epoch, so the column would be constant).
    """

    __slots__ = ("keys", "vals", "kind", "times")

    def __init__(self, keys, vals, kind: str = KIND_KV, times=None) -> None:
        self.keys = keys
        self.vals = vals
        self.kind = kind
        self.times = times

    # -- construction --------------------------------------------------------

    @classmethod
    def from_kv(cls, keys: Sequence[int], vals: Sequence[int]) -> "ColumnBatch":
        """Encode parallel key/value sequences."""
        return cls(_key_column(keys), _val_column(vals), KIND_KV)

    @classmethod
    def from_records(cls, records: Sequence) -> "ColumnBatch":
        """Encode ``[(key, val), ...]`` pairs."""
        return cls.from_kv([r[0] for r in records], [r[1] for r in records])

    @classmethod
    def from_objects(cls, objs: list, keys: Sequence[int]) -> "ColumnBatch":
        """Wrap arbitrary records with precomputed integer routing keys."""
        return cls(_key_column(keys), list(objs), KIND_OBJ)

    # -- record views --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.keys)

    def __iter__(self) -> Iterator:
        return iter(self.to_records())

    def __eq__(self, other) -> bool:
        if type(other) is ColumnBatch:
            return self.kind == other.kind and self.to_records() == other.to_records()
        if isinstance(other, list):
            return self.to_records() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"ColumnBatch(kind={self.kind!r}, len={len(self.keys)})"

    def to_records(self) -> list:
        """Decode to the per-record representation."""
        if self.kind == KIND_OBJ:
            return list(self.vals)
        keys, vals = self.keys, self.vals
        if _np is not None and isinstance(keys, _np.ndarray):
            return list(zip(keys.tolist(), vals.tolist()))
        return list(zip(keys, vals))

    def key_list(self) -> list:
        """The key column as a list of Python ints."""
        keys = self.keys
        if _np is not None and isinstance(keys, _np.ndarray):
            return keys.tolist()
        return list(keys)

    # -- zero-copy transport -------------------------------------------------

    def to_buffers(self):
        """``(meta, buffers)`` for shared-memory shipping, or ``None``.

        Only the numpy ``kv`` representation is buffer-shippable: each
        column is handed back as a contiguous ``ndarray`` whose raw bytes a
        shared-memory ring can absorb, plus a small picklable ``meta``
        tuple ``(dtypes, has_times)`` that :meth:`from_buffers` needs to
        reassemble the batch.  ``obj`` batches and the stdlib-``array``
        representation return ``None`` — the caller falls back to pickle.
        """
        if _np is None or self.kind != KIND_KV:
            return None
        cols = [self.keys, self.vals]
        if self.times is not None:
            cols.append(self.times)
        for col in cols:
            if not isinstance(col, _np.ndarray) or col.ndim != 1:
                return None
        buffers = [_np.ascontiguousarray(col) for col in cols]
        meta = (tuple(str(col.dtype) for col in buffers), self.times is not None)
        return meta, buffers

    @classmethod
    def from_buffers(cls, meta, buffers) -> "ColumnBatch":
        """Rebuild a ``kv`` batch from :meth:`to_buffers` output.

        ``buffers`` are raw byte views (e.g. slices of a shared-memory
        ring); the columns are *copied* out so the caller may reclaim the
        underlying buffer immediately after this returns.
        """
        if _np is None:
            raise RuntimeError("ColumnBatch.from_buffers requires numpy")
        dtypes, has_times = meta
        cols = [
            _np.frombuffer(buf, dtype=dtype).copy()
            for buf, dtype in zip(buffers, dtypes)
        ]
        return cls(cols[0], cols[1], KIND_KV, cols[2] if has_times else None)

    # -- column surgery ------------------------------------------------------

    def take(self, sel) -> "ColumnBatch":
        """A new batch with the records selected by index array ``sel``."""
        keys = self.keys
        if _np is not None and isinstance(keys, _np.ndarray):
            new_keys = keys[sel]
            if self.kind == KIND_OBJ:
                vals = self.vals
                new_vals = [vals[i] for i in sel.tolist()]
            else:
                new_vals = self.vals[sel]
            new_times = self.times[sel] if self.times is not None else None
        else:
            idx = list(sel)
            new_keys = array("Q", (keys[i] for i in idx))
            if self.kind == KIND_OBJ:
                vals = self.vals
                new_vals = [vals[i] for i in idx]
            else:
                vals = self.vals
                new_vals = array("q", (vals[i] for i in idx))
            times = self.times
            new_times = array("q", (times[i] for i in idx)) if times is not None else None
        return ColumnBatch(new_keys, new_vals, self.kind, new_times)

    def slice(self, lo: int, hi: int) -> "ColumnBatch":
        """A new batch with the contiguous record range ``[lo, hi)``.

        Columns are sliced, not fancy-indexed: on the numpy representation
        this is a view, which makes splitting a destination-sorted batch
        into per-destination segments nearly free.
        """
        times = self.times
        return ColumnBatch(
            self.keys[lo:hi],
            self.vals[lo:hi],
            self.kind,
            times[lo:hi] if times is not None else None,
        )

    @classmethod
    def concat(cls, batches: list["ColumnBatch"]) -> "ColumnBatch":
        """Concatenate batches of one kind, preserving order."""
        if len(batches) == 1:
            return batches[0]
        kind = batches[0].kind
        if _np is not None and isinstance(batches[0].keys, _np.ndarray):
            keys = _np.concatenate([b.keys for b in batches])
            if kind == KIND_OBJ:
                vals: list = []
                for b in batches:
                    vals.extend(b.vals)
            else:
                vals = _np.concatenate([b.vals for b in batches])
        else:
            keys = array("Q")
            for b in batches:
                keys.extend(b.keys)
            if kind == KIND_OBJ:
                vals = []
                for b in batches:
                    vals.extend(b.vals)
            else:
                vals = array("q")
                for b in batches:
                    vals.extend(b.vals)
        return cls(keys, vals, kind)


# -- routing kernels -------------------------------------------------------------


def bin_ids_for(keys, shift: int):
    """splitmix64 bin id per key; bit-identical to the scalar ``bin_fn``.

    ``shift`` is ``64 - log2(num_bins)``; ``shift >= 64`` means one bin.
    Returns a signed index column (ndarray int64 or ``array('q')``).
    """
    if _np is not None and isinstance(keys, _np.ndarray):
        if shift >= 64:
            return _np.zeros(len(keys), dtype=_np.int64)
        u = _np.uint64
        x = keys + u(0x9E3779B97F4A7C15)
        x = (x ^ (x >> u(30))) * u(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> u(27))) * u(0x94D049BB133111EB)
        return ((x ^ (x >> u(31))) >> u(shift)).astype(_np.int64)
    out = array("q")
    append = out.append
    if shift >= 64:
        for _ in keys:
            append(0)
        return out
    for value in keys:
        value = (value + 0x9E3779B97F4A7C15) & _MASK64
        value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
        append((value ^ (value >> 31)) >> shift)
    return out


def make_index_vector(values: Sequence[int]):
    """An int index vector for vectorized gathers (owners arrays)."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.int64)
    return list(values)


def gather(vector, idx):
    """``vector[i] for i in idx`` in the active representation."""
    if _np is not None and isinstance(vector, _np.ndarray):
        return vector[idx]
    return array("q", (vector[i] for i in idx))


def group_by_destination(dsts) -> list:
    """Group record positions by destination, first-occurrence order.

    Returns ``[(dst, sel), ...]`` where ``sel`` selects that destination's
    records in arrival order.  Destinations appear in the order their first
    record arrived — exactly the dict-insertion order the per-record
    reference path emits, which the per-link network serialization makes
    observable.
    """
    n = len(dsts)
    if n == 0:
        return []
    if _np is not None and isinstance(dsts, _np.ndarray):
        order = _np.argsort(dsts, kind="stable")
        sd = dsts[order]
        if n and sd[0] == sd[-1]:
            return [(int(sd[0]), order)]
        cuts = _np.flatnonzero(sd[1:] != sd[:-1]) + 1
        bounds = [0, *cuts.tolist(), n]
        segments = []
        for i in range(len(bounds) - 1):
            lo, hi = bounds[i], bounds[i + 1]
            sel = order[lo:hi]
            # ``order`` is stable, so ``sel[0]`` is the arrival position of
            # this destination's first record: sorting on it recovers
            # first-occurrence emission order.
            segments.append((int(sd[lo]), int(sel[0]), sel))
        segments.sort(key=lambda seg: seg[1])
        return [(dst, sel) for dst, _first, sel in segments]
    groups: dict[int, list] = {}
    for i, dst in enumerate(dsts):
        sel = groups.get(dst)
        if sel is None:
            groups[dst] = [i]
        else:
            sel.append(i)
    return list(groups.items())


def split_by_destination(dsts) -> tuple:
    """One stable sort plus slice bounds per destination.

    Returns ``(order, [(dst, lo, hi), ...])``: applying ``order`` to the
    batch columns puts each destination's records in one contiguous run
    ``[lo, hi)`` (arrival order within the run), and the bounds appear in
    first-occurrence emission order — the same order
    :func:`group_by_destination` produces, but the caller splits with
    column *slices* (views on numpy) instead of one fancy-index gather per
    destination.  ``order is None`` with a single bound means every record
    already shares one destination and no reorder is needed.
    """
    n = len(dsts)
    if n == 0:
        return None, []
    if _np is not None and isinstance(dsts, _np.ndarray):
        order = _np.argsort(dsts, kind="stable")
        sd = dsts[order]
        if sd[0] == sd[-1]:
            return None, [(int(sd[0]), 0, n)]
        cuts = _np.flatnonzero(sd[1:] != sd[:-1]) + 1
        positions = [0, *cuts.tolist(), n]
        segs = []
        for i in range(len(positions) - 1):
            lo, hi = positions[i], positions[i + 1]
            # ``order`` is stable, so ``order[lo]`` is the arrival position
            # of this destination's first record: sorting on it recovers
            # first-occurrence emission order.
            segs.append((int(order[lo]), int(sd[lo]), lo, hi))
        segs.sort()
        return order, [(dst, lo, hi) for _first, dst, lo, hi in segs]
    groups: dict[int, list] = {}
    for i, dst in enumerate(dsts):
        sel = groups.get(dst)
        if sel is None:
            groups[dst] = [i]
        else:
            sel.append(i)
    if len(groups) == 1:
        return None, [(next(iter(groups)), 0, n)]
    order_list: list[int] = []
    bounds: list[tuple] = []
    for dst, sel in groups.items():
        lo = len(order_list)
        order_list.extend(sel)
        bounds.append((dst, lo, len(order_list)))
    return order_list, bounds


def group_by_bin_sorted(bins) -> tuple:
    """Group record positions by bin id, bins ascending.

    Returns ``(order, unique_bins, starts)``: ``order`` stably sorts the
    records by bin (within a bin, arrival order is preserved),
    ``unique_bins`` is the ascending list of bin ids, and record positions
    ``order[starts[j]:starts[j+1]]`` belong to ``unique_bins[j]``.
    """
    n = len(bins)
    if n == 0:
        return [], [], [0]
    if _np is not None and isinstance(bins, _np.ndarray):
        order = _np.argsort(bins, kind="stable")
        sb = bins[order]
        if n and sb[0] == sb[-1]:
            return order, [int(sb[0])], [0, n]
        cuts = _np.flatnonzero(sb[1:] != sb[:-1]) + 1
        starts = [0, *cuts.tolist(), n]
        ubins = [int(sb[s]) for s in starts[:-1]]
        return order, ubins, starts
    order = sorted(range(n), key=bins.__getitem__)
    ubins: list[int] = []
    starts: list[int] = []
    previous = None
    for pos, i in enumerate(order):
        b = bins[i]
        if b != previous:
            ubins.append(b)
            starts.append(pos)
            previous = b
    starts.append(n)
    return order, ubins, starts


# -- batch generation ------------------------------------------------------------


class VectorLcg:
    """Batched drop-in for :class:`repro.harness.openloop.Lcg`.

    ``next_batch(n)`` returns the same ``n`` outputs ``Lcg.next`` would
    produce, as one column, and leaves the generator in the same state.
    The jump tables hold exact modular powers ``MULT**k`` and offsets so a
    whole batch is one fused multiply-add over the seed state.
    """

    MULT = 6364136223846793005
    INC = 1442695040888963407

    __slots__ = ("state", "_mults", "_offsets", "_mults_np", "_offsets_np")

    def __init__(self, seed: int) -> None:
        self.state = (seed * 0x9E3779B97F4A7C15 + 1) & _MASK64
        # _mults[k] = MULT**(k+1) mod 2^64; _offsets[k] the matching
        # accumulated increment: state_{k+1} = mults[k]*state_0 + offsets[k].
        self._mults: list[int] = [self.MULT]
        self._offsets: list[int] = [self.INC]
        self._mults_np = None
        self._offsets_np = None

    def _grow(self, n: int) -> None:
        mults, offsets = self._mults, self._offsets
        while len(mults) < n:
            mults.append((mults[-1] * self.MULT) & _MASK64)
            offsets.append((offsets[-1] * self.MULT + self.INC) & _MASK64)
        if _np is not None:
            self._mults_np = _np.asarray(mults, dtype=_np.uint64)
            self._offsets_np = _np.asarray(offsets, dtype=_np.uint64)

    def next_batch(self, n: int):
        """The next ``n`` outputs as an unsigned column."""
        if _np is not None:
            if self._mults_np is None or len(self._mults_np) < n:
                self._grow(n)
            states = (
                self._mults_np[:n] * _np.uint64(self.state)
                + self._offsets_np[:n]
            )
            self.state = int(states[-1]) if n else self.state
            return states >> _np.uint64(16)
        out = array("Q")
        append = out.append
        state = self.state
        mult, inc = self.MULT, self.INC
        for _ in range(n):
            state = (state * mult + inc) & _MASK64
            append(state >> 16)
        self.state = state
        return out


def mod_column(column, modulus: int):
    """``value % modulus`` over an unsigned column."""
    if _np is not None and isinstance(column, _np.ndarray):
        return column % _np.uint64(modulus)
    return array("Q", (value % modulus for value in column))


def ones_column(n: int):
    """A value column of ``n`` ones (the count workload's diffs)."""
    if _np is not None:
        return _np.ones(n, dtype=_np.int64)
    return array("q", [1]) * n


# -- grouped application ---------------------------------------------------------


class ColumnGroup:
    """One notification's worth of records, merged and grouped by bin.

    Handed to a ``columnar_applier``: records are sorted stably by bin id,
    ``bins[j]``'s records occupy ``starts[j]:starts[j+1]`` of the columns,
    and ``states[j]`` is the matching bin's user state (mutable in place).
    """

    __slots__ = ("time", "keys", "vals", "bins", "starts", "states", "worker")

    def __init__(self, time, keys, vals, bins, starts, states, worker) -> None:
        self.time = time
        self.keys = keys
        self.vals = vals
        self.bins = bins
        self.starts = starts
        self.states = states
        self.worker = worker

    def __len__(self) -> int:
        return len(self.keys)

    def sizes(self) -> list:
        """Records per bin, aligned with ``bins``."""
        starts = self.starts
        return [starts[j + 1] - starts[j] for j in range(len(self.bins))]


def merge_segments(segments: list) -> Optional[tuple]:
    """Merge ``(tag, bin_ids, columns)`` segments into one sorted group.

    Returns ``(batch, unique_bins, starts)`` with records stably sorted by
    bin id (ascending bins; within a bin, segment-arrival order), or
    ``None`` when the segments are empty.
    """
    if not segments:
        return None
    if len(segments) == 1:
        bins = segments[0][1]
        batch = segments[0][2]
    else:
        if _np is not None and isinstance(segments[0][1], _np.ndarray):
            bins = _np.concatenate([seg[1] for seg in segments])
        else:
            bins = array("q")
            for seg in segments:
                bins.extend(seg[1])
        batch = ColumnBatch.concat([seg[2] for seg in segments])
    order, ubins, starts = group_by_bin_sorted(bins)
    return batch.take(order), ubins, starts
