"""Trace analysis: migration timelines and per-bin phase attribution.

The paper's evaluation attributes migration latency to phases — how long a
bin waited for the system to drain, how long serialization took, how long
the bytes sat on the wire, how long installation and catch-up took.  This
module derives exactly that from the structured trace:

* :class:`MigrationTrace` subscribes to the bus's ``migration`` topic and
  assembles per-step and per-bin lifecycles from the events the
  controllers, F, and S publish.
* :meth:`MigrationTrace.phase_breakdown` turns a completed lifecycle into
  :class:`BinPhases` rows whose five phases partition, exactly, the
  interval from the step's issue to its frontier-confirmed completion:

  ``drain``     step issued → F extracts the bin (control propagation plus
                waiting for S's output frontier to reach the step time)
  ``extract``   modeled state-serialization CPU
  ``ship``      serialized state queued and in transit until S receives it
  ``install``   modeled state-deserialization CPU
  ``catch-up``  installation → the step timestamp clears S's output
                frontier (buffered records replayed, backlog drained)

  By construction ``drain + extract + ship + install + catch-up`` equals
  the bin's step duration, so per-step totals match the controller's
  measured :class:`~repro.megaphone.controller.StepResult` durations and —
  for completion-paced plans with no drain gap — sum to the measured
  migration duration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.runtime_events.bus import TraceBus
from repro.runtime_events.events import (
    TOPIC_MIGRATION,
    BinMigrationPlanned,
    BinStateExtracted,
    BinStateInstalled,
    MigrationStepCompleted,
    MigrationStepIssued,
    MigrationStepOutcome,
)

PHASES = ("drain", "extract", "ship", "install", "catch-up")


@dataclass(slots=True)
class StepTrace:
    """Lifecycle of one reconfiguration step (one control timestamp)."""

    time: object
    moves: int = 0
    issued_at: Optional[float] = None
    completed_at: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        if self.issued_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.issued_at


@dataclass(slots=True)
class BinTrace:
    """Lifecycle of one migrating bin within a step."""

    time: object
    bin: int
    src: int = -1
    dst: int = -1
    size_bytes: float = 0.0
    planned_at: Optional[float] = None
    extracted_at: Optional[float] = None
    serialize_s: float = 0.0
    installed_at: Optional[float] = None
    deserialize_s: float = 0.0


@dataclass(frozen=True, slots=True)
class BinPhases:
    """Per-bin attribution of one step's duration across the five phases."""

    bin: int
    time: object
    src: int
    dst: int
    size_bytes: float
    drain_s: float
    extract_s: float
    ship_s: float
    install_s: float
    catchup_s: float

    @property
    def total_s(self) -> float:
        return (
            self.drain_s
            + self.extract_s
            + self.ship_s
            + self.install_s
            + self.catchup_s
        )

    def phase_values(self) -> tuple[float, ...]:
        """The five phase durations in :data:`PHASES` order."""
        return (
            self.drain_s,
            self.extract_s,
            self.ship_s,
            self.install_s,
            self.catchup_s,
        )


@dataclass
class MigrationBreakdown:
    """All completed per-bin phase rows of a run, in completion order."""

    rows: list[BinPhases] = field(default_factory=list)
    incomplete: int = 0  # bins observed but missing lifecycle events

    def step_totals(self) -> list[tuple[object, int, float]]:
        """Per-step ``(time, bins, duration_s)``; duration is the shared
        issue→completion span every bin of the step partitions."""
        seen: dict = {}
        order: list = []
        for row in self.rows:
            if row.time not in seen:
                seen[row.time] = (0, row.total_s)
                order.append(row.time)
            count, duration = seen[row.time]
            seen[row.time] = (count + 1, duration)
        return [(time, seen[time][0], seen[time][1]) for time in order]

    def total_duration(self) -> float:
        """Sum of per-step durations (equals the measured migration
        duration for completion-paced plans with no drain gap)."""
        return sum(duration for _, _, duration in self.step_totals())

    def phase_sums(self) -> dict[str, float]:
        """Total seconds attributed to each phase across all bins."""
        sums = dict.fromkeys(PHASES, 0.0)
        for row in self.rows:
            for phase, value in zip(PHASES, row.phase_values()):
                sums[phase] += value
        return sums


class MigrationTrace:
    """Bus subscriber assembling migration lifecycles from trace events.

    Purely observational: records event data, never mutates runtime state
    or schedules simulation events.  Works with any publisher mix — the
    controllers publish step issue/completion, F publishes plan/extract,
    S publishes install.
    """

    def __init__(self, bus: TraceBus) -> None:
        self.steps: dict = {}
        self.bins: dict = {}
        # Final per-step accounting (chosen batch, attempts, abandonment)
        # as published by the controllers; cost models and the trace CLI
        # consume these alongside the per-bin phase rows.
        self.outcomes: dict = {}
        self._unsubscribe = bus.subscribe(self._on_event, topics=(TOPIC_MIGRATION,))

    def close(self) -> None:
        """Detach from the bus."""
        self._unsubscribe()

    # -- event intake --------------------------------------------------------

    def _step(self, time) -> StepTrace:
        step = self.steps.get(time)
        if step is None:
            step = self.steps[time] = StepTrace(time=time)
        return step

    def _bin(self, time, bin_id: int) -> BinTrace:
        key = (time, bin_id)
        trace = self.bins.get(key)
        if trace is None:
            trace = self.bins[key] = BinTrace(time=time, bin=bin_id)
        return trace

    def _on_event(self, event) -> None:
        kind = type(event)
        if kind is MigrationStepIssued:
            step = self._step(event.time)
            step.moves += event.moves
            if step.issued_at is None:
                step.issued_at = event.at
        elif kind is MigrationStepCompleted:
            step = self._step(event.time)
            if step.completed_at is None:
                step.completed_at = event.at
        elif kind is BinMigrationPlanned:
            trace = self._bin(event.time, event.bin)
            trace.src, trace.dst = event.src, event.dst
            if trace.planned_at is None:
                trace.planned_at = event.at
        elif kind is BinStateExtracted:
            trace = self._bin(event.time, event.bin)
            trace.src, trace.dst = event.src, event.dst
            trace.size_bytes = event.size_bytes
            trace.extracted_at = event.at
            trace.serialize_s = event.serialize_s
        elif kind is BinStateInstalled:
            trace = self._bin(event.time, event.bin)
            trace.installed_at = event.at
            trace.deserialize_s = event.deserialize_s
        elif kind is MigrationStepOutcome:
            self.outcomes[event.time] = event

    # -- queries -------------------------------------------------------------

    def step_duration(self, time) -> Optional[float]:
        """Issue→completion span of the step at ``time`` (None if pending)."""
        step = self.steps.get(time)
        return step.duration if step is not None else None

    def step_outcome(self, time) -> Optional[MigrationStepOutcome]:
        """The controller's final accounting for the step at ``time``."""
        return self.outcomes.get(time)

    def outcome_rows(self) -> list[MigrationStepOutcome]:
        """All step outcomes in completion order."""
        return sorted(self.outcomes.values(), key=lambda o: o.at)

    def phase_breakdown(self) -> MigrationBreakdown:
        """Per-bin phase attribution for every fully observed bin."""
        breakdown = MigrationBreakdown()
        for (time, _bin_id), trace in sorted(
            self.bins.items(), key=lambda item: (_sort_key(item[0][0]), item[0][1])
        ):
            step = self.steps.get(time)
            started = step.issued_at if step is not None else trace.planned_at
            completed = step.completed_at if step is not None else None
            if (
                started is None
                or completed is None
                or trace.extracted_at is None
                or trace.installed_at is None
            ):
                breakdown.incomplete += 1
                continue
            extract_end = trace.extracted_at + trace.serialize_s
            install_end = trace.installed_at + trace.deserialize_s
            breakdown.rows.append(
                BinPhases(
                    bin=trace.bin,
                    time=time,
                    src=trace.src,
                    dst=trace.dst,
                    size_bytes=trace.size_bytes,
                    drain_s=trace.extracted_at - started,
                    extract_s=trace.serialize_s,
                    ship_s=trace.installed_at - extract_end,
                    install_s=trace.deserialize_s,
                    catchup_s=completed - install_end,
                )
            )
        return breakdown


def _sort_key(time):
    if isinstance(time, tuple):
        return (1, time)
    return (0, (time,))
