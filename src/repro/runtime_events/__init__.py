"""Typed runtime-event core.

This package is the structured substrate the rest of the runtime is built
on.  It has no dependency on any other ``repro`` package and provides three
things:

* :mod:`repro.runtime_events.items` — slotted dataclasses for the values
  the runtime moves around on its hot path (worker work items, buffered
  operator sends, routed network payloads).  These replace the string-tagged
  and anonymous tuples the runtime historically used.
* :mod:`repro.runtime_events.events` and :mod:`repro.runtime_events.bus` —
  structured trace events and the :class:`TraceBus` they travel on.  The bus
  is *observability only*: publishers guard every emission with a per-topic
  ``wants_*`` flag so that an idle bus costs one attribute read and no
  allocation, and subscribers must never mutate runtime state or schedule
  simulation events — attaching or detaching a subscriber can therefore
  never change a simulation's behaviour.
* :mod:`repro.runtime_events.analyze` — consumers that turn a recorded
  trace into derived artifacts, most importantly the per-bin migration
  phase breakdown (drain wait → extract → ship → install → catch-up).
"""

from repro.runtime_events.analyze import (
    PHASES,
    BinPhases,
    MigrationBreakdown,
    MigrationTrace,
)
from repro.runtime_events.bus import TraceBus, TraceLog
from repro.runtime_events.events import (
    TOPIC_ACTIVATION,
    TOPIC_BATCH,
    TOPIC_CAPABILITY,
    TOPIC_FRONTIER,
    TOPIC_MEMORY,
    TOPIC_MIGRATION,
    TOPIC_NETWORK,
    TOPIC_SEND,
    TOPICS,
    ActivationBegin,
    ActivationEnd,
    BatchDelivered,
    BinMigrationPlanned,
    BinStateExtracted,
    BinStateInstalled,
    CapabilityDropped,
    CapabilityHeld,
    FrontierAdvanced,
    MemorySampled,
    MessageEnqueued,
    MessageTransmitted,
    MigrationStepCompleted,
    MigrationStepIssued,
    SendFlushed,
)
from repro.runtime_events.items import (
    BufferedSend,
    ChannelPayload,
    MessageWork,
    RoutedSend,
    SourceWork,
)

__all__ = [
    "TraceBus",
    "TraceLog",
    "PHASES",
    "BinPhases",
    "MigrationBreakdown",
    "MigrationTrace",
    "TOPICS",
    "TOPIC_ACTIVATION",
    "TOPIC_BATCH",
    "TOPIC_CAPABILITY",
    "TOPIC_FRONTIER",
    "TOPIC_MEMORY",
    "TOPIC_MIGRATION",
    "TOPIC_NETWORK",
    "TOPIC_SEND",
    "ActivationBegin",
    "ActivationEnd",
    "BatchDelivered",
    "BinMigrationPlanned",
    "BinStateExtracted",
    "BinStateInstalled",
    "CapabilityDropped",
    "CapabilityHeld",
    "FrontierAdvanced",
    "MemorySampled",
    "MessageEnqueued",
    "MessageTransmitted",
    "MigrationStepCompleted",
    "MigrationStepIssued",
    "SendFlushed",
    "BufferedSend",
    "ChannelPayload",
    "MessageWork",
    "RoutedSend",
    "SourceWork",
]
