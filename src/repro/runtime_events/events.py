"""Structured trace events.

Every event is a frozen, slotted dataclass with an ``at`` field holding the
simulated time at which it was observed, and a ``topic`` class attribute
naming the subscription channel it travels on.  Publishers construct events
only when the bus reports an attached subscriber for the topic, so defining
many event types costs nothing at runtime.

Topics group events by the layer that emits them:

``activation``  worker scheduling quanta (begin/end with charged cost)
``batch``       message/source batches as a worker processes them
``send``        buffered operator sends leaving at an activation's flush
``network``     messages entering and draining cluster send queues
``frontier``    output-frontier movement observed by the progress pump
``capability``  capabilities held and dropped by operator contexts
``migration``   Megaphone's migration lifecycle, bin by bin
``memory``      periodic per-process RSS samples
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional

TOPIC_ACTIVATION = "activation"
TOPIC_BATCH = "batch"
TOPIC_SEND = "send"
TOPIC_NETWORK = "network"
TOPIC_FRONTIER = "frontier"
TOPIC_CAPABILITY = "capability"
TOPIC_MIGRATION = "migration"
TOPIC_MEMORY = "memory"

TOPICS = (
    TOPIC_ACTIVATION,
    TOPIC_BATCH,
    TOPIC_SEND,
    TOPIC_NETWORK,
    TOPIC_FRONTIER,
    TOPIC_CAPABILITY,
    TOPIC_MIGRATION,
    TOPIC_MEMORY,
)


# -- worker activations ---------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ActivationBegin:
    """A worker's scheduling quantum started."""

    topic: ClassVar[str] = TOPIC_ACTIVATION
    worker: int
    at: float


@dataclass(frozen=True, slots=True)
class ActivationEnd:
    """A worker's scheduling quantum finished deciding its work.

    ``cost`` is the charged CPU seconds; the worker is busy until
    ``busy_until`` and buffered sends leave at that time.
    """

    topic: ClassVar[str] = TOPIC_ACTIVATION
    worker: int
    start: float
    cost: float
    busy_until: float
    batches: int
    at: float


@dataclass(frozen=True, slots=True)
class BatchDelivered:
    """A worker processed one queued batch.

    ``channel`` is ``None`` for source emissions (no channel involved).
    """

    topic: ClassVar[str] = TOPIC_BATCH
    worker: int
    op: int
    channel: Optional[int]
    time: object
    records: int
    size_bytes: float
    at: float


@dataclass(frozen=True, slots=True)
class SendFlushed:
    """A buffered operator send was handed to the network."""

    topic: ClassVar[str] = TOPIC_SEND
    worker: int
    op: int
    port: int
    time: object
    records: int
    at: float


# -- network --------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MessageEnqueued:
    """A message entered the cluster (and, cross-process, a send queue)."""

    topic: ClassVar[str] = TOPIC_NETWORK
    src_worker: int
    dst_worker: int
    size_bytes: float
    at: float


@dataclass(frozen=True, slots=True)
class MessageTransmitted:
    """A message's last byte left the sender's queue."""

    topic: ClassVar[str] = TOPIC_NETWORK
    src_worker: int
    dst_worker: int
    size_bytes: float
    at: float


# -- progress -------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FrontierAdvanced:
    """An operator's output frontier changed.

    ``frontier`` is the :class:`repro.timely.antichain.Antichain` snapshot
    computed by the progress pump for this change.
    """

    topic: ClassVar[str] = TOPIC_FRONTIER
    op: int
    frontier: object
    at: float


@dataclass(frozen=True, slots=True)
class CapabilityHeld:
    """An operator context acquired a capability at ``time``."""

    topic: ClassVar[str] = TOPIC_CAPABILITY
    worker: int
    op: int
    time: object
    at: float


@dataclass(frozen=True, slots=True)
class CapabilityDropped:
    """An operator context released a capability at ``time``."""

    topic: ClassVar[str] = TOPIC_CAPABILITY
    worker: int
    op: int
    time: object
    at: float


# -- migration lifecycle --------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MigrationStepIssued:
    """A controller injected one reconfiguration step into the control stream."""

    topic: ClassVar[str] = TOPIC_MIGRATION
    time: object
    moves: int
    at: float


@dataclass(frozen=True, slots=True)
class MigrationStepCompleted:
    """The probed output frontier passed a reconfiguration timestamp."""

    topic: ClassVar[str] = TOPIC_MIGRATION
    time: object
    at: float


@dataclass(frozen=True, slots=True)
class BinMigrationPlanned:
    """F finalized a configuration update that moves ``bin`` off this worker."""

    topic: ClassVar[str] = TOPIC_MIGRATION
    name: str
    time: object
    bin: int
    src: int
    dst: int
    at: float


@dataclass(frozen=True, slots=True)
class BinStateExtracted:
    """F took a bin out of the co-located store and queued it for shipping.

    ``serialize_s`` is the CPU charged to serialize ``size_bytes`` of state.
    """

    topic: ClassVar[str] = TOPIC_MIGRATION
    name: str
    time: object
    bin: int
    src: int
    dst: int
    size_bytes: float
    serialize_s: float
    at: float


@dataclass(frozen=True, slots=True)
class BinStateInstalled:
    """S received a migrated bin and installed it into its store."""

    topic: ClassVar[str] = TOPIC_MIGRATION
    name: str
    time: object
    bin: int
    worker: int
    size_bytes: float
    deserialize_s: float
    at: float


# -- memory ---------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MemorySampled:
    """One periodic sample of a process's modeled RSS."""

    topic: ClassVar[str] = TOPIC_MEMORY
    process: int
    rss_bytes: float
    at: float
