"""Structured trace events.

Every event is a frozen, slotted dataclass with an ``at`` field holding the
simulated time at which it was observed, and a ``topic`` class attribute
naming the subscription channel it travels on.  Publishers construct events
only when the bus reports an attached subscriber for the topic, so defining
many event types costs nothing at runtime.

Topics group events by the layer that emits them:

``activation``  worker scheduling quanta (begin/end with charged cost)
``batch``       message/source batches as a worker processes them
``send``        buffered operator sends leaving at an activation's flush
``network``     messages entering and draining cluster send queues
``frontier``    output-frontier movement observed by the progress pump
``capability``  capabilities held and dropped by operator contexts
``migration``   Megaphone's migration lifecycle, bin by bin
``memory``      periodic per-process RSS samples
``faults``      injected faults (crashes, partitions, stalls, drops) and
                accounting-guard warnings
``recovery``    the recovery machinery: step timeouts/retries, worker
                exclusion, state reinstallation, watchdog verdicts
``planner``     the closed-loop migration planner: load samples, skew
                detection, and plan proposal/adoption decisions
``membership``  elastic cluster membership: worker lifecycle transitions,
                epoch-stamped membership views, scale-out/drain progress,
                and autoscaler decisions
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional

TOPIC_ACTIVATION = "activation"
TOPIC_BATCH = "batch"
TOPIC_SEND = "send"
TOPIC_NETWORK = "network"
TOPIC_FRONTIER = "frontier"
TOPIC_CAPABILITY = "capability"
TOPIC_MIGRATION = "migration"
TOPIC_MEMORY = "memory"
TOPIC_FAULTS = "faults"
TOPIC_RECOVERY = "recovery"
TOPIC_PLANNER = "planner"
TOPIC_MEMBERSHIP = "membership"

TOPICS = (
    TOPIC_ACTIVATION,
    TOPIC_BATCH,
    TOPIC_SEND,
    TOPIC_NETWORK,
    TOPIC_FRONTIER,
    TOPIC_CAPABILITY,
    TOPIC_MIGRATION,
    TOPIC_MEMORY,
    TOPIC_FAULTS,
    TOPIC_RECOVERY,
    TOPIC_PLANNER,
    TOPIC_MEMBERSHIP,
)


# -- worker activations ---------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ActivationBegin:
    """A worker's scheduling quantum started."""

    topic: ClassVar[str] = TOPIC_ACTIVATION
    worker: int
    at: float


@dataclass(frozen=True, slots=True)
class ActivationEnd:
    """A worker's scheduling quantum finished deciding its work.

    ``cost`` is the charged CPU seconds; the worker is busy until
    ``busy_until`` and buffered sends leave at that time.
    """

    topic: ClassVar[str] = TOPIC_ACTIVATION
    worker: int
    start: float
    cost: float
    busy_until: float
    batches: int
    at: float


@dataclass(frozen=True, slots=True)
class BatchDelivered:
    """A worker processed one queued batch.

    ``channel`` is ``None`` for source emissions (no channel involved).
    """

    topic: ClassVar[str] = TOPIC_BATCH
    worker: int
    op: int
    channel: Optional[int]
    time: object
    records: int
    size_bytes: float
    at: float


@dataclass(frozen=True, slots=True)
class SendFlushed:
    """A buffered operator send was handed to the network."""

    topic: ClassVar[str] = TOPIC_SEND
    worker: int
    op: int
    port: int
    time: object
    records: int
    at: float


# -- network --------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MessageEnqueued:
    """A message entered the cluster (and, cross-process, a send queue)."""

    topic: ClassVar[str] = TOPIC_NETWORK
    src_worker: int
    dst_worker: int
    size_bytes: float
    at: float


@dataclass(frozen=True, slots=True)
class MessageTransmitted:
    """A message's last byte left the sender's queue."""

    topic: ClassVar[str] = TOPIC_NETWORK
    src_worker: int
    dst_worker: int
    size_bytes: float
    at: float


# -- progress -------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FrontierAdvanced:
    """An operator's output frontier changed.

    ``frontier`` is the :class:`repro.timely.antichain.Antichain` snapshot
    computed by the progress pump for this change.
    """

    topic: ClassVar[str] = TOPIC_FRONTIER
    op: int
    frontier: object
    at: float


@dataclass(frozen=True, slots=True)
class CapabilityHeld:
    """An operator context acquired a capability at ``time``."""

    topic: ClassVar[str] = TOPIC_CAPABILITY
    worker: int
    op: int
    time: object
    at: float


@dataclass(frozen=True, slots=True)
class CapabilityDropped:
    """An operator context released a capability at ``time``."""

    topic: ClassVar[str] = TOPIC_CAPABILITY
    worker: int
    op: int
    time: object
    at: float


# -- migration lifecycle --------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MigrationStepIssued:
    """A controller injected one reconfiguration step into the control stream."""

    topic: ClassVar[str] = TOPIC_MIGRATION
    time: object
    moves: int
    at: float


@dataclass(frozen=True, slots=True)
class MigrationStepCompleted:
    """The probed output frontier passed a reconfiguration timestamp."""

    topic: ClassVar[str] = TOPIC_MIGRATION
    time: object
    at: float


@dataclass(frozen=True, slots=True)
class MigrationStepOutcome:
    """A step's final accounting, published when it completes or is abandoned.

    ``batch_size`` is the batch the controller *chose* for the step (for the
    adaptive controller this can exceed ``moves`` on the tail step);
    ``attempts`` counts issues including retries, so ``attempts > 1`` means
    the step timed out at least once.  Cost models consume these to relate
    chosen step sizes to realized durations.
    """

    topic: ClassVar[str] = TOPIC_MIGRATION
    time: object
    moves: int
    batch_size: int
    attempts: int
    abandoned: bool
    duration_s: float
    at: float


@dataclass(frozen=True, slots=True)
class BinMigrationPlanned:
    """F finalized a configuration update that moves ``bin`` off this worker."""

    topic: ClassVar[str] = TOPIC_MIGRATION
    name: str
    time: object
    bin: int
    src: int
    dst: int
    at: float


@dataclass(frozen=True, slots=True)
class BinStateExtracted:
    """F took a bin out of the co-located store and queued it for shipping.

    ``serialize_s`` is the CPU charged to serialize ``size_bytes`` of state.
    ``kind`` is the payload's wire form: "full" (whole state), "base"
    (pre-copy snapshot shipped at plan time), or "delta" (dirty keys only).
    """

    topic: ClassVar[str] = TOPIC_MIGRATION
    name: str
    time: object
    bin: int
    src: int
    dst: int
    size_bytes: float
    serialize_s: float
    at: float
    kind: str = "full"


@dataclass(frozen=True, slots=True)
class BinStateInstalled:
    """S received a migrated bin and installed it into its store."""

    topic: ClassVar[str] = TOPIC_MIGRATION
    name: str
    time: object
    bin: int
    worker: int
    size_bytes: float
    deserialize_s: float
    at: float
    kind: str = "full"


# -- memory ---------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MemorySampled:
    """One periodic sample of a process's modeled RSS.

    ``spilled_bytes`` is cold-tier state reported by spilling backends —
    not part of ``rss_bytes`` (spilled state left RAM), but sampled at the
    same instant so timelines can plot the resident/spilled breakdown.
    """

    topic: ClassVar[str] = TOPIC_MEMORY
    process: int
    rss_bytes: float
    at: float
    spilled_bytes: float = 0


# -- injected faults ------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ProcessCrashed:
    """A simulated process failed; its workers stopped and lost their state."""

    topic: ClassVar[str] = TOPIC_FAULTS
    process: int
    workers: tuple
    at: float


@dataclass(frozen=True, slots=True)
class ProcessRestarted:
    """A crashed process rejoined the cluster with empty workers."""

    topic: ClassVar[str] = TOPIC_FAULTS
    process: int
    workers: tuple
    at: float


@dataclass(frozen=True, slots=True)
class LinkFaultStarted:
    """A link fault window opened (partition, loss, or degradation).

    ``src_process``/``dst_process`` of -1 mean "every process" on that side.
    ``drop_prob`` of 1.0 is a full partition.
    """

    topic: ClassVar[str] = TOPIC_FAULTS
    src_process: int
    dst_process: int
    drop_prob: float
    bandwidth_factor: float
    extra_latency_s: float
    until: float
    at: float


@dataclass(frozen=True, slots=True)
class LinkFaultEnded:
    """A link fault window closed; the link carries traffic normally again."""

    topic: ClassVar[str] = TOPIC_FAULTS
    src_process: int
    dst_process: int
    at: float


@dataclass(frozen=True, slots=True)
class WorkerStallStarted:
    """A worker entered a stall (or slowdown) window."""

    topic: ClassVar[str] = TOPIC_FAULTS
    worker: int
    slowdown: float
    until: float
    at: float


@dataclass(frozen=True, slots=True)
class WorkerStallEnded:
    """A worker's stall window closed; it schedules normally again."""

    topic: ClassVar[str] = TOPIC_FAULTS
    worker: int
    at: float


@dataclass(frozen=True, slots=True)
class MessageDropped:
    """A message was lost (crashed destination, partition, or lossy link).

    The progress accounting for the lost batch is compensated at drop time,
    so the loss degrades the computation's output instead of wedging its
    frontiers.
    """

    topic: ClassVar[str] = TOPIC_FAULTS
    src_worker: int
    dst_worker: int
    size_bytes: float
    reason: str
    at: float


@dataclass(frozen=True, slots=True)
class StorageFaultReport:
    """Durable-log recovery found (and repaired) crash damage on a worker.

    Published by the recovery coordinator when a restarted worker's
    write-ahead log replay detects a torn final frame, checksum-invalid
    frames (bit flips), or a lost unsynced tail.  ``truncated_bytes`` were
    discarded to return the log to its last valid frame; ``frames_replayed``
    and ``bins_recovered`` describe what survived.
    """

    topic: ClassVar[str] = TOPIC_FAULTS
    worker: int
    torn_frame: bool
    corrupt_frame: bool
    lost_tail_bytes: int
    truncated_bytes: int
    frames_replayed: int
    bins_recovered: int
    at: float


@dataclass(frozen=True, slots=True)
class AccountingClamped:
    """A byte pool went negative and was clamped back to zero.

    This is the traced warning of the accounting guards: it indicates a
    fault-path bookkeeping bug (double release, missed charge) that would
    otherwise silently corrupt memory and queue metrics.
    """

    topic: ClassVar[str] = TOPIC_FAULTS
    owner: str
    pool: str
    value: float
    at: float


# -- recovery machinery ---------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MigrationStepTimedOut:
    """An issued reconfiguration step missed its completion deadline."""

    topic: ClassVar[str] = TOPIC_RECOVERY
    time: object
    attempt: int
    timeout_s: float
    at: float


@dataclass(frozen=True, slots=True)
class MigrationStepRetried:
    """A timed-out step was re-issued (possibly retargeted) at a new time."""

    topic: ClassVar[str] = TOPIC_RECOVERY
    time: object
    retry_time: object
    moves: int
    attempt: int
    at: float


@dataclass(frozen=True, slots=True)
class MigrationStepAbandoned:
    """A step exhausted its retry budget and was given up on."""

    topic: ClassVar[str] = TOPIC_RECOVERY
    time: object
    attempts: int
    at: float


@dataclass(frozen=True, slots=True)
class WorkerExcluded:
    """The controller removed a crashed worker from the target configuration."""

    topic: ClassVar[str] = TOPIC_RECOVERY
    worker: int
    orphaned_bins: int
    at: float


@dataclass(frozen=True, slots=True)
class StateReinstalled:
    """Recovery placed bins (snapshot-restored or empty) onto a worker."""

    topic: ClassVar[str] = TOPIC_RECOVERY
    worker: int
    bins: int
    restored_bins: int
    size_bytes: float
    at: float


@dataclass(frozen=True, slots=True)
class BinRecreated:
    """S materialized an empty bin whose state was lost to a fault."""

    topic: ClassVar[str] = TOPIC_RECOVERY
    name: str
    bin: int
    worker: int
    time: object
    at: float


@dataclass(frozen=True, slots=True)
class WatchdogStalled:
    """The liveness watchdog saw no output-frontier movement for too long."""

    topic: ClassVar[str] = TOPIC_RECOVERY
    at: float
    last_advance_at: float
    frontier: tuple


@dataclass(frozen=True, slots=True)
class WatchdogRecovered:
    """The output frontier moved again after a diagnosed stall."""

    topic: ClassVar[str] = TOPIC_RECOVERY
    at: float
    stalled_for_s: float


# -- closed-loop migration planner ----------------------------------------------


@dataclass(frozen=True, slots=True)
class WorkerLoadSampled:
    """One telemetry sample of a worker's windowed load.

    ``load`` is the records applied to the worker's bins inside the
    telemetry window; ``state_bytes`` the modeled bytes it holds (hot and
    cold tiers combined).
    """

    topic: ClassVar[str] = TOPIC_PLANNER
    worker: int
    load: float
    bins: int
    state_bytes: int
    at: float


@dataclass(frozen=True, slots=True)
class SkewDetected:
    """The skew detector armed: load imbalance exceeded its trigger."""

    topic: ClassVar[str] = TOPIC_PLANNER
    ratio: float
    trigger: float
    hot_worker: int
    at: float


@dataclass(frozen=True, slots=True)
class SkewCleared:
    """The skew detector disarmed: imbalance fell below its release level."""

    topic: ClassVar[str] = TOPIC_PLANNER
    ratio: float
    release: float
    at: float


@dataclass(frozen=True, slots=True)
class PlanProposed:
    """The planner searched a plan and priced it."""

    topic: ClassVar[str] = TOPIC_PLANNER
    objective: str
    moves: int
    steps: int
    predicted_cost_s: float
    predicted_gain: float
    at: float


@dataclass(frozen=True, slots=True)
class PlanAdopted:
    """A proposed plan passed the cost/benefit gate and was handed to a
    migration controller (or recorded, in propose-only mode)."""

    topic: ClassVar[str] = TOPIC_PLANNER
    objective: str
    moves: int
    steps: int
    predicted_cost_s: float
    predicted_gain: float
    at: float


@dataclass(frozen=True, slots=True)
class PlanRejected:
    """A proposed plan failed the cost/benefit gate (or hit the cooldown)."""

    topic: ClassVar[str] = TOPIC_PLANNER
    objective: str
    reason: str
    predicted_cost_s: float
    predicted_gain: float
    at: float


# -- elastic cluster membership --------------------------------------------------


@dataclass(frozen=True, slots=True)
class WorkerStateChanged:
    """A worker moved through the membership lifecycle.

    States follow ``standby -> joining -> active -> draining -> retired``;
    ``prev`` names the state the worker left.
    """

    topic: ClassVar[str] = TOPIC_MEMBERSHIP
    worker: int
    prev: str
    state: str
    at: float


@dataclass(frozen=True, slots=True)
class MembershipEpoch:
    """An epoch-stamped view of the active worker set.

    Published by the directory after every lifecycle transition; ``epoch``
    increases monotonically per view so subscribers can order views
    without comparing tuples.
    """

    topic: ClassVar[str] = TOPIC_MEMBERSHIP
    epoch: int
    active: tuple
    joining: tuple
    draining: tuple
    at: float


@dataclass(frozen=True, slots=True)
class ScaleOutStarted:
    """The coordinator began admitting ``workers`` into the cluster."""

    topic: ClassVar[str] = TOPIC_MEMBERSHIP
    workers: tuple
    target_active: int
    moves: int
    at: float


@dataclass(frozen=True, slots=True)
class ScaleOutCompleted:
    """All joining workers own their planned bins and became active."""

    topic: ClassVar[str] = TOPIC_MEMBERSHIP
    workers: tuple
    active: int
    duration_s: float
    at: float


@dataclass(frozen=True, slots=True)
class DrainStarted:
    """The coordinator began evacuating ``workers`` ahead of retirement."""

    topic: ClassVar[str] = TOPIC_MEMBERSHIP
    workers: tuple
    target_active: int
    moves: int
    at: float


@dataclass(frozen=True, slots=True)
class DrainCompleted:
    """Departing workers handed off their bins and retired.

    ``residual_bins`` counts bins still resident on the evacuees when their
    handles closed — it must be zero for a clean drain.
    """

    topic: ClassVar[str] = TOPIC_MEMBERSHIP
    workers: tuple
    active: int
    residual_bins: int
    duration_s: float
    at: float


@dataclass(frozen=True, slots=True)
class AutoscaleDecision:
    """The autoscaler's policy loop produced a verdict.

    ``action`` is ``"scale-out"``, ``"scale-in"``, or ``"hold"`` (holds are
    published only when a trigger was suppressed by cooldown or bounds, with
    the suppressing ``reason``).
    """

    topic: ClassVar[str] = TOPIC_MEMBERSHIP
    action: str
    reason: str
    mean_load: float
    active: int
    target: int
    at: float
