"""Live telemetry export from the trace bus.

:class:`MetricsExporter` subscribes to bus topics and folds every event
into a small metrics registry — counters (monotone totals), gauges (last
value wins), and log-bucketed histograms — then streams periodic
snapshots as JSON lines and/or serves the current state in Prometheus
text exposition format from a background thread.

Design constraints, in order:

1. **Zero cost detached.**  The exporter is an ordinary bus subscriber;
   when no exporter is attached, every publish site still pays only its
   ``wants_*`` flag read.  The bus invariant (subscribers never mutate
   runtime state) pins overhead *and* correctness: a run is byte-identical
   with or without an exporter.
2. **Deterministic in simulated time.**  JSON-line snapshots are cut when
   the *simulated* clock crosses a flush boundary, not on a wall-clock
   timer, so the exported file for a given run is reproducible.
3. **The HTTP endpoint is read-only and optional.**  It serves whatever
   the registry holds at request time; a lock keeps reads coherent
   against the simulation thread's updates.
"""

from __future__ import annotations

import json
import threading
from typing import IO, Iterable, Optional

from repro.runtime_events.bus import TraceBus
from repro.runtime_events.events import (
    AutoscaleDecision,
    BatchDelivered,
    BinStateExtracted,
    BinStateInstalled,
    MembershipEpoch,
    MemorySampled,
    MessageDropped,
    MessageEnqueued,
    MessageTransmitted,
    MigrationStepCompleted,
    MigrationStepIssued,
    MigrationStepOutcome,
    WorkerLoadSampled,
    WorkerStateChanged,
)

# Histogram bucket upper bounds (seconds or bytes, depending on series).
# Decade-spaced with a 3x midpoint: coarse, but stable across runs and
# cheap to update — one linear scan over 13 bounds per observation.
_BUCKETS = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 100.0, 1e6,
)


class Histogram:
    """Fixed-bucket histogram with Prometheus-compatible cumulative counts."""

    __slots__ = ("buckets", "counts", "total", "sum")

    def __init__(self, buckets: tuple = _BUCKETS) -> None:
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.total += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, Prometheus histogram style."""
        out = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        return out

    def to_dict(self) -> dict:
        return {
            "count": self.total,
            "sum": round(self.sum, 9),
            "buckets": {repr(b): c for (b, c) in self.cumulative() if c},
        }


def _label_str(labels: tuple) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + body + "}"


class MetricsExporter:
    """Aggregate bus events into exported metrics.

    ``jsonl`` may be a path, ``"-"`` for stdout, or an open text stream.
    ``topics=None`` subscribes to every topic; a narrower selection keeps
    unrelated publish sites on their zero-cost path.
    """

    def __init__(
        self,
        bus: TraceBus,
        topics: Optional[Iterable[str]] = None,
        jsonl=None,
        flush_every_s: float = 0.25,
    ) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, tuple], float] = {}
        self._gauges: dict[tuple[str, tuple], float] = {}
        self._histograms: dict[tuple[str, tuple], Histogram] = {}
        self._flush_every_s = flush_every_s
        self._next_flush_s = flush_every_s
        self._snapshots_written = 0
        self._last_at = 0.0
        self._server = None
        self._stream: Optional[IO] = None
        self._owns_stream = False
        if jsonl == "-":
            import sys

            self._stream = sys.stdout
        elif isinstance(jsonl, str):
            self._stream = open(jsonl, "w", encoding="utf-8")
            self._owns_stream = True
        elif jsonl is not None:
            self._stream = jsonl
        self.topics = tuple(topics) if topics is not None else None
        self._unsubscribe = bus.subscribe(self._observe, topics=self.topics)

    # -- registry -----------------------------------------------------------

    def _count(self, name: str, labels: tuple = (), by: float = 1.0) -> None:
        key = (name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + by

    def _gauge(self, name: str, value: float, labels: tuple = ()) -> None:
        self._gauges[(name, labels)] = value

    def _observe_hist(self, name: str, value: float, labels: tuple = ()) -> None:
        key = (name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram()
        hist.observe(value)

    # -- event folding ------------------------------------------------------

    def _observe(self, event) -> None:
        with self._lock:
            self._fold(event)
            at = getattr(event, "at", None)
            if at is None:
                return
            if at > self._last_at:
                self._last_at = at
            if self._stream is not None and at >= self._next_flush_s:
                self._write_snapshot(at)
                while self._next_flush_s <= at:
                    self._next_flush_s += self._flush_every_s

    def _fold(self, event) -> None:
        kind = type(event)
        self._count("repro_events_total", (("topic", event.topic),))
        if kind is BatchDelivered:
            self._count(
                "repro_records_total", (("worker", event.worker),), event.records
            )
        elif kind is MessageEnqueued:
            self._count("repro_messages_total", (("kind", "enqueued"),))
            self._count("repro_network_bytes_total", (), event.size_bytes)
            self._gauge(
                "repro_network_inflight_bytes",
                self._gauge_value("repro_network_inflight_bytes")
                + event.size_bytes,
            )
        elif kind is MessageTransmitted:
            self._count("repro_messages_total", (("kind", "transmitted"),))
            self._gauge(
                "repro_network_inflight_bytes",
                max(
                    self._gauge_value("repro_network_inflight_bytes")
                    - event.size_bytes,
                    0.0,
                ),
            )
        elif kind is MessageDropped:
            self._count(
                "repro_messages_dropped_total", (("reason", event.reason),)
            )
        elif kind is MigrationStepIssued:
            self._count("repro_migration_steps_total", (("phase", "issued"),))
        elif kind is MigrationStepCompleted:
            self._count(
                "repro_migration_steps_total", (("phase", "completed"),)
            )
        elif kind is MigrationStepOutcome:
            self._observe_hist("repro_migration_step_seconds", event.duration_s)
            if event.abandoned:
                self._count("repro_migration_steps_abandoned_total")
        elif kind is BinStateExtracted:
            self._count(
                "repro_bin_ship_bytes_total",
                (("kind", event.kind),),
                event.size_bytes,
            )
            self._observe_hist("repro_bin_serialize_seconds", event.serialize_s)
        elif kind is BinStateInstalled:
            self._count("repro_bins_installed_total", (("kind", event.kind),))
            self._observe_hist(
                "repro_bin_deserialize_seconds", event.deserialize_s
            )
        elif kind is MemorySampled:
            labels = (("process", event.process),)
            self._gauge("repro_process_rss_bytes", event.rss_bytes, labels)
            self._gauge(
                "repro_process_spilled_bytes", event.spilled_bytes, labels
            )
        elif kind is WorkerLoadSampled:
            labels = (("worker", event.worker),)
            self._gauge("repro_worker_load", event.load, labels)
            self._gauge("repro_worker_bins", event.bins, labels)
            self._gauge("repro_worker_state_bytes", event.state_bytes, labels)
        elif kind is WorkerStateChanged:
            self._count(
                "repro_membership_transitions_total",
                (("state", event.state),),
            )
        elif kind is MembershipEpoch:
            self._gauge("repro_active_workers", len(event.active))
            self._gauge("repro_draining_workers", len(event.draining))
            self._gauge("repro_membership_epoch", event.epoch)
        elif kind is AutoscaleDecision:
            self._count(
                "repro_autoscale_decisions_total",
                (("action", event.action), ("reason", event.reason)),
            )
        elif event.topic == "faults":
            self._count("repro_faults_total", (("fault", kind.__name__),))

    def _gauge_value(self, name: str, labels: tuple = ()) -> float:
        return self._gauges.get((name, labels), 0.0)

    # -- output -------------------------------------------------------------

    def snapshot(self, at: Optional[float] = None) -> dict:
        """The current registry as one JSON-compatible dict."""
        with self._lock:
            return self._snapshot_locked(
                self._last_at if at is None else at
            )

    def _snapshot_locked(self, at: float) -> dict:
        def flat(table: dict) -> dict:
            return {
                name + _label_str(labels): value
                for (name, labels), value in sorted(
                    table.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
                )
            }

        return {
            "at": round(at, 9),
            "counters": flat(self._counters),
            "gauges": flat(self._gauges),
            "histograms": {
                name + _label_str(labels): hist.to_dict()
                for (name, labels), hist in sorted(
                    self._histograms.items(),
                    key=lambda kv: (kv[0][0], str(kv[0][1])),
                )
            },
        }

    def _write_snapshot(self, at: float) -> None:
        json.dump(self._snapshot_locked(at), self._stream, sort_keys=False)
        self._stream.write("\n")
        self._snapshots_written += 1

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        with self._lock:
            lines: list[str] = []
            for (name, labels), value in sorted(
                self._counters.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
            ):
                lines.append(f"{name}{_label_str(labels)} {value:g}")
            for (name, labels), value in sorted(
                self._gauges.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
            ):
                lines.append(f"{name}{_label_str(labels)} {value:g}")
            for (name, labels), hist in sorted(
                self._histograms.items(),
                key=lambda kv: (kv[0][0], str(kv[0][1])),
            ):
                for le, count in hist.cumulative():
                    le_labels = labels + (("le", f"{le:g}"),)
                    lines.append(f"{name}_bucket{_label_str(le_labels)} {count}")
                inf_labels = labels + (("le", "+Inf"),)
                lines.append(
                    f"{name}_bucket{_label_str(inf_labels)} {hist.total}"
                )
                lines.append(f"{name}_sum{_label_str(labels)} {hist.sum:g}")
                lines.append(f"{name}_count{_label_str(labels)} {hist.total}")
            return "\n".join(lines) + "\n"

    # -- HTTP endpoint ------------------------------------------------------

    def serve(self, port: int = 0) -> int:
        """Serve ``/metrics`` on a background daemon thread.

        Returns the bound port (useful with ``port=0``).  The server lives
        until :meth:`close`.
        """
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        exporter = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (http.server API)
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404)
                    return
                body = exporter.render_prometheus().encode()
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-request stderr noise
                pass

        self._server = ThreadingHTTPServer(("127.0.0.1", port), Handler)
        thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        thread.start()
        return self._server.server_address[1]

    @property
    def port(self) -> Optional[int]:
        if self._server is None:
            return None
        return self._server.server_address[1]

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Detach from the bus, write the final snapshot, stop the server."""
        self._unsubscribe()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._stream is not None:
            with self._lock:
                self._write_snapshot(self._last_at)
            if self._owns_stream:
                self._stream.close()
            self._stream = None
