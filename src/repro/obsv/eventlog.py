"""Versioned event logs: record the full bus stream plus run provenance.

A log is a JSON-lines file with three kinds of lines:

1. **Header** (first line): format version, the complete experiment
   config (including seeds, chaos fault plans, and planner tuning — the
   provenance replay needs to re-execute the run), and which topics were
   recorded.
2. **Events** (one per bus event, in publication order): the event's
   class name, topic, and fields.  Exotic field values (timestamps,
   antichain snapshots) are stringified — the log is an *artifact* of the
   run, not its wire format; replay re-executes from the config rather
   than re-injecting events.
3. **Footer** (last line): the run's ``result_fingerprint``, per-topic
   event counts, and headline totals.  A log without a footer is
   truncated — the recorded process died mid-run — and replay refuses it.

The recorder is a plain bus subscriber, so recording cannot perturb the
simulation (the bus invariant), which is exactly what makes the recorded
fingerprint a sound replay target.
"""

from __future__ import annotations

import dataclasses
import json
from typing import IO, Iterable, Optional

from repro.runtime_events.bus import TraceBus
from repro.runtime_events.events import TOPICS
from repro.versions import EVENT_LOG_READ_VERSIONS, EVENT_LOG_VERSION


class EventLogError(ValueError):
    """A log cannot be recorded, parsed, or faithfully replayed."""


# -- config provenance ----------------------------------------------------------

# ExperimentConfig fields that are observers/outputs, not run semantics:
# they are stripped on read so a replay does not re-record or re-export.
_OBSERVER_FIELDS = (
    "record_log",
    "export_metrics",
    "metrics_port",
    "collect_topic_counts",
    "profile_shards",
)


def config_to_dict(cfg) -> dict:
    """JSON-compatible provenance form of an :class:`ExperimentConfig`.

    Raises :class:`EventLogError` for configs that cannot be serialized
    faithfully (a custom in-memory cost model, a callable pacing hook):
    recording such a run would produce a log whose replay silently runs
    different semantics.
    """
    if cfg.cost is not None:
        raise EventLogError(
            "cannot record a run with a custom cost model; "
            "recording supports configs expressible as data"
        )
    if cfg.pace_s is not None and not isinstance(cfg.pace_s, (int, float)):
        raise EventLogError(
            f"cannot record a non-numeric pace_s ({type(cfg.pace_s).__name__})"
        )
    out: dict = {}
    for field in dataclasses.fields(cfg):
        value = getattr(cfg, field.name)
        if field.name in ("cost",):
            continue
        if field.name == "chaos":
            out["chaos"] = None if value is None else _chaos_to_dict(value)
        elif field.name == "planner":
            out["planner"] = None if value is None else _planner_to_dict(value)
        elif field.name == "scaling_plan":
            # Canonical text form; ScalingPlan.parse inverts it exactly.
            out["scaling_plan"] = None if value is None else value.spec()
        elif field.name == "autoscale":
            out["autoscale"] = (
                None if value is None else dataclasses.asdict(value)
            )
        else:
            out[field.name] = _jsonable_config_value(field.name, value)
    return out


def _jsonable_config_value(name: str, value):
    if isinstance(value, tuple):
        return list(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise EventLogError(
        f"config field {name!r} holds unserializable {type(value).__name__}"
    )


def _chaos_to_dict(chaos) -> dict:
    data = dataclasses.asdict(chaos.plan)
    out = {"plan": data, "snapshot_at_s": chaos.snapshot_at_s}
    out["retry"] = (
        None if chaos.retry is None else dataclasses.asdict(chaos.retry)
    )
    out["watchdog"] = (
        None if chaos.watchdog is None else dataclasses.asdict(chaos.watchdog)
    )
    return out


def _planner_to_dict(planner) -> dict:
    data = dataclasses.asdict(planner)
    data["objective_options"] = {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in planner.objective_options.items()
    }
    return data


def config_from_dict(data: dict):
    """Rebuild an :class:`ExperimentConfig` from its provenance dict.

    Observer-only fields (recording, export, profiling) are stripped: the
    rebuilt config re-runs the *simulation*, and the replay driver decides
    what to observe about it.
    """
    from repro.harness.experiment import ExperimentConfig

    if not isinstance(data, dict):
        raise EventLogError("config provenance must be an object")
    known = {field.name for field in dataclasses.fields(ExperimentConfig)}
    kwargs: dict = {}
    for name, value in data.items():
        if name not in known:
            raise EventLogError(f"unknown config field {name!r} in log header")
        if name in _OBSERVER_FIELDS or name == "cost":
            continue
        if name == "chaos":
            kwargs["chaos"] = None if value is None else _chaos_from_dict(value)
        elif name == "planner":
            kwargs["planner"] = (
                None if value is None else _planner_from_dict(value)
            )
        elif name == "scaling_plan":
            from repro.elastic.plan import ScalingPlan

            kwargs["scaling_plan"] = (
                None if value is None else ScalingPlan.parse(value)
            )
        elif name == "autoscale":
            from repro.elastic.autoscaler import AutoscalerConfig

            kwargs["autoscale"] = (
                None if value is None else AutoscalerConfig(**value)
            )
        elif isinstance(value, list):
            kwargs[name] = tuple(value)
        else:
            kwargs[name] = value
    return ExperimentConfig(**kwargs)


def _chaos_from_dict(data: dict):
    from repro.chaos.plan import (
        ChaosConfig,
        FaultPlan,
        LinkFault,
        ProcessCrash,
        WorkerStall,
    )
    from repro.chaos.watchdog import WatchdogConfig
    from repro.megaphone.controller import RetryPolicy

    plan_data = data.get("plan") or {}
    plan = FaultPlan(
        seed=plan_data.get("seed", 0),
        crashes=tuple(ProcessCrash(**c) for c in plan_data.get("crashes", ())),
        link_faults=tuple(
            LinkFault(**lf) for lf in plan_data.get("link_faults", ())
        ),
        stalls=tuple(WorkerStall(**s) for s in plan_data.get("stalls", ())),
    )
    retry = data.get("retry")
    watchdog = data.get("watchdog")
    return ChaosConfig(
        plan=plan,
        retry=None if retry is None else RetryPolicy(**retry),
        watchdog=None if watchdog is None else WatchdogConfig(**watchdog),
        snapshot_at_s=data.get("snapshot_at_s"),
    )


def _planner_from_dict(data: dict):
    from repro.planner.policy import PlannerConfig
    from repro.planner.telemetry import TelemetryConfig

    kwargs = dict(data)
    telemetry = kwargs.pop("telemetry", None)
    options = kwargs.pop("objective_options", {}) or {}
    return PlannerConfig(
        telemetry=TelemetryConfig(**telemetry)
        if telemetry is not None
        else TelemetryConfig(),
        objective_options={
            key: tuple(value) if isinstance(value, list) else value
            for key, value in options.items()
        },
        **kwargs,
    )


# -- event serialization --------------------------------------------------------


def _jsonable(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def event_to_dict(event) -> dict:
    """One bus event as a JSON-compatible line payload."""
    out = {"e": type(event).__name__, "topic": event.topic}
    for field in dataclasses.fields(event):
        out[field.name] = _jsonable(getattr(event, field.name))
    return out


# -- the recorder ---------------------------------------------------------------


class EventLogRecorder:
    """Subscribe to the bus and stream every event to a JSON-lines log.

    ``extra`` lands in the header verbatim (the nexmark harness uses it to
    record the query number so replay can dispatch the right runner).
    Call :meth:`finalize` with the finished :class:`ExperimentResult` to
    write the footer; a log without one is treated as truncated.
    """

    def __init__(
        self,
        cfg,
        bus: TraceBus,
        path: str,
        topics: Optional[Iterable[str]] = None,
        extra: Optional[dict] = None,
    ) -> None:
        self.path = path
        self.topics = tuple(topics) if topics is not None else None
        self.events_recorded = 0
        self.events_by_topic: dict[str, int] = {}
        self._stream: Optional[IO] = open(path, "w", encoding="utf-8")
        header = {
            "kind": "event-log",
            "version": EVENT_LOG_VERSION,
            "workload_kind": (extra or {}).get("workload_kind", "count"),
            "topics": list(self.topics) if self.topics is not None else None,
            "config": config_to_dict(cfg),
            "extra": dict(extra or {}),
        }
        self._write(header)
        self._unsubscribe = bus.subscribe(self._record, topics=self.topics)

    def _write(self, payload: dict) -> None:
        json.dump(payload, self._stream, sort_keys=False)
        self._stream.write("\n")

    def _record(self, event) -> None:
        self._write(event_to_dict(event))
        self.events_recorded += 1
        topic = event.topic
        self.events_by_topic[topic] = self.events_by_topic.get(topic, 0) + 1

    def finalize(self, result) -> str:
        """Write the footer (with the run's fingerprint) and close.

        Returns the fingerprint so callers can print it without recomputing.
        """
        from repro.parallel.runner import result_fingerprint

        fingerprint = result_fingerprint(result)
        self._unsubscribe()
        self._write(
            {
                "kind": "footer",
                "result_fingerprint": fingerprint,
                "events_recorded": self.events_recorded,
                "events_by_topic": dict(
                    sorted(self.events_by_topic.items())
                ),
                "records_injected": result.records_injected,
                "sim_events": result.sim_events,
            }
        )
        self._stream.close()
        self._stream = None
        return fingerprint

    def abort(self) -> None:
        """Detach and close without a footer (the run failed)."""
        self._unsubscribe()
        if self._stream is not None:
            self._stream.close()
            self._stream = None


# -- reading --------------------------------------------------------------------


def read_log_meta(path: str) -> tuple[dict, dict]:
    """Return the validated ``(header, footer)`` of a recorded log.

    Raises :class:`EventLogError` for version mismatches, malformed
    lines, and truncated logs — every way a log could fail to support a
    faithful replay gets its own message.
    """
    header: Optional[dict] = None
    last: Optional[dict] = None
    with open(path, encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise EventLogError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from None
            if header is None:
                header = payload
            last = payload
    if header is None:
        raise EventLogError(f"{path}: empty file is not an event log")
    if header.get("kind") != "event-log":
        raise EventLogError(
            f"{path}: first line is not an event-log header "
            f"(kind={header.get('kind')!r})"
        )
    version = header.get("version")
    if version not in EVENT_LOG_READ_VERSIONS:
        raise EventLogError(
            f"{path}: event-log version {version!r} is not replayable by "
            f"this build (reads {EVENT_LOG_READ_VERSIONS}); "
            "re-record with a matching build"
        )
    topics = header.get("topics")
    if topics is not None:
        unknown = [t for t in topics if t not in TOPICS]
        if unknown:
            raise EventLogError(
                f"{path}: header names unknown topics {unknown}"
            )
    if last is None or last.get("kind") != "footer":
        raise EventLogError(
            f"{path}: no footer — the log is truncated (the recorded run "
            "did not finish); a truncated log has no fingerprint to verify"
        )
    return header, last


def read_events(path: str):
    """Yield the event payload dicts of a log, in recorded order."""
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if "e" in payload:
                yield payload
