"""Deterministic replay: re-execute a recorded run and verify its pin.

The simulation is deterministic given its config (seeds included), and
bus subscribers cannot perturb it, so a recorded log's footer fingerprint
is a *complete* promise: re-running the header's config must reproduce it
byte-identically.  :func:`replay_run` does exactly that —

1. validate the log (version, footer) via :mod:`repro.obsv.eventlog`,
2. rebuild the :class:`ExperimentConfig` from the header's provenance,
3. re-execute through the ordinary harness entry points while counting
   bus events on the recorded topics,
4. compare the fresh ``result_fingerprint`` and per-topic event counts
   against the footer.

A mismatch means the build no longer reproduces the recorded run — a
determinism regression, a semantic change without a version bump, or a
corrupted log.  The report says which topics drifted to narrow it down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obsv.eventlog import EventLogError, config_from_dict, read_log_meta


@dataclass
class ReplayReport:
    """Outcome of one replay, ready for printing or asserting."""

    path: str
    workload_kind: str
    expected_fingerprint: str
    actual_fingerprint: str
    expected_events: dict = field(default_factory=dict)
    actual_events: dict = field(default_factory=dict)
    records_injected: int = 0
    sim_events: int = 0

    @property
    def fingerprint_match(self) -> bool:
        return self.expected_fingerprint == self.actual_fingerprint

    @property
    def drifted_topics(self) -> list[str]:
        """Topics whose replayed event count differs from the recording."""
        topics = sorted(set(self.expected_events) | set(self.actual_events))
        return [
            t
            for t in topics
            if self.expected_events.get(t, 0) != self.actual_events.get(t, 0)
        ]

    @property
    def ok(self) -> bool:
        return self.fingerprint_match and not self.drifted_topics


def replay_run(path: str) -> ReplayReport:
    """Re-execute the run recorded at ``path``; compare against its footer."""
    header, footer = read_log_meta(path)
    cfg = config_from_dict(header["config"])
    # The recorded fingerprint covers final state (recording forces state
    # fingerprinting); the replay must measure the same thing.
    cfg.fingerprint_state = True
    topics = header.get("topics")
    counts: dict[str, int] = {}
    kind = header.get("workload_kind", "count")
    result = _execute(kind, cfg, header, topics, counts)
    from repro.parallel.runner import result_fingerprint

    return ReplayReport(
        path=path,
        workload_kind=kind,
        expected_fingerprint=footer["result_fingerprint"],
        actual_fingerprint=result_fingerprint(result),
        expected_events=dict(footer.get("events_by_topic", {})),
        actual_events=counts,
        records_injected=result.records_injected,
        sim_events=result.sim_events,
    )


def _execute(kind: str, cfg, header: dict, topics, counts: dict):
    if kind == "count":
        from repro.harness.experiment import run_count_experiment

        cfg.collect_topic_counts = tuple(topics) if topics is not None else ()
        result = run_count_experiment(cfg)
        counts.update(result.topic_counts)
        return result
    if kind == "nexmark":
        from repro.nexmark.config import NexmarkConfig
        from repro.nexmark.harness import run_nexmark_experiment

        extra = header.get("extra", {})
        query = extra.get("query")
        if not isinstance(query, int):
            raise EventLogError(
                f"nexmark log header lacks an integer query (got {query!r})"
            )
        nexmark_kwargs = extra.get("nexmark") or {}
        cfg.collect_topic_counts = tuple(topics) if topics is not None else ()
        result = run_nexmark_experiment(
            query, cfg, nexmark=NexmarkConfig(**nexmark_kwargs)
        )
        counts.update(result.topic_counts)
        return result
    raise EventLogError(
        f"cannot replay workload kind {kind!r}; this build replays "
        "'count' and 'nexmark' logs"
    )
