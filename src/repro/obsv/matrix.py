"""The experiment-matrix runner: sweep, aggregate, gate.

A *matrix spec* (TOML or JSON) declares axes — {strategy x backend x
codec x workload x faults} — and a base experiment configuration; the
runner expands the cartesian product into cells, runs each cell's
experiment across parallel worker processes, and aggregates one report
(``BENCH_matrix.json``) with a row per cell: throughput, latency
headlines, the chaos verdict (for fault cells), and the deterministic
``result_fingerprint``.

``check_matrix`` compares a fresh report against a checked-in baseline so
CI can gate on the whole matrix at once:

* **fingerprint drift** is a correctness regression — the simulation no
  longer reproduces the committed run — and fails the check whenever the
  environments are fingerprint-comparable (same interpreter version and
  batch representation; the simulated results are machine-independent,
  but pickle-based codecs may legitimately differ across interpreters).
* **throughput regression** beyond the cell's tolerance fails only when
  the machine metadata matches (same downgrade-to-warning rule as
  ``bench --check``).

Worker processes follow the :mod:`repro.parallel.supervisor` pattern:
fork once per job, ship results back over a pipe as one pickled payload,
and poll child liveness so a crashed worker surfaces as a structured
per-cell failure instead of a hang.
"""

from __future__ import annotations

import itertools
import json
import os
import pickle
import struct
from dataclasses import dataclass, replace
from typing import Optional

from repro.versions import (
    MATRIX_READ_VERSIONS,
    MATRIX_SCHEMA,
    MATRIX_SCHEMA_FAMILY,
)

# Axis name -> ExperimentConfig field it drives.  "faults" is special: it
# names a chaos scenario ("none" disables injection).
AXES = ("strategy", "backend", "codec", "workload", "faults")
_AXIS_FIELD = {
    "strategy": "strategy",
    "backend": "state_backend",
    "codec": "codec",
    "workload": "workload",
}
NO_FAULTS = "none"


class MatrixSpecError(ValueError):
    """The spec file cannot be parsed into a runnable matrix."""


@dataclass(frozen=True)
class MatrixCell:
    """One point of the sweep."""

    strategy: str
    backend: str
    codec: str
    workload: str
    faults: str

    @property
    def cell_id(self) -> str:
        return "/".join(
            (self.strategy, self.backend, self.codec, self.workload, self.faults)
        )


def load_spec(path: str) -> dict:
    """Parse a TOML or JSON matrix spec; validate axes and base config."""
    if path.endswith(".json"):
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        import tomllib

        with open(path, "rb") as handle:
            try:
                data = tomllib.load(handle)
            except tomllib.TOMLDecodeError as exc:
                raise MatrixSpecError(f"{path}: invalid TOML ({exc})") from None
    if not isinstance(data, dict) or "matrix" not in data:
        raise MatrixSpecError(f"{path}: spec needs a [matrix] table of axes")
    axes = data["matrix"]
    for axis in AXES:
        values = axes.get(axis)
        if values is None:
            # Missing axes default to a single neutral value.
            axes[axis] = [_default_axis_value(axis)]
        elif (
            not isinstance(values, list)
            or not values
            or not all(isinstance(v, str) for v in values)
        ):
            raise MatrixSpecError(
                f"{path}: [matrix].{axis} must be a non-empty list of strings"
            )
    unknown = set(axes) - set(AXES)
    if unknown:
        raise MatrixSpecError(
            f"{path}: unknown axes {sorted(unknown)}; known: {list(AXES)}"
        )
    _validate_axis_values(path, axes)
    base = data.setdefault("base", {})
    if not isinstance(base, dict):
        raise MatrixSpecError(f"{path}: [base] must be a table")
    tolerance = data.setdefault("tolerance", {})
    if not isinstance(tolerance, dict):
        raise MatrixSpecError(f"{path}: [tolerance] must be a table")
    tolerance.setdefault("default", 0.25)
    return data


def _default_axis_value(axis: str) -> str:
    return {
        "strategy": "batched",
        "backend": "dict",
        "codec": "modeled",
        "workload": "uniform",
        "faults": NO_FAULTS,
    }[axis]


def _validate_axis_values(path: str, axes: dict) -> None:
    from repro.chaos.experiment import SCENARIOS
    from repro.megaphone.migration import STRATEGIES
    from repro.state import backend_names, codec_names

    checks = (
        ("strategy", STRATEGIES),
        ("backend", backend_names()),
        ("codec", codec_names()),
        ("workload", ("uniform", "skewed")),
        ("faults", (NO_FAULTS,) + tuple(SCENARIOS)),
    )
    for axis, known in checks:
        for value in axes[axis]:
            if value not in known:
                raise MatrixSpecError(
                    f"{path}: [matrix].{axis} value {value!r} is not one of "
                    f"{sorted(known)}"
                )


def expand_cells(spec: dict) -> list[MatrixCell]:
    """The cartesian product of the spec's axes, in spec order."""
    axes = spec["matrix"]
    return [
        MatrixCell(*combo)
        for combo in itertools.product(*(axes[axis] for axis in AXES))
    ]


def cell_config(spec: dict, cell: MatrixCell):
    """Build the :class:`ExperimentConfig` for one cell."""
    from repro.chaos.experiment import scenario_chaos
    from repro.harness.experiment import ExperimentConfig

    base = dict(spec.get("base", {}))
    chaos_seed = base.pop("chaos_seed", 0)
    for key, value in list(base.items()):
        if isinstance(value, list):
            base[key] = tuple(value)
    try:
        cfg = ExperimentConfig(**base)
    except TypeError as exc:
        raise MatrixSpecError(f"[base] does not fit ExperimentConfig: {exc}") from None
    for axis, fld in _AXIS_FIELD.items():
        cfg = replace(cfg, **{fld: getattr(cell, axis)})
    cfg.fingerprint_state = True
    if cell.faults != NO_FAULTS:
        cfg = replace(cfg, chaos=scenario_chaos(cell.faults, cfg, seed=chaos_seed))
    return cfg


# -- running cells --------------------------------------------------------------


def run_cell(spec: dict, cell: MatrixCell) -> dict:
    """Run one cell's experiment; return its aggregated report row."""
    from repro.harness.experiment import run_count_experiment
    from repro.parallel.runner import result_fingerprint

    cfg = cell_config(spec, cell)
    result = run_count_experiment(cfg)
    row = {
        "cell": cell.cell_id,
        "status": "ok",
        "records": result.records_injected,
        "sim_events": result.sim_events,
        "wall_seconds": round(result.wall_seconds, 4),
        "records_per_s": round(
            result.records_injected / result.wall_seconds, 2
        )
        if result.wall_seconds
        else 0.0,
        "steady_max_latency_s": round(result.steady_max_latency(), 9),
        "migrations": len(result.migrations),
        "result_fingerprint": result_fingerprint(result),
    }
    if result.migrations:
        row["migration_max_latency_s"] = round(
            result.migration_max_latency(0), 9
        )
        row["migration_duration_s"] = round(result.migration_duration(0), 9)
    if cell.faults != NO_FAULTS:
        row["chaos_verdict"] = result.chaos_verdict or "stalled"
        if row["chaos_verdict"] == "stalled":
            row["status"] = "stalled"
    return row


def _run_cells_inline(spec: dict, cells: list[MatrixCell]) -> list[dict]:
    return [run_cell(spec, cell) for cell in cells]


def _child_main(spec: dict, jobs_cells: list, write_fd: int) -> None:
    """Worker body: run assigned cells, pickle one reply, hard-exit."""
    rows = []
    for index, cell in jobs_cells:
        try:
            rows.append((index, run_cell(spec, cell)))
        except BaseException as exc:  # report, keep running remaining cells
            rows.append(
                (
                    index,
                    {
                        "cell": cell.cell_id,
                        "status": "error",
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                )
            )
    payload = pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL)
    with os.fdopen(write_fd, "wb") as pipe:
        pipe.write(struct.pack("<Q", len(payload)))
        pipe.write(payload)


def _run_cells_forked(
    spec: dict, cells: list[MatrixCell], jobs: int
) -> list[dict]:
    """Round-robin the cells over ``jobs`` forked workers.

    Each worker writes one length-prefixed pickle when done; the parent
    reads every pipe to EOF *before* reaping, so a payload larger than the
    pipe buffer cannot deadlock, and a child that died early yields a
    short read that marks its cells failed instead of hanging the sweep.
    """
    jobs = max(1, min(jobs, len(cells)))
    assignments: list[list] = [[] for _ in range(jobs)]
    for index, cell in enumerate(cells):
        assignments[index % jobs].append((index, cell))
    children: list[tuple[int, int, list]] = []  # (pid, read_fd, cells)
    for assigned in assignments:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child
            os.close(read_fd)
            status = 0
            try:
                _child_main(spec, assigned, write_fd)
            except BaseException:
                status = 1
            finally:
                os._exit(status)
        os.close(write_fd)
        children.append((pid, read_fd, assigned))
    rows: dict[int, dict] = {}
    for pid, read_fd, assigned in children:
        chunks = []
        with os.fdopen(read_fd, "rb") as pipe:
            data = pipe.read()
        os.waitpid(pid, 0)
        chunks.append(data)
        payload = b"".join(chunks)
        try:
            (length,) = struct.unpack("<Q", payload[:8])
            reply = pickle.loads(payload[8 : 8 + length])
            if len(payload) < 8 + length:
                raise EOFError("short read")
        except Exception:
            reply = [
                (
                    index,
                    {
                        "cell": cell.cell_id,
                        "status": "crashed",
                        "error": f"matrix worker (pid {pid}) died mid-sweep",
                    },
                )
                for index, cell in assigned
            ]
        for index, row in reply:
            rows[index] = row
    return [rows[i] for i in sorted(rows)]


def run_matrix(
    spec: dict, jobs: Optional[int] = None, spec_path: str = ""
) -> dict:
    """Run every cell; return the aggregated BENCH_matrix report.

    ``jobs=0`` runs inline (no forking — the deterministic reference
    path); ``None`` picks ``min(cells, cpu_count)``.
    """
    from repro.perf.hotpath import machine_metadata

    cells = expand_cells(spec)
    if jobs is None:
        jobs = min(len(cells), os.cpu_count() or 1)
    if jobs <= 0 or len(cells) == 1:
        rows = _run_cells_inline(spec, cells)
        mode = "inline"
    else:
        rows = _run_cells_forked(spec, cells, jobs)
        mode = f"forked/{min(jobs, len(cells))}"
    return {
        "schema": MATRIX_SCHEMA,
        "spec_path": spec_path,
        "mode": mode,
        "machine": machine_metadata(),
        "axes": {axis: list(spec["matrix"][axis]) for axis in AXES},
        "base": {
            k: list(v) if isinstance(v, tuple) else v
            for k, v in spec.get("base", {}).items()
        },
        "tolerance": dict(spec.get("tolerance", {})),
        "cells": rows,
    }


def write_matrix_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as out:
        json.dump(report, out, indent=2, sort_keys=False)
        out.write("\n")


# -- the regression gate --------------------------------------------------------


def fingerprints_comparable(current: Optional[dict], committed: Optional[dict]) -> bool:
    """Whether two environments must agree on simulation fingerprints.

    Simulated results are machine-independent, but codecs that consult
    the interpreter (pickle sizes) and the batch representation (numpy vs
    stdlib arrays — asserted identical, pinned here anyway) are the two
    environmental inputs; fingerprints gate only when both match.
    """
    if not current or not committed:
        return False
    return all(
        current.get(k) == committed.get(k)
        for k in ("python", "batch_representation")
    )


def check_matrix(
    report: dict,
    baseline_path: str,
    tolerance: Optional[float] = None,
) -> tuple[bool, list[dict]]:
    """Compare a fresh matrix report against a committed baseline.

    Returns ``(ok, rows)`` with one row per cell in the fresh report.
    Statuses: ``ok``, ``new`` (not in the baseline), ``regression``
    (throughput beyond tolerance, comparable machines),
    ``cross-machine-warn`` (same, machines differ), ``fingerprint-drift``
    (simulation changed; fails when fingerprints are comparable),
    ``error``/``crashed``/``stalled`` (the cell itself failed — always
    fails the check).
    """
    from repro.perf.hotpath import machines_comparable

    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    from repro.versions import check_schema

    check_schema(
        baseline.get("schema", ""), MATRIX_SCHEMA_FAMILY, MATRIX_READ_VERSIONS
    )
    base_cells = {row["cell"]: row for row in baseline.get("cells", [])}
    tolerances = report.get("tolerance", {})
    default_tol = (
        tolerance if tolerance is not None else tolerances.get("default", 0.25)
    )
    perf_comparable = machines_comparable(
        report.get("machine"), baseline.get("machine")
    )
    fp_comparable = fingerprints_comparable(
        report.get("machine"), baseline.get("machine")
    )
    ok = True
    rows: list[dict] = []
    for row in report.get("cells", []):
        cell = row["cell"]
        committed = base_cells.get(cell)
        entry = {
            "cell": cell,
            "records_per_s": row.get("records_per_s", 0.0),
            "baseline_records_per_s": (committed or {}).get("records_per_s"),
            "delta": None,
            "status": "ok",
        }
        if row.get("status") != "ok" and row.get("status") != "new":
            entry["status"] = row.get("status", "error")
            ok = False
            rows.append(entry)
            continue
        if committed is None:
            entry["status"] = "new"
            rows.append(entry)
            continue
        if (
            committed.get("result_fingerprint")
            and row.get("result_fingerprint")
            and committed["result_fingerprint"] != row["result_fingerprint"]
        ):
            entry["status"] = (
                "fingerprint-drift" if fp_comparable else "fingerprint-warn"
            )
            if fp_comparable:
                ok = False
            rows.append(entry)
            continue
        base_rps = committed.get("records_per_s") or 0.0
        current_rps = row.get("records_per_s", 0.0)
        delta = (current_rps - base_rps) / base_rps if base_rps else 0.0
        entry["delta"] = round(delta, 4)
        allowed = tolerances.get(cell, default_tol)
        if delta < -allowed:
            if perf_comparable:
                entry["status"] = "regression"
                ok = False
            else:
                entry["status"] = "cross-machine-warn"
        rows.append(entry)
    return ok, rows
