"""Observability surface: live telemetry export, trace record/replay, and
the experiment-matrix runner.

Everything in this package sits *above* the :class:`~repro.runtime_events.
bus.TraceBus` and below the CLI:

* :mod:`repro.obsv.exporter` — a bus subscriber that aggregates counters,
  gauges, and histograms and streams them as JSON lines and/or a
  Prometheus-style text endpoint while a run executes.
* :mod:`repro.obsv.eventlog` — a versioned event-log writer capturing the
  full bus stream plus the run's config/seed provenance, and the reader
  that validates it.
* :mod:`repro.obsv.replay` — deterministic re-execution of a recorded run,
  asserting the original ``result_fingerprint`` byte-identically.
* :mod:`repro.obsv.matrix` — the {strategy x backend x codec x workload x
  faults} sweep runner with parallel worker processes, BENCH_matrix.json
  aggregation, and a CI regression gate.

Every component here is an observer: attaching or detaching any of them
must leave the simulation byte-identical (the bus's subscriber contract).
"""

from repro.obsv.eventlog import (
    EventLogError,
    EventLogRecorder,
    read_log_meta,
)
from repro.obsv.exporter import MetricsExporter
from repro.obsv.replay import ReplayReport, replay_run

__all__ = [
    "EventLogError",
    "EventLogRecorder",
    "MetricsExporter",
    "ReplayReport",
    "read_log_meta",
    "replay_run",
]
