"""Canned chaos scenarios and the all-strategy robustness matrix.

This is the harness-facing face of the chaos subsystem (and the only chaos
module allowed to import the harness).  A *scenario* is a named recipe that
turns an :class:`~repro.harness.experiment.ExperimentConfig` into a
:class:`~repro.chaos.plan.ChaosConfig` aimed at its migration schedule —
e.g. ``crash-target`` kills the process that is about to *receive* the
migrated bins, mid-migration, which is the hardest case for each strategy's
Completion guarantee.

``run_chaos_matrix`` runs one scenario against every migration strategy and
reports a verdict per strategy, answering the question the subsystem exists
for: which strategy degrades most gracefully under faults?
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.chaos.plan import (
    ChaosConfig,
    FaultPlan,
    LinkFault,
    ProcessCrash,
    WorkerStall,
)
from repro.chaos.watchdog import WatchdogConfig
from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    run_count_experiment,
)
from repro.megaphone.controller import RetryPolicy
from repro.megaphone.migration import STRATEGIES, imbalanced_target

SCENARIOS = (
    "crash-target",
    "crash-restart",
    "crash-storage",
    "partition",
    "stall",
    "lossy",
)

# Offset from the first migration start to the fault onset: long enough for
# the first control step to be issued, short enough to land mid-migration.
FAULT_DELAY_S = 0.15


def default_chaos_experiment_config(**overrides) -> ExperimentConfig:
    """A small, fast cluster that still has two processes to break.

    State is deliberately heavy relative to the network (8 MB of state on a
    4 MB/s fabric) so a migration step takes hundreds of simulated
    milliseconds — faults injected ``FAULT_DELAY_S`` after the migration
    start land *mid-step*, which is the case the retry/recovery machinery
    exists for.
    """
    cfg = ExperimentConfig(
        num_workers=4,
        workers_per_process=2,
        num_bins=16,
        domain=1 << 12,
        rate=20_000.0,
        duration_s=6.0,
        migrate_at_s=(2.0,),
        strategy="batched",
        batch_size=4,
        bytes_per_key=2048.0,
        bandwidth_bytes_per_s=4e6,
    )
    return replace(cfg, **overrides)


def migration_target_process(cfg: ExperimentConfig) -> int:
    """The process receiving the most bins in the first scheduled migration.

    Crashing it mid-step is the adversarial case: the in-flight state
    shipments address workers that no longer exist.
    """
    from repro.megaphone.control import BinnedConfiguration
    from repro.parallel.partition import ShardPartition

    partition = ShardPartition(cfg.num_workers, cfg.workers_per_process)
    initial = BinnedConfiguration.round_robin(cfg.num_bins, cfg.num_workers)
    target = imbalanced_target(initial)
    gained: dict[int, int] = {}
    for inst in initial.moved_bins(target):
        process = partition.domain_of(inst.worker)
        gained[process] = gained.get(process, 0) + 1
    if not gained:
        return partition.domain_of(cfg.num_workers - 1)
    return max(sorted(gained), key=lambda p: gained[p])


def scenario_chaos(
    scenario: str,
    cfg: ExperimentConfig,
    seed: int = 0,
    restart_after_s: Optional[float] = None,
    drop_prob: float = 0.3,
) -> ChaosConfig:
    """Build the :class:`ChaosConfig` for a named scenario against ``cfg``."""
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; pick one of {SCENARIOS}")
    migrate_at = cfg.migrate_at_s[0] if cfg.migrate_at_s else cfg.duration_s / 3
    at_s = migrate_at + FAULT_DELAY_S
    if scenario == "crash-target":
        plan = FaultPlan(
            seed=seed,
            crashes=(
                ProcessCrash(at_s=at_s, process=migration_target_process(cfg)),
            ),
        )
    elif scenario == "crash-restart":
        plan = FaultPlan(
            seed=seed,
            crashes=(
                ProcessCrash(
                    at_s=at_s,
                    process=migration_target_process(cfg),
                    restart_after_s=restart_after_s
                    if restart_after_s is not None
                    else 1.0,
                ),
            ),
        )
    elif scenario == "crash-storage":
        # Crash-restart with storage damage: the final frame is torn and
        # the unsynced tail is lost.  Meaningful on a durable backend
        # (recovery must detect and truncate the damage); identical to
        # crash-restart on in-memory ones.
        plan = FaultPlan(
            seed=seed,
            crashes=(
                ProcessCrash(
                    at_s=at_s,
                    process=migration_target_process(cfg),
                    restart_after_s=restart_after_s
                    if restart_after_s is not None
                    else 1.0,
                    torn_write=True,
                    lose_unsynced_tail=True,
                ),
            ),
        )
    elif scenario == "partition":
        plan = FaultPlan(
            seed=seed,
            link_faults=(
                LinkFault(at_s=at_s, duration_s=0.75, drop_prob=1.0),
            ),
        )
    elif scenario == "stall":
        plan = FaultPlan(
            seed=seed,
            stalls=(
                WorkerStall(at_s=at_s, duration_s=0.75, worker=0, slowdown=0.0),
            ),
        )
    else:  # lossy
        plan = FaultPlan(
            seed=seed,
            link_faults=(
                LinkFault(at_s=at_s, duration_s=1.0, drop_prob=drop_prob),
            ),
        )
    return ChaosConfig(
        plan=plan,
        retry=RetryPolicy(timeout_s=0.5, backoff=2.0, max_attempts=5),
        watchdog=WatchdogConfig(
            poll_interval_s=0.1, stall_after_s=0.75, give_up_after_s=10.0
        ),
        # Checkpoint just before the fault so crash recovery has state to
        # reinstall (the scenario is about liveness either way).
        snapshot_at_s=max(migrate_at - 0.5, 0.25),
    )


@dataclass
class ChaosRunResult:
    """Verdict of one (scenario, strategy) chaos run."""

    scenario: str
    strategy: str
    verdict: str  # completed | recovered | stalled
    recoveries: int
    abandoned_steps: int
    dropped_messages: int
    restored_bins: int
    result: ExperimentResult = field(repr=False, default=None)

    @property
    def live(self) -> bool:
        """True when the run kept (or regained) the Completion guarantee."""
        return self.verdict in ("completed", "recovered")


def _per_strategy_path(path: str, strategy: str) -> str:
    """Insert the strategy into an output path, before its extension.

    The chaos matrix runs one experiment per strategy; a single
    ``--record``/``--export-metrics`` destination would be overwritten
    four times, so each strategy gets its own file
    (``run.jsonl`` -> ``run.batched.jsonl``).
    """
    root, dot, ext = path.rpartition(".")
    if not dot:
        return f"{path}.{strategy}"
    return f"{root}.{strategy}.{ext}"


def run_chaos_experiment(
    scenario: str,
    strategy: str,
    cfg: Optional[ExperimentConfig] = None,
    seed: int = 0,
    **scenario_kwargs,
) -> ChaosRunResult:
    """Run the counting benchmark under one scenario and strategy."""
    if cfg is None:
        cfg = default_chaos_experiment_config()
    cfg = replace(cfg, strategy=strategy)
    if cfg.record_log:
        cfg = replace(
            cfg, record_log=_per_strategy_path(cfg.record_log, strategy)
        )
    if cfg.export_metrics and cfg.export_metrics != "-":
        cfg = replace(
            cfg,
            export_metrics=_per_strategy_path(cfg.export_metrics, strategy),
        )
    cfg = replace(
        cfg, chaos=scenario_chaos(scenario, cfg, seed=seed, **scenario_kwargs)
    )
    result = run_count_experiment(cfg)
    from repro.runtime_events.events import MessageDropped, StateReinstalled

    log = result.fault_log
    return ChaosRunResult(
        scenario=scenario,
        strategy=strategy,
        verdict=result.chaos_verdict or "stalled",
        recoveries=result.chaos_recoveries,
        abandoned_steps=result.abandoned_steps,
        dropped_messages=log.count(MessageDropped) if log else 0,
        restored_bins=sum(
            e.restored_bins
            for e in (log.recovery if log else ())
            if type(e) is StateReinstalled
        ),
        result=result,
    )


def run_chaos_matrix(
    scenario: str = "crash-target",
    strategies: tuple = STRATEGIES,
    cfg: Optional[ExperimentConfig] = None,
    seed: int = 0,
    **scenario_kwargs,
) -> list[ChaosRunResult]:
    """The robustness matrix: one scenario against every strategy."""
    return [
        run_chaos_experiment(
            scenario, strategy, cfg=cfg, seed=seed, **scenario_kwargs
        )
        for strategy in strategies
    ]
