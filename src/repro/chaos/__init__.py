"""Seeded, deterministic fault injection and recovery machinery.

The chaos subsystem answers "which migration strategy degrades most
gracefully?" by injecting process crashes, link partitions/degradation, and
worker stalls into the simulated cluster under a reproducible
:class:`~repro.chaos.plan.FaultPlan`, while the recovery side — a resilient
migration controller with per-step timeouts and a liveness watchdog — keeps
the Completion guarantee observable (or produces a structured diagnosis of
why it failed).

Module map:

``plan``       fault plan dataclasses (crash, link fault, stall) + validation
``inject``     the :class:`ChaosInjector` that schedules faults and owns the
               cluster-membership view (who is dead right now)
``watchdog``   the liveness watchdog over the probed output frontier
``recovery``   configuration ledger + coordinator reseeding restarted workers
``experiment`` canned plans and the all-strategy chaos matrix

Core modules (`plan`, `inject`, `watchdog`, `recovery`) never import the
harness; only ``chaos.experiment`` does, so the harness can import the core
without a cycle.
"""

from repro.chaos.plan import (
    ChaosConfig,
    FaultPlan,
    LinkFault,
    ProcessCrash,
    WorkerStall,
)

__all__ = [
    "ChaosConfig",
    "FaultPlan",
    "LinkFault",
    "ProcessCrash",
    "WorkerStall",
]
