"""Fault plans: the declarative, seeded description of what goes wrong.

A :class:`FaultPlan` lists faults with absolute simulated-time onsets.  The
plan itself is pure data — scheduling and enforcement live in
:mod:`repro.chaos.inject` — so the same plan can be validated, printed,
hashed into a report, and replayed byte-identically.

Determinism contract: the injector draws randomness from a private
``random.Random(plan.seed)``, and only for *lossy* links (``0 < drop_prob
< 1``).  Crashes, full partitions, and stalls consume no randomness at all,
so two runs with the same seed and plan produce identical event sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

ANY_PROCESS = -1
"""Wildcard for :class:`LinkFault` endpoints: matches every process."""


@dataclass(frozen=True)
class ProcessCrash:
    """Kill ``process`` at ``at_s``; optionally restart it later.

    A crash stops every worker the process hosts: pending work is discarded
    (with progress-accounting compensation), held capabilities are released,
    and in-flight messages addressed to its workers are dropped on arrival.
    With ``restart_after_s`` set, the process rejoins that many seconds
    later with freshly installed (empty) operators; the recovery
    coordinator may then reseed state from a snapshot — or, on a durable
    backend, replay each worker's write-ahead log.

    The storage-fault knobs model what the crash does to that durable log:
    ``torn_write`` appends a partial final frame (a write in flight at
    power-off), ``lose_unsynced_tail`` destroys every byte past the fsync
    horizon, and ``bit_flips`` flips that many seeded bits anywhere in the
    log.  All three are no-ops for in-memory backends.
    """

    at_s: float
    process: int
    restart_after_s: Optional[float] = None
    torn_write: bool = False
    lose_unsynced_tail: bool = False
    bit_flips: int = 0


@dataclass(frozen=True)
class LinkFault:
    """Degrade or sever links between processes for a window of time.

    Endpoints of :data:`ANY_PROCESS` match every process on that side.
    ``drop_prob`` is the per-message loss probability (1.0 = full
    partition, dropped without consulting the RNG); ``bandwidth_factor``
    scales the link's bandwidth (0.5 = half speed) and ``extra_latency_s``
    is added to its propagation delay while the window is open.
    """

    at_s: float
    duration_s: float
    src_process: int = ANY_PROCESS
    dst_process: int = ANY_PROCESS
    drop_prob: float = 0.0
    bandwidth_factor: float = 1.0
    extra_latency_s: float = 0.0


@dataclass(frozen=True)
class WorkerStall:
    """Stop (or slow) one worker's scheduling for a window of time.

    ``slowdown`` of 0.0 is a hard stall: activations due inside the window
    are deferred to its end.  A positive ``slowdown`` multiplies the CPU
    cost of every activation charged inside the window instead.
    """

    at_s: float
    duration_s: float
    worker: int
    slowdown: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded fault schedule for one run."""

    seed: int = 0
    crashes: tuple[ProcessCrash, ...] = ()
    link_faults: tuple[LinkFault, ...] = ()
    stalls: tuple[WorkerStall, ...] = ()

    def validate(self, num_processes: int, num_workers: int) -> None:
        """Raise ``ValueError`` on out-of-range targets or bad windows."""
        for crash in self.crashes:
            if not 0 <= crash.process < num_processes:
                raise ValueError(
                    f"crash targets process {crash.process}, cluster has "
                    f"{num_processes}"
                )
            if crash.at_s < 0:
                raise ValueError(f"crash at_s must be >= 0, got {crash.at_s}")
            if crash.restart_after_s is not None and crash.restart_after_s <= 0:
                raise ValueError(
                    f"restart_after_s must be positive, got {crash.restart_after_s}"
                )
            if crash.bit_flips < 0:
                raise ValueError(
                    f"bit_flips must be >= 0, got {crash.bit_flips}"
                )
        by_process: dict[int, list[ProcessCrash]] = {}
        for crash in self.crashes:
            by_process.setdefault(crash.process, []).append(crash)
        for process, crashes in by_process.items():
            if len(crashes) > 1:
                raise ValueError(
                    f"process {process} crashes {len(crashes)} times; "
                    "at most one crash per process is supported"
                )
        for fault in self.link_faults:
            for end, label in (
                (fault.src_process, "src_process"),
                (fault.dst_process, "dst_process"),
            ):
                if end != ANY_PROCESS and not 0 <= end < num_processes:
                    raise ValueError(
                        f"link fault {label}={end} out of range for "
                        f"{num_processes} processes"
                    )
            if fault.duration_s <= 0:
                raise ValueError(
                    f"link fault duration must be positive, got {fault.duration_s}"
                )
            if not 0.0 <= fault.drop_prob <= 1.0:
                raise ValueError(
                    f"drop_prob must be in [0, 1], got {fault.drop_prob}"
                )
            if fault.bandwidth_factor <= 0:
                raise ValueError(
                    f"bandwidth_factor must be positive, got {fault.bandwidth_factor}"
                )
            if fault.extra_latency_s < 0:
                raise ValueError(
                    f"extra_latency_s must be >= 0, got {fault.extra_latency_s}"
                )
        for stall in self.stalls:
            if not 0 <= stall.worker < num_workers:
                raise ValueError(
                    f"stall targets worker {stall.worker}, cluster has "
                    f"{num_workers}"
                )
            if stall.duration_s <= 0:
                raise ValueError(
                    f"stall duration must be positive, got {stall.duration_s}"
                )
            if stall.slowdown < 0:
                raise ValueError(
                    f"slowdown must be >= 0, got {stall.slowdown}"
                )

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing."""
        return not (self.crashes or self.link_faults or self.stalls)


@dataclass
class ChaosConfig:
    """Everything the harness needs to run one chaos experiment.

    ``retry`` and ``watchdog`` default to ``None`` and are resolved to the
    stock :class:`~repro.megaphone.controller.RetryPolicy` and
    :class:`~repro.chaos.watchdog.WatchdogConfig` at wiring time, keeping
    this module import-light (no harness, no controller).

    ``snapshot_at_s`` arms periodic-free one-shot snapshotting: just before
    that simulated time the experiment captures every worker's bin state so
    recovery can reinstall it after a crash.  ``None`` recovers with empty
    bins (state loss is then visible in the output, by design).
    """

    plan: FaultPlan = field(default_factory=FaultPlan)
    retry: Optional[object] = None
    watchdog: Optional[object] = None
    snapshot_at_s: Optional[float] = None
