"""The chaos injector: schedules a fault plan against a running dataflow.

The injector is the single authority on cluster membership (which processes
are dead right now) and on link health.  It is wired into three places:

* ``Cluster.send`` asks :meth:`ChaosInjector.drop_reason` before routing a
  cross-process message (partitions and lossy links);
* ``Link.transmit`` asks :meth:`ChaosInjector.link_degradation` for the
  effective bandwidth factor and extra latency;
* each ``WorkerRuntime`` asks :meth:`ChaosInjector.stalled_until` and
  :meth:`ChaosInjector.cost_multiplier` at activation time.

All hooks are pure functions of the (static) plan and the current simulated
time, except lossy links (``0 < drop_prob < 1``), which consume the plan's
private seeded RNG — the only source of randomness in the subsystem.

Crash semantics: a crashed process's workers stop scheduling, drop every
queued batch and arriving message *with progress compensation* (the in-flight
count or capability each item holds is released), and release all held
capabilities, so the surviving workers' frontiers advance past the dead ones
instead of wedging.  The crash degrades the computation's output — exactly
the failure model the recovery machinery is measured against.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.chaos.plan import ANY_PROCESS, FaultPlan, LinkFault, ProcessCrash, WorkerStall
from repro.runtime_events.events import (
    TOPIC_FAULTS,
    TOPIC_RECOVERY,
    LinkFaultEnded,
    LinkFaultStarted,
    ProcessCrashed,
    ProcessRestarted,
    WorkerStallEnded,
    WorkerStallStarted,
)

# Membership-change callback: (kind, process, workers) with kind in
# {"crash", "restart"}.
MembershipCallback = Callable[[str, int, tuple], None]

# Crash-storage hook: (crash, workers) — invoked at crash time so durable
# storage can suffer the crash's modeled damage (torn frame, lost tail,
# bit flips) before any recovery replays it.
StorageHook = Callable[[ProcessCrash, tuple], None]


class ChaosInjector:
    """Schedules and enforces one :class:`FaultPlan` on one runtime."""

    def __init__(self, runtime, plan: FaultPlan) -> None:
        plan.validate(len(runtime.cluster.processes), runtime.num_workers)
        self._runtime = runtime
        self._plan = plan
        self._rng = random.Random(plan.seed)
        self._dead_processes: set[int] = set()
        self._active_link_faults: list[LinkFault] = []
        self._callbacks: list[MembershipCallback] = []
        self._storage_hooks: list[StorageHook] = []
        self.installed = False

    # -- wiring ----------------------------------------------------------------

    def install(self) -> None:
        """Hook into the cluster/workers and schedule every fault event."""
        if self.installed:
            raise RuntimeError("chaos injector already installed")
        self.installed = True
        runtime = self._runtime
        sim = runtime.sim
        runtime.cluster.install_chaos(self)
        for worker in runtime.workers:
            worker.chaos = self
        for crash in self._plan.crashes:
            sim.schedule_at(crash.at_s, lambda c=crash: self._crash(c))
            if crash.restart_after_s is not None:
                sim.schedule_at(
                    crash.at_s + crash.restart_after_s,
                    lambda c=crash: self._restart(c),
                )
        for fault in self._plan.link_faults:
            sim.schedule_at(fault.at_s, lambda f=fault: self._open_link_fault(f))
        for stall in self._plan.stalls:
            sim.schedule_at(stall.at_s, lambda s=stall: self._open_stall(s))

    def on_membership_change(self, callback: MembershipCallback) -> None:
        """Register for crash/restart notifications."""
        self._callbacks.append(callback)

    def on_crash_storage(self, hook: StorageHook) -> None:
        """Register a hook applying a crash's storage faults to durable state.

        Hooks run inside the crash event, after the process is marked dead
        and before membership callbacks — so by the time any recovery
        logic observes the crash, the log damage is already on disk.
        Randomness (bit-flip positions, torn-frame length) comes from a
        seed derived per crash, never from the plan's lossy-link RNG, so
        the determinism contract ("crashes consume no plan randomness")
        holds.
        """
        self._storage_hooks.append(hook)

    # -- membership view -------------------------------------------------------

    def is_dead(self, worker: int) -> bool:
        """Whether ``worker``'s process is currently crashed."""
        return (
            self._runtime.cluster.process_of(worker).index in self._dead_processes
        )

    def dead_workers(self) -> list[int]:
        """Workers of currently crashed processes, ascending."""
        out = []
        for p in sorted(self._dead_processes):
            out.extend(self._runtime.cluster.processes[p].worker_ids)
        return sorted(out)

    def live_workers(self) -> list[int]:
        """Workers of currently live processes, ascending."""
        dead = self._dead_processes
        return [
            w
            for w in range(self._runtime.num_workers)
            if self._runtime.cluster.process_of(w).index not in dead
        ]

    # -- network hooks ---------------------------------------------------------

    def drop_reason(self, src_process: int, dst_process: int) -> Optional[str]:
        """Why a message between these processes is lost right now, if it is."""
        if src_process == dst_process:
            return None
        for fault in self._active_link_faults:
            if fault.drop_prob <= 0.0:
                continue
            if not _matches(fault, src_process, dst_process):
                continue
            if fault.drop_prob >= 1.0:
                return "partition"
            if self._rng.random() < fault.drop_prob:
                return "loss"
        return None

    def link_degradation(self, src_process: int, dst_process: int) -> tuple:
        """(bandwidth factor, extra latency) for this link right now."""
        factor = 1.0
        extra = 0.0
        for fault in self._active_link_faults:
            if _matches(fault, src_process, dst_process):
                factor *= fault.bandwidth_factor
                extra += fault.extra_latency_s
        return factor, extra

    # -- worker hooks ----------------------------------------------------------

    def stalled_until(self, worker: int) -> float:
        """End of the latest hard-stall window covering ``worker`` now."""
        now = self._runtime.sim.now
        until = 0.0
        for stall in self._plan.stalls:
            if (
                stall.worker == worker
                and stall.slowdown == 0.0
                and stall.at_s <= now < stall.at_s + stall.duration_s
            ):
                until = max(until, stall.at_s + stall.duration_s)
        return until

    def cost_multiplier(self, worker: int) -> float:
        """Product of active slowdown factors for ``worker`` now."""
        now = self._runtime.sim.now
        multiplier = 1.0
        for stall in self._plan.stalls:
            if (
                stall.worker == worker
                and stall.slowdown > 0.0
                and stall.at_s <= now < stall.at_s + stall.duration_s
            ):
                multiplier *= stall.slowdown
        return multiplier

    # -- fault events ----------------------------------------------------------

    def _crash(self, crash: ProcessCrash) -> None:
        runtime = self._runtime
        process = runtime.cluster.processes[crash.process]
        self._dead_processes.add(crash.process)
        for wid in process.worker_ids:
            worker = runtime.workers[wid]
            worker.alive = False
            worker.discard_pending_work()
            worker.release_all_capabilities()
        # The process's input handles die with it: their source capabilities
        # are dropped so the cluster-wide input frontier can move on.
        for group in runtime.dataflow._input_groups:
            for wid in process.worker_ids:
                group.handle(wid).close()
        # Its heap is gone; in-queue network bytes drain off-host.
        process.memory.state_bytes = 0.0
        process.memory.recv_buffer_bytes = 0.0
        for hook in list(self._storage_hooks):
            hook(crash, tuple(process.worker_ids))
        trace = runtime.sim.trace
        if trace.wants_faults:
            trace.publish(
                ProcessCrashed(
                    process=crash.process,
                    workers=tuple(process.worker_ids),
                    at=runtime.sim.now,
                )
            )
        for callback in list(self._callbacks):
            callback("crash", crash.process, tuple(process.worker_ids))
        runtime.mark_progress()

    def _restart(self, crash: ProcessCrash) -> None:
        runtime = self._runtime
        process = runtime.cluster.processes[crash.process]
        self._dead_processes.discard(crash.process)
        for wid in process.worker_ids:
            worker = runtime.workers[wid]
            worker.reinstall_operators()
            worker.alive = True
        trace = runtime.sim.trace
        if trace.wants_faults:
            trace.publish(
                ProcessRestarted(
                    process=crash.process,
                    workers=tuple(process.worker_ids),
                    at=runtime.sim.now,
                )
            )
        # Callbacks run after the workers are live so a recovery coordinator
        # can reseed state immediately.
        for callback in list(self._callbacks):
            callback("restart", crash.process, tuple(process.worker_ids))
        runtime.mark_progress()

    def _open_link_fault(self, fault: LinkFault) -> None:
        runtime = self._runtime
        self._active_link_faults.append(fault)
        until = fault.at_s + fault.duration_s
        trace = runtime.sim.trace
        if trace.wants_faults:
            trace.publish(
                LinkFaultStarted(
                    src_process=fault.src_process,
                    dst_process=fault.dst_process,
                    drop_prob=fault.drop_prob,
                    bandwidth_factor=fault.bandwidth_factor,
                    extra_latency_s=fault.extra_latency_s,
                    until=until,
                    at=runtime.sim.now,
                )
            )
        runtime.sim.schedule_at(until, lambda: self._close_link_fault(fault))

    def _close_link_fault(self, fault: LinkFault) -> None:
        self._active_link_faults.remove(fault)
        trace = self._runtime.sim.trace
        if trace.wants_faults:
            trace.publish(
                LinkFaultEnded(
                    src_process=fault.src_process,
                    dst_process=fault.dst_process,
                    at=self._runtime.sim.now,
                )
            )

    def _open_stall(self, stall: WorkerStall) -> None:
        runtime = self._runtime
        until = stall.at_s + stall.duration_s
        trace = runtime.sim.trace
        if trace.wants_faults:
            trace.publish(
                WorkerStallStarted(
                    worker=stall.worker,
                    slowdown=stall.slowdown,
                    until=until,
                    at=runtime.sim.now,
                )
            )
        runtime.sim.schedule_at(until, lambda: self._close_stall(stall))

    def _close_stall(self, stall: WorkerStall) -> None:
        runtime = self._runtime
        trace = runtime.sim.trace
        if trace.wants_faults:
            trace.publish(
                WorkerStallEnded(worker=stall.worker, at=runtime.sim.now)
            )
        # Work may have piled up while the worker was frozen.
        runtime.workers[stall.worker].activate()


def _matches(fault: LinkFault, src_process: int, dst_process: int) -> bool:
    return (
        fault.src_process in (ANY_PROCESS, src_process)
        and fault.dst_process in (ANY_PROCESS, dst_process)
    )


class FaultLog:
    """Purely observational collector of ``faults``/``recovery`` events."""

    def __init__(self, bus) -> None:
        self.faults: list = []
        self.recovery: list = []
        self._unsubscribe = bus.subscribe(
            self._on_event, topics=(TOPIC_FAULTS, TOPIC_RECOVERY)
        )

    def close(self) -> None:
        """Detach from the bus."""
        self._unsubscribe()

    def _on_event(self, event) -> None:
        if event.topic == TOPIC_FAULTS:
            self.faults.append(event)
        else:
            self.recovery.append(event)

    def count(self, event_type: type) -> int:
        """Number of collected events of ``event_type``."""
        return sum(
            1 for e in self.faults if type(e) is event_type
        ) + sum(1 for e in self.recovery if type(e) is event_type)
