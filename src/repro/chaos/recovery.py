"""Recovery: reconciling Megaphone state with cluster membership.

Two cooperating pieces:

* :class:`ConfigurationLedger` — the controller-side record of the intended
  bin-to-worker assignment.  Every control step the resilient controller
  sends (planned, retried, or recovery) is applied to the ledger, so it is
  always the configuration the *control stream* converges to — which is what
  crash reconciliation and restart reseeding must agree with.

* :class:`RecoveryCoordinator` — restores Megaphone bin state around
  membership changes.  On a crash it (via the controller's
  ``on_recovery_step`` hook) installs the latest snapshot's state for the
  orphaned bins into their new owners — the paper's §4.4 observation that
  migration-grade snapshots "feed back into finer-grained fault-tolerance
  mechanisms" made concrete.  On a restart it reseeds the returned workers'
  bin stores and routing tables from the ledger, because a freshly
  reinstalled F/S pair believes the initial configuration.

Pending (post-dated) records in a snapshot are intentionally *not* restored
on the crash path: their notification times may already lie behind the
surviving frontier.  Recovery restores state, not in-flight work — bounded,
observable loss is the fault model's documented trade.
"""

from __future__ import annotations

import hashlib
import pickle
from collections.abc import MutableMapping
from typing import Callable, Optional

from repro.megaphone.bins import BinStore
from repro.megaphone.control import BinnedConfiguration, ControlInst
from repro.runtime_events.events import StateReinstalled, StorageFaultReport


def store_fingerprint(store: BinStore) -> str:
    """Deterministic digest of a store's resident bin states.

    Bins are visited in sorted order; mapping states are canonicalized by
    sorted items, so two stores holding equal state hash equally regardless
    of insertion order or representation (dict vs durable log).  Pending
    (in-flight) records are excluded — they die with a crash by design, so
    fingerprints compare exactly what recovery guarantees: the state.
    """
    digest = hashlib.sha256()
    for bin_id in sorted(store.resident_bins()):
        payload = store.extract(bin_id, remove=False)
        state = payload.decode_state(copy=False)
        if isinstance(state, (dict, MutableMapping)):
            canonical = sorted(state.items())
        else:
            canonical = state
        digest.update(pickle.dumps((bin_id, canonical), protocol=4))
    return digest.hexdigest()


def cluster_fingerprint(stores) -> str:
    """Owner-independent digest of the whole cluster's bin states.

    Hashes every resident bin across ``stores`` in global ``bin_id`` order
    (each bin is owned by exactly one store), canonicalized exactly like
    :func:`store_fingerprint` — so two runs that place the same per-bin
    state on *different* workers hash equally.  This is the pin for
    elastic-membership runs: a scripted join/drain run must match a
    static-membership twin bin for bin even though the final owner map
    differs (drain packs by load, round-robin deals by index).
    """
    entries = []
    for store in stores:
        for bin_id in store.resident_bins():
            payload = store.extract(bin_id, remove=False)
            state = payload.decode_state(copy=False)
            if isinstance(state, (dict, MutableMapping)):
                canonical = sorted(state.items())
            else:
                canonical = state
            entries.append((bin_id, canonical))
    entries.sort(key=lambda entry: entry[0])
    digest = hashlib.sha256()
    for entry in entries:
        digest.update(pickle.dumps(entry, protocol=4))
    return digest.hexdigest()


class ConfigurationLedger:
    """The intended bin assignment, updated with every control step."""

    def __init__(self, initial: BinnedConfiguration) -> None:
        self.initial = initial
        self.current = initial
        self.history: list[BinnedConfiguration] = [initial]

    def apply(self, insts: list[ControlInst]) -> None:
        """Advance the ledger past one control step."""
        insts = list(insts)
        if not insts:
            return
        self.current = self.current.apply(insts)
        self.history.append(self.current)

    def bins_of(self, worker: int) -> list[int]:
        """Bins the current configuration places on ``worker``."""
        return self.current.bins_of(worker)


class RecoveryCoordinator:
    """Reinstalls Megaphone state for crashed-and-reassigned bins.

    ``snapshot_provider`` returns the most recent
    :class:`~repro.megaphone.snapshot.OperatorSnapshot` (or ``None`` when no
    checkpoint exists yet) — evaluated lazily at recovery time so a snapshot
    captured mid-run is picked up.
    """

    def __init__(
        self,
        runtime,
        op,
        ledger: ConfigurationLedger,
        injector=None,
        snapshot_provider: Optional[Callable[[], object]] = None,
        durable: bool = False,
    ) -> None:
        self._runtime = runtime
        self._op = op
        self._ledger = ledger
        self._snapshot_provider = snapshot_provider
        # Durable mode: restarted workers rebuild their bins by replaying
        # their own write-ahead log instead of reinstalling an in-memory
        # snapshot.  The log is the truth; snapshots are not consulted on
        # the restart path.  (The crash path is unchanged — a dead worker's
        # local log is unreachable until its process returns, so bins
        # retargeted to survivors still restore from the snapshot.)
        self.durable = durable
        self.restored_bins = 0
        self.recreated_stores = 0
        # worker -> fingerprint of the state its restart recovered (durable
        # mode only); experiments compare these across fault variants.
        self.recovered_fingerprints: dict[int, str] = {}
        self.storage_faults: list[StorageFaultReport] = []
        if injector is not None:
            injector.on_membership_change(self._on_membership)

    # -- crash path (driven by the resilient controller) -----------------------

    def on_recovery_step(self, result) -> None:
        """Install snapshot state for a recovery step's retargeted bins.

        ``result`` is the controller's :class:`StepResult` for the step that
        reassigns orphaned bins to survivors.  Bins with no snapshot entry
        start empty at the new owner (S recreates them on first use).
        """
        snapshot = self._snapshot()
        if snapshot is None:
            return
        per_worker: dict[int, list] = {}
        for inst in result.insts:
            bin_snapshot = snapshot.bins.get(inst.bin)
            if bin_snapshot is not None:
                per_worker.setdefault(inst.worker, []).append(bin_snapshot)
        for worker, bin_snapshots in sorted(per_worker.items()):
            store = self._store_of(worker, seed=self._op.config.initial)
            installed = 0
            size = 0
            for bin_snapshot in bin_snapshots:
                store.restore_state(bin_snapshot.bin_id, bin_snapshot.payload)
                installed += 1
                size += store.state_size(bin_snapshot.bin_id)
            self.restored_bins += installed
            self._trace_reinstall(worker, len(bin_snapshots), installed, size)

    # -- restart path ----------------------------------------------------------

    def _on_membership(self, kind: str, process: int, workers: tuple) -> None:
        if kind != "restart":
            return
        snapshot = None if self.durable else self._snapshot()
        for worker in workers:
            # The reinstalled F believes the initial configuration; hand it
            # the assignment the control stream has converged to.
            self._runtime.logic_of(worker, self._op.f_op).reset_routing(
                self._ledger.current
            )
            # Fresh store seeded with the bins the ledger places here (the
            # worker's ``shared`` dict was wiped by the reinstall).  A
            # durable backend replays its surviving log inside the store
            # constructor, so the store may come back already holding bins.
            assigned = self._ledger.bins_of(worker)
            store = self._store_of(worker, seed=None)
            restored = 0
            size = 0
            if self.durable:
                restored, size = self._reconcile_durable(worker, store, assigned)
            else:
                for bin_id in assigned:
                    if not store.has(bin_id):
                        store.create(bin_id)
                    if snapshot is not None and bin_id in snapshot.bins:
                        store.restore_state(bin_id, snapshot.bins[bin_id].payload)
                        restored += 1
                        size += store.state_size(bin_id)
            self.recreated_stores += 1
            self.restored_bins += restored
            self._trace_reinstall(worker, len(assigned), restored, size)
        self._runtime.mark_progress()

    def _reconcile_durable(
        self, worker: int, store: BinStore, assigned: list
    ) -> tuple[int, float]:
        """Align a log-replayed store with the ledger's current assignment.

        The configuration may have moved bins off this worker while it was
        dead (a recovery control step retargeted them to survivors): those
        replayed bins are stale and dropped.  Bins the ledger assigns here
        that the log does not hold start empty.  Publishes a
        :class:`StorageFaultReport` when the replay found crash damage, and
        fingerprints what survived.
        """
        recovered = set(store.resident_bins())
        assigned_set = set(assigned)
        for bin_id in sorted(recovered - assigned_set):
            store.drop(bin_id)
        for bin_id in sorted(assigned_set - recovered):
            store.create(bin_id)
        restored = 0
        size = 0
        for bin_id in sorted(recovered & assigned_set):
            restored += 1
            size += store.state_size(bin_id)
        recovery = getattr(store.backend, "last_recovery", None)
        if recovery is not None and not recovery.clean:
            report = StorageFaultReport(
                worker=worker,
                torn_frame=recovery.torn_frame,
                corrupt_frame=recovery.corrupt_frame,
                lost_tail_bytes=recovery.lost_tail_bytes,
                truncated_bytes=recovery.truncated_bytes,
                frames_replayed=recovery.frames_replayed,
                bins_recovered=recovery.bins_recovered,
                at=self._runtime.sim.now,
            )
            self.storage_faults.append(report)
            trace = self._runtime.sim.trace
            if trace.wants_faults:
                trace.publish(report)
        self.recovered_fingerprints[worker] = store_fingerprint(store)
        return restored, size

    # -- helpers ---------------------------------------------------------------

    def _snapshot(self):
        if self._snapshot_provider is None:
            return None
        return self._snapshot_provider()

    def _store_of(
        self, worker: int, seed: Optional[BinnedConfiguration]
    ) -> BinStore:
        """Get or create ``worker``'s bin store.

        ``seed`` (when creating) decides which bins to pre-create, matching
        ``MegaphoneConfig.store_for``'s lazy-initialization semantics.
        """
        config = self._op.config
        shared = self._runtime.workers[worker].shared
        key = f"megaphone:{config.name}"
        store = shared.get(key)
        if store is None:
            store = BinStore(
                config.num_bins,
                config.state_factory,
                config.state_size_fn,
                bytes_per_key=self._runtime.cluster.cost.state_bytes_per_key,
                backend=config.state_backend,
                codec=config.codec,
                backend_options=config.backend_options,
                worker_id=worker,
            )
            if seed is not None:
                for bin_id in seed.bins_of(worker):
                    # A durable backend may have adopted the bin already
                    # while replaying its log in the constructor.
                    if not store.has(bin_id):
                        store.create(bin_id)
            shared[key] = store
        return store

    def _trace_reinstall(
        self, worker: int, bins: int, restored: int, size_bytes: float
    ) -> None:
        trace = self._runtime.sim.trace
        if trace.wants_recovery:
            trace.publish(
                StateReinstalled(
                    worker=worker,
                    bins=bins,
                    restored_bins=restored,
                    size_bytes=size_bytes,
                    at=self._runtime.sim.now,
                )
            )
