"""Liveness watchdog for Megaphone's Completion guarantee.

The paper's Completion property says every migration eventually finishes and
the output frontier keeps advancing.  Under fault injection that guarantee
is exactly what is at stake, so the watchdog observes the probed output
frontier and classifies the run:

* ``completed`` — the stream closed without the frontier ever stalling
  longer than the stall threshold;
* ``recovered`` — the frontier stalled at least once, recovery kicked in,
  and the stream still closed;
* ``stalled``  — the frontier made no progress for the give-up window; the
  watchdog stops the experiment with a structured :class:`StallDiagnosis`
  instead of letting it spin forever.

On each detected stall the watchdog pokes its ``on_stall`` hook (wired to
:meth:`ResilientMigrationController.nudge` by the harness) so a stalled
migration step is retried immediately rather than waiting out its timeout.

The watchdog is also the simulation's clock-keeper under chaos: its
periodic check events keep simulated time moving across windows where the
dataflow itself has nothing scheduled (e.g. everything lost to a partition),
which is what gives timeouts and restarts a chance to fire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.runtime_events.events import WatchdogRecovered, WatchdogStalled


@dataclass(frozen=True)
class WatchdogConfig:
    """Timing knobs of the liveness watchdog (simulated seconds)."""

    poll_interval_s: float = 0.25
    stall_after_s: float = 2.0
    give_up_after_s: float = 20.0

    def __post_init__(self) -> None:
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if not (0 < self.stall_after_s <= self.give_up_after_s):
            raise ValueError(
                "need 0 < stall_after_s <= give_up_after_s, got "
                f"{self.stall_after_s} / {self.give_up_after_s}"
            )


@dataclass
class StallDiagnosis:
    """Structured explanation of why the frontier is not advancing."""

    at: float
    last_advance_at: float
    frontier: tuple
    dead_workers: tuple = ()
    holding_capabilities: tuple = ()  # (op index, op name, times)
    in_flight_channels: tuple = ()  # (channel index, src op, dst op, times)
    notes: list[str] = field(default_factory=list)

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"frontier stalled at {self.frontier!r} "
            f"(no advance since t={self.last_advance_at:.3f}s, "
            f"observed at t={self.at:.3f}s)"
        ]
        if self.dead_workers:
            lines.append(f"dead workers: {list(self.dead_workers)}")
        for op, name, times in self.holding_capabilities:
            lines.append(f"op {op} ({name}) holds capabilities at {times!r}")
        for ch, src, dst, times in self.in_flight_channels:
            lines.append(
                f"channel {ch} ({src}->{dst}) has in-flight batches at {times!r}"
            )
        lines.extend(self.notes)
        return "\n".join(lines)


class LivenessWatchdog:
    """Detects, reports, and (via ``on_stall``) breaks frontier stalls."""

    def __init__(
        self,
        runtime,
        probe,
        config: Optional[WatchdogConfig] = None,
        injector=None,
        on_stall: Optional[Callable[[StallDiagnosis], None]] = None,
    ) -> None:
        self._runtime = runtime
        self._probe = probe
        self.config = config if config is not None else WatchdogConfig()
        self._injector = injector
        self._on_stall = on_stall
        self._started = False
        self._stopped = False
        self._stalled = False
        self._stall_began_at = 0.0
        self.last_advance_at = 0.0
        self.verdict: Optional[str] = None
        self.failed = False
        self.recoveries = 0
        self.diagnoses: list[StallDiagnosis] = []

    def start(self) -> None:
        """Begin watching; idempotent."""
        if self._started:
            return
        self._started = True
        self.last_advance_at = self._runtime.sim.now
        self._probe.on_advance(self._on_advance)
        self._schedule_check()

    def stop(self) -> None:
        """Stop rescheduling checks (the pending one becomes a no-op)."""
        self._stopped = True

    def _schedule_check(self) -> None:
        self._runtime.sim.schedule(self.config.poll_interval_s, self._check)

    def _on_advance(self, frontier) -> None:
        now = self._runtime.sim.now
        self.last_advance_at = now
        if self._stalled:
            self._stalled = False
            self.recoveries += 1
            trace = self._runtime.sim.trace
            if trace.wants_recovery:
                trace.publish(
                    WatchdogRecovered(
                        at=now, stalled_for_s=now - self._stall_began_at
                    )
                )

    def _check(self) -> None:
        if self._stopped:
            return
        if self._probe.done():
            self.verdict = "recovered" if self.recoveries else "completed"
            self._stopped = True
            return
        now = self._runtime.sim.now
        idle_for = now - self.last_advance_at
        if idle_for >= self.config.give_up_after_s:
            self.verdict = "stalled"
            self.failed = True
            self._stopped = True
            self.diagnoses.append(self.diagnose())
            return
        if idle_for >= self.config.stall_after_s and not self._stalled:
            self._stalled = True
            self._stall_began_at = self.last_advance_at
            diagnosis = self.diagnose()
            self.diagnoses.append(diagnosis)
            trace = self._runtime.sim.trace
            if trace.wants_recovery:
                trace.publish(
                    WatchdogStalled(
                        at=now,
                        last_advance_at=self.last_advance_at,
                        frontier=tuple(self._probe.frontier()),
                    )
                )
            if self._on_stall is not None:
                self._on_stall(diagnosis)
        self._schedule_check()

    def diagnose(self) -> StallDiagnosis:
        """Snapshot who is holding the frontier back right now."""
        runtime = self._runtime
        tracker = runtime.tracker
        graph = runtime.graph
        holding = []
        for desc in graph.operators:
            times = tuple(tracker.capabilities(desc.index).frontier())
            if times:
                holding.append((desc.index, desc.name, times))
        in_flight = []
        for channel in graph.channels:
            times = tuple(tracker.in_flight(channel.index).frontier())
            if times:
                in_flight.append(
                    (channel.index, channel.src_op, channel.dst_op, times)
                )
        dead = ()
        notes = []
        if self._injector is not None:
            dead = tuple(self._injector.dead_workers())
            if dead:
                notes.append(
                    "crashed workers cannot drain the above; recovery must "
                    "retarget their bins or restart the process"
                )
        return StallDiagnosis(
            at=runtime.sim.now,
            last_advance_at=self.last_advance_at,
            frontier=tuple(self._probe.frontier()),
            dead_workers=dead,
            holding_capabilities=tuple(holding),
            in_flight_channels=tuple(in_flight),
            notes=notes,
        )
