"""Migration cost and benefit models.

The paper's Figure 18 shows migration duration proportional to migrated
state size; its latency figures show per-step impact dominated by the
largest single-worker shipment of the step.  The planner prices candidate
plans with exactly that structure:

``move cost``      serialize + ship + install seconds for one bin,
                   linear in the bin's state bytes;
``step cost``      per-step overhead (control propagation, drain,
                   catch-up) plus the slowest worker's serial work —
                   sources serialize their moves back-to-back,
                   destinations install theirs back-to-back;
``plan cost``      sum over steps (completion-paced controllers issue
                   steps serially).

Rates start from the simulator's own :class:`~repro.sim.cost.CostModel`
priors and are *calibrated* from the trace bus: every
``BinStateExtracted`` / ``BinStateInstalled`` refines the per-byte
serialize/install rates, every ``MigrationStepOutcome`` refines the
per-step overhead.  After one observed migration the model predicts from
measurements, not priors.

The benefit side projects worker loads under a candidate assignment and
scores the drop in max/mean imbalance; the policy gates adoption on
(benefit, cost) together.
"""

from __future__ import annotations

from typing import Optional

from repro.megaphone.control import BinnedConfiguration
from repro.megaphone.migration import MigrationPlan
from repro.planner.telemetry import imbalance_ratio
from repro.runtime_events.bus import TraceBus
from repro.runtime_events.events import (
    TOPIC_MIGRATION,
    BinStateExtracted,
    BinStateInstalled,
    MigrationStepOutcome,
)
from repro.sim.cost import CostModel


class MigrationCostModel:
    """Predicts migration latency impact; self-calibrates from the bus.

    Purely observational on the bus (records event data only); all
    prediction methods are pull-based queries.
    """

    def __init__(
        self,
        bus: Optional[TraceBus] = None,
        prior: Optional[CostModel] = None,
        bandwidth_bytes_per_s: float = 1.25e9,
        network_latency_s: float = 40e-6,
        overhead_prior_s: float = 0.02,
    ) -> None:
        cost = prior if prior is not None else CostModel()
        self._prior_ser = cost.ser_byte_cost
        self._prior_deser = cost.deser_byte_cost
        self._bandwidth = bandwidth_bytes_per_s
        self._latency = network_latency_s
        self._overhead_prior = overhead_prior_s
        # Calibration accumulators (totals; rates are ratios of totals, so
        # large bins weigh in proportionally).
        self._ser_bytes = 0.0
        self._ser_seconds = 0.0
        self._deser_bytes = 0.0
        self._deser_seconds = 0.0
        # Per-kind accumulators ("full" / "base" / "delta"): the delta
        # migration path serializes dirty subsets, whose per-byte cost can
        # differ from whole-bin shipment (key filtering dominates small
        # deltas).  kind -> [bytes, seconds].
        self._ser_kind: dict = {}
        self._deser_kind: dict = {}
        self._overhead_sum = 0.0
        self._overhead_count = 0
        self._pending_step_bytes: dict = {}
        self.moves_observed = 0
        self.steps_observed = 0
        self._unsubscribe = None
        if bus is not None:
            self._unsubscribe = bus.subscribe(
                self._on_event, topics=(TOPIC_MIGRATION,)
            )

    def close(self) -> None:
        """Detach from the bus."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # -- calibration intake --------------------------------------------------

    def _on_event(self, event) -> None:
        kind = type(event)
        if kind is BinStateExtracted:
            self._ser_bytes += event.size_bytes
            self._ser_seconds += event.serialize_s
            acc = self._ser_kind.setdefault(
                getattr(event, "kind", "full"), [0.0, 0.0]
            )
            acc[0] += event.size_bytes
            acc[1] += event.serialize_s
            self.moves_observed += 1
            pending = self._pending_step_bytes
            pending[event.time] = pending.get(event.time, 0.0) + event.size_bytes
        elif kind is BinStateInstalled:
            self._deser_bytes += event.size_bytes
            self._deser_seconds += event.deserialize_s
            acc = self._deser_kind.setdefault(
                getattr(event, "kind", "full"), [0.0, 0.0]
            )
            acc[0] += event.size_bytes
            acc[1] += event.deserialize_s
        elif kind is MigrationStepOutcome:
            bytes_moved = self._pending_step_bytes.pop(event.time, 0.0)
            if event.abandoned:
                return
            modeled = bytes_moved * (
                self.ser_rate + self.deser_rate + 1.0 / self._bandwidth
            )
            overhead = event.duration_s - modeled - self._latency
            if overhead > 0.0:
                self._overhead_sum += overhead
                self._overhead_count += 1
            self.steps_observed += 1

    # -- calibrated rates ----------------------------------------------------

    @property
    def ser_rate(self) -> float:
        """Seconds per byte to serialize (calibrated, else prior)."""
        if self._ser_bytes > 0.0:
            return self._ser_seconds / self._ser_bytes
        return self._prior_ser

    @property
    def deser_rate(self) -> float:
        """Seconds per byte to install (calibrated, else prior)."""
        if self._deser_bytes > 0.0:
            return self._deser_seconds / self._deser_bytes
        return self._prior_deser

    def ser_rate_for(self, kind: str) -> float:
        """Seconds per byte to serialize a ``kind`` payload.

        Falls back to the aggregate :attr:`ser_rate` (and through it the
        prior) until that kind has been observed.
        """
        acc = self._ser_kind.get(kind)
        if acc is not None and acc[0] > 0.0:
            return acc[1] / acc[0]
        return self.ser_rate

    def deser_rate_for(self, kind: str) -> float:
        """Seconds per byte to install a ``kind`` payload (with the same
        fallback chain as :meth:`ser_rate_for`)."""
        acc = self._deser_kind.get(kind)
        if acc is not None and acc[0] > 0.0:
            return acc[1] / acc[0]
        return self.deser_rate

    @property
    def overhead_s(self) -> float:
        """Per-step fixed seconds: control propagation, drain, catch-up."""
        if self._overhead_count > 0:
            return self._overhead_sum / self._overhead_count
        return self._overhead_prior

    @property
    def calibrated(self) -> bool:
        """Whether any observed migration has refined the priors."""
        return self.moves_observed > 0

    # -- prediction ----------------------------------------------------------

    def predict_move_s(self, size_bytes: float, kind: str = "full") -> float:
        """Seconds to extract, ship, and install one ``kind`` payload of
        ``size_bytes`` (no per-step overhead; monotone in state size)."""
        return (
            size_bytes * (self.ser_rate_for(kind) + self.deser_rate_for(kind))
            + size_bytes / self._bandwidth
            + self._latency
        )

    def predict_step_s(self, moves: list, kind: str = "full") -> float:
        """Seconds for one step of ``(src, dst, size_bytes)`` moves.

        Per-worker work is serial: a source serializes its moves
        back-to-back, a destination installs back-to-back; the step
        completes with the slowest of each, plus shipping and overhead.
        ``kind`` selects which calibrated per-byte rates price the moves.
        """
        if not moves:
            return 0.0
        ser = self.ser_rate_for(kind)
        deser = self.deser_rate_for(kind)
        src_s: dict[int, float] = {}
        dst_s: dict[int, float] = {}
        total_bytes = 0.0
        for src, dst, size in moves:
            src_s[src] = src_s.get(src, 0.0) + size * ser
            dst_s[dst] = dst_s.get(dst, 0.0) + size * deser
            total_bytes += size
        return (
            self.overhead_s
            + max(src_s.values())
            + total_bytes / self._bandwidth
            + self._latency
            + max(dst_s.values())
        )

    def predict_plan_s(
        self,
        plan: MigrationPlan,
        current: BinnedConfiguration,
        bin_bytes: dict[int, float],
        dirty_fraction: Optional[float] = None,
    ) -> float:
        """Seconds to execute ``plan`` from ``current`` under completion
        pacing (steps run serially).

        With ``dirty_fraction`` set, prices the *delta* protocol instead:
        the base snapshot ships ahead of the step (off the latency-critical
        path, overlapped with processing), so each step's critical work is
        the delta — ``dirty_fraction`` of the bin's bytes at the calibrated
        delta rates.
        """
        total = 0.0
        config = current
        kind = "full" if dirty_fraction is None else "delta"
        scale = 1.0 if dirty_fraction is None else max(0.0, dirty_fraction)
        for step in plan.steps:
            moves = [
                (
                    config.worker_of(inst.bin),
                    inst.worker,
                    float(bin_bytes.get(inst.bin, 0.0)) * scale,
                )
                for inst in step.insts
            ]
            total += self.predict_step_s(moves, kind=kind)
            config = config.apply(list(step.insts))
        return total

    def bytes_for_budget(self, budget_s: float) -> float:
        """Largest per-worker shipment fitting one step in ``budget_s``
        seconds (the SLO-pacing knob: the search caps each step's
        per-worker bytes at this)."""
        per_byte = self.ser_rate + self.deser_rate + 1.0 / self._bandwidth
        headroom = budget_s - self.overhead_s - self._latency
        if headroom <= 0.0 or per_byte <= 0.0:
            return 0.0
        return headroom / per_byte


# -- benefit model ---------------------------------------------------------------


def projected_worker_loads(
    bin_load: dict[int, float],
    config: BinnedConfiguration,
    num_workers: int,
) -> dict[int, float]:
    """Per-worker load if ``config`` owned the bins generating
    ``bin_load`` (workers with no bins project to zero)."""
    loads = {w: 0.0 for w in range(num_workers)}
    for bin_id, load in bin_load.items():
        if 0 <= bin_id < len(config.assignment):
            loads[config.worker_of(bin_id)] = (
                loads.get(config.worker_of(bin_id), 0.0) + load
            )
    return loads


def imbalance_gain(
    bin_load: dict[int, float],
    current: BinnedConfiguration,
    target: BinnedConfiguration,
    num_workers: int,
) -> float:
    """Drop in max/mean imbalance moving from ``current`` to ``target``
    under the observed per-bin load (positive = target is better)."""
    before = imbalance_ratio(
        projected_worker_loads(bin_load, current, num_workers)
    )
    after = imbalance_ratio(
        projected_worker_loads(bin_load, target, num_workers)
    )
    return before - after
