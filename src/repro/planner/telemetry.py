"""Load telemetry: sliding-window per-bin heat and per-worker load.

The paper's premise (§1, §5.3) is that streaming systems need to *react*
to load imbalance — hot keys, drifting key distributions, scale events —
by migrating state.  Reacting requires measurement.  This module samples
each worker's :class:`~repro.megaphone.bins.BinStore` statistics on a
fixed simulated-time cadence and maintains:

* per-bin record throughput over a sliding window (the bin "heat" the
  planner packs), reset-aware across migrations (extraction clears a
  backend's per-bin counters, so deltas are recomputed from zero after a
  bin moves);
* per-bin state bytes (what a move of the bin would ship);
* per-worker load — the sum of its resident bins' heat — published as
  :class:`~repro.runtime_events.events.WorkerLoadSampled`;
* a skew verdict from :class:`SkewDetector`, hysteresis-filtered so a
  single noisy sample neither triggers nor clears a migration.

``LoadTelemetry`` is a *behavioral* component, not a bus subscriber: it
schedules its own sampling events on the simulator (like the chaos
injector or a controller), and only publishes to the bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.runtime_events.events import SkewCleared, SkewDetected, WorkerLoadSampled


@dataclass(frozen=True)
class TelemetryConfig:
    """Sampling cadence, window, and skew-detector hysteresis."""

    sample_s: float = 0.25  # simulated seconds between samples
    window_s: float = 2.0  # sliding window the heat estimate covers
    # Hysteresis: skew triggers when max/mean load exceeds trigger_ratio
    # for trigger_samples consecutive samples, and clears only when it
    # falls below release_ratio for release_samples consecutive samples.
    trigger_ratio: float = 1.5
    release_ratio: float = 1.2
    trigger_samples: int = 2
    release_samples: int = 2

    @property
    def window_samples(self) -> int:
        return max(1, int(round(self.window_s / self.sample_s)))


class SkewDetector:
    """Hysteresis filter over the worker-load imbalance ratio.

    Two thresholds with consecutive-sample debouncing: the detector flips
    to *skewed* after ``trigger_samples`` samples at or above
    ``trigger_ratio``, and back after ``release_samples`` samples at or
    below ``release_ratio``.  In between (the hysteresis band) it holds
    its state, so a ratio oscillating around one threshold cannot make
    the planner thrash.
    """

    def __init__(self, config: TelemetryConfig) -> None:
        self._config = config
        self.skewed = False
        self._above = 0
        self._below = 0

    def observe(self, ratio: float) -> Optional[str]:
        """Feed one imbalance sample; returns ``"triggered"`` /
        ``"cleared"`` on a state change, else None."""
        cfg = self._config
        if not self.skewed:
            if ratio >= cfg.trigger_ratio:
                self._above += 1
                if self._above >= cfg.trigger_samples:
                    self.skewed = True
                    self._above = 0
                    self._below = 0
                    return "triggered"
            else:
                self._above = 0
            return None
        if ratio <= cfg.release_ratio:
            self._below += 1
            if self._below >= cfg.release_samples:
                self.skewed = False
                self._above = 0
                self._below = 0
                return "cleared"
        else:
            self._below = 0
        return None


class LoadTelemetry:
    """Samples per-worker bin stats into sliding-window load estimates."""

    def __init__(
        self,
        runtime,
        op,
        config: Optional[TelemetryConfig] = None,
        num_workers: Optional[int] = None,
    ) -> None:
        self._runtime = runtime
        self._op = op
        self.config = config if config is not None else TelemetryConfig()
        self._num_workers = (
            num_workers if num_workers is not None else len(runtime.workers)
        )
        self._store_key = f"megaphone:{op.config.name}"
        self.detector = SkewDetector(self.config)
        # Per-bin cumulative record counts from the previous sample, and
        # the sliding window of per-sample deltas.
        self._prev_records: dict[int, int] = {}
        self._windows: dict[int, list[int]] = {}
        self._bin_bytes: dict[int, int] = {}
        self._owner: dict[int, int] = {}
        self.samples = 0
        self._stopped = False
        self._last_ratio = 0.0

    # -- sampling loop -------------------------------------------------------

    def start(self, at_s: float = 0.0) -> None:
        """Begin sampling at the given simulated time."""
        self._runtime.sim.schedule_at(at_s, self._sample)

    def stop(self) -> None:
        """Stop sampling at the next tick."""
        self._stopped = True

    def sample_now(self) -> None:
        """Take one sample immediately (also reschedules the next tick;
        harmless when :meth:`stop` follows)."""
        self._sample()

    def _sample(self) -> None:
        if self._stopped:
            return
        sim = self._runtime.sim
        keep = self.config.window_samples
        seen: set[int] = set()
        for worker in range(self._num_workers):
            store = self._runtime.workers[worker].shared.get(self._store_key)
            if store is None:
                continue
            for bin_id, stats in store.stats().items():
                seen.add(bin_id)
                self._owner[bin_id] = worker
                self._bin_bytes[bin_id] = int(stats.total_bytes)
                current = stats.records
                previous = self._prev_records.get(bin_id, 0)
                # Reset-aware delta: migration extracts the bin and clears
                # its backend counters, so a smaller cumulative count means
                # the count restarted from zero on the new owner.
                delta = current - previous if current >= previous else current
                self._prev_records[bin_id] = current
                window = self._windows.setdefault(bin_id, [])
                window.append(delta)
                if len(window) > keep:
                    del window[: len(window) - keep]
        # Bins that vanished (mid-migration) keep their last owner/window;
        # they re-appear on the destination at the next sample.
        self.samples += 1
        loads = self.worker_load()
        trace = sim.trace
        if trace.wants_planner:
            for worker in range(self._num_workers):
                store = self._runtime.workers[worker].shared.get(self._store_key)
                trace.publish(
                    WorkerLoadSampled(
                        worker=worker,
                        load=loads.get(worker, 0.0),
                        bins=len(store.resident_bins()) if store else 0,
                        state_bytes=(
                            store.total_state_size() if store else 0
                        ),
                        at=sim.now,
                    )
                )
        ratio = self.imbalance()
        self._last_ratio = ratio
        change = self.detector.observe(ratio)
        if change == "triggered" and trace.wants_planner:
            hot = max(loads, key=lambda w: loads[w]) if loads else -1
            trace.publish(
                SkewDetected(
                    ratio=ratio,
                    trigger=self.config.trigger_ratio,
                    hot_worker=hot,
                    at=sim.now,
                )
            )
        elif change == "cleared" and trace.wants_planner:
            trace.publish(
                SkewCleared(
                    ratio=ratio, release=self.config.release_ratio, at=sim.now
                )
            )
        sim.schedule(self.config.sample_s, self._sample)

    # -- queries -------------------------------------------------------------

    def bin_load(self) -> dict[int, float]:
        """Windowed records/s per bin (the heat the planner packs)."""
        span = self.config.sample_s * self.config.window_samples
        return {
            bin_id: sum(window) / span
            for bin_id, window in self._windows.items()
        }

    def bin_bytes(self) -> dict[int, int]:
        """Last-sampled state bytes per bin (what a move would ship)."""
        return dict(self._bin_bytes)

    def owner_of(self) -> dict[int, int]:
        """Last-observed resident worker per bin."""
        return dict(self._owner)

    def worker_load(self) -> dict[int, float]:
        """Windowed records/s per worker (sum over its resident bins)."""
        loads = {w: 0.0 for w in range(self._num_workers)}
        for bin_id, load in self.bin_load().items():
            owner = self._owner.get(bin_id)
            if owner is not None:
                loads[owner] = loads.get(owner, 0.0) + load
        return loads

    def imbalance(self) -> float:
        """Max/mean worker load (1.0 = perfectly balanced, 0 = no load)."""
        return imbalance_ratio(self.worker_load())

    @property
    def skewed(self) -> bool:
        """The detector's current (hysteresis-filtered) verdict."""
        return self.detector.skewed

    @property
    def last_ratio(self) -> float:
        """The most recent raw imbalance sample."""
        return self._last_ratio

    @property
    def observed_window_s(self) -> float:
        """Simulated seconds of load the current estimates cover."""
        return self.config.sample_s * min(
            self.samples, self.config.window_samples
        )


def imbalance_ratio(loads: dict[int, float]) -> float:
    """Max/mean over the load map (0.0 when empty or all-zero)."""
    if not loads:
        return 0.0
    total = sum(loads.values())
    if total <= 0.0:
        return 0.0
    mean = total / len(loads)
    return max(loads.values()) / mean
