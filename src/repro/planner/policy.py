"""The closed-loop planner: observe, decide, migrate, cool down.

This is the component the paper leaves to "an external controller"
(§4.4): it watches :class:`~repro.planner.telemetry.LoadTelemetry`,
and when the skew detector is armed it searches a target configuration
(:mod:`repro.planner.search`), prices the move
(:mod:`repro.planner.cost`), and — if the projected imbalance gain
clears the cost/benefit gate — feeds the plan into an ordinary
:class:`~repro.megaphone.controller.MigrationController`.  Megaphone
itself never knows who authored the plan.

Safeguards against thrashing and latency damage:

* **hysteresis** — decisions only start when the detector (not a single
  sample) says skewed;
* **cooldown** — after an adopted migration, no new plan for
  ``cooldown_s`` simulated seconds, so the telemetry window can refill
  with post-move observations;
* **cost/benefit gate** — plans whose projected imbalance gain is below
  ``min_gain``, or whose predicted duration exceeds ``max_cost_s``, are
  rejected (and traced as such);
* **SLO pacing** — each step's shipment is capped at the bytes the cost
  model prices inside ``slo_step_s``, so no single step stalls the
  pipeline longer than the budget.

``propose_only=True`` turns the planner into an advisor: plans are
searched, priced, traced, and recorded on the report, but never
executed — the CLI's observe→propose mode and the CI smoke job use this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.megaphone.control import BinnedConfiguration
from repro.megaphone.controller import MigrationController
from repro.megaphone.migration import MigrationPlan
from repro.megaphone.plan_io import PlanProvenance
from repro.planner.cost import MigrationCostModel, imbalance_gain
from repro.planner.search import plan_moves, search_target
from repro.planner.telemetry import LoadTelemetry, TelemetryConfig
from repro.runtime_events.events import PlanAdopted, PlanProposed, PlanRejected


@dataclass
class PlannerConfig:
    """Tuning of the closed-loop migration policy."""

    objective: str = "balance"
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    decide_s: float = 0.5  # simulated seconds between decision points
    start_s: float = 0.0  # first decision point
    stop_s: Optional[float] = None  # no decisions after this
    cooldown_s: float = 2.0  # quiet period after an adopted plan
    min_gain: float = 0.1  # required drop in max/mean imbalance
    max_cost_s: Optional[float] = None  # reject plans priced above this
    slo_step_s: Optional[float] = 0.05  # per-step latency budget
    max_moves: Optional[int] = None  # cap on bins a single plan moves
    propose_only: bool = False  # search + trace, never execute
    gap_s: float = 0.0  # drain gap handed to the controller
    # Objective-specific options (drain_workers, num_workers, ...).
    objective_options: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Proposal:
    """One decision-point outcome, as recorded on the report."""

    at: float
    objective: str
    moves: int
    steps: int
    predicted_cost_s: float
    predicted_gain: float
    adopted: bool
    reason: str  # "" when adopted
    plan: MigrationPlan


@dataclass
class PlannerReport:
    """Everything a run reports about the planner's decisions."""

    proposals: list[Proposal] = field(default_factory=list)
    decisions: int = 0

    @property
    def adopted(self) -> list[Proposal]:
        return [p for p in self.proposals if p.adopted]

    @property
    def rejected(self) -> list[Proposal]:
        return [p for p in self.proposals if not p.adopted]


class ClosedLoopPlanner:
    """Periodic decision loop wiring telemetry → search → cost → control.

    A behavioral component: schedules its own decision events and may
    start migrations.  ``controller_factory(plan)`` builds the executor —
    defaults to a completion-paced :class:`MigrationController`; the
    harness substitutes a resilient one when chaos is enabled.
    """

    def __init__(
        self,
        runtime,
        op,
        control_group,
        ticker,
        probe,
        telemetry: LoadTelemetry,
        cost_model: MigrationCostModel,
        config: Optional[PlannerConfig] = None,
        controller_factory: Optional[Callable[[MigrationPlan], object]] = None,
    ) -> None:
        self._runtime = runtime
        self._op = op
        self._group = control_group
        self._ticker = ticker
        self._probe = probe
        self.telemetry = telemetry
        self.cost_model = cost_model
        self.config = config if config is not None else PlannerConfig()
        self._controller_factory = controller_factory
        self.current: BinnedConfiguration = op.config.initial
        self.report = PlannerReport()
        self.controllers: list = []
        self._active: Optional[object] = None
        self._cooldown_until = float("-inf")
        self._stopped = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin deciding at ``config.start_s`` simulated seconds."""
        self._runtime.sim.schedule_at(self.config.start_s, self._decide)

    def stop(self) -> None:
        """No further decisions (running migrations finish normally)."""
        self._stopped = True

    @property
    def done(self) -> bool:
        """No migration in flight (the experiment's completion check)."""
        return self._active is None or self._active.done

    # -- the decision loop ---------------------------------------------------

    def _decide(self) -> None:
        sim = self._runtime.sim
        cfg = self.config
        if self._stopped or (cfg.stop_s is not None and sim.now >= cfg.stop_s):
            return
        try:
            self._decide_once()
        finally:
            self.report.decisions += 1
            sim.schedule(cfg.decide_s, self._decide)

    def _decide_once(self) -> None:
        sim = self._runtime.sim
        cfg = self.config
        if self._active is not None and not self._active.done:
            return  # one migration at a time
        if sim.now < self._cooldown_until:
            return
        # The skew detector gates reactive balancing only; drain/spread
        # are operator-requested reshapes that must run on a balanced
        # cluster too.
        if cfg.objective == "balance" and not self.telemetry.skewed:
            return
        proposal = self.propose()
        if proposal is None:
            return
        if proposal.adopted and not cfg.propose_only:
            self._execute(proposal.plan)
            self._cooldown_until = sim.now + cfg.cooldown_s

    def propose(self) -> Optional[Proposal]:
        """Search, price, gate, and trace one plan (None = nothing to do).

        Pure decision logic: never schedules or executes; callers decide
        what to do with an adopted proposal.
        """
        sim = self._runtime.sim
        cfg = self.config
        trace = sim.trace
        num_workers = cfg.objective_options.get(
            "num_workers", len(self._runtime.workers)
        )
        target = search_target(
            cfg.objective,
            self.current,
            self.telemetry,
            **{
                "max_moves": cfg.max_moves,
                **cfg.objective_options,
                "num_workers": num_workers,
            },
        )
        bin_bytes = self.telemetry.bin_bytes()
        max_step_bytes = None
        if cfg.slo_step_s is not None:
            max_step_bytes = self.cost_model.bytes_for_budget(cfg.slo_step_s)
            if max_step_bytes <= 0.0:
                max_step_bytes = None
        plan = plan_moves(
            self.current,
            target,
            bin_bytes=bin_bytes,
            max_step_bytes=max_step_bytes,
        )
        if not plan.steps:
            return None
        plan.provenance = PlanProvenance(
            source="planner",
            objective=cfg.objective,
            window_s=self.telemetry.observed_window_s,
            created_at=sim.now,
        )
        cost_s = self.cost_model.predict_plan_s(plan, self.current, bin_bytes)
        gain = imbalance_gain(
            self.telemetry.bin_load(), self.current, target, num_workers
        )
        if trace.wants_planner:
            trace.publish(
                PlanProposed(
                    objective=cfg.objective,
                    moves=plan.total_moves,
                    steps=len(plan.steps),
                    predicted_cost_s=cost_s,
                    predicted_gain=gain,
                    at=sim.now,
                )
            )
        reason = self._gate(cost_s, gain)
        adopted = reason == ""
        if trace.wants_planner:
            if adopted:
                trace.publish(
                    PlanAdopted(
                        objective=cfg.objective,
                        moves=plan.total_moves,
                        steps=len(plan.steps),
                        predicted_cost_s=cost_s,
                        predicted_gain=gain,
                        at=sim.now,
                    )
                )
            else:
                trace.publish(
                    PlanRejected(
                        objective=cfg.objective,
                        reason=reason,
                        predicted_cost_s=cost_s,
                        predicted_gain=gain,
                        at=sim.now,
                    )
                )
        proposal = Proposal(
            at=sim.now,
            objective=cfg.objective,
            moves=plan.total_moves,
            steps=len(plan.steps),
            predicted_cost_s=cost_s,
            predicted_gain=gain,
            adopted=adopted,
            reason=reason,
            plan=plan,
        )
        self.report.proposals.append(proposal)
        return proposal

    def _gate(self, cost_s: float, gain: float) -> str:
        """The cost/benefit gate; "" passes, anything else is the reason."""
        cfg = self.config
        # Drain/spread objectives reshape the cluster on request — the
        # imbalance gain is not what they optimize, so only balance-style
        # objectives are gated on it.
        if cfg.objective == "balance" and gain < cfg.min_gain:
            return f"gain {gain:.3f} below min_gain {cfg.min_gain:.3f}"
        if cfg.max_cost_s is not None and cost_s > cfg.max_cost_s:
            return f"cost {cost_s:.3f}s above max_cost_s {cfg.max_cost_s:.3f}s"
        return ""

    def _execute(self, plan: MigrationPlan) -> None:
        if self._controller_factory is not None:
            controller = self._controller_factory(plan)
        else:
            controller = MigrationController(
                self._runtime,
                self._group,
                self._ticker,
                self._probe,
                plan,
                gap_s=self.config.gap_s,
            )
        controller.start_at(self._runtime.sim.now)
        self.controllers.append(controller)
        self._active = controller
        # The planner's view of ownership advances with the plan it just
        # issued; the telemetry's owner map converges as bins land.
        for step in plan.steps:
            self.current = self.current.apply(list(step.insts))
