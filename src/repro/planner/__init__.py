"""The closed-loop migration planner (the paper's "external controller").

Megaphone executes migration plans; this package decides them.  The
pipeline is observe → search → price → gate → execute:

* :mod:`repro.planner.telemetry` — sliding-window per-bin heat and
  per-worker load, with a hysteresis skew detector;
* :mod:`repro.planner.search` — objective-driven target search and
  interference-aware step grouping;
* :mod:`repro.planner.cost` — a self-calibrating migration cost model
  plus the projected-imbalance benefit model;
* :mod:`repro.planner.policy` — the closed-loop driver with cooldown,
  cost/benefit gating, and SLO pacing.

Plans the planner emits are ordinary
:class:`~repro.megaphone.migration.MigrationPlan` values (round-trippable
through :mod:`repro.megaphone.plan_io`); the executing controllers never
import this package.
"""

from repro.planner.cost import (
    MigrationCostModel,
    imbalance_gain,
    projected_worker_loads,
)
from repro.planner.policy import (
    ClosedLoopPlanner,
    PlannerConfig,
    PlannerReport,
    Proposal,
)
from repro.planner.search import (
    OBJECTIVES,
    PLANNER_STRATEGY,
    balanced_target,
    drain_target,
    plan_moves,
    search_target,
    spread_target,
)
from repro.planner.telemetry import (
    LoadTelemetry,
    SkewDetector,
    TelemetryConfig,
    imbalance_ratio,
)

__all__ = [
    "ClosedLoopPlanner",
    "LoadTelemetry",
    "MigrationCostModel",
    "OBJECTIVES",
    "PLANNER_STRATEGY",
    "PlannerConfig",
    "PlannerReport",
    "Proposal",
    "SkewDetector",
    "TelemetryConfig",
    "balanced_target",
    "drain_target",
    "imbalance_gain",
    "imbalance_ratio",
    "plan_moves",
    "projected_worker_loads",
    "search_target",
    "spread_target",
]
