"""Objective-driven plan search: targets and interference-aware steps.

Two halves, matching the split the paper's §4.4 leaves to the external
controller:

1. **Target search** — given the telemetry's per-bin load, find a target
   :class:`~repro.megaphone.control.BinnedConfiguration` optimizing an
   objective.  Three objectives are registered:

   * ``balance`` — greedy bin packing (move the hottest bin from the most
     loaded worker to the least loaded, while it improves) followed by a
     local-search swap pass, minimizing max/mean load;
   * ``drain`` — empty a worker (scale-in), spreading its bins across the
     survivors by load;
   * ``spread`` — populate fresh workers (scale-out) by pulling the
     hottest bins from existing ones until loads even out.

   Each mutates as few bins as possible: search starts from the current
   assignment, so unmoved bins cost nothing.

2. **Step grouping** — :func:`plan_moves` turns the moved-bin set into
   batched steps the paper's *optimized* strategy would accept: every
   step uses disjoint (source, destination) worker pairs (no worker
   serializes or installs two bins in one step), and an optional per-step
   byte cap keeps each step inside the cost model's SLO budget.  The
   result is a plain :class:`~repro.megaphone.migration.MigrationPlan` —
   byte-compatible with :mod:`repro.megaphone.plan_io` and executable by
   every existing controller with no planner imports.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.megaphone.control import BinnedConfiguration, ControlInst
from repro.megaphone.migration import MigrationPlan, MigrationStep

PLANNER_STRATEGY = "planner"


# -- target search ---------------------------------------------------------------


def _loads_by_worker(
    assignment: list[int], bin_load: dict[int, float], workers: list[int]
) -> dict[int, float]:
    loads = {w: 0.0 for w in workers}
    for bin_id, owner in enumerate(assignment):
        if owner in loads:
            loads[owner] += bin_load.get(bin_id, 0.0)
    return loads


def balanced_target(
    current: BinnedConfiguration,
    bin_load: dict[int, float],
    num_workers: Optional[int] = None,
    max_moves: Optional[int] = None,
) -> BinnedConfiguration:
    """Greedy rebalance plus local search, minimizing max/mean load.

    Greedy phase: repeatedly move the best bin from the most loaded
    worker to the least loaded — "best" being the largest bin whose move
    still improves the spread (load strictly under the current gap).
    Local-search phase: when single moves stop helping, try swapping one
    hot bin for a colder one between the extreme workers.  Bins with no
    observed load are never moved (moving them costs bytes and buys no
    balance).
    """
    assignment = list(current.assignment)
    if num_workers is None:
        num_workers = max(assignment) + 1
    workers = list(range(num_workers))
    loads = _loads_by_worker(assignment, bin_load, workers)
    moved: set[int] = set()
    budget = max_moves if max_moves is not None else len(assignment)

    def bins_on(worker: int) -> list[int]:
        return [b for b, w in enumerate(assignment) if w == worker]

    while len(moved) < budget:
        hot = max(workers, key=lambda w: loads[w])
        cold = min(workers, key=lambda w: loads[w])
        gap = loads[hot] - loads[cold]
        if gap <= 0.0:
            break
        # Largest movable bin that still shrinks the spread.
        candidates = [
            (bin_load.get(b, 0.0), b)
            for b in bins_on(hot)
            if 0.0 < bin_load.get(b, 0.0) < gap
        ]
        if candidates:
            load, bin_id = max(candidates)
            assignment[bin_id] = cold
            loads[hot] -= load
            loads[cold] += load
            moved.add(bin_id)
            continue
        # Local search: swap the hot worker's largest bin against a colder
        # bin of the cold worker when the exchange shrinks the spread.
        hot_bins = [
            (bin_load.get(b, 0.0), b)
            for b in bins_on(hot)
            if bin_load.get(b, 0.0) > 0.0
        ]
        cold_bins = [(bin_load.get(b, 0.0), b) for b in bins_on(cold)]
        best_swap = None
        for hot_load, hot_bin in hot_bins:
            for cold_load, cold_bin in cold_bins:
                shift = hot_load - cold_load
                if 0.0 < shift < gap:
                    if best_swap is None or shift > best_swap[0]:
                        best_swap = (shift, hot_bin, cold_bin)
        if best_swap is None or len(moved) + 2 > budget:
            break
        _, hot_bin, cold_bin = best_swap
        assignment[hot_bin], assignment[cold_bin] = cold, hot
        loads[hot] -= best_swap[0]
        loads[cold] += best_swap[0]
        moved.update((hot_bin, cold_bin))
    return BinnedConfiguration(tuple(assignment))


def drain_target(
    current: BinnedConfiguration,
    bin_load: dict[int, float],
    drain_workers: tuple,
    num_workers: Optional[int] = None,
) -> BinnedConfiguration:
    """Scale-in: move every bin off ``drain_workers``, packing each onto
    the least-loaded survivor (hottest bins placed first)."""
    assignment = list(current.assignment)
    if num_workers is None:
        num_workers = max(assignment) + 1
    draining = set(drain_workers)
    survivors = [w for w in range(num_workers) if w not in draining]
    if not survivors:
        raise ValueError("cannot drain every worker")
    loads = _loads_by_worker(assignment, bin_load, survivors)
    evicted = [
        (bin_load.get(b, 0.0), b)
        for b, w in enumerate(assignment)
        if w in draining
    ]
    for load, bin_id in sorted(evicted, reverse=True):
        dst = min(survivors, key=lambda w: (loads[w], w))
        assignment[bin_id] = dst
        loads[dst] += load
    return BinnedConfiguration(tuple(assignment))


def spread_target(
    current: BinnedConfiguration,
    bin_load: dict[int, float],
    num_workers: int,
) -> BinnedConfiguration:
    """Scale-out: rebalance onto ``num_workers`` workers, populating any
    that currently own nothing (delegates to the balance search with the
    widened worker range)."""
    return balanced_target(current, bin_load, num_workers=num_workers)


# -- step grouping ---------------------------------------------------------------


def plan_moves(
    current: BinnedConfiguration,
    target: BinnedConfiguration,
    bin_bytes: Optional[dict[int, float]] = None,
    max_step_bytes: Optional[float] = None,
    max_step_moves: Optional[int] = None,
) -> MigrationPlan:
    """Group the moved bins into interference-aware steps.

    Like the paper's optimized strategy, each step's moves use disjoint
    (source, destination) pairs, so no worker serializes or installs more
    than one bin per step.  ``max_step_bytes`` additionally caps the
    bytes any single step ships (the cost model's SLO budget);
    ``max_step_moves`` caps the step's move count.  Hottest-first
    ordering inside the rounds keeps the biggest moves earliest, when the
    most steps remain to absorb stragglers.
    """
    sizes = bin_bytes if bin_bytes is not None else {}
    moves = current.moved_bins(target)
    remaining = sorted(
        (
            (float(sizes.get(inst.bin, 0.0)), current.worker_of(inst.bin), inst)
            for inst in moves
        ),
        key=lambda item: (-item[0], item[2].bin),
    )
    steps: list[MigrationStep] = []
    while remaining:
        used_src: set[int] = set()
        used_dst: set[int] = set()
        step_bytes = 0.0
        round_insts: list[ControlInst] = []
        deferred = []
        for size, src, inst in remaining:
            fits = (
                src not in used_src
                and inst.worker not in used_dst
                and (
                    max_step_moves is None
                    or len(round_insts) < max_step_moves
                )
                and (
                    max_step_bytes is None
                    or not round_insts
                    or step_bytes + size <= max_step_bytes
                )
            )
            if fits:
                used_src.add(src)
                used_dst.add(inst.worker)
                step_bytes += size
                round_insts.append(inst)
            else:
                deferred.append((size, src, inst))
        if not round_insts:
            # Cannot happen (an empty round means remaining was empty),
            # but guard against a pathological cap configuration.
            round_insts = [deferred.pop(0)[2]]
        steps.append(MigrationStep(tuple(round_insts)))
        remaining = deferred
    return MigrationPlan(strategy=PLANNER_STRATEGY, steps=steps)


# -- objective registry ----------------------------------------------------------


def _balance_objective(current, telemetry, **options):
    return balanced_target(
        current,
        telemetry.bin_load(),
        num_workers=options.get("num_workers"),
        max_moves=options.get("max_moves"),
    )


def _drain_objective(current, telemetry, **options):
    drain = options.get("drain_workers")
    if not drain:
        raise ValueError("the drain objective needs drain_workers")
    return drain_target(
        current,
        telemetry.bin_load(),
        tuple(drain),
        num_workers=options.get("num_workers"),
    )


def _spread_objective(current, telemetry, **options):
    num_workers = options.get("num_workers")
    if num_workers is None:
        raise ValueError("the spread objective needs num_workers")
    return spread_target(current, telemetry.bin_load(), num_workers)


OBJECTIVES: dict[str, Callable] = {
    "balance": _balance_objective,
    "drain": _drain_objective,
    "spread": _spread_objective,
}


def search_target(
    objective: str, current: BinnedConfiguration, telemetry, **options
) -> BinnedConfiguration:
    """Run the named objective's target search."""
    try:
        fn = OBJECTIVES[objective]
    except KeyError:
        raise ValueError(
            f"unknown objective {objective!r}; pick one of {tuple(OBJECTIVES)}"
        ) from None
    return fn(current, telemetry, **options)
