"""Megaphone: latency-conscious state migration for streaming dataflows.

The paper's primary contribution, implemented as a library on the simulated
timely dataflow runtime in ``repro.timely`` — exactly as the original is a
library on unmodified Rust timely dataflow.

Public surface:

* operator constructors ``state_machine`` / ``unary`` / ``binary``
  (paper Listing 1), each returning a :class:`MigrateableOperator`;
* migration planning (``plan_all_at_once`` / ``plan_fluid`` /
  ``plan_batched`` / ``plan_optimized`` and ``make_plan``);
* the :class:`MigrationController` that feeds plans into the control stream
  and awaits per-step completion via frontier probes;
* binning and configuration primitives (``BinnedConfiguration``,
  ``ControlInst``, ``bin_of``, ``stable_hash``).
"""

from repro.megaphone.adaptive import AdaptiveConfig, AdaptiveMigrationController
from repro.megaphone.api import Notificator, binary, state_machine, unary
from repro.megaphone.bins import Bin, BinStore
from repro.megaphone.control import (
    BinnedConfiguration,
    ControlInst,
    bin_of,
    splitmix64,
    stable_hash,
)
from repro.megaphone.controller import (
    EpochTicker,
    MigrationController,
    MigrationResult,
    StepResult,
)
from repro.megaphone.migration import (
    STRATEGIES,
    MigrationPlan,
    MigrationStep,
    imbalanced_target,
    make_plan,
    plan_all_at_once,
    plan_batched,
    plan_fluid,
    plan_optimized,
    rebalanced_target,
)
from repro.megaphone.operators import (
    ApplicationContext,
    MigrateableOperator,
    MigrationProbe,
    build_migrateable,
)
from repro.megaphone.plan_io import (
    dump_configuration,
    dump_plan,
    load_configuration,
    load_plan,
    plan_from_dict,
    plan_to_dict,
)
from repro.megaphone.prefix import (
    Prefix,
    PrefixRouter,
    SplittableBinStore,
    plan_split_migration,
)
from repro.megaphone.routing import RoutingTable
from repro.megaphone.snapshot import (
    BinSnapshot,
    OperatorSnapshot,
    SnapshotCoordinator,
    restore_into,
)

__all__ = [
    "AdaptiveConfig",
    "AdaptiveMigrationController",
    "ApplicationContext",
    "BinSnapshot",
    "OperatorSnapshot",
    "Prefix",
    "PrefixRouter",
    "SnapshotCoordinator",
    "SplittableBinStore",
    "dump_configuration",
    "dump_plan",
    "load_configuration",
    "load_plan",
    "plan_from_dict",
    "plan_split_migration",
    "plan_to_dict",
    "restore_into",
    "Bin",
    "BinStore",
    "BinnedConfiguration",
    "ControlInst",
    "EpochTicker",
    "MigrateableOperator",
    "MigrationController",
    "MigrationPlan",
    "MigrationProbe",
    "MigrationResult",
    "MigrationStep",
    "Notificator",
    "RoutingTable",
    "STRATEGIES",
    "StepResult",
    "bin_of",
    "binary",
    "build_migrateable",
    "imbalanced_target",
    "make_plan",
    "plan_all_at_once",
    "plan_batched",
    "plan_fluid",
    "plan_optimized",
    "rebalanced_target",
    "splitmix64",
    "stable_hash",
    "state_machine",
    "unary",
]
