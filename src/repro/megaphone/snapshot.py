"""Bin-granular snapshots: programmable fine-grained checkpoints.

Paper §4.4 (fault tolerance): "Megaphone's migration mechanisms effectively
provide programmable snapshots on finer granularities, which could feed
back into finer-grained fault-tolerance mechanisms."  A migration already
produces a consistent, timestamp-aligned serialization of a bin — a
snapshot is the same extraction without the move, and since the backend
refactor it literally *is* the same code: every captured bin is a
:class:`~repro.state.BinPayload` from ``StateBackend.extract_bin`` +
codec, the one serialization path migration shipping and crash recovery
also use.

:class:`SnapshotCoordinator` waits (via the S output probe) until a chosen
logical time has fully passed, then captures every bin's state and pending
records.  The result can rebuild the operator's state in a fresh dataflow
through :func:`restore_into`.
"""

from __future__ import annotations

import copy
import pickle
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.megaphone.operators import MigrateableOperator
from repro.state.backend import BinPayload
from repro.state.registry import resolve_codec
from repro.timely.dataflow import Runtime
from repro.timely.timestamp import Timestamp


@dataclass
class BinSnapshot:
    """One bin's frozen, codec-serialized state."""

    bin_id: int
    worker: int
    payload: BinPayload
    size_bytes: int = 0

    @property
    def state(self) -> object:
        """The captured state, decoded (a fresh object per call)."""
        codec = resolve_codec(self.payload.codec)
        return codec.copy(codec.decode(self.payload.payload))

    @property
    def pending(self) -> list:
        """The captured pending ``(time, entry)`` records."""
        return list(self.payload.pending)


@dataclass
class OperatorSnapshot:
    """A consistent snapshot of one migrateable operator.

    The cut contains every update at or before ``time``; if the frontier
    jumped past several epochs at once, the cut extends to the frontier
    recorded in ``frontier_at_capture`` (it is always a consistent
    timestamp prefix — exactly the guarantee a migration relies on).
    """

    name: str
    time: Timestamp
    captured_at: float
    frontier_at_capture: tuple = ()
    bins: dict[int, BinSnapshot] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(b.size_bytes for b in self.bins.values())

    def assignment(self) -> dict[int, int]:
        """bin id -> worker at capture time."""
        return {b.bin_id: b.worker for b in self.bins.values()}


class SnapshotCoordinator:
    """Captures an operator's bins once a logical time has fully passed.

    The trigger is the same condition F uses to start a migration: when
    ``time`` can no longer appear in the S output frontier, every update
    before it has been applied, so extracting the bins (without removal)
    yields a consistent cut at ``time``.
    """

    def __init__(
        self,
        runtime: Runtime,
        op: MigrateableOperator,
        probe,
        time: Timestamp,
        on_complete: Optional[Callable[[OperatorSnapshot], None]] = None,
    ) -> None:
        self._runtime = runtime
        self._op = op
        self._probe = probe
        self._time = time
        self._on_complete = on_complete
        self.snapshot: Optional[OperatorSnapshot] = None
        probe.on_advance(self._check)
        # The time may already have passed.
        self._check(None)

    def _check(self, _frontier) -> None:
        if self.snapshot is not None or not self._probe.passed(self._time):
            return
        snapshot = OperatorSnapshot(
            name=self._op.config.name,
            time=self._time,
            captured_at=self._runtime.sim.now,
            frontier_at_capture=tuple(self._probe.frontier().elements()),
        )
        for worker in range(self._runtime.num_workers):
            shared = self._runtime.workers[worker].shared
            store = shared.get(f"megaphone:{self._op.config.name}")
            if store is None:
                continue
            for bin_id in store.resident_bins():
                payload = store.extract(bin_id, remove=False)
                snapshot.bins[bin_id] = BinSnapshot(
                    bin_id=bin_id,
                    worker=worker,
                    payload=payload,
                    size_bytes=payload.size_bytes,
                )
        self.snapshot = snapshot
        if self._on_complete is not None:
            self._on_complete(snapshot)


def snapshot_to_bytes(snapshot: OperatorSnapshot) -> bytes:
    """Serialize a snapshot to a durable byte string.

    This is the externalized form a real deployment would write to stable
    storage; :func:`snapshot_from_bytes` round-trips it losslessly (the
    property the snapshot test-suite checks, including empty bins).
    """
    payload = {
        "name": snapshot.name,
        "time": snapshot.time,
        "captured_at": snapshot.captured_at,
        "frontier_at_capture": tuple(snapshot.frontier_at_capture),
        "bins": [
            {
                "bin_id": b.bin_id,
                "worker": b.worker,
                "codec": b.payload.codec,
                "payload": b.payload.payload,
                "pending": list(b.payload.pending),
                "state_bytes": b.payload.state_bytes,
                "size_bytes": b.size_bytes,
                "keys": b.payload.keys,
            }
            for _, b in sorted(snapshot.bins.items())
        ],
    }
    return pickle.dumps(payload, protocol=4)


def snapshot_from_bytes(data: bytes) -> OperatorSnapshot:
    """Rebuild an :class:`OperatorSnapshot` from :func:`snapshot_to_bytes`."""
    payload = pickle.loads(data)
    snapshot = OperatorSnapshot(
        name=payload["name"],
        time=payload["time"],
        captured_at=payload["captured_at"],
        frontier_at_capture=tuple(payload["frontier_at_capture"]),
    )
    for raw in payload["bins"]:
        snapshot.bins[raw["bin_id"]] = BinSnapshot(
            bin_id=raw["bin_id"],
            worker=raw["worker"],
            payload=BinPayload(
                bin_id=raw["bin_id"],
                codec=raw["codec"],
                payload=raw["payload"],
                pending=list(raw["pending"]),
                state_bytes=raw["state_bytes"],
                size_bytes=raw["size_bytes"],
                keys=raw["keys"],
            ),
            size_bytes=raw["size_bytes"],
        )
    return snapshot


def restore_into(
    runtime: Runtime, op: MigrateableOperator, snapshot: OperatorSnapshot
) -> None:
    """Install a snapshot into a *fresh* (not yet fed) operator.

    Bins are placed on the workers recorded in the snapshot; the operator's
    initial configuration must match that placement (build it with
    ``BinnedConfiguration`` over ``snapshot.assignment()``), otherwise F's
    routing table and the stores would disagree.
    """
    for bin_snapshot in snapshot.bins.values():
        shared = runtime.workers[bin_snapshot.worker].shared
        key = f"megaphone:{op.config.name}"
        store = shared.get(key)
        if store is None:
            # Materialize the store exactly as S would on first use.
            from repro.megaphone.bins import BinStore

            store = BinStore(
                op.config.num_bins,
                op.config.state_factory,
                op.config.state_size_fn,
                bytes_per_key=runtime.cluster.cost.state_bytes_per_key,
                backend=op.config.state_backend,
                codec=op.config.codec,
                backend_options=op.config.backend_options,
                worker_id=bin_snapshot.worker,
            )
            for bin_id in op.config.initial.bins_of(bin_snapshot.worker):
                store.create(bin_id)
            shared[key] = store
        if not store.has(bin_snapshot.bin_id):
            raise ValueError(
                f"bin {bin_snapshot.bin_id} is not placed on worker "
                f"{bin_snapshot.worker} in the target configuration"
            )
        bin_ = store.restore_state(bin_snapshot.bin_id, bin_snapshot.payload)
        bin_.pending.extend(copy.deepcopy(bin_snapshot.pending))
        # Re-register notifications for the restored pending work, exactly
        # as S does when a migrated bin arrives.
        s_logic = runtime.logic_of(bin_snapshot.worker, op.s_op)
        ctx = runtime.workers[bin_snapshot.worker].contexts[op.s_op]
        for pending_time in bin_.pending.times():
            s_logic._schedule_bin(ctx, pending_time, bin_snapshot.bin_id)
        runtime.mark_progress()
