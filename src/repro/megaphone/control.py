"""Control commands: timestamped configuration updates.

Paper §3.3: state migration is driven by updates to the configuration
function, supplied as data along a timely dataflow stream.  Every update has
the form ``(time, bin, worker)`` — as of ``time``, the state and values for
``bin`` live at ``worker`` — where ``time`` is the record's logical
timestamp on the control stream.  All commands sharing one timestamp form
one atomic reconfiguration step.
"""

from __future__ import annotations

from dataclasses import dataclass



@dataclass(frozen=True)
class ControlInst:
    """One configuration update: move ``bin`` to ``worker``.

    The effective time is the logical timestamp the instruction carries on
    the control stream, not a field of the instruction itself.
    """

    bin: int
    worker: int


def splitmix64(value: int) -> int:
    """Deterministic 64-bit mixer used to spread keys across bins."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def stable_hash(key: object) -> int:
    """A deterministic 64-bit hash (Python's ``hash`` is salted per run).

    Integers hash through splitmix; strings and bytes through FNV-1a;
    tuples combine their components.
    """
    if isinstance(key, bool):
        return splitmix64(int(key))
    if isinstance(key, int):
        return splitmix64(key & 0xFFFFFFFFFFFFFFFF)
    if isinstance(key, str):
        key = key.encode("utf-8")
    if isinstance(key, bytes):
        h = 0xCBF29CE484222325
        for byte in key:
            h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return h
    if isinstance(key, tuple):
        h = 0x9E3779B97F4A7C15
        for part in key:
            h = splitmix64(h ^ stable_hash(part))
        return h
    raise TypeError(f"cannot stably hash {type(key).__name__}")


def bin_of(key_int: int, num_bins: int) -> int:
    """Map an integer key to a bin using the hash's most significant bits.

    Megaphone identifies bins by the top bits of the exchange hash (paper
    §4.2): low bits stay available for worker routing and hash-map
    placement, and similar keys do not collide into one bin.
    """
    if num_bins & (num_bins - 1) != 0 or num_bins <= 0:
        raise ValueError(f"num_bins must be a power of two, got {num_bins}")
    bits = num_bins.bit_length() - 1
    if bits == 0:
        return 0
    return splitmix64(key_int) >> (64 - bits)


@dataclass(frozen=True)
class BinnedConfiguration:
    """A full assignment of bins to workers at one instant."""

    assignment: tuple[int, ...]

    @classmethod
    def round_robin(cls, num_bins: int, num_workers: int) -> "BinnedConfiguration":
        """Bins dealt to workers in turn — the default initial placement."""
        return cls(tuple(b % num_workers for b in range(num_bins)))

    @classmethod
    def contiguous(cls, num_bins: int, num_workers: int) -> "BinnedConfiguration":
        """Bins split into contiguous worker ranges."""
        per = num_bins / num_workers
        return cls(tuple(min(int(b / per), num_workers - 1) for b in range(num_bins)))

    @property
    def num_bins(self) -> int:
        return len(self.assignment)

    def worker_of(self, bin_id: int) -> int:
        """Owner of ``bin_id``."""
        return self.assignment[bin_id]

    def bins_of(self, worker: int) -> list[int]:
        """Bins owned by ``worker``."""
        return [b for b, w in enumerate(self.assignment) if w == worker]

    def moved_bins(self, target: "BinnedConfiguration") -> list[ControlInst]:
        """The instructions needed to turn this configuration into ``target``."""
        if target.num_bins != self.num_bins:
            raise ValueError("configurations must have the same number of bins")
        return [
            ControlInst(bin=b, worker=w)
            for b, w in enumerate(target.assignment)
            if self.assignment[b] != w
        ]

    def apply(self, insts: list[ControlInst]) -> "BinnedConfiguration":
        """The configuration after applying ``insts``."""
        assignment = list(self.assignment)
        for inst in insts:
            assignment[inst.bin] = inst.worker
        return BinnedConfiguration(tuple(assignment))
