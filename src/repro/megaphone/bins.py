"""Bins: the unit of state organization and migration.

Paper §4.2: keys are statically grouped into a power-of-two number of bins;
the configuration function maps ``(time, bin)`` to a worker.  A bin carries
both the user state for its keys and the pending ``(time, tag, key, val)``
records scheduled for future times — both migrate together (paper §3.4:
"The state includes both the state for operator, as well as the list of
pending (val, time) records").

``BinStore`` is the per-worker container shared between the F and S operator
instances of one migrateable operator (the paper's shared pointer, possible
because timely multiplexes all operators of a worker on one thread).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.timely.notificator import PendingQueue


def default_state_size(state: object, bytes_per_key: float) -> float:
    """Modeled size of a bin's state: entries x bytes-per-key."""
    try:
        return len(state) * bytes_per_key  # type: ignore[arg-type]
    except TypeError:
        return bytes_per_key


@dataclass
class Bin:
    """One bin: user state plus pending future records."""

    bin_id: int
    state: object
    pending: PendingQueue = field(default_factory=PendingQueue)

    def pending_len(self) -> int:
        """Number of buffered future records."""
        return len(self.pending)


class BinStore:
    """All bins of one migrateable operator resident on one worker."""

    def __init__(
        self,
        num_bins: int,
        state_factory: Callable[[], object],
        state_size_fn: Optional[Callable[[object], float]] = None,
        bytes_per_key: float = 8.0,
    ) -> None:
        self.num_bins = num_bins
        self._state_factory = state_factory
        self._bytes_per_key = bytes_per_key
        self._state_size_fn = state_size_fn
        self._bins: dict[int, Bin] = {}

    def create(self, bin_id: int) -> Bin:
        """Create an empty bin locally (initial placement)."""
        if bin_id in self._bins:
            raise ValueError(f"bin {bin_id} already present")
        bin_ = Bin(bin_id=bin_id, state=self._state_factory())
        self._bins[bin_id] = bin_
        return bin_

    def get(self, bin_id: int) -> Bin:
        """The locally resident bin ``bin_id`` (KeyError if absent)."""
        return self._bins[bin_id]

    def has(self, bin_id: int) -> bool:
        """Whether ``bin_id`` is resident on this worker."""
        return bin_id in self._bins

    def take(self, bin_id: int) -> Bin:
        """Remove and return ``bin_id`` for migration."""
        return self._bins.pop(bin_id)

    def install(self, bin_: Bin) -> None:
        """Install a migrated bin."""
        if bin_.bin_id in self._bins:
            raise ValueError(f"bin {bin_.bin_id} already present")
        self._bins[bin_.bin_id] = bin_

    def resident_bins(self) -> list[int]:
        """Ids of bins currently on this worker."""
        return list(self._bins)

    def state_size(self, bin_id: int) -> float:
        """Modeled bytes of one bin's state (including pending records)."""
        bin_ = self._bins[bin_id]
        if self._state_size_fn is not None:
            size = self._state_size_fn(bin_.state)
        else:
            size = default_state_size(bin_.state, self._bytes_per_key)
        return size + bin_.pending_len() * self._bytes_per_key

    def total_state_size(self) -> float:
        """Modeled bytes of all resident bins."""
        return sum(self.state_size(b) for b in self._bins)

    def total_keys(self) -> int:
        """Total entries across resident bins (len-able states only)."""
        total = 0
        for bin_ in self._bins.values():
            try:
                total += len(bin_.state)  # type: ignore[arg-type]
            except TypeError:
                pass
        return total
