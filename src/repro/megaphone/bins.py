"""Bins: the unit of state organization and migration.

Paper §4.2: keys are statically grouped into a power-of-two number of bins;
the configuration function maps ``(time, bin)`` to a worker.  A bin carries
both the user state for its keys and the pending ``(time, tag, key, val)``
records scheduled for future times — both migrate together (paper §3.4:
"The state includes both the state for operator, as well as the list of
pending (val, time) records").

``BinStore`` is the per-worker container shared between the F and S operator
instances of one migrateable operator (the paper's shared pointer, possible
because timely multiplexes all operators of a worker on one thread).  Where
the state bytes actually live is a :class:`repro.state.StateBackend`
decision: the store owns one backend, and every serialization — migration
shipping, snapshots, crash recovery — goes through the backend's
``extract_bin`` + codec path.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.state.backend import (
    BinNotResident,
    BinPayload,
    BinStats,
    StateBackend,
    default_state_size,
)
from repro.state.registry import DEFAULT_BACKEND, DEFAULT_CODEC, make_backend
from repro.timely.notificator import PendingQueue


class Bin:
    """One bin: a view of its backend-held user state plus pending records."""

    __slots__ = ("bin_id", "pending", "_backend")

    def __init__(self, bin_id: int, backend: StateBackend) -> None:
        self.bin_id = bin_id
        self.pending = PendingQueue()
        self._backend = backend

    @property
    def state(self) -> object:
        """The bin's mutable user state (fetched from the backend)."""
        return self._backend.state_of(self.bin_id)

    @state.setter
    def state(self, value: object) -> None:
        self._backend.put_state(self.bin_id, value)

    def pending_len(self) -> int:
        """Number of buffered future records."""
        return len(self.pending)


class BinStore:
    """All bins of one migrateable operator resident on one worker."""

    def __init__(
        self,
        num_bins: int,
        state_factory: Callable[[], object],
        state_size_fn: Optional[Callable[[object], float]] = None,
        bytes_per_key: float = 8.0,
        backend: str = DEFAULT_BACKEND,
        codec: str = DEFAULT_CODEC,
        backend_options: Optional[dict] = None,
        worker_id: int = -1,
    ) -> None:
        self.num_bins = num_bins
        self.worker_id = worker_id
        self._state_factory = state_factory
        self._bytes_per_key = bytes_per_key
        self._state_size_fn = state_size_fn
        if state_size_fn is not None:
            size_fn = lambda state: int(round(state_size_fn(state)))  # noqa: E731
        else:
            size_fn = lambda state: default_state_size(state, bytes_per_key)  # noqa: E731
        self.backend = make_backend(
            backend, state_factory, size_fn, codec=codec, options=backend_options
        )
        self._bins: dict[int, Bin] = {}
        # Fence of the last installed payload per bin: a duplicated install
        # (a migration step retried after its first delivery succeeded) is
        # recognized here and dropped instead of double-applied.
        self._install_fences: dict[int, object] = {}
        # Durable backends recover at bind time: replaying the worker's log
        # may leave bins already resident, which the store must adopt so
        # ``has``/``get`` see them.
        self.backend.bind_worker(worker_id)
        for bin_id in self.backend.bin_ids():
            self._bins[bin_id] = Bin(bin_id, self.backend)

    @property
    def codec(self):
        """The codec every serialization of this store goes through."""
        return self.backend.codec

    def create(self, bin_id: int) -> Bin:
        """Create an empty bin locally (initial placement)."""
        if bin_id in self._bins:
            raise ValueError(f"bin {bin_id} already present")
        self.backend.create_bin(bin_id)
        bin_ = Bin(bin_id, self.backend)
        self._bins[bin_id] = bin_
        return bin_

    def get(self, bin_id: int) -> Bin:
        """The locally resident bin ``bin_id`` (BinNotResident if absent)."""
        try:
            return self._bins[bin_id]
        except KeyError:
            raise BinNotResident(bin_id, self.worker_id, self._bins) from None

    def has(self, bin_id: int) -> bool:
        """Whether ``bin_id`` is resident on this worker."""
        return bin_id in self._bins

    def resident_bins(self) -> list[int]:
        """Ids of bins currently on this worker."""
        return list(self._bins)

    # -- the single serialization path ------------------------------------------

    def extract(
        self,
        bin_id: int,
        *,
        remove: bool = True,
        dirty_since: Optional[int] = None,
    ) -> BinPayload:
        """Serialize ``bin_id`` (state through the codec, pending attached).

        ``remove=True`` uninstalls the bin (migration/extraction);
        ``remove=False`` captures a consistent copy (snapshots) without
        disturbing the resident bin or its pending queue.  ``dirty_since``
        asks a delta-capable backend for only the keys dirtied after that
        epoch (ignored — full extraction — on backends without epochs).
        """
        bin_ = self.get(bin_id)
        if dirty_since is not None and self.backend.supports_delta:
            payload = self.backend.extract_bin(
                bin_id, remove=remove, dirty_since=dirty_since
            )
        else:
            payload = self.backend.extract_bin(bin_id, remove=remove)
        if remove:
            del self._bins[bin_id]
            # The bin is leaving: a later re-install at this worker is a new
            # logical move, so the old fence must not suppress it.
            self._install_fences.pop(bin_id, None)
            payload.pending = bin_.pending.drain()
        else:
            entries = bin_.pending.drain()
            bin_.pending.extend(entries)
            payload.pending = [(time, entry) for time, entry in entries]
        payload.size_bytes = payload.state_bytes + int(
            round(len(payload.pending) * self._bytes_per_key)
        )
        return payload

    def delta_capable(self, bin_id: int) -> bool:
        """Whether ``bin_id`` can ship base-then-delta (backend tracks dirty
        epochs and the bin's state is a tracked mapping)."""
        return self.backend.supports_delta and self.backend.bin_delta_capable(bin_id)

    def take(self, bin_id: int) -> BinPayload:
        """Remove and return ``bin_id``'s payload for migration
        (BinNotResident if absent)."""
        return self.extract(bin_id, remove=True)

    def install(self, payload: BinPayload, *, replace: bool = False) -> Bin:
        """Install a payload produced by :meth:`extract` (migration arrival,
        snapshot restore, crash recovery — one path for all three).

        Fenced: a payload whose ``fence`` matches the last one installed
        for its bin is a duplicate delivery (retried step) and returns the
        resident bin untouched — neither state nor pending records are
        applied twice.
        """
        fence = payload.fence
        if (
            fence is not None
            and payload.bin_id in self._bins
            and self._install_fences.get(payload.bin_id) == fence
        ):
            return self._bins[payload.bin_id]
        self.backend.install_bin(payload, replace=replace)
        bin_ = self._bins.get(payload.bin_id)
        if bin_ is None:
            bin_ = Bin(payload.bin_id, self.backend)
            self._bins[payload.bin_id] = bin_
        if fence is not None:
            self._install_fences[payload.bin_id] = fence
        bin_.pending.extend(payload.pending)
        return bin_

    def drop(self, bin_id: int) -> None:
        """Discard a resident bin outright (no payload) — durable-recovery
        reconciliation when the configuration moved a bin away while its
        worker was dead.  No-op if absent."""
        if bin_id in self._bins:
            del self._bins[bin_id]
            self.backend.drop_bin(bin_id)
            self._install_fences.pop(bin_id, None)

    def restore_state(self, bin_id: int, payload: BinPayload) -> Bin:
        """Overwrite ``bin_id``'s state from a snapshot payload, leaving the
        resident pending queue untouched (the crash-recovery contract)."""
        if bin_id not in self._bins:
            self.create(bin_id)
        bin_ = self._bins[bin_id]
        # Copy on decode: the snapshot payload outlives this install and may
        # be restored again (repeated crashes), so never alias it.
        self.backend.put_state(bin_id, payload.decode_state(copy=True))
        return bin_

    # -- byte accounting --------------------------------------------------------

    def state_size(self, bin_id: int) -> int:
        """Modeled bytes of one bin's state (including pending records)."""
        bin_ = self.get(bin_id)
        size = self.backend.state_bytes(bin_id)
        return size + int(round(bin_.pending_len() * self._bytes_per_key))

    def total_state_size(self) -> int:
        """Modeled bytes of all resident bins (hot and spilled tiers)."""
        return sum(self.state_size(b) for b in self._bins)

    def resident_state_size(self) -> int:
        """Modeled bytes occupying RAM: hot-tier state plus pending records."""
        pending = sum(
            int(round(b.pending_len() * self._bytes_per_key))
            for b in self._bins.values()
        )
        return self.backend.resident_bytes() + pending

    def spilled_state_size(self) -> int:
        """Modeled bytes the backend holds on the cold tier (0 when flat)."""
        return self.backend.spilled_bytes()

    def total_keys(self) -> int:
        """Total entries across resident bins (len-able states only)."""
        return sum(self.backend.bin_stats(b).keys for b in self._bins)

    # -- statistics -------------------------------------------------------------

    def bin_stats(self, bin_id: int) -> BinStats:
        """Per-bin key/heat/residency metadata from the backend."""
        return self.backend.bin_stats(bin_id)

    def stats(self) -> dict[int, BinStats]:
        """Stats for every resident bin."""
        return {b: self.backend.bin_stats(b) for b in self._bins}

    def note_applied(self, bin_id: int, records: int = 0) -> None:
        """Tell the backend an applier just mutated ``bin_id`` with
        ``records`` records (compaction and spill policies hook on the
        mutation; the record count feeds per-bin load telemetry)."""
        if records:
            self.backend.note_records(bin_id, records)
        self.backend.note_applied(bin_id)

    # -- batched application (the columnar hot path) -----------------------------

    def group_states(self, bin_ids) -> list:
        """States of several resident bins, in order (BinNotResident on a
        miss).  One backend round-trip for the whole group instead of a
        ``get`` + ``state`` property chain per bin."""
        bins_map = self._bins
        for bin_id in bin_ids:
            if bin_id not in bins_map:
                raise BinNotResident(bin_id, self.worker_id, bins_map)
        return self.backend.states_of_group(bin_ids)

    def note_applied_group(self, bin_ids, starts) -> None:
        """Batched :meth:`note_applied` over one sorted application group
        (bin ``j`` applied ``starts[j+1] - starts[j]`` records)."""
        self.backend.note_applied_group(bin_ids, starts)
