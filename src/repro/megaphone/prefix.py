"""Prefix-tree binning: runtime-adjustable migration granularity.

Paper §4.4 ("Alternatives to binning"): Megaphone's static key-to-bin map
could be replaced by a longest-prefix match over the hashed key space, as
in Internet routing tables, so that bins can be *split* into finer sets or
*merged* into coarser ones at runtime instead of fixing the granularity at
startup.

This module implements that alternative:

* :class:`Prefix` — a (bits, length) pair naming a subtree of the 64-bit
  hash space;
* :class:`PrefixRouter` — a binary trie mapping prefixes to workers with
  longest-prefix-match lookup, split, and merge;
* :class:`SplittableBinStore` — bin state keyed by prefix, with state
  splitting (rehash the keys one bit deeper) and merging, so a hot bin can
  be subdivided before migrating only part of it.

The router produces the same ``(time, bin, worker)`` update vocabulary as
the static scheme — a prefix is a bin id — so migration plans over prefixes
compose with the existing strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.megaphone.control import splitmix64
from repro.state.backend import default_state_size
from repro.state.registry import DEFAULT_BACKEND, DEFAULT_CODEC, make_backend

HASH_BITS = 64


@dataclass(frozen=True, order=True)
class Prefix:
    """The subtree of hashes whose top ``length`` bits equal ``bits``."""

    bits: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= HASH_BITS:
            raise ValueError(f"prefix length {self.length} out of range")
        if self.bits >> self.length:
            raise ValueError(f"bits {self.bits:#x} do not fit length {self.length}")

    def contains_hash(self, key_hash: int) -> bool:
        """Is ``key_hash`` inside this prefix's subtree?"""
        if self.length == 0:
            return True
        return (key_hash >> (HASH_BITS - self.length)) == self.bits

    def contains(self, other: "Prefix") -> bool:
        """Is ``other`` equal to or below this prefix?"""
        if other.length < self.length:
            return False
        return (other.bits >> (other.length - self.length)) == self.bits

    def children(self) -> tuple["Prefix", "Prefix"]:
        """The two one-bit-longer refinements."""
        if self.length >= HASH_BITS:
            raise ValueError("cannot split a full-length prefix")
        return (
            Prefix(self.bits << 1, self.length + 1),
            Prefix((self.bits << 1) | 1, self.length + 1),
        )

    def parent(self) -> "Prefix":
        """The one-bit-shorter prefix containing this one."""
        if self.length == 0:
            raise ValueError("the root prefix has no parent")
        return Prefix(self.bits >> 1, self.length - 1)

    def __str__(self) -> str:
        if self.length == 0:
            return "*"
        return format(self.bits, f"0{self.length}b")


class PrefixRouter:
    """A longest-prefix-match routing table over the hashed key space.

    The table's leaves partition the hash space; every leaf is assigned to
    a worker.  ``split`` turns a leaf into two finer leaves (inheriting the
    worker); ``merge`` collapses two sibling leaves (they must agree on the
    worker).  Lookups hash the key and walk to the covering leaf.
    """

    def __init__(self, num_workers: int, initial_depth: int = 2) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self._leaves: dict[Prefix, int] = {}
        for i in range(1 << initial_depth):
            self._leaves[Prefix(i, initial_depth)] = i % num_workers

    # -- queries ---------------------------------------------------------------

    def leaves(self) -> list[Prefix]:
        """The current partition of the hash space."""
        return sorted(self._leaves)

    def worker_of(self, prefix: Prefix) -> int:
        """Owner of a current leaf."""
        return self._leaves[prefix]

    def leaf_for_hash(self, key_hash: int) -> Prefix:
        """The leaf covering ``key_hash`` (longest-prefix match)."""
        for length in range(HASH_BITS, -1, -1):
            candidate = Prefix(key_hash >> (HASH_BITS - length), length)
            if candidate in self._leaves:
                return candidate
        raise KeyError(f"no leaf covers hash {key_hash:#x}")

    def route_key(self, key: object) -> int:
        """Worker for ``key`` (hashes, then longest-prefix match)."""
        if isinstance(key, int):
            key_hash = splitmix64(key & 0xFFFFFFFFFFFFFFFF)
        else:
            from repro.megaphone.control import stable_hash

            key_hash = stable_hash(key)
        return self._leaves[self.leaf_for_hash(key_hash)]

    def is_partition(self) -> bool:
        """Sanity: the leaves cover the space exactly once."""
        total = 0.0
        for prefix in self._leaves:
            total += 2.0 ** (-prefix.length)
        return abs(total - 1.0) < 1e-12

    # -- reconfiguration ----------------------------------------------------------

    def assign(self, prefix: Prefix, worker: int) -> None:
        """Move a leaf to another worker."""
        if prefix not in self._leaves:
            raise KeyError(f"{prefix} is not a current leaf")
        if not 0 <= worker < self.num_workers:
            raise ValueError(f"worker {worker} out of range")
        self._leaves[prefix] = worker

    def split(self, prefix: Prefix) -> tuple[Prefix, Prefix]:
        """Refine a leaf into its two children (same worker)."""
        worker = self._leaves.pop(prefix)
        left, right = prefix.children()
        self._leaves[left] = worker
        self._leaves[right] = worker
        return left, right

    def merge(self, prefix: Prefix) -> Prefix:
        """Collapse ``prefix``'s two children back into it.

        Both children must be current leaves on the same worker — merging
        across workers would silently move state.
        """
        left, right = prefix.children()
        if left not in self._leaves or right not in self._leaves:
            raise KeyError(f"children of {prefix} are not both leaves")
        if self._leaves[left] != self._leaves[right]:
            raise ValueError(
                f"cannot merge {prefix}: children live on different workers"
            )
        worker = self._leaves.pop(left)
        self._leaves.pop(right)
        self._leaves[prefix] = worker
        return prefix


class SplittableBinStore:
    """Bin state keyed by prefix, supporting split and merge of the state.

    ``key_hash_fn`` maps a state key to its 64-bit hash (the same hash the
    router uses), so a split can deal each entry to the correct child.

    State lives behind a :class:`repro.state.StateBackend` (prefixes are
    just hashable bin ids), so prefix-binned operators get the same backend
    menu — dict, sorted-log, tiered — as statically binned ones.  Split and
    merge iterate and rebuild through the backend's key-level interface.
    """

    def __init__(
        self,
        key_hash_fn: Callable[[object], int],
        backend: str = DEFAULT_BACKEND,
        codec: str = DEFAULT_CODEC,
        backend_options: Optional[dict] = None,
        bytes_per_key: float = 8.0,
    ) -> None:
        self._key_hash_fn = key_hash_fn
        self._backend = make_backend(
            backend,
            dict,
            lambda state: default_state_size(state, bytes_per_key),
            codec=codec,
            options=backend_options,
        )

    @property
    def backend(self):
        """The state backend holding the leaves' entries."""
        return self._backend

    def create(self, prefix: Prefix) -> dict:
        """Create an empty state for a new leaf."""
        if self._backend.has_bin(prefix):
            raise ValueError(f"{prefix} already present")
        return self._backend.create_bin(prefix)

    def get(self, prefix: Prefix) -> dict:
        return self._backend.state_of(prefix)

    def has(self, prefix: Prefix) -> bool:
        return self._backend.has_bin(prefix)

    def take(self, prefix: Prefix) -> dict:
        """Remove a leaf's state (for migration)."""
        payload = self._backend.extract_bin(prefix, remove=True)
        return payload.decode_state()

    def install(self, prefix: Prefix, state: dict) -> None:
        """Install a migrated leaf's state."""
        if self._backend.has_bin(prefix):
            raise ValueError(f"{prefix} already present")
        self._backend.create_bin(prefix)
        self._backend.put_state(prefix, state)

    def prefixes(self) -> list[Prefix]:
        return sorted(self._backend.bin_ids())

    def state_bytes(self, prefix: Prefix) -> int:
        """Modeled bytes of one leaf's state."""
        return self._backend.state_bytes(prefix)

    def split(self, prefix: Prefix) -> tuple[Prefix, Prefix]:
        """Split a leaf's state by the next hash bit."""
        entries = list(self._backend.items(prefix))
        self._backend.drop_bin(prefix)
        left, right = prefix.children()
        self._backend.create_bin(left)
        self._backend.create_bin(right)
        for key, value in entries:
            child = left if left.contains_hash(self._key_hash_fn(key)) else right
            self._backend.put(child, key, value)
        return left, right

    def merge(self, prefix: Prefix) -> Prefix:
        """Merge two sibling leaves' state back into the parent."""
        left, right = prefix.children()
        left_entries = list(self._backend.items(left))
        right_entries = list(self._backend.items(right))
        overlap = {k for k, _ in left_entries} & {k for k, _ in right_entries}
        if overlap:
            raise ValueError(f"sibling states overlap on keys: {sorted(overlap)[:3]}")
        self._backend.drop_bin(left)
        self._backend.drop_bin(right)
        self._backend.create_bin(prefix)
        for key, value in left_entries + right_entries:
            self._backend.put(prefix, key, value)
        return prefix


def plan_split_migration(
    router: PrefixRouter,
    store_sizes: Callable[[Prefix], float],
    hot_threshold: float,
    target_worker_fn: Callable[[Prefix], int],
    max_depth: int = 20,
) -> list[tuple[str, Prefix, Optional[int]]]:
    """Plan a migration that first refines hot leaves, then moves halves.

    Returns a script of ``("split", prefix, None)`` and
    ``("move", prefix, worker)`` actions: any leaf whose state exceeds
    ``hot_threshold`` is split (recursively, up to ``max_depth``) so that
    the eventual moves each carry at most the threshold — the runtime
    version of choosing the bin count after the fact.
    """
    actions: list[tuple[str, Prefix, Optional[int]]] = []

    def refine(prefix: Prefix, size: float) -> list[Prefix]:
        if size <= hot_threshold or prefix.length >= max_depth:
            return [prefix]
        actions.append(("split", prefix, None))
        out = []
        for child in prefix.children():
            out.extend(refine(child, size / 2.0))
        return out

    for leaf in router.leaves():
        for piece in refine(leaf, store_sizes(leaf)):
            target = target_worker_fn(piece)
            actions.append(("move", piece, target))
    return actions
