"""The migration controller: drives a plan through the control stream.

Megaphone itself only consumes configuration updates; deciding *what* to
migrate and *when* is an external controller's job (paper §4.4 — DS2, Chi,
or Dhalion could supply the stream).  This module provides:

* ``EpochTicker`` — advances an input group's epochs with simulated time so
  control (and data) frontiers keep moving;
* ``MigrationController`` — issues one plan step at a time, awaits its
  completion through a probe on the S output frontier, optionally waits a
  drain gap, then issues the next step (paper §3.3's "await the migration's
  completion before choosing the next");
* ``ResilientMigrationController`` — the same, plus per-step timeouts with
  retry and exponential backoff, and crash-driven reconfiguration: crashed
  workers are excluded from targets and their orphaned bins are reassigned
  to survivors (the recovery half of the chaos subsystem);
* ``StepResult`` — per-step issue/completion bookkeeping used by the
  benchmarks to report migration duration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.megaphone.control import ControlInst
from repro.megaphone.migration import MigrationPlan
from repro.runtime_events.events import (
    MigrationStepAbandoned,
    MigrationStepCompleted,
    MigrationStepIssued,
    MigrationStepOutcome,
    MigrationStepRetried,
    MigrationStepTimedOut,
    WorkerExcluded,
)
from repro.timely.dataflow import InputGroup, Runtime
from repro.timely.timestamp import Timestamp


class EpochTicker:
    """Advances every handle of an input group once per tick.

    Epochs are integer timestamps derived from simulated time:
    ``epoch = round(sim_time * 1000 / granularity_ms) * granularity_ms``,
    i.e. event-time milliseconds quantized to the tick granularity.
    """

    def __init__(
        self,
        runtime: Runtime,
        group: InputGroup,
        granularity_ms: int = 10,
        until_s: Optional[float] = None,
        dilation: int = 1,
        workers: Optional[list] = None,
    ) -> None:
        self.runtime = runtime
        self.group = group
        self.granularity_ms = granularity_ms
        self.until_s = until_s
        self.dilation = dilation
        # Sharded mode: only drive (and close) the listed resident workers'
        # handles; the other shards advance theirs, and touching a
        # non-resident handle here would double-count its capability
        # movement against the shard progress broadcast.
        self.workers = sorted(workers) if workers is not None else None
        self._stopped = False

    @property
    def tick_s(self) -> float:
        return self.granularity_ms / 1000.0

    def current_epoch(self) -> int:
        """The (event-time) epoch corresponding to the current simulated time."""
        quantized = int(round(self.runtime.sim.now * 1000 / self.granularity_ms))
        return quantized * self.granularity_ms * self.dilation

    def start(self) -> None:
        """Begin ticking at the next tick boundary."""
        self.runtime.sim.schedule(self.tick_s, self._tick)

    def stop(self) -> None:
        """Stop ticking and close the group at the next tick."""
        self._stopped = True

    def _driven_handles(self) -> list:
        handles = self.group.handles()
        if self.workers is None:
            return handles
        return [handles[w] for w in self.workers]

    def _tick(self) -> None:
        now = self.runtime.sim.now
        if self._stopped or (self.until_s is not None and now >= self.until_s):
            for handle in self._driven_handles():
                handle.close()
            return
        epoch = self.current_epoch() + self.granularity_ms * self.dilation
        for handle in self._driven_handles():
            if handle.epoch is not None and handle.epoch < epoch:
                handle.advance_to(epoch)
        self.runtime.sim.schedule(self.tick_s, self._tick)


@dataclass
class StepResult:
    """Timing of one reconfiguration step.

    ``insts``/``attempts``/``abandoned`` feed the resilient controller: the
    instructions are kept so a timed-out step can be re-issued, ``time`` is
    rewritten to the retry's control timestamp, and ``abandoned`` marks a
    step that exhausted its retry budget.  Instances are compared by
    identity (dataclass equality is unsafe as a membership test here: two
    retries of one step may be field-identical).
    """

    time: Timestamp
    moves: int
    issued_at: float
    completed_at: Optional[float] = None
    insts: tuple = ()
    attempts: int = 1
    abandoned: bool = False
    # The batch the controller chose for this step.  Plan-driven
    # controllers record the step's move count; the adaptive controller
    # records its chosen batch, which can exceed ``moves`` on the tail
    # step.  Cost models relate this to the realized duration.
    batch_size: int = 0

    @property
    def duration(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at


def _outcome_of(step: StepResult, at: float) -> MigrationStepOutcome:
    """The step's trace-bus outcome record (completion or abandonment)."""
    return MigrationStepOutcome(
        time=step.time,
        moves=step.moves,
        batch_size=step.batch_size,
        attempts=step.attempts,
        abandoned=step.abandoned,
        duration_s=step.duration if step.duration is not None else at - step.issued_at,
        at=at,
    )


@dataclass
class MigrationResult:
    """Timings of a whole plan."""

    strategy: str
    steps: list[StepResult] = field(default_factory=list)

    @property
    def batch_sizes(self) -> list[int]:
        """Chosen batch size of every step, in issue order."""
        return [step.batch_size for step in self.steps]

    @property
    def total_attempts(self) -> int:
        """Issues including retries across all steps (> len(steps) means
        at least one step timed out and was re-issued)."""
        return sum(step.attempts for step in self.steps)

    @property
    def started_at(self) -> Optional[float]:
        return self.steps[0].issued_at if self.steps else None

    @property
    def completed_at(self) -> Optional[float]:
        if not self.steps or self.steps[-1].completed_at is None:
            return None
        return self.steps[-1].completed_at

    @property
    def duration(self) -> Optional[float]:
        if self.started_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.started_at


class MigrationController:
    """Feeds a migration plan into the control stream, step by step.

    The controller issues each step at the current control epoch, watches
    the S output frontier (via the provided probe) until the step's
    timestamp has fully passed — state shipped *and* backlog drained — then
    waits ``gap_s`` (paper §4.4's drain gap) and issues the next step.
    """

    def __init__(
        self,
        runtime: Runtime,
        control_group: InputGroup,
        ticker: EpochTicker,
        probe,
        plan: MigrationPlan,
        gap_s: float = 0.0,
        pace_s: Optional[float] = None,
        on_done: Optional[Callable[[MigrationResult], None]] = None,
    ) -> None:
        self._runtime = runtime
        self._group = control_group
        self._ticker = ticker
        self._probe = probe
        self._plan = plan
        self._gap_s = gap_s
        # Completion pacing (default): the next step is issued gap_s after
        # the previous one's frontier-confirmed completion.  Timer pacing
        # (pace_s set): steps are issued every pace_s seconds regardless of
        # completion — the regime where the paper's drain gap matters.
        self._pace_s = pace_s
        self._on_done = on_done
        self._next_step = 0
        self._awaiting: list[StepResult] = []
        self._finished = False
        self.result = MigrationResult(strategy=plan.strategy)
        probe.on_advance(self._check_progress)

    @property
    def done(self) -> bool:
        """True when every step has been issued and completed."""
        return self._next_step >= len(self._plan.steps) and not self._awaiting

    def start_at(self, sim_time_s: float) -> None:
        """Begin issuing steps at the given simulated time."""
        self._runtime.sim.schedule_at(sim_time_s, self._issue_next)

    def _issue_next(self) -> None:
        if self._next_step >= len(self._plan.steps):
            self._finish()
            return
        step = self._plan.steps[self._next_step]
        self._next_step += 1
        if not step.insts:
            self._issue_next()
            return
        self._issue(list(step.insts))
        if self._pace_s is not None:
            self._runtime.sim.schedule(self._pace_s, self._issue_next)
        # The frontier may conceivably already be past; check synchronously.
        self._check_progress(None)

    # -- issue pipeline (hooks for the resilient subclass) -------------------

    def _control_handle(self):
        """The input handle control records are sent through."""
        return self._group.handle(0)

    def _prepare_insts(self, insts: list) -> list:
        """Final say over a step's instructions just before sending."""
        return list(insts)

    def _after_issue(self, result: StepResult) -> None:
        """Called once per issued step (the subclass arms its timeout here)."""

    def _issue(self, insts: list) -> StepResult:
        handle = self._control_handle()
        if handle is None or handle.epoch is None:
            raise RuntimeError("control input closed while a migration is pending")
        insts = self._prepare_insts(insts)
        time = handle.epoch
        handle.send(time, list(insts))
        now = self._runtime.sim.now
        trace = self._runtime.sim.trace
        if trace.wants_migration:
            trace.publish(
                MigrationStepIssued(time=time, moves=len(insts), at=now)
            )
        result = StepResult(
            time=time, moves=len(insts), issued_at=now, insts=tuple(insts),
            batch_size=len(insts),
        )
        self._awaiting.append(result)
        self.result.steps.append(result)
        self._after_issue(result)
        return result

    def _check_progress(self, _frontier) -> None:
        completed_any = False
        trace = self._runtime.sim.trace
        while self._awaiting and self._probe.passed(self._awaiting[0].time):
            step = self._awaiting.pop(0)
            step.completed_at = self._runtime.sim.now
            if trace.wants_migration:
                trace.publish(
                    MigrationStepCompleted(time=step.time, at=step.completed_at)
                )
                trace.publish(_outcome_of(step, step.completed_at))
            completed_any = True
        if completed_any and self._pace_s is None and not self._awaiting:
            self._runtime.sim.schedule(self._gap_s, self._issue_next)

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        if self._on_done is not None:
            self._on_done(self.result)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-step deadline discipline for the resilient controller.

    Attempt ``k`` (1-based) of a step must complete within
    ``timeout_s * backoff**(k-1)`` seconds of its (re-)issue; after
    ``max_attempts`` the step is abandoned and reported.
    """

    timeout_s: float = 1.0
    backoff: float = 2.0
    max_attempts: int = 5

    def deadline_for(self, attempt: int) -> float:
        """Seconds granted to attempt ``attempt`` (1-based)."""
        return self.timeout_s * (self.backoff ** (attempt - 1))


class ResilientMigrationController(MigrationController):
    """A migration controller that survives injected faults.

    Three mechanisms on top of the base controller:

    * **Timeout + retry with backoff** — every issued step is given a
      deadline; a step whose timestamp has not passed the probe by then is
      re-issued at the current control epoch with the same instructions.
      Re-issuing is idempotent: F diffs each instruction against its
      current owner, so already-applied moves produce no new shipments.
      Steps that exhaust ``retry.max_attempts`` are abandoned (and show up
      in ``abandoned``).
    * **Worker exclusion** — instructions targeting a dead worker are
      retargeted (at issue *and* retry time) onto the live worker owning
      the fewest bins in the configuration ledger, lowest id on ties.
      ``placeable`` (when given) further restricts the candidates — elastic
      runs pass a membership filter so crash retargeting never lands bins
      on a draining or standby worker.
    * **Crash reconciliation** — on a crash notification, bins the ledger
      places on dead workers are reassigned to survivors through an extra
      recovery step, so the key space stays fully owned; the
      ``on_recovery_step`` callback lets a recovery coordinator reinstall
      snapshot state into the new owners.

    ``injector`` is the chaos injector (membership oracle); ``ledger`` a
    :class:`~repro.chaos.recovery.ConfigurationLedger` tracking the intended
    assignment.  Both are optional: without them the controller degrades to
    pure timeout/retry (useful under partitions and stalls).
    """

    def __init__(
        self,
        runtime: Runtime,
        control_group: InputGroup,
        ticker: EpochTicker,
        probe,
        plan: MigrationPlan,
        retry: Optional[RetryPolicy] = None,
        injector=None,
        ledger=None,
        on_recovery_step: Optional[Callable[[StepResult], None]] = None,
        reconcile: bool = True,
        placeable: Optional[Callable[[int], bool]] = None,
        **kwargs,
    ) -> None:
        super().__init__(runtime, control_group, ticker, probe, plan, **kwargs)
        self._retry = retry if retry is not None else RetryPolicy()
        self._injector = injector
        self._ledger = ledger
        self._on_recovery_step = on_recovery_step
        self._placeable = placeable
        # Timeout events keyed by id(StepResult): StepResult's generated
        # equality makes it unusable as a dict key or membership probe.
        self._timeout_events: dict[int, object] = {}
        self._pending_recovery: list[list[ControlInst]] = []
        self.abandoned: list[StepResult] = []
        # With several controllers sharing one ledger (one per scheduled
        # migration), exactly one should reconcile crashes — otherwise each
        # would issue its own recovery step for the same orphaned bins.
        if injector is not None and reconcile:
            injector.on_membership_change(self._on_membership)

    @property
    def done(self) -> bool:
        """Base completion plus no recovery steps waiting to be issued."""
        return super().done and not self._pending_recovery

    # -- issue-pipeline overrides --------------------------------------------

    def _control_handle(self):
        if self._injector is None:
            return self._group.handle(0)
        for worker in self._injector.live_workers():
            handle = self._group.handle(worker)
            if handle.epoch is not None:
                return handle
        return None

    def _prepare_insts(self, insts: list) -> list:
        out = list(insts)
        if self._injector is not None:
            dead = set(self._injector.dead_workers())
            if dead and any(inst.worker in dead for inst in out):
                counts = self._live_bin_counts()
                retargeted = []
                for inst in out:
                    if inst.worker in dead:
                        dst = min(counts, key=lambda w: (counts[w], w))
                        counts[dst] += 1
                        retargeted.append(ControlInst(bin=inst.bin, worker=dst))
                    else:
                        retargeted.append(inst)
                out = retargeted
        if self._ledger is not None:
            self._ledger.apply(out)
        return out

    def _after_issue(self, result: StepResult) -> None:
        self._arm_timeout(result)

    def _live_bin_counts(self) -> dict[int, float]:
        live = list(self._injector.live_workers())
        if self._placeable is not None:
            # Never leave bins unowned: if membership rules exclude every
            # live worker, fall back to the full live set.
            eligible = [w for w in live if self._placeable(w)]
            live = eligible or live
        if self._ledger is not None:
            return {w: len(self._ledger.current.bins_of(w)) for w in live}
        return {w: 0 for w in live}

    # -- timeouts and retries -------------------------------------------------

    def _arm_timeout(self, result: StepResult) -> None:
        delay = self._retry.deadline_for(result.attempts)
        event = self._runtime.sim.schedule(
            delay, lambda: self._on_timeout(result)
        )
        self._timeout_events[id(result)] = event

    def _cancel_timeout(self, result: StepResult) -> None:
        event = self._timeout_events.pop(id(result), None)
        if event is not None:
            event.cancel()

    def _on_timeout(self, result: StepResult) -> None:
        self._timeout_events.pop(id(result), None)
        if not any(step is result for step in self._awaiting):
            return
        now = self._runtime.sim.now
        trace = self._runtime.sim.trace
        if trace.wants_recovery:
            trace.publish(
                MigrationStepTimedOut(
                    time=result.time,
                    attempt=result.attempts,
                    timeout_s=self._retry.deadline_for(result.attempts),
                    at=now,
                )
            )
        handle = self._control_handle()
        if result.attempts >= self._retry.max_attempts or handle is None or (
            handle.epoch is None
        ):
            self._abandon(result, now)
            return
        old_time = result.time
        insts = self._prepare_insts(list(result.insts))
        result.attempts += 1
        result.insts = tuple(insts)
        result.time = handle.epoch
        handle.send(result.time, list(insts))
        if trace.wants_recovery:
            trace.publish(
                MigrationStepRetried(
                    time=old_time,
                    retry_time=result.time,
                    moves=len(insts),
                    attempt=result.attempts,
                    at=now,
                )
            )
        self._arm_timeout(result)

    def _abandon(self, result: StepResult, now: float) -> None:
        result.abandoned = True
        self._awaiting[:] = [s for s in self._awaiting if s is not result]
        self.abandoned.append(result)
        trace = self._runtime.sim.trace
        if trace.wants_recovery:
            trace.publish(
                MigrationStepAbandoned(
                    time=result.time, attempts=result.attempts, at=now
                )
            )
        if trace.wants_migration:
            trace.publish(_outcome_of(result, now))
        if self._pace_s is None and not self._awaiting:
            self._runtime.sim.schedule(self._gap_s, self._issue_next)

    def nudge(self) -> None:
        """Force an immediate retry of every awaiting step (watchdog hook)."""
        for step in list(self._awaiting):
            self._cancel_timeout(step)
            self._on_timeout(step)

    # -- crash reconciliation --------------------------------------------------

    def _on_membership(self, kind: str, process: int, workers: tuple) -> None:
        if kind != "crash":
            # A restart cannot regress frontiers; nothing to reconcile.
            return
        now = self._runtime.sim.now
        trace = self._runtime.sim.trace
        orphaned: list[int] = []
        per_worker: dict[int, int] = {}
        if self._ledger is not None:
            for worker in workers:
                bins = self._ledger.current.bins_of(worker)
                per_worker[worker] = len(bins)
                orphaned.extend(bins)
        if trace.wants_recovery:
            for worker in workers:
                trace.publish(
                    WorkerExcluded(
                        worker=worker,
                        orphaned_bins=per_worker.get(worker, 0),
                        at=now,
                    )
                )
        if not orphaned:
            return
        counts = self._live_bin_counts()
        insts = []
        for bin_id in sorted(orphaned):
            dst = min(counts, key=lambda w: (counts[w], w))
            counts[dst] += 1
            insts.append(ControlInst(bin=bin_id, worker=dst))
        self._pending_recovery.append(insts)
        self._runtime.sim.schedule(0.0, self._issue_recovery)

    def _issue_recovery(self) -> None:
        while self._pending_recovery:
            insts = self._pending_recovery.pop(0)
            handle = self._control_handle()
            if handle is None or handle.epoch is None:
                # Control stream gone: recovery is impossible; the watchdog
                # will diagnose the stall if one follows.
                return
            result = self._issue(insts)
            if self._on_recovery_step is not None:
                self._on_recovery_step(result)
        self._check_progress(None)

    # -- completion ------------------------------------------------------------

    def _check_progress(self, _frontier) -> None:
        completed_any = False
        now = self._runtime.sim.now
        trace = self._runtime.sim.trace
        # Scan every awaiting step, not just the head: retried steps carry
        # rewritten (later) timestamps, so completion order is not issue
        # order.
        remaining: list[StepResult] = []
        for step in self._awaiting:
            if self._probe.passed(step.time):
                step.completed_at = now
                self._cancel_timeout(step)
                if trace.wants_migration:
                    trace.publish(
                        MigrationStepCompleted(time=step.time, at=now)
                    )
                    trace.publish(_outcome_of(step, now))
                completed_any = True
            else:
                remaining.append(step)
        self._awaiting[:] = remaining
        if completed_any and self._pace_s is None and not self._awaiting:
            self._runtime.sim.schedule(self._gap_s, self._issue_next)
