"""The migration controller: drives a plan through the control stream.

Megaphone itself only consumes configuration updates; deciding *what* to
migrate and *when* is an external controller's job (paper §4.4 — DS2, Chi,
or Dhalion could supply the stream).  This module provides:

* ``EpochTicker`` — advances an input group's epochs with simulated time so
  control (and data) frontiers keep moving;
* ``MigrationController`` — issues one plan step at a time, awaits its
  completion through a probe on the S output frontier, optionally waits a
  drain gap, then issues the next step (paper §3.3's "await the migration's
  completion before choosing the next");
* ``StepResult`` — per-step issue/completion bookkeeping used by the
  benchmarks to report migration duration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.megaphone.migration import MigrationPlan
from repro.runtime_events.events import MigrationStepCompleted, MigrationStepIssued
from repro.timely.dataflow import InputGroup, Runtime
from repro.timely.timestamp import Timestamp


class EpochTicker:
    """Advances every handle of an input group once per tick.

    Epochs are integer timestamps derived from simulated time:
    ``epoch = round(sim_time * 1000 / granularity_ms) * granularity_ms``,
    i.e. event-time milliseconds quantized to the tick granularity.
    """

    def __init__(
        self,
        runtime: Runtime,
        group: InputGroup,
        granularity_ms: int = 10,
        until_s: Optional[float] = None,
        dilation: int = 1,
    ) -> None:
        self.runtime = runtime
        self.group = group
        self.granularity_ms = granularity_ms
        self.until_s = until_s
        self.dilation = dilation
        self._stopped = False

    @property
    def tick_s(self) -> float:
        return self.granularity_ms / 1000.0

    def current_epoch(self) -> int:
        """The (event-time) epoch corresponding to the current simulated time."""
        quantized = int(round(self.runtime.sim.now * 1000 / self.granularity_ms))
        return quantized * self.granularity_ms * self.dilation

    def start(self) -> None:
        """Begin ticking at the next tick boundary."""
        self.runtime.sim.schedule(self.tick_s, self._tick)

    def stop(self) -> None:
        """Stop ticking and close the group at the next tick."""
        self._stopped = True

    def _tick(self) -> None:
        now = self.runtime.sim.now
        if self._stopped or (self.until_s is not None and now >= self.until_s):
            self.group.close_all()
            return
        epoch = self.current_epoch() + self.granularity_ms * self.dilation
        for handle in self.group.handles():
            if handle.epoch is not None and handle.epoch < epoch:
                handle.advance_to(epoch)
        self.runtime.sim.schedule(self.tick_s, self._tick)


@dataclass
class StepResult:
    """Timing of one reconfiguration step."""

    time: Timestamp
    moves: int
    issued_at: float
    completed_at: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at


@dataclass
class MigrationResult:
    """Timings of a whole plan."""

    strategy: str
    steps: list[StepResult] = field(default_factory=list)

    @property
    def started_at(self) -> Optional[float]:
        return self.steps[0].issued_at if self.steps else None

    @property
    def completed_at(self) -> Optional[float]:
        if not self.steps or self.steps[-1].completed_at is None:
            return None
        return self.steps[-1].completed_at

    @property
    def duration(self) -> Optional[float]:
        if self.started_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.started_at


class MigrationController:
    """Feeds a migration plan into the control stream, step by step.

    The controller issues each step at the current control epoch, watches
    the S output frontier (via the provided probe) until the step's
    timestamp has fully passed — state shipped *and* backlog drained — then
    waits ``gap_s`` (paper §4.4's drain gap) and issues the next step.
    """

    def __init__(
        self,
        runtime: Runtime,
        control_group: InputGroup,
        ticker: EpochTicker,
        probe,
        plan: MigrationPlan,
        gap_s: float = 0.0,
        pace_s: Optional[float] = None,
        on_done: Optional[Callable[[MigrationResult], None]] = None,
    ) -> None:
        self._runtime = runtime
        self._group = control_group
        self._ticker = ticker
        self._probe = probe
        self._plan = plan
        self._gap_s = gap_s
        # Completion pacing (default): the next step is issued gap_s after
        # the previous one's frontier-confirmed completion.  Timer pacing
        # (pace_s set): steps are issued every pace_s seconds regardless of
        # completion — the regime where the paper's drain gap matters.
        self._pace_s = pace_s
        self._on_done = on_done
        self._next_step = 0
        self._awaiting: list[StepResult] = []
        self.result = MigrationResult(strategy=plan.strategy)
        probe.on_advance(self._check_progress)

    @property
    def done(self) -> bool:
        """True when every step has been issued and completed."""
        return self._next_step >= len(self._plan.steps) and not self._awaiting

    def start_at(self, sim_time_s: float) -> None:
        """Begin issuing steps at the given simulated time."""
        self._runtime.sim.schedule_at(sim_time_s, self._issue_next)

    def _issue_next(self) -> None:
        if self._next_step >= len(self._plan.steps):
            self._finish()
            return
        step = self._plan.steps[self._next_step]
        self._next_step += 1
        if not step.insts:
            self._issue_next()
            return
        handle = self._group.handle(0)
        if handle.epoch is None:
            raise RuntimeError("control input closed while a migration is pending")
        time = handle.epoch
        handle.send(time, list(step.insts))
        now = self._runtime.sim.now
        trace = self._runtime.sim.trace
        if trace.wants_migration:
            trace.publish(
                MigrationStepIssued(time=time, moves=len(step.insts), at=now)
            )
        self._awaiting.append(
            StepResult(time=time, moves=len(step.insts), issued_at=now)
        )
        self.result.steps.append(self._awaiting[-1])
        if self._pace_s is not None:
            self._runtime.sim.schedule(self._pace_s, self._issue_next)
        # The frontier may conceivably already be past; check synchronously.
        self._check_progress(None)

    def _check_progress(self, _frontier) -> None:
        completed_any = False
        trace = self._runtime.sim.trace
        while self._awaiting and self._probe.passed(self._awaiting[0].time):
            step = self._awaiting.pop(0)
            step.completed_at = self._runtime.sim.now
            if trace.wants_migration:
                trace.publish(
                    MigrationStepCompleted(time=step.time, at=step.completed_at)
                )
            completed_any = True
        if completed_any and self._pace_s is None and not self._awaiting:
            self._runtime.sim.schedule(self._gap_s, self._issue_next)

    def _finish(self) -> None:
        if self._on_done is not None:
            self._on_done(self.result)
