"""The timestamped routing table: ``configuration(time, bin) -> worker``.

Each F instance maintains one (paper Figure 4).  Updates are integrated only
once their timestamp is no longer in advance of the control-stream frontier —
before that the configuration at their time is not yet final, so data at
those times must be buffered.
"""

from __future__ import annotations

from repro.megaphone.control import BinnedConfiguration, ControlInst
from repro.timely.timestamp import Timestamp


class RoutingTable:
    """Per-bin history of ``(effective_time, worker)`` entries.

    Lookup returns the entry with the greatest effective time that is not in
    advance of the queried time.  Entries must be integrated in
    non-decreasing time order per bin, which the control-frontier discipline
    guarantees.

    ``current_owners`` mirrors each bin's latest entry as a flat array, and
    ``history_flat`` reports whether every bin's history is a single entry —
    when it is, a lookup at any time is the current owner and callers may
    bypass the binary search entirely (the steady-state fast path).
    ``compact`` restores flatness once old entries become unreachable.
    """

    __slots__ = (
        "num_bins",
        "_times",
        "_workers",
        "current_owners",
        "_deep",
        "_owners_cache",
    )

    def __init__(self, initial: BinnedConfiguration) -> None:
        self.num_bins = initial.num_bins
        self._owners_cache = None
        # Per bin: parallel lists of effective times and workers.
        self._times: list[list[Timestamp]] = [[] for _ in range(self.num_bins)]
        self._workers: list[list[int]] = [list() for _ in range(self.num_bins)]
        for b, w in enumerate(initial.assignment):
            self._times[b].append(None)  # placeholder for "since forever"
            self._workers[b].append(w)
        # None sorts issues: store times as a sentinel -inf via index 0.
        self.current_owners: list[int] = list(initial.assignment)
        # Bins whose history holds more than one entry; compaction visits
        # only these, so it is O(moved bins) rather than O(all bins).
        self._deep: set[int] = set()

    @property
    def history_flat(self) -> bool:
        """True when every bin has exactly one (the base) entry."""
        return not self._deep

    def integrate(self, time: Timestamp, insts: list[ControlInst]) -> None:
        """Apply a final reconfiguration step effective at ``time``."""
        for inst in insts:
            times = self._times[inst.bin]
            last = times[-1]
            if last is not None and not last <= time:
                raise ValueError(
                    f"control updates for bin {inst.bin} integrated out of "
                    f"order: {last!r} then {time!r}"
                )
            if last == time:
                # Same-time update overwrites (last write wins within a step).
                self._workers[inst.bin][-1] = inst.worker
            else:
                times.append(time)
                self._workers[inst.bin].append(inst.worker)
                self._deep.add(inst.bin)
            self.current_owners[inst.bin] = inst.worker
        self._owners_cache = None

    def worker_for(self, bin_id: int, time: Timestamp) -> int:
        """Owner of ``bin_id`` for records at ``time``."""
        times = self._times[bin_id]
        # Find rightmost entry with effective time <= time; entry 0 (None)
        # is the initial assignment and matches everything.
        lo, hi = 1, len(times)
        while lo < hi:
            mid = (lo + hi) // 2
            if times[mid] <= time:
                lo = mid + 1
            else:
                hi = mid
        return self._workers[bin_id][lo - 1]

    def current_owner(self, bin_id: int) -> int:
        """Owner per the latest integrated entry."""
        return self._workers[bin_id][-1]

    def owners_vector(self):
        """``current_owners`` as an indexable column for vectorized gathers.

        Cached until the next :meth:`integrate`; while the history is flat
        the vectorized F path gathers destination workers from this column
        in one operation instead of one ``worker_for`` call per record.
        """
        vec = self._owners_cache
        if vec is None:
            from repro.runtime_events import columns

            vec = columns.make_index_vector(self.current_owners)
            self._owners_cache = vec
        return vec

    def compact(self, before: Timestamp) -> None:
        """Drop history that can no longer be queried (data frontier passed).

        Retains the latest entry at or before ``before`` as the new base.
        """
        for b in sorted(self._deep):
            times = self._times[b]
            keep_from = 0
            for i in range(1, len(times)):
                if times[i] <= before:
                    keep_from = i
                else:
                    break
            if keep_from > 0:
                self._times[b] = [None] + times[keep_from + 1:]
                self._workers[b] = [self._workers[b][keep_from]] + self._workers[b][
                    keep_from + 1:
                ]
                if len(self._times[b]) == 1:
                    self._deep.discard(b)

    def snapshot(self) -> BinnedConfiguration:
        """The latest integrated configuration."""
        return BinnedConfiguration(
            tuple(self._workers[b][-1] for b in range(self.num_bins))
        )
