"""Megaphone's public operator interface (paper Listing 1).

Three constructors mirror the abstract definition in the paper:

* ``state_machine(control, input, exchange, fold)`` — per-record state
  updates, ``fold(key, val, state) -> outputs``;
* ``unary(control, input, exchange, fold)`` — frontier-aware single-input
  operator, ``fold(time, data, state, notificator) -> outputs``;
* ``binary(control, input1, input2, exchange1, exchange2, fold)`` —
  two-input operator, ``fold(time, data1, data2, state, notificator) ->
  outputs``.

``state`` is the per-bin state object (mutable in place); ``notificator``
schedules post-dated records that will be presented to the fold again at a
future time and that migrate together with the bin.  Migration is fully
transparent to the fold.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.megaphone.control import BinnedConfiguration, stable_hash
from repro.megaphone.operators import (
    ApplicationContext,
    MigrateableOperator,
    build_migrateable,
)
from repro.timely.dataflow import Stream
from repro.timely.timestamp import Timestamp


class Notificator:
    """Schedules post-dated records for the current bin (paper §4.3)."""

    def __init__(self, app: ApplicationContext, tag: int = 0) -> None:
        self._app = app
        self._tag = tag

    def notify_at(self, time: Timestamp, record: object) -> None:
        """Present ``record`` to the fold again at ``time``."""
        self._app.schedule(time, record, tag=self._tag)


def state_machine(
    control: Stream,
    input: Stream,
    exchange: Callable[[object], int] = stable_hash,
    fold: Optional[Callable[[object, object, object], Iterable]] = None,
    num_bins: int = 256,
    initial: Optional[BinnedConfiguration] = None,
    name: str = "state_machine",
    state_factory: Callable[[], object] = dict,
    state_size_fn: Optional[Callable[[object], float]] = None,
    reference_routing: bool = False,
    state_backend: str = "dict",
    codec: str = "modeled",
    backend_options: Optional[dict] = None,
    columnar_applier: Optional[Callable] = None,
    delta_migration: bool = False,
) -> MigrateableOperator:
    """Migrateable per-record state machine over ``(key, val)`` pairs.

    ``fold(key, val, state)`` returns the outputs caused by applying
    ``val`` to ``key``'s entry in the bin-level ``state``.

    ``columnar_applier``, when given, is a whole-group fold over a
    :class:`repro.runtime_events.columns.ColumnGroup`; S uses it for pure
    columnar notifications and it must produce exactly the outputs and
    state mutations ``fold`` would.
    """
    if fold is None:
        raise ValueError("a fold function is required")

    def applier(app: ApplicationContext) -> None:
        state = app.state
        extend = app.outputs.extend
        for _tag, record in app.entries:
            key, val = record
            extend(fold(key, val, state))

    return build_migrateable(
        control,
        [input],
        [lambda record: exchange(record[0])],
        applier,
        num_bins=num_bins,
        name=name,
        initial=initial,
        state_factory=state_factory,
        state_size_fn=state_size_fn,
        reference_routing=reference_routing,
        state_backend=state_backend,
        codec=codec,
        backend_options=backend_options,
        columnar_applier=columnar_applier,
        delta_migration=delta_migration,
    )


def unary(
    control: Stream,
    input: Stream,
    exchange: Callable[[object], int],
    fold: Callable[[Timestamp, list, object, Notificator], Iterable],
    num_bins: int = 256,
    initial: Optional[BinnedConfiguration] = None,
    name: str = "unary",
    state_factory: Callable[[], object] = dict,
    state_size_fn: Optional[Callable[[object], float]] = None,
    reference_routing: bool = False,
    state_backend: str = "dict",
    codec: str = "modeled",
    backend_options: Optional[dict] = None,
    delta_migration: bool = False,
) -> MigrateableOperator:
    """Migrateable single-input stateful operator.

    ``fold(time, data, state, notificator)`` receives all records of one
    (time, bin) group in timestamp order and returns output records.
    """

    def applier(app: ApplicationContext) -> None:
        data = [record for _tag, record in app.entries]
        app.emit(fold(app.time, data, app.state, Notificator(app)))

    return build_migrateable(
        control,
        [input],
        [exchange],
        applier,
        num_bins=num_bins,
        name=name,
        initial=initial,
        state_factory=state_factory,
        state_size_fn=state_size_fn,
        reference_routing=reference_routing,
        state_backend=state_backend,
        codec=codec,
        backend_options=backend_options,
        delta_migration=delta_migration,
    )


def binary(
    control: Stream,
    input1: Stream,
    input2: Stream,
    exchange1: Callable[[object], int],
    exchange2: Callable[[object], int],
    fold: Callable[[Timestamp, list, list, object, Notificator], Iterable],
    num_bins: int = 256,
    initial: Optional[BinnedConfiguration] = None,
    name: str = "binary",
    state_factory: Callable[[], object] = dict,
    state_size_fn: Optional[Callable[[object], float]] = None,
    reference_routing: bool = False,
    state_backend: str = "dict",
    codec: str = "modeled",
    backend_options: Optional[dict] = None,
    delta_migration: bool = False,
) -> MigrateableOperator:
    """Migrateable two-input stateful operator.

    Both inputs are routed by their own exchange function but must agree on
    the key space: the migration mechanism acts on both inputs at the same
    time (paper §3.4).  ``fold(time, data1, data2, state, notificator)``.
    """

    def applier(app: ApplicationContext) -> None:
        data1 = [record for tag, record in app.entries if tag == 0]
        data2 = [record for tag, record in app.entries if tag == 1]
        app.emit(fold(app.time, data1, data2, app.state, Notificator(app)))

    return build_migrateable(
        control,
        [input1, input2],
        [exchange1, exchange2],
        applier,
        num_bins=num_bins,
        name=name,
        initial=initial,
        state_factory=state_factory,
        state_size_fn=state_size_fn,
        reference_routing=reference_routing,
        state_backend=state_backend,
        codec=codec,
        backend_options=backend_options,
        delta_migration=delta_migration,
    )
