"""Megaphone's migration mechanism: the F (routing) and S (hosting) operators.

Paper §3.4 and §4: a migrateable operator L is realized as a pair (F, S).

* **F** receives the configuration stream (broadcast to every worker) and
  the data stream.  It routes data records according to the configuration at
  their timestamp, buffering records whose time is in advance of the control
  frontier (the configuration there is not yet final).  F holds timely
  capabilities at every pending reconfiguration time, observes the output
  frontier of S, and — once a reconfiguration time is present in that
  frontier — uninstalls the affected bins from the co-located S (through a
  shared pointer) and ships them, bearing the reconfiguration timestamp,
  through a regular dataflow channel to the new owner's S.

* **S** hosts the bins.  It buffers arriving data records by timestamp,
  installs migrated bins immediately, and applies records in timestamp order
  once their time is not in advance of either the data or the state input
  frontier — which is exactly when no earlier record and no state movement
  can interfere.

The public constructors (``state_machine``, ``unary``, ``binary``) in
``repro.megaphone.api`` wrap this pair behind the operator interface of
Listing 1.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.megaphone.bins import Bin, BinStore
from repro.state.registry import DEFAULT_BACKEND, DEFAULT_CODEC, resolve_codec
from repro.runtime_events.events import (
    BinMigrationPlanned,
    BinRecreated,
    BinStateExtracted,
    BinStateInstalled,
)
from repro.megaphone.control import BinnedConfiguration, ControlInst
from repro.megaphone.routing import RoutingTable
from repro.runtime_events import columns
from repro.runtime_events.columns import ColumnBatch, ColumnGroup, merge_segments
from repro.runtime_events.items import DestinationBatch, batch_record_count
from repro.timely.antichain import Antichain
from repro.timely.dataflow import Stream
from repro.timely.graph import Broadcast, Exchange, GroupedExchange, Pipeline
from repro.timely.notificator import PendingQueue
from repro.timely.timestamp import Timestamp, less_equal

CONTROL_PORT = 0
DATA_PORT_BASE = 1

# S ports.
S_DATA_PORT = 0
S_STATE_PORT = 1


class ApplicationContext:
    """What the user's fold sees when a (time, bin) group is applied.

    ``entries`` are ``(tag, record)`` pairs: the input port tag (0 for unary
    and state-machine operators) and the record itself.  ``emit`` produces
    output at the group's time; ``schedule`` post-dates a record to a future
    time for the same bin (Megaphone's extended notificator idiom).
    """

    __slots__ = ("time", "bin", "entries", "worker", "outputs", "scheduled")

    def __init__(
        self, time: Timestamp, bin_: Bin, entries: list, worker: int = -1
    ) -> None:
        self.time = time
        self.bin = bin_
        self.entries = entries
        self.worker = worker
        self.outputs: list = []
        self.scheduled: list[tuple[Timestamp, tuple]] = []

    @property
    def state(self) -> object:
        """The bin's user state."""
        return self.bin.state

    def emit(self, records) -> None:
        """Emit output records at the group's time."""
        self.outputs.extend(records)

    def schedule(self, time: Timestamp, record: object, tag: int = 0) -> None:
        """Present ``record`` to the operator again at a future ``time``."""
        if not less_equal(self.time, time):
            raise ValueError(
                f"cannot schedule at {time!r}: before current time {self.time!r}"
            )
        self.scheduled.append((time, (tag, record)))


# The applier turns buffered entries into outputs:
#   applier(app: ApplicationContext) -> None
Applier = Callable[[ApplicationContext], None]


class MigrationProbe:
    """Shared, per-operator record of migration activity (for harnesses)."""

    def __init__(self) -> None:
        self.steps: dict[Timestamp, dict] = {}

    def _step(self, time: Timestamp) -> dict:
        return self.steps.setdefault(
            time, {"moves": 0, "bytes": 0.0, "started": None, "completed": None}
        )

    def note_planned(self, time: Timestamp, moves: int) -> None:
        self._step(time)["moves"] += moves

    def note_started(self, time: Timestamp, now: float) -> None:
        step = self._step(time)
        if step["started"] is None:
            step["started"] = now

    def note_bytes(self, time: Timestamp, num_bytes: float) -> None:
        self._step(time)["bytes"] += num_bytes

    def total_bytes(self) -> float:
        return sum(s["bytes"] for s in self.steps.values())


class _FLogic:
    """One worker's F instance."""

    def __init__(self, config: "MegaphoneConfig", worker_id: int) -> None:
        self._config = config
        self._worker_id = worker_id
        self._table = RoutingTable(config.initial)
        # Control updates received but not yet final (time in advance of the
        # control frontier), keyed by their timestamp.
        self._pending_updates: dict[Timestamp, list[ControlInst]] = {}
        # Finalized reconfiguration steps awaiting S's output frontier:
        # (time, [(bin, src, dst), ...]); kept in time order.
        self._pending_migrations: list[tuple[Timestamp, list[tuple[int, int, int]]]] = []
        # Data batches whose time is in advance of the control frontier.
        self._buffered = PendingQueue()
        # Delta migration: epoch each shipped base snapshot was captured at,
        # keyed by (reconfiguration time, bin).  Present iff a base is in
        # flight for the move; execution then ships only newer keys.
        self._base_epochs: dict[tuple, int] = {}

    # -- helpers -------------------------------------------------------------

    def _store(self, ctx) -> BinStore:
        return self._config.store_for(ctx)

    def reset_routing(self, config: BinnedConfiguration) -> None:
        """Replace the routing table wholesale (restart recovery).

        A freshly reinstalled F believes the *initial* configuration; the
        recovery coordinator hands it the ledger's current assignment so it
        routes like the surviving workers instead of resurrecting stale
        ownership.
        """
        self._table = RoutingTable(config)

    def _route_batch(self, ctx, time: Timestamp, port_tag: int, records) -> None:
        config = self._config
        if type(records) is ColumnBatch:
            if not config.reference_routing:
                self._route_columns(ctx, time, port_tag, records)
                return
            # The reference pin stays per-record: decode and fall through to
            # the memoized binary-search loop below.
            records = records.to_records()
        key_fn = config.key_fns[port_tag]
        bin_fn = config.bin_fn
        table = self._table
        # dst -> bin -> [(tag, record), ...], in record arrival order.
        out: dict[int, dict[int, list]] = {}
        if (
            table.history_flat
            and not config.reference_routing
            and not self._pending_updates
            and not self._pending_migrations
        ):
            # Steady state: every bin's history is its single base entry, so
            # the owner at any routable time is the current owner — a flat
            # array read, no binary search.
            owners = table.current_owners
            for record in records:
                bin_id = bin_fn(key_fn(record))
                dst = owners[bin_id]
                bins = out.get(dst)
                if bins is None:
                    bins = out[dst] = {}
                entries = bins.get(bin_id)
                if entries is None:
                    bins[bin_id] = [(port_tag, record)]
                else:
                    entries.append((port_tag, record))
        else:
            # Reference path.  All records of a batch share one timestamp,
            # so each bin's owner is resolved at most once per batch.
            owner_cache: dict[int, int] = {}
            worker_for = table.worker_for
            for record in records:
                bin_id = bin_fn(key_fn(record))
                dst = owner_cache.get(bin_id)
                if dst is None:
                    dst = owner_cache[bin_id] = worker_for(bin_id, time)
                bins = out.get(dst)
                if bins is None:
                    bins = out[dst] = {}
                entries = bins.get(bin_id)
                if entries is None:
                    bins[bin_id] = [(port_tag, record)]
                else:
                    entries.append((port_tag, record))
        if out:
            ctx.send(
                0,
                time,
                [
                    DestinationBatch(
                        dst=dst,
                        count=sum(map(len, bins.values())),
                        bins=bins,
                    )
                    for dst, bins in out.items()
                ],
            )

    def _route_columns(
        self, ctx, time: Timestamp, port_tag: int, batch: ColumnBatch
    ) -> None:
        """Route one columnar batch: hash, gather owners, split by destination.

        Produces the same destination batches, in the same emission order
        (first-occurrence of each destination), carrying the same per-record
        grouping as the per-record loop — only as whole-column operations.
        """
        config = self._config
        table = self._table
        bin_col = columns.bin_ids_for(batch.keys, config.bin_shift)
        if (
            table.history_flat
            and not self._pending_updates
            and not self._pending_migrations
        ):
            dsts = columns.gather(table.owners_vector(), bin_col)
        else:
            # Mid-migration: owners must be resolved at the batch's time.
            # All records share one timestamp, so memoize per unique bin,
            # exactly like the per-record reference loop.
            owner_cache: dict[int, int] = {}
            worker_for = table.worker_for
            dst_list = []
            append = dst_list.append
            for bin_id in bin_col.tolist():
                dst = owner_cache.get(bin_id)
                if dst is None:
                    dst = owner_cache[bin_id] = worker_for(bin_id, time)
                append(dst)
            dsts = columns.make_index_vector(dst_list)
        order, bounds = columns.split_by_destination(dsts)
        if not bounds:
            return
        if order is None:
            # Single destination: ship the batch whole, no copy.
            out = [
                DestinationBatch(
                    dst=bounds[0][0],
                    count=len(batch),
                    bin_ids=bin_col,
                    columns=batch,
                    tag=port_tag,
                )
            ]
        else:
            # One gather to destination-sorted layout, then per-destination
            # slices (views on numpy) instead of a fancy-index per segment.
            sorted_batch = batch.take(order)
            sorted_bins = columns.gather(bin_col, order)
            out = [
                DestinationBatch(
                    dst=dst,
                    count=hi - lo,
                    bin_ids=sorted_bins[lo:hi],
                    columns=sorted_batch.slice(lo, hi),
                    tag=port_tag,
                )
                for dst, lo, hi in bounds
            ]
        ctx.send(0, time, out)

    def input_cost(self, ctx, port: int, records: list, size_bytes: float) -> float:
        if port == CONTROL_PORT:
            return len(records) * ctx.cost.progress_update_cost
        return len(records) * self._config.route_cost(ctx)

    # -- dataflow hooks --------------------------------------------------------

    def on_input(self, ctx, port: int, time: Timestamp, records: list) -> None:
        if port == CONTROL_PORT:
            for inst in records:
                if time not in self._pending_updates:
                    self._pending_updates[time] = []
                    # Hold S's frontier at the reconfiguration time until
                    # this worker's part of the migration has been shipped.
                    ctx.hold_capability(time)
                self._pending_updates[time].append(inst)
            return
        port_tag = port - DATA_PORT_BASE
        control_frontier = ctx.input_frontier(CONTROL_PORT)
        if control_frontier.less_equal(time):
            # Configuration at `time` is not final yet: buffer, and keep the
            # right to send at `time` once it becomes routable.
            ctx.hold_capability(time)
            self._buffered.push(time, (port_tag, records))
        else:
            # The control frontier may have finalized updates that this
            # instance has not integrated yet (its on_frontier callback can
            # lag behind data arrival); integrate before routing so records
            # at or past a reconfiguration time go to the new owner.
            if self._pending_updates:
                self._integrate_updates(ctx, control_frontier)
            self._route_batch(ctx, time, port_tag, records)

    def on_frontier(self, ctx) -> None:
        # Steady state — no pending control updates, buffered data, or
        # unshipped migrations — skips every helper outright: each would be
        # a no-op, and the control-frontier query forces a propagation pass.
        if self._pending_updates or self._buffered:
            control_frontier = ctx.input_frontier(CONTROL_PORT)
            self._integrate_updates(ctx, control_frontier)
            self._drain_buffered(ctx, control_frontier)
        if self._pending_migrations:
            self._try_migrations(ctx)
        self._maybe_compact(ctx)

    def _maybe_compact(self, ctx) -> None:
        """Fold settled routing history into the base, re-arming the fast path.

        Every future route happens at a time this F can still send at —
        a time not in advance of its own output frontier — so entries
        strictly older than a single-element output frontier are
        unreachable and can be merged into each bin's base entry.
        """
        if (
            self._table.history_flat
            or self._pending_updates
            or self._pending_migrations
        ):
            return
        elements = ctx.output_frontier_of(ctx.op_index).elements()
        if len(elements) == 1:
            self._table.compact(elements[0])

    # -- steps -----------------------------------------------------------------

    def _integrate_updates(self, ctx, control_frontier: Antichain) -> None:
        ready = sorted(
            (t for t in self._pending_updates if not control_frontier.less_equal(t)),
            key=_time_key,
        )
        for time in ready:
            insts = self._pending_updates.pop(time)
            moves = []
            for inst in insts:
                src = self._table.current_owner(inst.bin)
                if src != inst.worker:
                    moves.append((inst.bin, src, inst.worker))
            self._table.integrate(time, insts)
            my_moves = [m for m in moves if m[1] == self._worker_id]
            if self._worker_id == 0:
                self._config.probe.note_planned(time, len(moves))
            if my_moves:
                trace = ctx.trace
                if trace.wants_migration:
                    for bin_id, src, dst in my_moves:
                        trace.publish(
                            BinMigrationPlanned(
                                name=self._config.name,
                                time=time,
                                bin=bin_id,
                                src=src,
                                dst=dst,
                                at=ctx.now,
                            )
                        )
                self._pending_migrations.append((time, my_moves))
                if self._config.delta_migration:
                    self._ship_bases(ctx, time, my_moves)
            else:
                # Nothing to ship from this worker: stop holding S back.
                ctx.release_capability(time)

    def _ship_bases(self, ctx, time: Timestamp, moves: list) -> None:
        """Pre-copy: ship a base snapshot of each moving bin immediately.

        The bin keeps processing here until :meth:`_execute_moves`; the
        snapshot overlaps the bulk transfer with that processing, and the
        epoch recorded per move lets execution ship only the keys dirtied
        since.  Pending records are *not* shipped with the base — the delta
        carries the authoritative drain, so they never travel twice.
        """
        store = self._store(ctx)
        cost = ctx.cost
        codec = self._config.codec_obj
        trace = ctx.trace
        wants_migration = trace.wants_migration
        for bin_id, _src, dst in moves:
            if not store.has(bin_id) or not store.delta_capable(bin_id):
                continue
            payload = store.extract(bin_id, remove=False)
            payload.kind = "base"
            payload.pending = []
            payload.size_bytes = payload.state_bytes
            size = payload.size_bytes
            self._base_epochs[(time, bin_id)] = payload.base_epoch
            serialize_s = codec.encode_cost(cost, size)
            ctx.charge(serialize_s)
            ctx.memory.add_retained(size)
            self._config.probe.note_bytes(time, size)
            if wants_migration:
                trace.publish(
                    BinStateExtracted(
                        name=self._config.name,
                        time=time,
                        bin=bin_id,
                        src=self._worker_id,
                        dst=dst,
                        size_bytes=size,
                        serialize_s=serialize_s,
                        at=ctx.now,
                        kind="base",
                    )
                )
            ctx.send(
                1,
                time,
                [(dst, payload, size)],
                size_bytes=size,
                retained_bytes=size,
            )

    def _drain_buffered(self, ctx, control_frontier: Antichain) -> None:
        ready = self._buffered.pop_ready(
            lambda t: not control_frontier.less_equal(t)
        )
        for time, (port_tag, records) in ready:
            self._route_batch(ctx, time, port_tag, records)
            ctx.release_capability(time)

    def _try_migrations(self, ctx) -> None:
        while self._pending_migrations:
            time, moves = self._pending_migrations[0]
            s_frontier = ctx.output_frontier_of(self._config.s_op)
            if s_frontier.less_than(time):
                # Records earlier than `time` may still be unprocessed at S.
                return
            self._config.probe.note_started(time, ctx.now)
            self._execute_moves(ctx, time, moves)
            self._pending_migrations.pop(0)
            ctx.release_capability(time)

    def _execute_moves(self, ctx, time: Timestamp, moves: list) -> None:
        store = self._store(ctx)
        cost = ctx.cost
        memory = ctx.memory
        trace = ctx.trace
        wants_migration = trace.wants_migration
        codec = self._config.codec_obj
        for bin_id, _src, dst in moves:
            base_epoch = self._base_epochs.pop((time, bin_id), None)
            if self._config.recovery_mode and not store.has(bin_id):
                # The bin is not here to extract — it died with a crashed
                # process, or a retried control step repeats a move this
                # worker already shipped.  The destination's S will
                # recreate it empty on first use.
                continue
            if base_epoch is not None:
                payload = store.extract(bin_id, dirty_since=base_epoch)
            else:
                payload = store.extract(bin_id)
            # Fence the install: the (bin, destination) pair identifies this
            # logical move, so a duplicated delivery — a step retried after
            # its first ship already landed — is dropped at the destination
            # instead of double-applied.
            payload.fence = (bin_id, dst)
            size = payload.size_bytes
            serialize_s = codec.encode_cost(cost, size)
            ctx.charge(serialize_s)
            # The extracted original stays resident until the network has
            # drained the serialized copy (paper §5.3.5: the all-at-once
            # memory spike is send-queue backlog).  The cluster releases the
            # retained bytes at transmit-complete.
            memory.add_retained(size)
            self._config.probe.note_bytes(time, size)
            if wants_migration:
                trace.publish(
                    BinStateExtracted(
                        name=self._config.name,
                        time=time,
                        bin=bin_id,
                        src=self._worker_id,
                        dst=dst,
                        size_bytes=size,
                        serialize_s=serialize_s,
                        at=ctx.now,
                        kind=payload.kind,
                    )
                )
            ctx.send(
                1,
                time,
                [(dst, payload, size)],
                size_bytes=size,
                retained_bytes=size,
            )


class _SLogic:
    """One worker's S instance."""

    def __init__(self, config: "MegaphoneConfig", worker_id: int) -> None:
        self._config = config
        self._worker_id = worker_id
        # Data records buffered until the frontier passes their time,
        # already grouped the way application consumes them:
        # time -> {bin_id: [(tag, record), ...]}.
        self._inbox: dict[Timestamp, dict[int, list]] = {}
        # Columnar arrivals for a time, in arrival order:
        # time -> [(tag, bin_ids, columns), ...].  A time's data lives here
        # or in ``_inbox`` depending on the carrier F emitted; both feed the
        # same notification.
        self._col_segments: dict[Timestamp, list] = {}
        # Bins with scheduled (post-dated) work at a time: time -> set of ids.
        self._scheduled_bins: dict[Timestamp, set[int]] = {}
        # Delta migration: base snapshots received ahead of their move,
        # waiting for the delta that completes them.
        self._staged_bases: dict[int, object] = {}

    def _store(self, ctx) -> BinStore:
        return self._config.store_for(ctx)

    def input_cost(self, ctx, port: int, records: list, size_bytes: float) -> float:
        if port == S_STATE_PORT:
            return self._config.codec_obj.decode_cost(ctx.cost, size_bytes)
        # Buffering only; the application cost is charged at notification.
        return batch_record_count(records) * ctx.cost.progress_update_cost

    def on_input(self, ctx, port: int, time: Timestamp, records: list) -> None:
        if port == S_STATE_PORT:
            self._install_state(ctx, time, records)
            return
        if records and records[0].columns is not None:
            # Columnar carriers: stash the segments untouched; grouping by
            # bin happens once, at notification, over the merged columns.
            segments = self._col_segments.get(time)
            if segments is None:
                segments = self._col_segments[time] = []
                if time not in self._inbox:
                    ctx.notify_at(time)
            for batch in records:
                segments.append((batch.tag, batch.bin_ids, batch.columns))
            return
        inbox = self._inbox.get(time)
        if inbox is None:
            inbox = self._inbox[time] = {}
            if time not in self._col_segments:
                ctx.notify_at(time)
        # ``records`` are DestinationBatch groups: adopt each per-bin entry
        # list outright (F built it for us and keeps no reference), extend
        # on collision.  Per-bin entry order equals record arrival order,
        # exactly as the per-record inbox produced.
        for batch in records:
            for bin_id, entries in batch.bins.items():
                existing = inbox.get(bin_id)
                if existing is None:
                    inbox[bin_id] = entries
                else:
                    existing.extend(entries)

    def _install_state(self, ctx, time: Timestamp, records: list) -> None:
        store = self._store(ctx)
        trace = ctx.trace
        codec = self._config.codec_obj
        for dst, payload, size in records:
            kind = payload.kind
            if kind == "base":
                # Pre-copy: hold the snapshot aside.  The bin is still live
                # at its source; it becomes resident here only when the
                # delta (or a full payload) completes the move.
                self._staged_bases[payload.bin_id] = payload
                if trace.wants_migration:
                    trace.publish(
                        BinStateInstalled(
                            name=self._config.name,
                            time=time,
                            bin=payload.bin_id,
                            worker=ctx.worker_id,
                            size_bytes=size,
                            deserialize_s=codec.decode_cost(ctx.cost, size),
                            at=ctx.now,
                            kind="base",
                        )
                    )
                continue
            if kind == "delta":
                install_payload = self._merge_delta(ctx, store, payload)
            else:
                # A full payload supersedes any staged base (the source fell
                # back to whole-bin shipping, e.g. an opaque state).
                self._staged_bases.pop(payload.bin_id, None)
                install_payload = payload
            bin_ = store.install(install_payload)
            if trace.wants_migration:
                trace.publish(
                    BinStateInstalled(
                        name=self._config.name,
                        time=time,
                        bin=bin_.bin_id,
                        worker=ctx.worker_id,
                        size_bytes=size,
                        deserialize_s=codec.decode_cost(ctx.cost, size),
                        at=ctx.now,
                        kind=kind,
                    )
                )
            for pending_time in bin_.pending.times():
                self._schedule_bin(ctx, pending_time, bin_.bin_id)

    def _merge_delta(self, ctx, store: BinStore, delta) -> object:
        """Fold a delta payload over its staged base into one full payload.

        The merged payload carries the delta's pending records (the
        authoritative drain from the source) and its fence.  A delta with
        no staged base means the base died in flight — tolerable only under
        recovery mode, where the dirty keys alone are installed (bounded,
        observable loss, same contract as ``_bin_for``).
        """
        base = self._staged_bases.pop(delta.bin_id, None)
        if base is None:
            if not self._config.recovery_mode:
                raise RuntimeError(
                    f"delta for bin {delta.bin_id} arrived with no staged base"
                )
            state = delta.decode_state(copy=True)
        else:
            state = base.decode_state()
            live = delta.decode_state()
            state.update(live)
            for key in delta.deleted:
                state.pop(key, None)
        codec = self._config.codec_obj
        encoded = codec.encode(state)
        state_bytes = store.backend.modeled_bytes(state)
        merged = type(delta)(
            bin_id=delta.bin_id,
            codec=delta.codec,
            payload=encoded,
            pending=delta.pending,
            state_bytes=state_bytes,
            size_bytes=state_bytes,
            keys=len(state) if hasattr(state, "__len__") else 0,
            fence=delta.fence,
        )
        return merged

    def _schedule_bin(self, ctx, time: Timestamp, bin_id: int) -> None:
        bins = self._scheduled_bins.get(time)
        if bins is None:
            bins = self._scheduled_bins[time] = set()
        if bin_id not in bins:
            bins.add(bin_id)
            ctx.notify_at(time)

    def _bin_for(self, ctx, store: BinStore, time: Timestamp, bin_id: int) -> Bin:
        """Fetch a bin for application, recreating it under recovery.

        Outside recovery mode a missing bin is a routing bug and raises.
        Under recovery a miss means the bin's state died with a crashed
        process and a recovery control step retargeted it here before any
        replacement state could be shipped: create it empty (bounded,
        observable data loss — the documented fault-model trade) so the
        stream keeps its Completion guarantee.
        """
        if self._config.recovery_mode and not store.has(bin_id):
            store.create(bin_id)
            trace = ctx.trace
            if trace.wants_recovery:
                trace.publish(
                    BinRecreated(
                        name=self._config.name,
                        bin=bin_id,
                        worker=ctx.worker_id,
                        time=time,
                        at=ctx.now,
                    )
                )
        return store.get(bin_id)

    def on_notify(self, ctx, time: Timestamp) -> None:
        store = self._store(ctx)
        segments = self._col_segments.pop(time, None)
        if segments is not None:
            config = self._config
            if (
                config.columnar_applier is not None
                and time not in self._inbox
                and time not in self._scheduled_bins
            ):
                self._apply_columns(ctx, store, time, segments)
                return
        groups = self._inbox.pop(time, None) or {}
        if segments:
            # No columnar applier (or classic work is interleaved at this
            # time): decode the segments into the per-bin entry shape the
            # per-record apply loop consumes.  Segment order is arrival
            # order, so per-bin entry order matches the classic inbox.
            for tag, bin_ids, colbatch in segments:
                for bin_id, record in zip(bin_ids.tolist(), colbatch.to_records()):
                    entries = groups.get(bin_id)
                    if entries is None:
                        groups[bin_id] = [(tag, record)]
                    else:
                        entries.append((tag, record))
        # Post-dated records go first per bin: they were produced at
        # earlier times than anything arriving at ``time``.
        for bin_id in sorted(self._scheduled_bins.pop(time, ())):
            if not store.has(bin_id):
                continue  # The bin migrated away; its pending work went along.
            bin_ = store.get(bin_id)
            ready = [
                entry
                for _t, entry in bin_.pending.pop_ready(lambda t: less_equal(t, time))
            ]
            if ready:
                existing = groups.get(bin_id)
                groups[bin_id] = ready + existing if existing else ready
        if not groups:
            return
        cost = ctx.cost
        applier = self._config.applier
        recovery = self._config.recovery_mode
        worker_id = ctx.worker_id
        total = 0
        outputs: list = []
        for bin_id in sorted(groups):
            entries = groups[bin_id]
            total += len(entries)
            bin_ = (
                self._bin_for(ctx, store, time, bin_id)
                if recovery
                else store.get(bin_id)
            )
            app = ApplicationContext(time, bin_, entries, worker=worker_id)
            applier(app)
            outputs.extend(app.outputs)
            for sched_time, entry in app.scheduled:
                bin_.pending.push(sched_time, entry)
                self._schedule_bin(ctx, sched_time, bin_id)
            # Backends with maintenance policies (log compaction, tier
            # spill) react to the mutation here; flat backends no-op.  The
            # record count accumulates into per-bin load statistics.
            store.note_applied(bin_id, len(entries))
        ctx.charge(total * cost.record_cost)
        if outputs:
            ctx.send(0, time, outputs)

    def _apply_columns(self, ctx, store: BinStore, time: Timestamp, segments) -> None:
        """Vectorized application: one merged, bin-sorted fold per notification.

        Equivalent to the per-record loop above for a pure columnar time
        (no classic inbox entries, no scheduled bins): bins are visited
        ascending, per-bin record order is arrival order, the same per-bin
        ``note_applied`` counts land in the backend stats, and the CPU
        charge is the same ``total * record_cost``.
        """
        merged = merge_segments(segments)
        if merged is None:
            return
        batch, ubins, starts = merged
        if self._config.recovery_mode:
            states = [
                self._bin_for(ctx, store, time, bin_id).state for bin_id in ubins
            ]
        else:
            states = store.group_states(ubins)
        group = ColumnGroup(
            time, batch.keys, batch.vals, ubins, starts, states, ctx.worker_id
        )
        outputs = self._config.columnar_applier(group)
        store.note_applied_group(ubins, starts)
        ctx.charge(len(batch) * ctx.cost.record_cost)
        if outputs is not None and len(outputs):
            ctx.send(0, time, outputs)


class MegaphoneConfig:
    """Shared construction-time configuration of one migrateable operator."""

    def __init__(
        self,
        name: str,
        num_bins: int,
        initial: BinnedConfiguration,
        key_fns: list[Callable[[object], int]],
        applier: Applier,
        state_factory: Callable[[], object],
        state_size_fn: Optional[Callable[[object], float]],
        reference_routing: bool = False,
        state_backend: str = DEFAULT_BACKEND,
        codec: str = DEFAULT_CODEC,
        backend_options: Optional[dict] = None,
        columnar_applier: Optional[Callable] = None,
        delta_migration: bool = False,
    ) -> None:
        self.name = name
        self.num_bins = num_bins
        self.initial = initial
        self.key_fns = key_fns
        self.applier = applier
        # Optional whole-group fold over a ColumnGroup; when set, S applies
        # a pure columnar notification in one vectorized call instead of
        # one ApplicationContext per bin.  Must be behaviorally identical
        # to ``applier`` — the per-record path remains the correctness pin.
        self.columnar_applier = columnar_applier
        self.state_factory = state_factory
        self.state_size_fn = state_size_fn
        # Backend selection is per-operator; stores on every worker share
        # the names, each worker constructs its own backend instance.
        self.state_backend = state_backend
        self.codec = codec
        self.backend_options = dict(backend_options) if backend_options else {}
        self.codec_obj = resolve_codec(codec)
        # Base-then-delta shipping: F pre-copies moving bins at plan time
        # and ships only the keys dirtied since at execution.  Requires a
        # delta-capable backend; others silently fall back to whole-bin.
        self.delta_migration = delta_migration
        self.probe = MigrationProbe()
        self.s_op: int = -1  # wired by the builder
        # When True (set by fault-injection harnesses) the pair tolerates
        # missing bins: S recreates them empty on first use and F skips
        # extraction of bins it no longer holds.  False keeps the strict
        # fail-loud behavior of fault-free runs.
        self.recovery_mode = False
        self._store_key = f"megaphone:{name}"
        # Pin the per-record reference routing path (memoized binary search)
        # even in steady state; used by equivalence tests and benchmarks.
        self.reference_routing = reference_routing
        self._route_cost: Optional[float] = None
        # ``bin_of`` re-validates num_bins on every call; the hot path uses
        # this pre-resolved closure with the shift baked in instead.
        if num_bins & (num_bins - 1) != 0 or num_bins <= 0:
            raise ValueError(f"num_bins must be a power of two, got {num_bins}")
        bits = num_bins.bit_length() - 1
        # The columnar kernels take the shift directly; >= 64 means one bin.
        self.bin_shift = 64 - bits if bits else 64
        if bits == 0:
            self.bin_fn = lambda key_int: 0
        else:
            shift = 64 - bits
            mask = 0xFFFFFFFFFFFFFFFF

            def bin_fn(value: int) -> int:
                # splitmix64 inlined (one call per record adds up).
                value = (value + 0x9E3779B97F4A7C15) & mask
                value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & mask
                value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & mask
                return (value ^ (value >> 31)) >> shift

            self.bin_fn = bin_fn

    def route_cost(self, ctx) -> float:
        if self._route_cost is None:
            self._route_cost = ctx.cost.route_cost_for_bins(self.num_bins)
        return self._route_cost

    def store_for(self, ctx) -> BinStore:
        key = self._store_key
        store = ctx.shared.get(key)
        if store is None:
            store = BinStore(
                self.num_bins,
                self.state_factory,
                self.state_size_fn,
                bytes_per_key=ctx.cost.state_bytes_per_key,
                backend=self.state_backend,
                codec=self.codec,
                backend_options=self.backend_options,
                worker_id=ctx.worker_id,
            )
            for bin_id in self.initial.bins_of(ctx.worker_id):
                # A durable backend may have adopted this bin already while
                # replaying the worker's log at bind time.
                if not store.has(bin_id):
                    store.create(bin_id)
            ctx.shared[key] = store
        return store


def _time_key(time: Timestamp):
    if isinstance(time, tuple):
        return (1, time)
    return (0, (time,))


class MigrateableOperator:
    """Handle to a constructed Megaphone operator pair."""

    def __init__(
        self,
        config: MegaphoneConfig,
        output: Stream,
        f_op: int,
        s_op: int,
    ) -> None:
        self.config = config
        self.output = output
        self.f_op = f_op
        self.s_op = s_op

    @property
    def migration_probe(self) -> MigrationProbe:
        """Recorded migration activity (moves, bytes, start times)."""
        return self.config.probe

    def store(self, runtime, worker_id: int) -> BinStore:
        """The bin store resident on ``worker_id`` (tests/metrics)."""
        return runtime.workers[worker_id].shared[f"megaphone:{self.config.name}"]

    def stores(self, runtime, workers=None):
        """Yield ``(worker_id, store)`` for workers with a materialized store.

        A worker that never processed a record has no store; sharded
        runtimes host only their resident workers.  ``workers`` restricts
        the sweep (e.g. to a shard's residents); None sweeps everyone.
        """
        key = f"megaphone:{self.config.name}"
        ids = range(runtime.num_workers) if workers is None else workers
        for worker_id in ids:
            store = runtime.workers[worker_id].shared.get(key)
            if store is not None:
                yield worker_id, store


def build_migrateable(
    control: Stream,
    data_streams: list[Stream],
    key_fns: list[Callable[[object], int]],
    applier: Applier,
    num_bins: int,
    name: str,
    initial: Optional[BinnedConfiguration] = None,
    state_factory: Callable[[], object] = dict,
    state_size_fn: Optional[Callable[[object], float]] = None,
    reference_routing: bool = False,
    state_backend: str = DEFAULT_BACKEND,
    codec: str = DEFAULT_CODEC,
    backend_options: Optional[dict] = None,
    columnar_applier: Optional[Callable] = None,
    delta_migration: bool = False,
) -> MigrateableOperator:
    """Assemble the F/S pair for a migrateable operator.

    ``data_streams`` and ``key_fns`` run in parallel: one exchange function
    per data input (paper Listing 1).  Returns a handle whose ``output`` is
    the operator's output stream.  ``state_backend``/``codec`` name the
    registered state representation and serialized form (``repro.state``).
    """
    if len(data_streams) != len(key_fns):
        raise ValueError("one key function per data stream is required")
    if not data_streams:
        raise ValueError("at least one data stream is required")
    dataflow = control.dataflow
    if initial is None:
        initial = BinnedConfiguration.round_robin(num_bins, dataflow.num_workers)
    if initial.num_bins != num_bins:
        raise ValueError("initial configuration has the wrong number of bins")
    config = MegaphoneConfig(
        name=name,
        num_bins=num_bins,
        initial=initial,
        key_fns=key_fns,
        applier=applier,
        state_factory=state_factory,
        state_size_fn=state_size_fn,
        reference_routing=reference_routing,
        state_backend=state_backend,
        codec=codec,
        backend_options=backend_options,
        columnar_applier=columnar_applier,
        delta_migration=delta_migration,
    )

    f_inputs = [(control, Broadcast())]
    f_inputs.extend((stream, Pipeline()) for stream in data_streams)
    f_outputs = dataflow.add_operator(
        name=f"{name}/F",
        inputs=f_inputs,
        n_outputs=2,
        logic_factory=lambda worker_id: _FLogic(config, worker_id),
    )
    data_out, state_out = f_outputs
    f_op = data_out.op_index

    # Data batches are destination-grouped by F; migrating state still
    # travels as per-bin (dst, bin, size) records on a keyed exchange.
    s_outputs = dataflow.add_operator(
        name=f"{name}/S",
        inputs=[
            (data_out, GroupedExchange()),
            (state_out, Exchange(lambda record: record[0])),
        ],
        n_outputs=1,
        logic_factory=lambda worker_id: _SLogic(config, worker_id),
    )
    output = s_outputs[0]
    s_op = output.op_index
    config.s_op = s_op
    dataflow.watch_output(s_op, f_op)
    return MigrateableOperator(config=config, output=output, f_op=f_op, s_op=s_op)
