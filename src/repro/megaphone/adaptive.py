"""Latency-aware adaptive migration: dynamic step sizing.

The database live-migration literature the paper builds on (notably
Albatross's dynamic throttling, §2.2) adapts the migration rate so the
source keeps meeting its SLOs.  Megaphone's control-stream design makes the
same policy a pure controller concern: this module implements a controller
that starts from a batched plan, observes each step's duration, and grows
or shrinks the next step's batch to steer the per-step impact toward a
target.

This is one instance of the "substantial design space" the paper says the
data-driven reconfiguration API opens (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.megaphone.control import BinnedConfiguration
from repro.megaphone.controller import EpochTicker, MigrationResult, StepResult
from repro.runtime_events.analyze import MigrationTrace
from repro.runtime_events.events import (
    MigrationStepCompleted,
    MigrationStepIssued,
    MigrationStepOutcome,
)
from repro.timely.dataflow import InputGroup, Runtime


@dataclass
class AdaptiveConfig:
    """Tuning of the adaptive step-sizing policy."""

    target_step_s: float = 0.05  # steer each step's duration toward this
    initial_batch: int = 4
    min_batch: int = 1
    max_batch: int = 4096
    grow_factor: float = 2.0
    shrink_factor: float = 0.5
    gap_s: float = 0.0


class AdaptiveMigrationController:
    """Migrates a set of moves with latency-steered batch sizes.

    After every completed step the controller compares the step's duration
    against ``target_step_s``: steps that finish well under target double
    the next batch; steps that overshoot halve it.  The result converges to
    the largest step the system absorbs within the target — the same
    latency/duration trade-off the paper's Figures 16-18 sweep manually.
    """

    def __init__(
        self,
        runtime: Runtime,
        control_group: InputGroup,
        ticker: EpochTicker,
        probe,
        current: BinnedConfiguration,
        target: BinnedConfiguration,
        config: Optional[AdaptiveConfig] = None,
    ) -> None:
        self._runtime = runtime
        self._group = control_group
        self._ticker = ticker
        self._probe = probe
        self._config = config if config is not None else AdaptiveConfig()
        self._moves = current.moved_bins(target)
        self._cursor = 0
        self._batch = self._config.initial_batch
        self._awaiting: Optional[StepResult] = None
        self.result = MigrationResult(strategy="adaptive")
        self.batch_history: list[int] = []
        # Step durations are measured off the trace bus: the controller
        # publishes issue/completion events and reads its own feedback back
        # from the shared migration timeline, like any other consumer.
        self._trace = MigrationTrace(runtime.sim.trace)
        probe.on_advance(self._check_progress)

    @property
    def done(self) -> bool:
        """All moves issued and completed."""
        return self._cursor >= len(self._moves) and self._awaiting is None

    def start_at(self, sim_time_s: float) -> None:
        """Begin migrating at the given simulated time."""
        self._runtime.sim.schedule_at(sim_time_s, self._issue_next)

    def _issue_next(self) -> None:
        if self._cursor >= len(self._moves):
            return
        batch = max(
            self._config.min_batch, min(self._batch, self._config.max_batch)
        )
        insts = self._moves[self._cursor:self._cursor + batch]
        self._cursor += len(insts)
        self.batch_history.append(len(insts))
        handle = self._group.handle(0)
        if handle.epoch is None:
            raise RuntimeError("control input closed during adaptive migration")
        time = handle.epoch
        handle.send(time, list(insts))
        now = self._runtime.sim.now
        self._runtime.sim.trace.publish(
            MigrationStepIssued(time=time, moves=len(insts), at=now)
        )
        # ``batch_size`` records the *chosen* batch (the clamped AIMD
        # window), which exceeds len(insts) on the final, shorter step.
        self._awaiting = StepResult(
            time=time, moves=len(insts), issued_at=now, batch_size=batch
        )
        self.result.steps.append(self._awaiting)
        self._check_progress(None)

    def _check_progress(self, _frontier) -> None:
        awaiting = self._awaiting
        if awaiting is None or not self._probe.passed(awaiting.time):
            return
        awaiting.completed_at = self._runtime.sim.now
        self._awaiting = None
        self._runtime.sim.trace.publish(
            MigrationStepCompleted(time=awaiting.time, at=awaiting.completed_at)
        )
        self._runtime.sim.trace.publish(
            MigrationStepOutcome(
                time=awaiting.time,
                moves=awaiting.moves,
                batch_size=awaiting.batch_size,
                attempts=awaiting.attempts,
                abandoned=False,
                duration_s=awaiting.duration or 0.0,
                at=awaiting.completed_at,
            )
        )
        self._adapt(awaiting)
        self._runtime.sim.schedule(self._config.gap_s, self._issue_next)

    def _adapt(self, step: StepResult) -> None:
        """AIMD-style: overshoot halves the batch, clear headroom doubles it."""
        cfg = self._config
        duration = self._trace.step_duration(step.time) or 0.0
        if duration > cfg.target_step_s:
            self._batch = max(
                cfg.min_batch, int(self._batch * cfg.shrink_factor)
            )
        elif duration < 0.6 * cfg.target_step_s:
            self._batch = min(cfg.max_batch, int(self._batch * cfg.grow_factor))
