"""Serialization of configurations and migration plans.

External controllers (DS2, Dhalion, Chi — paper §4.4) live outside the
dataflow process; the natural interchange format for the control commands
they produce is structured text.  This module round-trips configurations,
instructions, and whole plans through JSON-compatible dictionaries so a
controller can be a separate program (or a human with an editor).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.megaphone.control import BinnedConfiguration, ControlInst
from repro.megaphone.migration import MigrationPlan, MigrationStep

# Version 2 adds the optional ``provenance`` block; version-1 documents
# (no provenance) remain readable, and documents written without
# provenance are emitted as version 1 so older readers still accept them.
# The constants live in repro.versions with every other format version;
# the local names are kept because existing callers import them from here.
from repro.versions import (  # noqa: E402  (re-export)
    PLAN_FORMAT_VERSION as FORMAT_VERSION,
    PLAN_READ_VERSIONS as READ_VERSIONS,
)


@dataclass(frozen=True)
class PlanProvenance:
    """Who authored a plan, and from what evidence.

    ``source`` is ``"manual"`` for human/externally authored plans and
    ``"planner"`` for plans emitted by :mod:`repro.planner`.  Planner
    plans also record the objective they optimized and the telemetry
    window (seconds of observed load) the decision was based on.
    """

    source: str = "manual"
    objective: str = ""
    window_s: float = 0.0
    created_at: float = 0.0

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "objective": self.objective,
            "window_s": self.window_s,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlanProvenance":
        if not isinstance(data, dict):
            raise ValueError("provenance must be an object")
        source = str(data.get("source", "manual"))
        if source not in ("manual", "planner"):
            raise ValueError(f"unknown provenance source {source!r}")
        return cls(
            source=source,
            objective=str(data.get("objective", "")),
            window_s=float(data.get("window_s", 0.0)),
            created_at=float(data.get("created_at", 0.0)),
        )


def configuration_to_dict(config: BinnedConfiguration) -> dict:
    """JSON-compatible form of a configuration."""
    return {
        "version": 1,
        "kind": "configuration",
        "assignment": list(config.assignment),
    }


def configuration_from_dict(data: dict) -> BinnedConfiguration:
    """Parse a configuration; validates kind and contents."""
    _check(data, "configuration")
    assignment = data["assignment"]
    if not isinstance(assignment, list) or not all(
        isinstance(w, int) and w >= 0 for w in assignment
    ):
        raise ValueError("assignment must be a list of worker ids")
    return BinnedConfiguration(tuple(assignment))


def inst_to_dict(inst: ControlInst) -> dict:
    """JSON-compatible form of one control instruction."""
    return {"bin": inst.bin, "worker": inst.worker}


def inst_from_dict(data: dict) -> ControlInst:
    """Parse one control instruction."""
    return ControlInst(bin=int(data["bin"]), worker=int(data["worker"]))


def plan_to_dict(plan: MigrationPlan) -> dict:
    """JSON-compatible form of a migration plan."""
    provenance = _coerce_provenance(plan.provenance)
    data = {
        "version": FORMAT_VERSION if provenance is not None else 1,
        "kind": "plan",
        "strategy": plan.strategy,
        "steps": [
            [inst_to_dict(inst) for inst in step.insts] for step in plan.steps
        ],
    }
    if provenance is not None:
        data["provenance"] = provenance.to_dict()
    return data


def plan_from_dict(data: dict) -> MigrationPlan:
    """Parse a migration plan."""
    _check(data, "plan")
    steps = [
        MigrationStep(tuple(inst_from_dict(i) for i in step))
        for step in data["steps"]
    ]
    provenance = None
    if data.get("provenance") is not None:
        provenance = PlanProvenance.from_dict(data["provenance"])
    return MigrationPlan(
        strategy=str(data["strategy"]), steps=steps, provenance=provenance
    )


def _coerce_provenance(value) -> Optional[PlanProvenance]:
    if value is None:
        return None
    if isinstance(value, PlanProvenance):
        return value
    if isinstance(value, dict):
        return PlanProvenance.from_dict(value)
    raise ValueError(f"cannot serialize provenance of type {type(value).__name__}")


def dump_plan(plan: MigrationPlan, path) -> None:
    """Write a plan to a JSON file."""
    with open(path, "w") as handle:
        json.dump(plan_to_dict(plan), handle, indent=2)


def load_plan(path) -> MigrationPlan:
    """Read a plan from a JSON file."""
    with open(path) as handle:
        return plan_from_dict(json.load(handle))


def dump_configuration(config: BinnedConfiguration, path) -> None:
    """Write a configuration to a JSON file."""
    with open(path, "w") as handle:
        json.dump(configuration_to_dict(config), handle, indent=2)


def load_configuration(path) -> BinnedConfiguration:
    """Read a configuration from a JSON file."""
    with open(path) as handle:
        return configuration_from_dict(json.load(handle))


def _check(data: dict, kind: str) -> None:
    if not isinstance(data, dict):
        raise ValueError(f"expected a {kind} object")
    if data.get("kind") != kind:
        raise ValueError(f"expected kind={kind!r}, got {data.get('kind')!r}")
    version = data.get("version")
    if version not in READ_VERSIONS:
        raise ValueError(
            f"unsupported {kind} format version {version!r} "
            f"(this library reads versions {READ_VERSIONS})"
        )
