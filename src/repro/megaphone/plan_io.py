"""Serialization of configurations and migration plans.

External controllers (DS2, Dhalion, Chi — paper §4.4) live outside the
dataflow process; the natural interchange format for the control commands
they produce is structured text.  This module round-trips configurations,
instructions, and whole plans through JSON-compatible dictionaries so a
controller can be a separate program (or a human with an editor).
"""

from __future__ import annotations

import json
from repro.megaphone.control import BinnedConfiguration, ControlInst
from repro.megaphone.migration import MigrationPlan, MigrationStep

FORMAT_VERSION = 1


def configuration_to_dict(config: BinnedConfiguration) -> dict:
    """JSON-compatible form of a configuration."""
    return {
        "version": FORMAT_VERSION,
        "kind": "configuration",
        "assignment": list(config.assignment),
    }


def configuration_from_dict(data: dict) -> BinnedConfiguration:
    """Parse a configuration; validates kind and contents."""
    _check(data, "configuration")
    assignment = data["assignment"]
    if not isinstance(assignment, list) or not all(
        isinstance(w, int) and w >= 0 for w in assignment
    ):
        raise ValueError("assignment must be a list of worker ids")
    return BinnedConfiguration(tuple(assignment))


def inst_to_dict(inst: ControlInst) -> dict:
    """JSON-compatible form of one control instruction."""
    return {"bin": inst.bin, "worker": inst.worker}


def inst_from_dict(data: dict) -> ControlInst:
    """Parse one control instruction."""
    return ControlInst(bin=int(data["bin"]), worker=int(data["worker"]))


def plan_to_dict(plan: MigrationPlan) -> dict:
    """JSON-compatible form of a migration plan."""
    return {
        "version": FORMAT_VERSION,
        "kind": "plan",
        "strategy": plan.strategy,
        "steps": [
            [inst_to_dict(inst) for inst in step.insts] for step in plan.steps
        ],
    }


def plan_from_dict(data: dict) -> MigrationPlan:
    """Parse a migration plan."""
    _check(data, "plan")
    steps = [
        MigrationStep(tuple(inst_from_dict(i) for i in step))
        for step in data["steps"]
    ]
    return MigrationPlan(strategy=str(data["strategy"]), steps=steps)


def dump_plan(plan: MigrationPlan, path) -> None:
    """Write a plan to a JSON file."""
    with open(path, "w") as handle:
        json.dump(plan_to_dict(plan), handle, indent=2)


def load_plan(path) -> MigrationPlan:
    """Read a plan from a JSON file."""
    with open(path) as handle:
        return plan_from_dict(json.load(handle))


def dump_configuration(config: BinnedConfiguration, path) -> None:
    """Write a configuration to a JSON file."""
    with open(path, "w") as handle:
        json.dump(configuration_to_dict(config), handle, indent=2)


def load_configuration(path) -> BinnedConfiguration:
    """Read a configuration from a JSON file."""
    with open(path) as handle:
        return configuration_from_dict(json.load(handle))


def _check(data: dict, kind: str) -> None:
    if not isinstance(data, dict):
        raise ValueError(f"expected a {kind} object")
    if data.get("kind") != kind:
        raise ValueError(f"expected kind={kind!r}, got {data.get('kind')!r}")
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported {kind} format version {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
