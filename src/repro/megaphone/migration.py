"""Migration strategies: turning a target configuration into control steps.

Paper §3.3 describes the strategy space; §4.4 adds two optimizations.  All
strategies reveal the same set of ``(bin, worker)`` changes, differing only
in how the changes are grouped into timestamped steps:

* **all-at-once** — one step carries every change (the partial
  pause-and-resume behaviour of existing systems);
* **fluid** — one bin per step, each step awaiting the previous one's
  completion;
* **batched** — fixed-size groups of bins per step;
* **optimized** — batched, plus bipartite matching so that each step's
  moves use disjoint (source, destination) worker pairs — moves that do not
  interfere proceed together, reducing the number of steps without much
  increasing the per-step latency.

The gap between steps (paper §4.4: lets the system drain enqueued records,
halving the worst-case latency) is a controller parameter, not part of the
plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.megaphone.control import BinnedConfiguration, ControlInst


@dataclass(frozen=True)
class MigrationStep:
    """One atomic reconfiguration: all instructions share a timestamp."""

    insts: tuple[ControlInst, ...]

    def __len__(self) -> int:
        return len(self.insts)


@dataclass
class MigrationPlan:
    """An ordered sequence of reconfiguration steps.

    ``provenance`` is opaque to execution: controllers replay the steps
    identically whether a human or the planner authored them.  Serialized
    plans carry it as a :class:`repro.megaphone.plan_io.PlanProvenance`.
    """

    strategy: str
    steps: list[MigrationStep] = field(default_factory=list)
    provenance: object = None

    @property
    def total_moves(self) -> int:
        return sum(len(step) for step in self.steps)

    def configurations(self, start: BinnedConfiguration) -> list[BinnedConfiguration]:
        """The configuration after each step, starting from ``start``."""
        configs = []
        current = start
        for step in self.steps:
            current = current.apply(list(step.insts))
            configs.append(current)
        return configs


def _moves(
    current: BinnedConfiguration, target: BinnedConfiguration
) -> list[ControlInst]:
    return current.moved_bins(target)


def plan_all_at_once(
    current: BinnedConfiguration, target: BinnedConfiguration
) -> MigrationPlan:
    """Every change in a single step (prior work's behaviour)."""
    moves = _moves(current, target)
    steps = [MigrationStep(tuple(moves))] if moves else []
    return MigrationPlan(strategy="all-at-once", steps=steps)


def plan_fluid(
    current: BinnedConfiguration, target: BinnedConfiguration
) -> MigrationPlan:
    """One bin per step."""
    return MigrationPlan(
        strategy="fluid",
        steps=[MigrationStep((move,)) for move in _moves(current, target)],
    )


def plan_batched(
    current: BinnedConfiguration,
    target: BinnedConfiguration,
    batch_size: int = 16,
) -> MigrationPlan:
    """Fixed-size batches of bins per step."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    moves = _moves(current, target)
    steps = [
        MigrationStep(tuple(moves[i:i + batch_size]))
        for i in range(0, len(moves), batch_size)
    ]
    return MigrationPlan(strategy="batched", steps=steps)


def plan_optimized(
    current: BinnedConfiguration, target: BinnedConfiguration
) -> MigrationPlan:
    """Bipartite-matching rounds: disjoint (src, dst) pairs per step.

    Each round is a matching in the bipartite multigraph whose left nodes
    are source workers and right nodes destination workers, one edge per
    moving bin.  Within a round every worker serializes (and receives) at
    most one bin, so the round's latency is close to a single fluid step
    while the number of rounds shrinks to roughly the maximum per-worker
    move count.
    """
    moves = _moves(current, target)
    remaining: list[tuple[int, int, ControlInst]] = [
        (current.worker_of(inst.bin), inst.worker, inst) for inst in moves
    ]
    steps: list[MigrationStep] = []
    while remaining:
        used_src: set[int] = set()
        used_dst: set[int] = set()
        round_insts: list[ControlInst] = []
        deferred: list[tuple[int, int, ControlInst]] = []
        for src, dst, inst in remaining:
            if src not in used_src and dst not in used_dst:
                used_src.add(src)
                used_dst.add(dst)
                round_insts.append(inst)
            else:
                deferred.append((src, dst, inst))
        steps.append(MigrationStep(tuple(round_insts)))
        remaining = deferred
    return MigrationPlan(strategy="optimized", steps=steps)


STRATEGIES = ("all-at-once", "fluid", "batched", "optimized")


def make_plan(
    strategy: str,
    current: BinnedConfiguration,
    target: BinnedConfiguration,
    batch_size: Optional[int] = None,
) -> MigrationPlan:
    """Build a plan by strategy name."""
    if strategy == "all-at-once":
        return plan_all_at_once(current, target)
    if strategy == "fluid":
        return plan_fluid(current, target)
    if strategy == "batched":
        return plan_batched(current, target, batch_size or 16)
    if strategy == "optimized":
        return plan_optimized(current, target)
    raise ValueError(f"unknown strategy {strategy!r}; pick one of {STRATEGIES}")


# -- canonical reconfiguration scenarios (paper §5, setup) ---------------------


def imbalanced_target(initial: BinnedConfiguration) -> BinnedConfiguration:
    """The paper's first migration: half the bins of the first half of the
    workers move to the corresponding worker of the second half (25 % of
    all state), producing an imbalanced assignment."""
    workers = max(initial.assignment) + 1
    half = workers // 2
    if half == 0:
        return initial
    assignment = list(initial.assignment)
    for w in range(half):
        owned = [b for b, owner in enumerate(assignment) if owner == w]
        for b in owned[: len(owned) // 2]:
            assignment[b] = w + half
    return BinnedConfiguration(tuple(assignment))


def rebalanced_target(
    initial: BinnedConfiguration, _imbalanced: BinnedConfiguration
) -> BinnedConfiguration:
    """The paper's second migration: back to the balanced configuration."""
    return initial
