"""Megaphone reproduction: latency-conscious state migration for
distributed streaming dataflows (Hoffmann et al., VLDB 2019).

Packages:

* ``repro.sim`` — deterministic discrete-event simulation of the cluster
  (workers, processes, network links, cost and memory models);
* ``repro.timely`` — a timely dataflow runtime on the simulation: logical
  timestamps, antichain frontiers, capabilities, exact progress tracking,
  exchange channels, probes;
* ``repro.megaphone`` — the paper's contribution: binned state, the F/S
  operator pair, the ``state_machine``/``unary``/``binary`` operator
  interface, migration strategies, and the migration controller;
* ``repro.nexmark`` — the NEXMark generator and all eight queries, each in
  a native and a Megaphone variant;
* ``repro.harness`` — open-loop load generation, log-binned latency
  instrumentation, and experiment orchestration.
"""

__version__ = "1.0.0"
