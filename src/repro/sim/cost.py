"""Cost model for the simulated timely dataflow cluster.

All costs are expressed in simulated seconds (CPU) or bytes (state and
messages).  Defaults are loosely calibrated against the paper's testbed
(Intel Xeon E5-4650 v2, 10 GbE-class interconnect) so that the evaluation
shapes — all-at-once latency spikes proportional to state size, sub-second
fine-grained migration steps, saturation near tens of millions of records
per second across 16 workers — come out in the right ballpark.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Simulated costs of computation, serialization, and transfer.

    Attributes:
        record_cost: CPU seconds to apply one record to operator state.
        ingest_record_cost: CPU seconds for a source to emit one record.
        batch_overhead: fixed CPU seconds per delivered message batch.
        route_cost: extra CPU seconds per record spent in Megaphone's F
            operator consulting the routing table (scales mildly with the
            routing-table size; see ``route_cost_for_bins``).
        ser_byte_cost: CPU seconds per byte to serialize migrating state.
        deser_byte_cost: CPU seconds per byte to install migrated state.
        state_bytes_per_key: modeled size of one key's state in bytes.
        message_bytes_per_record: modeled wire size of one data record.
        progress_update_cost: CPU seconds to integrate one progress update.
    """

    record_cost: float = 0.25e-6
    ingest_record_cost: float = 0.05e-6
    batch_overhead: float = 20e-6
    route_cost: float = 0.05e-6
    ser_byte_cost: float = 0.4e-9
    deser_byte_cost: float = 0.4e-9
    state_bytes_per_key: float = 8.0
    message_bytes_per_record: float = 32.0
    progress_update_cost: float = 1e-6

    def with_overrides(self, **kwargs: float) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def state_bytes(self, num_keys: float) -> float:
        """Modeled bytes of state for ``num_keys`` keys."""
        return num_keys * self.state_bytes_per_key

    def serialize_cost(self, num_bytes: float) -> float:
        """CPU seconds to serialize ``num_bytes`` of state."""
        return num_bytes * self.ser_byte_cost

    def deserialize_cost(self, num_bytes: float) -> float:
        """CPU seconds to install ``num_bytes`` of migrated state."""
        return num_bytes * self.deser_byte_cost

    def route_cost_for_bins(self, num_bins: int) -> float:
        """Per-record routing cost for a routing table with ``num_bins`` bins.

        The paper observes (Figures 13-15) that Megaphone's overhead is a
        small constant up to ~2^12 bins and grows sharply beyond ~2^16, as
        the routing table and per-bin bookkeeping stop fitting in cache.  We
        model that knee with a cache-pressure term that kicks in beyond
        2^14 entries.
        """
        if num_bins <= 0:
            raise ValueError("num_bins must be positive")
        base = self.route_cost
        cache_capacity = 1 << 14
        if num_bins <= cache_capacity:
            return base
        # Beyond the modeled cache capacity each lookup gets linearly more
        # expensive in the spilled fraction, matching the measured blow-up.
        spill = num_bins / cache_capacity
        return base + self.record_cost * spill
