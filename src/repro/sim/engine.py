"""Deterministic discrete-event simulation engine.

The engine keeps a single binary heap of pending events.  Events scheduled at
the same simulated time fire in the order they were scheduled (a per-event
sequence number breaks ties), which makes every simulation run fully
deterministic and therefore reproducible and debuggable.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so the heap pops them in deterministic
    order.  ``cancelled`` events stay in the heap but are skipped when popped
    (lazy deletion), which keeps cancellation O(1).
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent this event from firing."""
        self.cancelled = True


class Simulator:
    """Event heap with a deterministic execution order.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.0, lambda: fired.append("a"))
    >>> _ = sim.schedule(0.5, lambda: fired.append("b"))
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._events_processed: int = 0

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Negative delays are clamped to zero: an event can never fire in the
        simulated past.
        """
        return self.schedule_at(self.now + max(delay, 0.0), callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time!r}: simulated time is already {self.now!r}"
            )
        self._seq += 1
        event = Event(time=time, seq=self._seq, callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def step(self) -> bool:
        """Fire the next event.  Returns False when no events remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.

        When stopping at ``until``, the clock is advanced to ``until`` so a
        subsequent ``run`` resumes from there.
        """
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                return
            next_time = self.peek_time()
            if next_time is None:
                if until is not None and until > self.now:
                    self.now = until
                return
            if until is not None and next_time > until:
                self.now = until
                return
            self.step()
            fired += 1
