"""Deterministic discrete-event simulation engine.

The engine keeps a single binary heap of pending events.  Events scheduled at
the same simulated time fire in the order they were scheduled (a per-event
sequence number breaks ties), which makes every simulation run fully
deterministic and therefore reproducible and debuggable.

The simulator also carries the process-wide :class:`~repro.runtime_events.bus.TraceBus`
(as ``sim.trace``): every layer of the runtime holds a simulator reference, so
the bus placed here is reachable from workers, the network, the progress pump,
and the Megaphone operators without any extra plumbing.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.runtime_events.bus import TraceBus

# Lazy deletion keeps cancellation O(1), but workloads that re-arm timers
# (notificators, pacing controllers) can leave the heap dominated by dead
# entries.  Once more than half the heap is cancelled (and the heap is big
# enough for the sweep to matter) we rebuild it from the live events.
_COMPACT_MIN_CANCELLED = 64


class Event:
    """A scheduled callback.

    Heap entries are ``(time, seq, event)`` tuples, so ordering is decided
    by C-level tuple comparison — ``seq`` is unique, so the comparison never
    reaches the event object itself.  ``cancelled`` events stay in the heap
    but are skipped when popped (lazy deletion), which keeps cancellation
    O(1); the owning simulator compacts the heap when cancelled entries
    outnumber live ones.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "owner")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        cancelled: bool = False,
        owner: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled
        self.owner = owner

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, seq={self.seq!r}, "
            f"cancelled={self.cancelled!r})"
        )

    def cancel(self) -> None:
        """Prevent this event from firing."""
        if not self.cancelled:
            self.cancelled = True
            if self.owner is not None:
                self.owner._note_cancelled()


class Simulator:
    """Event heap with a deterministic execution order.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.0, lambda: fired.append("a"))
    >>> _ = sim.schedule(0.5, lambda: fired.append("b"))
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self.trace: TraceBus = TraceBus()
        # (time, seq, Event) triples: the heap orders by C-level tuple
        # comparison without ever invoking Python comparison methods.
        self._heap: list[tuple[float, int, Event]] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._cancelled: int = 0

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Negative delays are clamped to zero: an event can never fire in the
        simulated past.
        """
        return self.schedule_at(self.now + max(delay, 0.0), callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time!r}: simulated time is already {self.now!r}"
            )
        seq = self._seq + 1
        self._seq = seq
        event = Event(time, seq, callback, False, self)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule_fast(self, delay: float, callback: Callable[[], None]) -> None:
        """Like :meth:`schedule` but without a handle: the callback cannot be
        cancelled, so no :class:`Event` is allocated.  Ordering is identical
        (same sequence counter)."""
        delay = 0.0 if delay < 0.0 else delay
        self.schedule_fast_at(self.now + delay, callback)

    def schedule_fast_at(self, time: float, callback: Callable[[], None]) -> None:
        """Like :meth:`schedule_at` but without a handle (not cancellable).

        The heap entry carries the bare callable — the hot activation path
        schedules hundreds of thousands of these, and skipping the Event
        allocation is a measurable win.  Fire order is identical to
        :meth:`schedule_at` because both draw from the same ``seq`` counter.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time!r}: simulated time is already {self.now!r}"
            )
        seq = self._seq + 1
        self._seq = seq
        heapq.heappush(self._heap, (time, seq, callback))

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled > len(self._heap) // 2
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from live events.

        Safe at any point: ``(time, seq)`` keys form a unique total order, so
        the rebuilt heap pops in exactly the same sequence as the old one.
        """
        # In-place (slice assignment): ``run`` holds a local alias to the
        # heap list across callbacks, so the list's identity must not change.
        self._heap[:] = [
            entry
            for entry in self._heap
            if entry[2].__class__ is not Event or not entry[2].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if the heap is empty."""
        while self._heap:
            ev = self._heap[0][2]
            if ev.__class__ is Event and ev.cancelled:
                heapq.heappop(self._heap)
                self._cancelled -= 1
                continue
            return self._heap[0][0]
        return None

    def step(self) -> bool:
        """Fire the next event.  Returns False when no events remain."""
        while self._heap:
            time, _seq, event = heapq.heappop(self._heap)
            if event.__class__ is Event:
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                callback = event.callback
            else:
                callback = event
            self.now = time
            self._events_processed += 1
            callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.

        When stopping at ``until``, the clock is advanced to ``until`` so a
        subsequent ``run`` resumes from there.
        """
        # The drain loop is the single hottest function in the simulator, so
        # it inlines ``peek_time`` + ``step`` to touch the heap once per
        # event.  ``_compact`` rebuilds the heap in place, so the local alias
        # stays valid across callbacks.
        heap = self._heap
        pop = heapq.heappop
        event_cls = Event
        fired = 0
        while heap:
            if max_events is not None and fired >= max_events:
                return
            entry = heap[0]
            ev = entry[2]
            if ev.__class__ is event_cls:
                if ev.cancelled:
                    pop(heap)
                    self._cancelled -= 1
                    continue
                callback = ev.callback
            else:
                callback = ev
            time = entry[0]
            if until is not None and time > until:
                self.now = until
                return
            pop(heap)
            self.now = time
            self._events_processed += 1
            callback()
            fired += 1
        if until is not None and until > self.now:
            self.now = until

    def run_below(self, bound: float, max_events: Optional[int] = None) -> int:
        """Fire every pending event with time **strictly less than** ``bound``.

        Unlike :meth:`run`, the clock is *not* advanced to ``bound`` when the
        heap drains or the next event lies at/after the bound: the caller (a
        conservative parallel-DES window loop) may later be granted a smaller
        next bound by its neighbors, and advancing the clock past that grant
        would make remote injections appear in the simulated past.  Returns
        the number of events fired.
        """
        heap = self._heap
        pop = heapq.heappop
        event_cls = Event
        fired = 0
        while heap:
            if max_events is not None and fired >= max_events:
                break
            entry = heap[0]
            ev = entry[2]
            if ev.__class__ is event_cls:
                if ev.cancelled:
                    pop(heap)
                    self._cancelled -= 1
                    continue
                callback = ev.callback
            else:
                callback = ev
            time = entry[0]
            if time >= bound:
                break
            pop(heap)
            self.now = time
            self._events_processed += 1
            callback()
            fired += 1
        return fired
