"""Discrete-event simulation substrate.

The paper evaluates Megaphone on a Rust timely dataflow runtime running on a
four-machine cluster.  This package provides the Python substitute: a
deterministic discrete-event simulator of that cluster, with an explicit cost
model for CPU work, serialization, and network transfers, and an accounting
memory model that stands in for Linux RSS measurements.

Simulated time is measured in (floating point) seconds.
"""

from repro.sim.cost import CostModel
from repro.sim.engine import Event, Simulator
from repro.sim.memory import MemoryModel, MemoryTimeline
from repro.sim.network import Cluster, Link, NetworkMessage, Process

__all__ = [
    "CostModel",
    "Cluster",
    "Event",
    "Link",
    "MemoryModel",
    "MemoryTimeline",
    "NetworkMessage",
    "Process",
    "Simulator",
]
