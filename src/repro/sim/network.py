"""Cluster and network model.

The simulated cluster mirrors the paper's testbed topology: workers (threads)
are grouped into processes, processes are connected by network links with
finite bandwidth and non-zero latency, and messages between workers of the
same process bypass the network.

Links serialize transmissions: a message must wait for the link to drain the
bytes queued ahead of it.  Bytes sitting in a link's send queue are charged
to the sending process's memory model, and a message's ``retained_bytes``
(sender-side memory pinned until the bytes leave, e.g. serialized migration
state) are released at transmit-complete — which is what produces the
all-at-once migration memory spikes of Figure 20.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.runtime_events.events import (
    AccountingClamped,
    MessageDropped,
    MessageEnqueued,
    MessageTransmitted,
)
from repro.sim.cost import CostModel
from repro.sim.engine import Simulator
from repro.sim.memory import MemoryModel


@dataclass(slots=True)
class NetworkMessage:
    """A payload in flight between two workers.

    ``retained_bytes`` is sender-side memory that must stay resident until
    the bytes have left the sender's queue; the cluster releases it from the
    sending process's ``retained`` pool at transmit-complete.

    ``on_dropped`` (when set) is invoked instead of delivery if fault
    injection loses the message, so the sender can compensate progress
    accounting for the payload.
    """

    src_worker: int
    dst_worker: int
    size_bytes: float
    payload: object
    retained_bytes: float = 0.0
    on_dropped: Optional[Callable[["NetworkMessage"], None]] = None


class Link:
    """A directed, bandwidth-limited channel between two processes."""

    __slots__ = (
        "_sim",
        "bandwidth",
        "latency",
        "src_process",
        "dst_process",
        "chaos",
        "_busy_until",
        "queued_bytes",
    )

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bytes_per_s: float,
        latency_s: float,
        src_process: int = -1,
        dst_process: int = -1,
    ) -> None:
        self._sim = sim
        self.bandwidth = bandwidth_bytes_per_s
        self.latency = latency_s
        self.src_process = src_process
        self.dst_process = dst_process
        self.chaos = None
        self._busy_until = 0.0
        self.queued_bytes = 0.0

    def transmit(
        self,
        message: NetworkMessage,
        on_delivered: Optional[Callable[[NetworkMessage], None]],
        on_sent: Optional[Callable[[NetworkMessage], None]] = None,
    ) -> float:
        """Queue ``message`` for transmission.

        ``on_sent`` fires when the last byte leaves the send queue;
        ``on_delivered`` fires one propagation latency later at the receiver.
        Returns the delivery time.  An active chaos degradation window
        scales the effective bandwidth and adds propagation latency.

        ``on_delivered=None`` performs sender-side accounting only (queueing,
        bandwidth, ``on_sent``) and schedules no local delivery: the sharded
        cluster uses this to route cross-shard deliveries through the shard
        outbox instead of the local event heap, at the returned time.
        """
        bandwidth = self.bandwidth
        latency = self.latency
        if self.chaos is not None:
            factor, extra = self.chaos.link_degradation(
                self.src_process, self.dst_process
            )
            bandwidth *= factor
            latency += extra
        start = max(self._sim.now, self._busy_until)
        transmit_time = message.size_bytes / bandwidth if bandwidth else 0.0
        done = start + transmit_time
        self._busy_until = done
        self.queued_bytes += message.size_bytes

        def _sent() -> None:
            self.queued_bytes -= message.size_bytes
            if self.queued_bytes < 0.0:
                trace = self._sim.trace
                if trace.wants_faults and self.queued_bytes < -1e-6:
                    trace.publish(
                        AccountingClamped(
                            owner=f"link[{self.src_process}->{self.dst_process}]",
                            pool="queued_bytes",
                            value=self.queued_bytes,
                            at=self._sim.now,
                        )
                    )
                self.queued_bytes = 0.0
            if on_sent is not None:
                on_sent(message)

        self._sim.schedule_fast_at(done, _sent)
        delivery = done + latency
        if on_delivered is not None:
            self._sim.schedule_fast_at(delivery, lambda: on_delivered(message))
        return delivery

    @property
    def busy_until(self) -> float:
        """Simulated time at which the link's send queue drains."""
        return self._busy_until


@dataclass
class Process:
    """An OS process hosting a contiguous range of workers."""

    index: int
    worker_ids: list[int]
    memory: MemoryModel = field(default_factory=MemoryModel)


class Cluster:
    """Topology: workers grouped into processes, links between processes.

    Delivery semantics:
      * same worker: immediate (the caller pays CPU cost separately);
      * same process, different worker: fixed ``intra_process_latency``;
      * different processes: the directed link between the processes.
    """

    def __init__(
        self,
        sim: Simulator,
        num_workers: int,
        workers_per_process: int = 4,
        bandwidth_bytes_per_s: float = 1.25e9,
        network_latency_s: float = 40e-6,
        intra_process_latency_s: float = 2e-6,
        cost: Optional[CostModel] = None,
    ) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if workers_per_process <= 0:
            raise ValueError("workers_per_process must be positive")
        self.sim = sim
        self.num_workers = num_workers
        self.workers_per_process = workers_per_process
        self.cost = cost if cost is not None else CostModel()
        self.intra_process_latency = intra_process_latency_s

        # The physical partition: the same worker -> process-group map the
        # parallel engine shards on and the chaos layer fate-shares on.
        from repro.parallel.partition import ShardPartition

        self.partition = ShardPartition(num_workers, workers_per_process)
        num_processes = self.partition.num_domains
        self.processes: list[Process] = []
        for p in range(num_processes):
            workers = self.partition.workers_of(p)
            process = Process(index=p, worker_ids=list(workers))
            process.memory.attach_trace(sim, f"process[{p}]")
            self.processes.append(process)

        self.chaos = None
        # worker id -> hosting Process, resolved once (``process_of`` sits
        # on the per-message hot path).
        self._worker_process: list[Process] = [
            self.processes[self.partition.domain_of(w)]
            for w in range(num_workers)
        ]
        self._links: dict[tuple[int, int], Link] = {}
        for src in range(num_processes):
            for dst in range(num_processes):
                if src != dst:
                    self._links[(src, dst)] = Link(
                        sim,
                        bandwidth_bytes_per_s,
                        network_latency_s,
                        src_process=src,
                        dst_process=dst,
                    )

    def install_chaos(self, injector) -> None:
        """Attach a chaos injector to this cluster and all its links."""
        self.chaos = injector
        for link in self._links.values():
            link.chaos = injector

    def process_of(self, worker: int) -> Process:
        """Process hosting ``worker``."""
        return self._worker_process[worker]

    def link(self, src_process: int, dst_process: int) -> Link:
        """The directed link between two distinct processes."""
        return self._links[(src_process, dst_process)]

    def min_cross_latency(self) -> float:
        """Minimum propagation latency over all cross-process links.

        This is the conservative-parallel-DES lookahead: no event executed in
        one simulated process can affect another simulated process sooner
        than this, so shards may safely run ahead of each other by exactly
        this margin between synchronizations.
        """
        if not self._links:
            return self.intra_process_latency
        return min(link.latency for link in self._links.values())

    def send(
        self,
        message: NetworkMessage,
        on_delivered: Callable[[NetworkMessage], None],
    ) -> float:
        """Route ``message`` from its source to its destination worker.

        Returns the simulated delivery time.  Cross-process sends charge the
        bytes to the sender's send-queue memory until transmitted; any
        ``retained_bytes`` are released from the sender's retained pool when
        the bytes leave the queue.
        """
        trace = self.sim.trace
        if trace.wants_network:
            trace.publish(
                MessageEnqueued(
                    src_worker=message.src_worker,
                    dst_worker=message.dst_worker,
                    size_bytes=message.size_bytes,
                    at=self.sim.now,
                )
            )
        src_proc = self.process_of(message.src_worker)
        dst_proc = self.process_of(message.dst_worker)
        if self.chaos is not None:
            reason = self.chaos.drop_reason(src_proc.index, dst_proc.index)
            if reason is not None:
                return self._drop(message, reason)
        if src_proc.index == dst_proc.index:
            # In-process: no send queue — the bytes "leave" immediately.
            self._mark_transmitted(src_proc, message)
            if message.src_worker == message.dst_worker:
                delivery = self.sim.now
                self.sim.schedule_fast_at(delivery, lambda: on_delivered(message))
            else:
                delivery = self.sim.now + self.intra_process_latency
                self.sim.schedule_fast_at(delivery, lambda: on_delivered(message))
            return delivery

        src_proc.memory.add_send_queue(message.size_bytes)

        def _sent(msg: NetworkMessage) -> None:
            src_proc.memory.add_send_queue(-msg.size_bytes)
            self._mark_transmitted(src_proc, msg)

        return self.link(src_proc.index, dst_proc.index).transmit(
            message, on_delivered, _sent
        )

    def _drop(self, message: NetworkMessage, reason: str) -> float:
        """Lose ``message`` to an injected fault.

        The sender's retained bytes are released immediately (the payload is
        gone, not queued), the loss is traced, and the message's
        ``on_dropped`` compensator runs so progress accounting does not wait
        forever for a delivery that will never happen.
        """
        src_proc = self.process_of(message.src_worker)
        if message.retained_bytes:
            src_proc.memory.add_retained(-message.retained_bytes)
        trace = self.sim.trace
        if trace.wants_faults:
            trace.publish(
                MessageDropped(
                    src_worker=message.src_worker,
                    dst_worker=message.dst_worker,
                    size_bytes=message.size_bytes,
                    reason=reason,
                    at=self.sim.now,
                )
            )
        if message.on_dropped is not None:
            self.sim.schedule(0.0, lambda: message.on_dropped(message))
        return self.sim.now

    def _mark_transmitted(self, src_proc: Process, message: NetworkMessage) -> None:
        """The message's last byte left the sender: release retained memory."""
        if message.retained_bytes:
            src_proc.memory.add_retained(-message.retained_bytes)
        trace = self.sim.trace
        if trace.wants_network:
            trace.publish(
                MessageTransmitted(
                    src_worker=message.src_worker,
                    dst_worker=message.dst_worker,
                    size_bytes=message.size_bytes,
                    at=self.sim.now,
                )
            )
