"""Accounting memory model.

The paper measures per-process resident set size (RSS) over time (Figure 20)
and attributes the all-at-once migration spike to serialized state waiting in
the network threads' send queues.  We reproduce that with an accounting
model: each process's modeled RSS is

    base + live state bytes + send-queue bytes + receive-buffer bytes

updated by the components that own each term (bins update state bytes, the
cluster updates send-queue bytes, operator S updates receive buffers while
installing state).

All pools are *integer* bytes: every delta is coerced at the pool boundary,
so fractional modeled sizes cannot accumulate drift, and a negative balance
is unambiguously an accounting bug (a double release or missed charge)
rather than float noise.  Tiered state backends additionally report
``spilled_state_bytes`` — cold-tier bytes that are *not* part of RSS but
ride along in every sample so Fig.-20-style plots can show the
resident/spilled breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime_events.events import TOPIC_MEMORY, AccountingClamped


def _as_int_bytes(value: float) -> int:
    """Coerce a modeled byte count to an integer at the pool boundary."""
    return int(round(value))


class MemoryModel:
    """Per-process integer byte accounting with a high-water mark.

    Every pool is guarded against going negative: a negative balance means
    a double release or a missed charge (fault paths are the usual
    culprits), so the model clamps back to zero and — when tracing is
    attached via :meth:`attach_trace` — publishes an
    :class:`~repro.runtime_events.events.AccountingClamped` warning instead
    of silently corrupting RSS metrics.
    """

    def __init__(self, base_bytes: float = 0) -> None:
        self.base_bytes = _as_int_bytes(base_bytes)
        self.state_bytes = 0
        self.send_queue_bytes = 0
        self.recv_buffer_bytes = 0
        self.retained_bytes = 0
        # Cold-tier bytes (spilling backends).  Deliberately NOT part of
        # rss_bytes: spilled state left RAM — that is the point of spilling.
        self.spilled_state_bytes = 0
        self.peak_bytes = self.base_bytes
        self._sim = None
        self._owner = ""

    def attach_trace(self, sim, owner: str) -> None:
        """Route clamp warnings through ``sim``'s trace bus as ``owner``."""
        self._sim = sim
        self._owner = owner

    def _clamp(self, pool: str, value: int) -> int:
        if value >= 0:
            return value
        if self._sim is not None:
            trace = self._sim.trace
            if trace.wants_faults:
                trace.publish(
                    AccountingClamped(
                        owner=self._owner,
                        pool=pool,
                        value=value,
                        at=self._sim.now,
                    )
                )
        return 0

    @property
    def rss_bytes(self) -> int:
        """Current modeled resident set size."""
        return (
            self.base_bytes
            + self.state_bytes
            + self.send_queue_bytes
            + self.recv_buffer_bytes
            + self.retained_bytes
        )

    def _note_peak(self) -> None:
        if self.rss_bytes > self.peak_bytes:
            self.peak_bytes = self.rss_bytes

    def set_state(self, resident: float, spilled: float = 0) -> None:
        """Refresh live operator-state bytes (sampler path).

        ``resident`` replaces the state pool wholesale; ``spilled`` records
        the backends' cold-tier bytes alongside (not in RSS).
        """
        self.state_bytes = self._clamp("state", _as_int_bytes(resident))
        self.spilled_state_bytes = self._clamp(
            "spilled_state", _as_int_bytes(spilled)
        )
        self._note_peak()

    def add_state(self, delta: float) -> None:
        """Adjust live operator-state bytes."""
        self.state_bytes = self._clamp(
            "state", self.state_bytes + _as_int_bytes(delta)
        )
        self._note_peak()

    def add_send_queue(self, delta: float) -> None:
        """Adjust bytes sitting in network send queues."""
        self.send_queue_bytes = self._clamp(
            "send_queue", self.send_queue_bytes + _as_int_bytes(delta)
        )
        self._note_peak()

    def add_recv_buffer(self, delta: float) -> None:
        """Adjust bytes buffered at the receiver pending installation."""
        self.recv_buffer_bytes = self._clamp(
            "recv_buffer", self.recv_buffer_bytes + _as_int_bytes(delta)
        )
        self._note_peak()

    def add_retained(self, delta: float) -> None:
        """Adjust allocator-retained bytes.

        Extracted-and-serialized state stays resident at the sender until
        the network has drained it (paper §5.3.5's explanation for the
        all-at-once RSS spike: extraction allocates serialized copies faster
        than the network threads can send them, and the originals are not
        returned to the OS in the meantime).
        """
        self.retained_bytes = self._clamp(
            "retained", self.retained_bytes + _as_int_bytes(delta)
        )
        self._note_peak()


@dataclass
class MemorySample:
    """One point of a process's RSS timeline.

    ``spilled_bytes`` is the cold-tier state reported by spilling backends
    at the same instant — zero for flat backends, and never part of
    ``rss_bytes``.
    """

    time: float
    rss_bytes: int
    spilled_bytes: int = 0


@dataclass
class MemoryTimeline:
    """Periodic samples of one process's modeled RSS."""

    process: int
    samples: list[MemorySample] = field(default_factory=list)

    def record(self, time: float, rss_bytes: int, spilled_bytes: int = 0) -> None:
        """Append one sample."""
        self.samples.append(
            MemorySample(
                time=time, rss_bytes=rss_bytes, spilled_bytes=spilled_bytes
            )
        )

    def peak(self) -> int:
        """Largest sampled RSS (0 when empty)."""
        return max((s.rss_bytes for s in self.samples), default=0)

    def peak_spilled(self) -> int:
        """Largest sampled cold-tier size (0 when empty or flat)."""
        return max((s.spilled_bytes for s in self.samples), default=0)

    def at(self, time: float) -> int:
        """RSS of the latest sample at or before ``time`` (0 if none)."""
        best = 0
        for sample in self.samples:
            if sample.time <= time:
                best = sample.rss_bytes
            else:
                break
        return best


class MemoryTimelineRecorder:
    """Builds per-process RSS timelines from ``memory`` trace events.

    The experiment driver publishes a :class:`~repro.runtime_events.events.MemorySampled`
    event per process on every sampling tick; this recorder is the (purely
    observational) consumer that turns the event stream into the
    :class:`MemoryTimeline` objects reports and plots consume.
    """

    def __init__(self, bus, num_processes: int) -> None:
        self.timelines = [MemoryTimeline(process=p) for p in range(num_processes)]
        self._unsubscribe = bus.subscribe(self._on_event, topics=(TOPIC_MEMORY,))

    def close(self) -> None:
        """Detach from the bus."""
        self._unsubscribe()

    def _on_event(self, event) -> None:
        self.timelines[event.process].record(
            event.at, event.rss_bytes, getattr(event, "spilled_bytes", 0)
        )
