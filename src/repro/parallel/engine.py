"""Per-domain event loop for the sharded simulation.

:class:`DomainSimulator` is a :class:`~repro.sim.engine.Simulator` whose heap
keys are *uniformly* tuples, so locally-scheduled events and remotely-injected
events never mix ``int`` and ``tuple`` sequence numbers in one comparison:

* local events carry seq ``(1, 0, n)`` with ``n`` drawn from the ordinary
  monotone counter;
* remote injections carry seq ``(0, src_domain, src_seq)`` where ``src_seq``
  is assigned by the *sender* in creation order.

At equal times, remote injections therefore fire before local events, and
remote injections from different senders fire in ``(src_domain, src_seq)``
order — both total orders are functions of the (deterministic) message
streams alone, never of OS scheduling, so every shard count replays the same
event sequence.
"""

from __future__ import annotations

from typing import Callable

import heapq

from repro.sim.engine import Event, Simulator


class DomainSimulator(Simulator):
    """Simulator whose heap keys admit deterministic remote injection."""

    #: seq prefix for locally scheduled events (sorts after remote = 0).
    _LOCAL = 1
    #: seq prefix for remotely injected events (sorts before local = 1).
    _REMOTE = 0

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time!r}: simulated time is already {self.now!r}"
            )
        n = self._seq + 1
        self._seq = n
        seq = (self._LOCAL, 0, n)
        event = Event(time, seq, callback, False, self)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule_fast_at(self, time: float, callback: Callable[[], None]) -> None:
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time!r}: simulated time is already {self.now!r}"
            )
        n = self._seq + 1
        self._seq = n
        heapq.heappush(self._heap, (time, (self._LOCAL, 0, n), callback))

    def inject_remote(
        self,
        time: float,
        src_domain: int,
        src_seq: int,
        callback: Callable[[], None],
    ) -> None:
        """Inject a cross-domain delivery at ``time``.

        ``src_seq`` is the sender-assigned creation-order sequence; together
        with ``src_domain`` it gives remote injections a machine-independent
        total order at equal times.  Injection in the simulated past is a
        protocol violation (the conservative window bound should make it
        impossible) and raises.
        """
        if time < self.now:
            raise ValueError(
                f"remote injection at {time!r} violates lookahead: "
                f"domain clock is already {self.now!r}"
            )
        heapq.heappush(self._heap, (time, (self._REMOTE, src_domain, src_seq), callback))
