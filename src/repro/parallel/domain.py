"""One shard of the sharded simulation: a domain and everything it hosts.

A :class:`DomainHost` owns a complete, independently-constructed replica of
the experiment — simulator, cluster, dataflow graph, operator instances for
its *resident* workers, open-loop source and epoch ticker filtered to those
workers — plus the shard-facing surface the window protocol drives:
``run_window(grant, inbox) -> (next_time, outbox)``.

Division of labor per domain:

* every domain builds the identical graph and seeds identical source
  capabilities, so all views agree at t=0 without messages;
* resident workers get real :class:`WorkerRuntime` instances; non-resident
  slots get :class:`RemoteWorkerStub` (progress noted remotely, never
  activated locally);
* cross-domain dataflow messages keep the *exact* legacy sender-side link
  timing (queueing, bandwidth, retained-byte release) — only the delivery
  is rerouted into the shard outbox instead of the local event heap;
* domain 0 additionally hosts the latency recorder, timeline, and the
  migration controllers (the control stream is driven through worker 0's
  handle, which is resident there).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.harness.latency import EpochLatencyRecorder, LatencyTimeline
from repro.harness.openloop import OpenLoopSource
from repro.megaphone.controller import EpochTicker, MigrationController
from repro.megaphone.migration import imbalanced_target, make_plan
from repro.parallel.engine import DomainSimulator
from repro.parallel.partition import ShardPartition
from repro.parallel.progress import DomainTracker
from repro.sim.network import Cluster, NetworkMessage
from repro.timely.dataflow import Dataflow, Runtime
from repro.timely.progress import ProgressTracker
from repro.timely.worker import WorkerRuntime

_INF = math.inf


@dataclass(slots=True)
class RemoteData:
    """A cross-domain dataflow message awaiting injection at its shard."""

    dst_domain: int
    delivery: float
    src_seq: int
    src_domain: int
    channel_index: int
    time: object
    records: object
    size_bytes: float
    src_worker: int
    dst_worker: int


@dataclass(slots=True)
class RemoteProgress:
    """One quantized progress-update batch bound for another domain."""

    dst_domain: int
    delivery: float
    src_seq: int
    src_domain: int
    batch: tuple


class RemoteWorkerStub:
    """Stand-in for a worker resident in another shard.

    Satisfies exactly the surface the runtime touches for every worker:
    frontier notes are dropped (the owning shard gets them through its own
    view), pending-work queries say no, and any attempt to hand it actual
    work is a routing bug that fails loudly.
    """

    __slots__ = ("worker_id", "shared", "alive")

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.shared: dict = {}
        self.alive = True

    @property
    def busy_until(self) -> float:
        return 0.0

    def note_frontier(self, op_index: int) -> None:
        pass

    def has_pending_work(self) -> bool:
        return False

    def enqueue_message(self, channel, time, records, size_bytes) -> None:
        raise RuntimeError(
            f"worker {self.worker_id} is not resident in this shard; "
            "a message was misrouted past the shard cluster"
        )

    def enqueue_source(self, op_index, time, records) -> None:
        raise RuntimeError(
            f"worker {self.worker_id} is not resident in this shard; "
            "a source injection was not filtered to residents"
        )


class ShardCluster(Cluster):
    """A cluster whose cross-domain deliveries go to the shard outbox.

    Sender-side accounting (send-queue memory, link serialization,
    bandwidth, retained-byte release at transmit-complete) is inherited
    unchanged, so link clocks evolve exactly as in the serial engine; only
    the delivery callback is suppressed (``on_delivered=None``) and the
    computed delivery time handed to ``on_remote`` instead.
    """

    def __init__(self, *args, partition: ShardPartition, domain: int,
                 on_remote: Callable[[float, NetworkMessage], None], **kwargs):
        super().__init__(*args, **kwargs)
        self._partition = partition
        self._domain = domain
        self._on_remote = on_remote

    def install_chaos(self, injector) -> None:
        raise RuntimeError("chaos injection is not supported in sharded mode")

    def send(self, message: NetworkMessage, on_delivered) -> float:
        if self._partition.domain_of(message.dst_worker) == self._domain:
            return super().send(message, on_delivered)
        delivery = super().send(message, None)
        self._on_remote(delivery, message)
        return delivery


class ShardRuntime(Runtime):
    """A :class:`Runtime` hosting one domain's resident workers.

    The tracker is a :class:`DomainTracker` view; operator logics are
    instantiated for residents only (every domain has at least one resident,
    so the structurally-identical ``frontier_interested`` set is still
    discovered identically everywhere); source capabilities are seeded for
    the *full* worker set, unlogged — each domain seeds the same global
    t=0 state, so no broadcast is needed to agree on it.
    """

    def __init__(self, dataflow: Dataflow, batches_per_activation: int,
                 partition: ShardPartition, domain: int) -> None:
        self.partition = partition
        self.domain = domain
        self.resident = partition.workers_of(domain)
        super().__init__(dataflow, batches_per_activation)

    def _make_tracker(self) -> ProgressTracker:
        sim = self.sim
        return DomainTracker(self.graph, clock=lambda: sim.now)

    def _make_worker(self, worker_id: int):
        if worker_id in self.resident:
            return WorkerRuntime(self, worker_id)
        return RemoteWorkerStub(worker_id)

    def _install_operators(self) -> None:
        stub = RemoteWorkerStub
        for desc in self.graph.operators:
            for worker in self.workers:
                if type(worker) is stub:
                    continue
                logic = desc.logic_factory(worker.worker_id)
                worker.install(desc, logic)
                if hasattr(logic, "on_frontier") or hasattr(logic, "on_notify"):
                    self._frontier_interested.add(desc.index)
            if desc.is_source:
                for w in range(self.num_workers):
                    self.tracker.seed_capability(
                        desc.index, desc.initial_timestamp, +1
                    )


class DomainHost:
    """Builds and drives one shard of a sharded count experiment."""

    def __init__(self, cfg, partition: ShardPartition, domain: int) -> None:
        # Imported here: harness.experiment imports the parallel runner,
        # which imports this module.
        from repro.harness.experiment import _build_megaphone_count

        self.cfg = cfg
        self.partition = partition
        self.domain = domain
        self.resident = list(partition.workers_of(domain))
        self._outbox: list = []
        self._out_seq = 0

        self.sim = DomainSimulator()
        self.cluster = ShardCluster(
            self.sim,
            num_workers=cfg.num_workers,
            workers_per_process=cfg.workers_per_process,
            bandwidth_bytes_per_s=cfg.bandwidth_bytes_per_s,
            network_latency_s=cfg.network_latency_s,
            cost=cfg.resolved_cost(),
            partition=partition,
            domain=domain,
            on_remote=self._note_remote,
        )
        self.lookahead = self.cluster.min_cross_latency()
        df = Dataflow(self.cluster)
        control, control_group = df.new_input("control")
        data, data_group = df.new_input("data")
        probe_stream, op, _state_bytes_fn = _build_megaphone_count(
            df, control, data, cfg
        )
        self.op = op
        probe = df.probe(probe_stream)
        self.runtime = df.build(
            runtime_factory=lambda d, bpa: ShardRuntime(
                d, bpa, partition=partition, domain=domain
            )
        )
        self.timeline: Optional[LatencyTimeline] = None
        recorder = None
        if domain == 0:
            self.timeline = LatencyTimeline()
            recorder = EpochLatencyRecorder(
                self.runtime, probe, cfg.granularity_ms, self.timeline,
                dilation=cfg.dilation,
            )
        workload = cfg.make_workload()
        self.source = OpenLoopSource(
            self.runtime,
            data_group,
            workload.make_generator(),
            rate=cfg.rate,
            duration_s=cfg.duration_s,
            granularity_ms=cfg.granularity_ms,
            recorder=recorder,
            dilation=cfg.dilation,
            workers=self.resident,
        )
        # The parallel ticker stops at a *config-derived* time (the legacy
        # serial driver stops it only after migrations drain, which no
        # single shard can observe).  Migrations must therefore complete
        # before ``duration_s + 1.0`` — the stock schedules (migrate at
        # 40% of the run) finish far earlier; a late migration surfaces as
        # the standard "control input closed" error.
        self.ticker = EpochTicker(
            self.runtime,
            control_group,
            granularity_ms=cfg.granularity_ms,
            dilation=cfg.dilation,
            until_s=cfg.duration_s + 1.0,
            workers=self.resident,
        )
        self.controllers: list[MigrationController] = []
        if domain == 0 and op is not None and cfg.migrate_at_s:
            initial = op.config.initial
            current = initial
            for i, at_s in enumerate(cfg.migrate_at_s):
                target = imbalanced_target(initial) if i % 2 == 0 else initial
                plan = make_plan(cfg.strategy, current, target, cfg.batch_size)
                controller = MigrationController(
                    self.runtime, control_group, self.ticker, probe, plan,
                    gap_s=cfg.gap_s, pace_s=cfg.pace_s,
                )
                controller.start_at(at_s)
                self.controllers.append(controller)
                current = target
        self.ticker.start()
        self.source.start()

    # -- shard surface -----------------------------------------------------

    def _note_remote(self, delivery: float, message: NetworkMessage) -> None:
        payload = message.payload
        self._out_seq += 1
        self._outbox.append(
            RemoteData(
                dst_domain=self.partition.domain_of(message.dst_worker),
                delivery=delivery,
                src_seq=self._out_seq,
                src_domain=self.domain,
                channel_index=payload.channel.index,
                time=payload.time,
                records=payload.records,
                size_bytes=message.size_bytes,
                src_worker=message.src_worker,
                dst_worker=message.dst_worker,
            )
        )

    @property
    def next_time(self) -> float:
        """Time of the next local event (inf when the heap is empty)."""
        peeked = self.sim.peek_time()
        return _INF if peeked is None else peeked

    def inject(self, entry) -> None:
        """Schedule one received cross-domain entry on the local heap."""
        if type(entry) is RemoteProgress:
            tracker = self.runtime.tracker
            runtime = self.runtime
            batch = entry.batch

            def apply() -> None:
                tracker.apply_remote(batch)
                runtime.mark_progress()

            self.sim.inject_remote(entry.delivery, entry.src_domain, entry.src_seq, apply)
            return
        channel = self.runtime.graph.channels[entry.channel_index]
        worker = self.runtime.workers[entry.dst_worker]
        time, records, size_bytes = entry.time, entry.records, entry.size_bytes

        def deliver() -> None:
            worker.enqueue_message(channel, time, records, size_bytes)

        self.sim.inject_remote(entry.delivery, entry.src_domain, entry.src_seq, deliver)

    def run_window(self, grant: float, inbox: list) -> tuple[float, list]:
        """Inject ``inbox``, fire every local event strictly below ``grant``,
        then flush the window's progress log; returns ``(next_time, outbox)``.
        """
        for entry in inbox:
            self.inject(entry)
        self.sim.run_below(grant)
        outbox = self._outbox
        self._outbox = []
        batches = self.runtime.tracker.take_update_batches(self.lookahead)
        if batches:
            my_domain = self.domain
            for delivery, batch in batches:
                self._out_seq += 1
                seq = self._out_seq
                for dst in self.partition.domains():
                    if dst != my_domain:
                        outbox.append(
                            RemoteProgress(
                                dst_domain=dst,
                                delivery=delivery,
                                src_seq=seq,
                                src_domain=my_domain,
                                batch=batch,
                            )
                        )
        return self.next_time, outbox

    def finalize(self) -> dict:
        """End-of-run shard report: counts, fingerprints, domain-0 extras."""
        from repro.chaos.recovery import store_fingerprint

        fingerprints: dict[int, str] = {}
        if self.op is not None:
            fingerprints = {
                w: store_fingerprint(store)
                for w, store in self.op.stores(self.runtime, self.resident)
            }
        report = {
            "domain": self.domain,
            "records_injected": self.source.records_injected,
            "sim_events": self.sim.events_processed,
            "fingerprints": fingerprints,
            "controllers_done": all(c.done for c in self.controllers),
            "pending_steps": sum(
                len(c._awaiting) for c in self.controllers
            ),
            "now": self.sim.now,
        }
        if self.domain == 0:
            report["timeline"] = self.timeline
            report["migrations"] = [c.result for c in self.controllers]
        return report
