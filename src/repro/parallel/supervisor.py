"""Shard executors: in-process reference and forked OS processes.

:class:`LocalExecutor` (``--parallel 0``) hosts every domain in the calling
process — the *sharded reference engine*.  It runs the identical window
protocol with zero IPC, so it pins the semantics that the forked executor
must reproduce byte-for-byte.

:class:`ForkExecutor` (``--parallel N``) forks ``min(N, num_domains)``
children and multiplexes domains over them round-robin; each child builds
its hosts after the fork (operator state is never shipped between
processes).  Per round the supervisor sends each participating child its
``(grant, inbox)`` assignments plus relayed ring acknowledgements, and the
child replies with ``(next_time, outbox)`` per hosted domain.  Column
payloads travel through pre-forked shared-memory rings when numpy is
available (see :mod:`repro.parallel.transport`); everything else pickles
over the pipe.

A dead or wedged child surfaces as :class:`ShardCrashed` with the shard
index and round — never a hang: replies are collected with a poll loop
that also watches child liveness (pipe EOF alone is unreliable here, since
later-forked children inherit earlier children's pipe ends).
"""

from __future__ import annotations

import os
import traceback
from typing import Optional

from repro.parallel.domain import DomainHost, RemoteData
from repro.parallel.partition import ShardPartition
from repro.parallel.transport import ShmCodec, ShmRing, shm_supported

# Seconds a supervisor waits on one child reply before declaring it wedged.
_REPLY_TIMEOUT_S = float(os.environ.get("REPRO_PARALLEL_TIMEOUT_S", "300"))
_RING_BYTES = int(os.environ.get("REPRO_PARALLEL_RING_BYTES", str(1 << 22)))
# Test hook: child 0 hard-exits when its round counter reaches this value.
_CRASH_ENV = "REPRO_PARALLEL_CRASH_AT"


class ShardCrashed(RuntimeError):
    """A forked shard died or stopped responding mid-protocol."""

    def __init__(self, shard: int, round_no: int, detail: str) -> None:
        super().__init__(
            f"shard {shard} failed during synchronization round {round_no}: "
            f"{detail}"
        )
        self.shard = shard
        self.round_no = round_no
        self.detail = detail


class LocalExecutor:
    """All domains in-process: the N=0 sharded reference engine."""

    mode = "local"

    def __init__(self, cfg, partition: ShardPartition) -> None:
        self.partition = partition
        self.hosts = {d: DomainHost(cfg, partition, d) for d in partition.domains()}
        self.lookahead = next(iter(self.hosts.values())).lookahead
        self.num_children = 0

    def domains(self) -> list:
        return sorted(self.hosts)

    def initial_next_times(self) -> dict:
        return {d: host.next_time for d, host in self.hosts.items()}

    def run_round(self, assignments: dict) -> dict:
        return {
            d: self.hosts[d].run_window(*assignments[d])
            for d in sorted(assignments)
        }

    def finalize(self) -> dict:
        return {d: host.finalize() for d, host in self.hosts.items()}

    def close(self) -> None:
        pass


def _shard_main(conn, cfg, partition, hosted, rings, profile_path, crash_at):
    """Child process loop: build hosts, serve rounds until told to exit."""
    profiler = None
    if profile_path is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    codec = ShmCodec(rings)
    round_no = 0
    try:
        hosts = {d: DomainHost(cfg, partition, d) for d in hosted}
        conn.send(
            (
                "ready",
                {d: host.next_time for d, host in hosts.items()},
                hosts[hosted[0]].lookahead,
            )
        )
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "round":
                _, assignments, acks = msg
                codec.apply_acks(acks)
                round_no += 1
                if crash_at is not None and round_no >= crash_at:
                    os._exit(23)
                results = {}
                for d in sorted(assignments):
                    grant, inbox = assignments[d]
                    for entry in inbox:
                        if type(entry) is RemoteData:
                            codec.decode_entry(entry)
                    next_time, outbox = hosts[d].run_window(grant, inbox)
                    for entry in outbox:
                        if type(entry) is RemoteData:
                            codec.encode_entry(entry)
                    results[d] = (next_time, outbox)
                conn.send(("round", results, codec.take_acks()))
            elif kind == "finalize":
                if profiler is not None:
                    profiler.disable()
                    profiler.dump_stats(profile_path)
                reports = {d: hosts[d].finalize() for d in hosted}
                # Per-child stats go on the child's first hosted domain
                # only, so summing across reports counts each child once.
                first = reports[min(reports)]
                first["profile_path"] = profile_path
                first["shm_encoded"] = codec.encoded
                first["shm_fallback"] = codec.fallback
                conn.send(("finalize", reports))
            elif kind == "exit":
                conn.close()
                return
    except (EOFError, KeyboardInterrupt):
        pass
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, ValueError):
            pass
        os._exit(1)


class ForkExecutor:
    """Domains multiplexed over forked children, shm data plane."""

    mode = "fork"

    def __init__(
        self,
        cfg,
        partition: ShardPartition,
        num_shards: int,
        profile_dir: Optional[str] = None,
    ) -> None:
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "--parallel requires the fork start method; "
                "use --parallel 0 on this platform"
            ) from exc
        self.partition = partition
        domains = list(partition.domains())
        self.num_children = min(num_shards, len(domains))
        self._child_of = {d: d % self.num_children for d in domains}
        self._hosted = {
            i: [d for d in domains if self._child_of[d] == i]
            for i in range(self.num_children)
        }
        self.rings: dict = {}
        if shm_supported():
            for src in domains:
                for dst in domains:
                    if src != dst:
                        self.rings[(src, dst)] = ShmRing(_RING_BYTES)
        crash_at_raw = os.environ.get(_CRASH_ENV)
        crash_at = int(crash_at_raw) if crash_at_raw else None
        self.profile_paths: list[str] = []
        self._conns = []
        self._procs = []
        self._round_no = 0
        # Acks from reader children, held until the writer child's next round.
        self._pending_acks: dict[int, dict] = {
            i: {} for i in range(self.num_children)
        }
        try:
            for i in range(self.num_children):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                profile_path = None
                if profile_dir is not None:
                    profile_path = os.path.join(profile_dir, f"shard{i}.pstats")
                    self.profile_paths.append(profile_path)
                proc = ctx.Process(
                    target=_shard_main,
                    args=(
                        child_conn,
                        cfg,
                        partition,
                        self._hosted[i],
                        self.rings,
                        profile_path,
                        crash_at if i == 0 else None,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
            self._next0 = {}
            self.lookahead = 0.0
            for i in range(self.num_children):
                msg = self._recv(i)
                if msg[0] != "ready":
                    raise ShardCrashed(i, 0, f"unexpected handshake {msg[0]!r}")
                self._next0.update(msg[1])
                self.lookahead = msg[2]
        except BaseException:
            self.close()
            raise

    # -- protocol surface --------------------------------------------------

    def domains(self) -> list:
        return sorted(self._child_of)

    def initial_next_times(self) -> dict:
        return dict(self._next0)

    def run_round(self, assignments: dict) -> dict:
        self._round_no += 1
        by_child: dict[int, dict] = {}
        for d, assignment in assignments.items():
            by_child.setdefault(self._child_of[d], {})[d] = assignment
        participating = sorted(by_child)
        for i in participating:
            acks = self._pending_acks[i]
            self._pending_acks[i] = {}
            self._send(i, ("round", by_child[i], acks))
        results: dict = {}
        for i in participating:
            msg = self._recv(i)
            if msg[0] != "round":
                raise ShardCrashed(
                    i, self._round_no, f"unexpected reply {msg[0]!r}"
                )
            results.update(msg[1])
            for key, upto in msg[2].items():
                writer = self._child_of[key[0]]
                pending = self._pending_acks[writer]
                if upto > pending.get(key, 0):
                    pending[key] = upto
        return results

    def finalize(self) -> dict:
        reports: dict = {}
        for i in range(self.num_children):
            self._send(i, ("finalize",))
        for i in range(self.num_children):
            msg = self._recv(i)
            if msg[0] != "finalize":
                raise ShardCrashed(
                    i, self._round_no, f"unexpected reply {msg[0]!r}"
                )
            reports.update(msg[1])
        return reports

    def close(self) -> None:
        for i, conn in enumerate(self._conns):
            try:
                conn.send(("exit",))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for ring in self.rings.values():
            ring.close()
            ring.unlink()
        self.rings = {}

    # -- plumbing ----------------------------------------------------------

    def _send(self, i: int, msg) -> None:
        try:
            self._conns[i].send(msg)
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise ShardCrashed(i, self._round_no, f"pipe send failed: {exc}")

    def _recv(self, i: int):
        conn = self._conns[i]
        proc = self._procs[i]
        waited = 0.0
        step = 0.05
        while True:
            try:
                if conn.poll(step):
                    msg = conn.recv()
                    if msg[0] == "error":
                        raise ShardCrashed(
                            i, self._round_no, "shard raised:\n" + msg[1]
                        )
                    return msg
            except (EOFError, OSError, BrokenPipeError):
                raise ShardCrashed(
                    i,
                    self._round_no,
                    f"pipe closed (exitcode={proc.exitcode})",
                )
            if not proc.is_alive():
                # Drain anything the child flushed before dying.
                if conn.poll(0):
                    continue
                raise ShardCrashed(
                    i,
                    self._round_no,
                    f"process died (exitcode={proc.exitcode})",
                )
            waited += step
            if waited >= _REPLY_TIMEOUT_S:
                raise ShardCrashed(
                    i,
                    self._round_no,
                    f"no reply within {_REPLY_TIMEOUT_S:.0f}s",
                )
