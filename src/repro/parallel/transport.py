"""Shared-memory transport for cross-shard column batches.

Cross-shard messages travel two ways:

* **Control plane** (always): the pickled :class:`RemoteData` /
  :class:`RemoteProgress` envelopes ride the supervisor pipes.
* **Data plane** (numpy builds): the column payloads of KV batches are
  memcpy'd into a per-directed-domain-pair :class:`ShmRing` — a
  single-producer single-consumer byte arena over
  ``multiprocessing.shared_memory`` — and the envelope carries only
  ``(offset, length)`` references.  The pickle then ships tens of bytes
  instead of the whole batch.

Ring discipline: offsets are *monotonic* byte positions (physical position
is ``offset % capacity``); a write that would straddle the wrap pads to the
boundary so every payload is contiguous.  Head/tail counters live in the
writer process only — the reader acknowledges consumed-up-to offsets in its
round reply, and the supervisor relays them to the writer one round later,
so the ring must hold roughly two windows of traffic.  A full ring (or a
non-columnar payload) falls back to pickling the object itself, which is
always correct — the ring is purely an optimization.

Determinism: a shm round-trip reproduces the exact column values and
dtypes (``frombuffer(...).copy()``), so simulation behavior is identical
whether a payload traveled by ring or by pickle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.runtime_events.columns import ColumnBatch, _np as np
from repro.runtime_events.items import DestinationBatch


def shm_supported() -> bool:
    """True when the columnar (numpy) data plane can be used."""
    return np is not None


@dataclass(slots=True)
class ShmRef:
    """A contiguous payload in a ring: monotonic offset + byte length."""

    offset: int
    length: int


@dataclass(slots=True)
class ShmColumnBatch:
    """Envelope stand-in for a :class:`ColumnBatch` shipped via ring."""

    meta: tuple
    refs: list


@dataclass(slots=True)
class ShmVector:
    """Envelope stand-in for a bare numpy vector (e.g. ``bin_ids``)."""

    dtype: str
    ref: ShmRef


@dataclass(slots=True)
class ShmDestinationBatch:
    """Envelope stand-in for a :class:`DestinationBatch` whose columnar
    fields were shipped via ring; scalar fields ride along pickled."""

    dst: int
    count: int
    bins: object
    bin_ids: object
    columns: object
    tag: int


class ShmRing:
    """Single-producer single-consumer byte ring in shared memory.

    Created by the supervisor *before* forking; children inherit the
    mapping, so no attach-by-name is needed and only the creator is
    registered with the resource tracker (the supervisor unlinks on
    shutdown).
    """

    def __init__(self, capacity: int) -> None:
        from multiprocessing import shared_memory

        self.capacity = capacity
        self._shm = shared_memory.SharedMemory(create=True, size=capacity)
        self.name = self._shm.name
        # Writer-side bookkeeping (meaningful only in the producer process).
        self.head = 0
        self.tail = 0

    # -- writer side -------------------------------------------------------

    def _alloc(self, length: int) -> Optional[int]:
        if length > self.capacity:
            return None
        head = self.head
        pos = head % self.capacity
        if pos + length > self.capacity:
            head += self.capacity - pos  # pad: payloads stay contiguous
        if head + length - self.tail > self.capacity:
            return None
        self.head = head + length
        return head

    def write(self, data) -> Optional[ShmRef]:
        """Copy ``data`` (a buffer) into the ring; None when full."""
        view = memoryview(data).cast("B")
        length = view.nbytes
        offset = self._alloc(length)
        if offset is None:
            return None
        pos = offset % self.capacity
        self._shm.buf[pos:pos + length] = view
        return ShmRef(offset=offset, length=length)

    def write_all(self, buffers) -> Optional[list]:
        """All-or-nothing write of several buffers (rolls back on full)."""
        snapshot = self.head
        refs = []
        for buf in buffers:
            ref = self.write(buf)
            if ref is None:
                self.head = snapshot
                return None
            refs.append(ref)
        return refs

    def ack(self, upto: int) -> None:
        """Release ring space: the reader consumed everything below ``upto``."""
        if upto > self.tail:
            self.tail = upto

    # -- reader side -------------------------------------------------------

    def read(self, ref: ShmRef) -> bytes:
        pos = ref.offset % self.capacity
        return bytes(self._shm.buf[pos:pos + ref.length])

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except (OSError, FileNotFoundError):
            pass


class ShmCodec:
    """Encodes/decodes cross-shard payloads against a ring map.

    ``rings`` maps ``(src_domain, dst_domain)`` to a :class:`ShmRing`.
    The encoder runs in the producing child (writer side of the ring); the
    decoder runs in the consuming child and records consumed-up-to offsets
    for the ack relay.
    """

    def __init__(self, rings: Optional[dict]) -> None:
        self.rings = rings or {}
        self._consumed: dict[tuple, int] = {}
        self.encoded = 0
        self.fallback = 0

    # -- encode (writer child) --------------------------------------------

    def encode_entry(self, entry) -> None:
        """Rewrite ``entry.records`` in place with ring references where
        possible; leaves it untouched (pickle fallback) otherwise."""
        ring = self.rings.get((entry.src_domain, entry.dst_domain))
        if ring is None:
            return
        encoded, used = self._encode(entry.records, ring)
        if used:
            entry.records = encoded
            self.encoded += 1
        else:
            self.fallback += 1

    def _encode(self, obj, ring: ShmRing):
        if type(obj) is ColumnBatch:
            pair = obj.to_buffers()
            if pair is not None:
                meta, buffers = pair
                refs = ring.write_all(buffers)
                if refs is not None:
                    return ShmColumnBatch(meta=meta, refs=refs), True
            return obj, False
        if type(obj) is DestinationBatch:
            columns, used_c = (None, False)
            if obj.columns is not None:
                columns, used_c = self._encode(obj.columns, ring)
            bin_ids, used_b = self._encode_vector(obj.bin_ids, ring)
            if used_c or used_b:
                return (
                    ShmDestinationBatch(
                        dst=obj.dst,
                        count=obj.count,
                        bins=obj.bins,
                        bin_ids=bin_ids,
                        columns=columns,
                        tag=obj.tag,
                    ),
                    True,
                )
            return obj, False
        if type(obj) is list:
            encoded = [self._encode(item, ring) for item in obj]
            if any(used for _, used in encoded):
                return [item for item, _ in encoded], True
            return obj, False
        return obj, False

    def _encode_vector(self, vec, ring: ShmRing):
        if np is None or not isinstance(vec, np.ndarray) or vec.ndim != 1:
            return vec, False
        ref = ring.write(np.ascontiguousarray(vec))
        if ref is None:
            return vec, False
        return ShmVector(dtype=str(vec.dtype), ref=ref), True

    # -- decode (reader child) --------------------------------------------

    def decode_entry(self, entry) -> None:
        """Resolve ring references in ``entry.records`` back into arrays."""
        key = (entry.src_domain, entry.dst_domain)
        ring = self.rings.get(key)
        if ring is None:
            return
        entry.records = self._decode(entry.records, ring, key)

    def _decode(self, obj, ring: ShmRing, key):
        t = type(obj)
        if t is ShmColumnBatch:
            buffers = [self._take(ring, key, ref) for ref in obj.refs]
            return ColumnBatch.from_buffers(obj.meta, buffers)
        if t is ShmVector:
            raw = self._take(ring, key, obj.ref)
            return np.frombuffer(raw, dtype=obj.dtype).copy()
        if t is ShmDestinationBatch:
            return DestinationBatch(
                dst=obj.dst,
                count=obj.count,
                bins=obj.bins,
                bin_ids=self._decode(obj.bin_ids, ring, key),
                columns=self._decode(obj.columns, ring, key),
                tag=obj.tag,
            )
        if t is list:
            return [self._decode(item, ring, key) for item in obj]
        return obj

    def _take(self, ring: ShmRing, key, ref: ShmRef) -> bytes:
        raw = ring.read(ref)
        end = ref.offset + ref.length
        if end > self._consumed.get(key, 0):
            self._consumed[key] = end
        return raw

    # -- ack relay ---------------------------------------------------------

    def take_acks(self) -> dict:
        """Consumed-up-to offsets per ring since the last call."""
        acks = self._consumed
        self._consumed = {}
        return acks

    def apply_acks(self, acks: dict) -> None:
        """Writer side: release space the (remote) reader has consumed."""
        for key, upto in acks.items():
            ring = self.rings.get(key)
            if ring is not None:
                ring.ack(upto)
