"""Parallel experiment entry point: validate, shard, run, assemble.

``run_parallel_count_experiment`` is the ``--parallel`` twin of
``run_count_experiment``: same config in, same :class:`ExperimentResult`
out, plus a ``result.parallel`` dict describing the sharded run (mode,
children, rounds, lookahead, per-domain event counts, per-worker state
fingerprints).  ``--parallel 0`` runs every shard in-process (the sharded
reference engine); ``--parallel N`` forks N children.  Both produce
byte-identical simulations — `result_fingerprint` condenses the
determinism-relevant outputs into one digest for asserting exactly that.
"""

from __future__ import annotations

import hashlib
import time as wallclock

from repro.harness.experiment import ExperimentConfig, ExperimentResult
from repro.parallel.partition import ShardPartition
from repro.parallel.supervisor import ForkExecutor, LocalExecutor
from repro.parallel.sync import run_protocol
from repro.sim.memory import MemoryTimeline


class ParallelConfigError(ValueError):
    """The config asks for a feature the sharded engine does not support."""


_UNSUPPORTED = (
    ("chaos", "fault injection (chaos)"),
    ("planner", "the closed-loop planner"),
)
_UNSUPPORTED_FLAGS = (
    ("sample_memory", "memory sampling"),
    ("collect_trace", "migration trace collection"),
    ("native", "the native (non-migrateable) baseline"),
    # The obsv observers subscribe to *one* bus; a sharded run has one per
    # domain, so recording/export there would capture a single shard's
    # slice and present it as the whole run.
    ("record_log", "event-log recording (--record)"),
    ("export_metrics", "metrics export (--export-metrics)"),
)


def validate_parallel_config(cfg: ExperimentConfig) -> None:
    """Reject configs the sharded engine cannot honor, loudly and early."""
    if cfg.parallel is None:
        return
    if cfg.parallel < 0:
        raise ParallelConfigError("--parallel must be >= 0")
    for attr, label in _UNSUPPORTED:
        if getattr(cfg, attr) is not None:
            raise ParallelConfigError(
                f"--parallel does not support {label}; "
                "run it serially (drop --parallel)"
            )
    for attr, label in _UNSUPPORTED_FLAGS:
        if getattr(cfg, attr):
            raise ParallelConfigError(
                f"--parallel does not support {label}; "
                "run it serially (drop --parallel)"
            )
    if cfg.metrics_port is not None:
        raise ParallelConfigError(
            "--parallel does not support the metrics endpoint "
            "(--metrics-port); run it serially (drop --parallel)"
        )


def run_parallel_count_experiment(
    cfg: ExperimentConfig, profile_dir=None
) -> ExperimentResult:
    """Run the counting microbenchmark sharded under ``cfg.parallel``."""
    validate_parallel_config(cfg)
    partition = ShardPartition(cfg.num_workers, cfg.workers_per_process)
    started = wallclock.perf_counter()
    if cfg.parallel == 0:
        executor = LocalExecutor(cfg, partition)
    else:
        if cfg.profile_shards and profile_dir is None:
            import tempfile

            profile_dir = tempfile.mkdtemp(prefix="repro-shard-profiles-")
        executor = ForkExecutor(
            cfg, partition, cfg.parallel, profile_dir=profile_dir
        )
    try:
        rounds = run_protocol(executor)
        reports = executor.finalize()
    finally:
        executor.close()

    root = reports[0]
    if not root["controllers_done"]:
        raise RuntimeError(
            "migration did not complete; dataflow stalled "
            f"({root['pending_steps']} steps awaiting completion)"
        )
    fingerprints: dict[int, str] = {}
    for report in reports.values():
        fingerprints.update(report["fingerprints"])
    result = ExperimentResult(
        config=cfg,
        timeline=root["timeline"],
        migrations=list(root["migrations"]),
        memory=[
            MemoryTimeline(process=d) for d in partition.domains()
        ],
        records_injected=sum(r["records_injected"] for r in reports.values()),
        sim_events=sum(r["sim_events"] for r in reports.values()),
        wall_seconds=wallclock.perf_counter() - started,
        state_fingerprints={w: fingerprints[w] for w in sorted(fingerprints)},
    )
    result.parallel = {
        "mode": executor.mode,
        "shards": cfg.parallel,
        "children": executor.num_children,
        "domains": partition.num_domains,
        "lookahead_s": executor.lookahead,
        "rounds": rounds,
        "sim_events_per_domain": {
            d: reports[d]["sim_events"] for d in sorted(reports)
        },
        "records_per_domain": {
            d: reports[d]["records_injected"] for d in sorted(reports)
        },
        "fingerprints": {w: fingerprints[w] for w in sorted(fingerprints)},
        "profile_paths": [
            p for p in getattr(executor, "profile_paths", []) or []
        ],
        "shm_encoded": sum(r.get("shm_encoded", 0) for r in reports.values()),
        "shm_fallback": sum(
            r.get("shm_fallback", 0) for r in reports.values()
        ),
    }
    return result


def result_fingerprint(result: ExperimentResult) -> str:
    """One digest over everything determinism promises to reproduce.

    Covers final per-worker state fingerprints, global and per-domain
    event counts, injected records, migration step timings, and the
    latency timeline — byte-identical runs agree on all of it.
    """
    digest = hashlib.sha256()
    parallel = getattr(result, "parallel", None) or {}
    for worker, fp in sorted(parallel.get("fingerprints", {}).items()):
        digest.update(f"w{worker}:{fp};".encode())
    # Serial runs carry their state fingerprints here (sharded runs repeat
    # them; the digest is over both, deterministically).
    for worker, fp in sorted(getattr(result, "state_fingerprints", {}).items()):
        digest.update(f"s{worker}:{fp};".encode())
    digest.update(f"records={result.records_injected};".encode())
    digest.update(f"events={result.sim_events};".encode())
    for d, n in sorted(parallel.get("sim_events_per_domain", {}).items()):
        digest.update(f"d{d}:{n};".encode())
    for migration in result.migrations:
        for step in migration.steps:
            digest.update(
                f"step@{step.issued_at!r}->{step.completed_at!r};".encode()
            )
    for stats in result.timeline.series():
        digest.update(
            f"t{stats.start_s!r}:{stats.count}:{stats.max_s!r};".encode()
        )
    return digest.hexdigest()
