"""Parallel sharded simulation (conservative parallel-DES).

The serial simulator executes the whole modeled cluster on one interpreter
thread.  This package shards the discrete-event simulation along the existing
``workers_per_process`` partition — one *domain* per simulated process group —
and runs the domains on real OS processes, synchronized with a conservative
(YAWNS-style) window protocol whose lookahead is the minimum cross-shard link
latency in :mod:`repro.sim.network`.

Entry point: :func:`repro.parallel.runner.run_parallel_count_experiment`,
reached through ``ExperimentConfig.parallel`` / the ``--parallel`` CLI flag.
See DESIGN.md §14 for the protocol and its determinism argument.
"""

from repro.parallel.partition import ShardPartition
from repro.parallel.sync import ParallelStall

__all__ = [
    "ParallelConfigError",
    "ParallelStall",
    "ShardCrashed",
    "ShardPartition",
    "result_fingerprint",
    "run_parallel_count_experiment",
]


def __getattr__(name):
    # Lazy: runner/supervisor import the harness, which imports back into
    # this package for the partition type; keep the light names eager and
    # the heavy ones deferred.
    if name in ("ParallelConfigError", "result_fingerprint",
                "run_parallel_count_experiment"):
        from repro.parallel import runner

        return getattr(runner, name)
    if name == "ShardCrashed":
        from repro.parallel.supervisor import ShardCrashed

        return ShardCrashed
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
