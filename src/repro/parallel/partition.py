"""The shard partition: simulated process groups become physical shards.

A cluster of ``num_workers`` workers grouped ``workers_per_process`` to a
simulated process yields ``num_domains`` *domains*; in parallel mode each
domain is one OS process running its own event loop.  The same partition is
the unit of fate-sharing everywhere else — the chaos layer's ``ProcessCrash``
kills exactly the workers of one domain (``chaos/experiment.py`` routes its
process arithmetic through here), so a simulated process failure and a real
shard failure take out the same worker set.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ShardPartition:
    """Maps workers to domains (= simulated processes = parallel shards)."""

    num_workers: int
    workers_per_process: int

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {self.num_workers}")
        if self.workers_per_process <= 0:
            raise ValueError(
                f"workers_per_process must be positive, got {self.workers_per_process}"
            )

    @property
    def num_domains(self) -> int:
        """Number of domains (ceiling division: a ragged tail is its own domain)."""
        return -(-self.num_workers // self.workers_per_process)

    def domain_of(self, worker: int) -> int:
        """Domain owning ``worker``."""
        if not 0 <= worker < self.num_workers:
            raise ValueError(f"worker {worker} outside [0, {self.num_workers})")
        return worker // self.workers_per_process

    def workers_of(self, domain: int) -> range:
        """The contiguous worker range resident in ``domain``."""
        if not 0 <= domain < self.num_domains:
            raise ValueError(f"domain {domain} outside [0, {self.num_domains})")
        lo = domain * self.workers_per_process
        hi = min(lo + self.workers_per_process, self.num_workers)
        return range(lo, hi)

    def domains(self) -> range:
        """All domain indices."""
        return range(self.num_domains)
